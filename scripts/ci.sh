#!/usr/bin/env bash
# Single verification entry point: tier-1 tests plus a parallel smoke run.
#
#   scripts/ci.sh            # quick suite (benchmarks deselected) + smoke
#   scripts/ci.sh --slow     # additionally run the slow benchmark tier
#
# The slow tier re-measures the sensor hot paths and writes
# benchmarks/results/BENCH_sensor_pipeline.json; it FAILS if the full
# server/client pipeline step (or camera/LIDAR) regresses below the
# committed baseline (benchmarks/BENCH_sensor_pipeline_baseline.json):
# 3x/4x multiples against the pre-vectorisation scalar capture, plain
# parity against a baseline recaptured on another machine with
#   PYTHONPATH=src python benchmarks/sensor_bench.py --capture-baseline
# (see benchmarks/test_bench_throughput.py::test_sensor_pipeline_gate).
# It also gates the episode multiplexer: batched sensing must stay
# >= 1.5x single-episode serial per core on the dense scene, recorded in
# benchmarks/results/BENCH_multiplex.json
# (see benchmarks/test_bench_multiplex.py).
set -euo pipefail
cd "$(dirname "$0")/.."

export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== tier-1: pytest -x -q =="
python -m pytest -x -q

echo "== smoke: declarative spec campaign (avfi run) =="
python -m repro run examples/specs/smoke.json --workers 1

echo "== smoke: spec emit round-trip =="
# The hard-coded campaign command's emitted spec must re-load cleanly.
python -m repro spec emit campaign --runs 2 | python -m repro spec validate -

echo "== smoke: compound-fault campaign + streaming report =="
# Compound (multi-fault) episodes end-to-end: the compound spec expands
# its cartesian pairs, runs with a JSONL checkpoint (+ parquet sink when
# pyarrow is installed — degrades with a warning when not), and the
# streaming `avfi report` computes interaction effects from the file.
COMPOUND_DIR="$(mktemp -d)"
CHAOS_DIR="$(mktemp -d)"
SERVICE_DIR="$(mktemp -d)"
trap 'rm -rf "$COMPOUND_DIR" "$CHAOS_DIR" "$SERVICE_DIR"' EXIT
python -m repro run examples/specs/compound.json --workers 1 \
    --checkpoint "$COMPOUND_DIR/results.jsonl" \
    --parquet "$COMPOUND_DIR/results.parquet"
python -m repro report "$COMPOUND_DIR/results.jsonl" | tee "$COMPOUND_DIR/report_jsonl.txt"
grep -q "pairs:gaussian+output-delay" "$COMPOUND_DIR/report_jsonl.txt"
grep -q "compound-fault interaction effects" "$COMPOUND_DIR/report_jsonl.txt"
if python -c "import pyarrow" 2>/dev/null; then
    echo "== smoke: parquet sink round-trip =="
    # With pyarrow installed the sink must exist and report identically
    # to the JSONL checkpoint (same records, other container).
    python -m repro report "$COMPOUND_DIR/results.parquet" --parquet \
        | tee "$COMPOUND_DIR/report_parquet.txt"
    diff <(tail -n +2 "$COMPOUND_DIR/report_jsonl.txt") \
         <(tail -n +2 "$COMPOUND_DIR/report_parquet.txt")
else
    echo "== smoke: parquet sink skipped (pyarrow not installed; JSONL fallback verified above) =="
    test ! -e "$COMPOUND_DIR/results.parquet"
fi

echo "== smoke: declarative-vs-programmatic equivalence =="
python examples/declarative_campaign.py --runs 1

echo "== smoke: 2-worker parallel campaign =="
python examples/parallel_campaign.py --workers 2 --runs 2 --agent autopilot

echo "== smoke: distributed queue campaign (2 workers, forced lease expiry) =="
# End-to-end over the filesystem broker: a coordinator, two real
# `python -m repro worker` subprocesses, one ghost-claimed task whose
# lease expires and requeues.  Exits non-zero on any divergence from
# the serial reference.
python examples/distributed_queue_campaign.py --workers 2 --runs 2

echo "== smoke: multiplexed-vs-serial byte-identity =="
# The multiplexed backend's headline guarantee: a mixed-weather campaign
# run with episodes interleaved at tick granularity (batched sensing,
# slot of 4) must produce byte-identical records to the serial run.
python - <<'PY'
from repro.agent import autopilot_agent_factory
from repro.core import ParallelCampaignRunner, standard_scenarios
from repro.core.faults import GaussianNoise, OutputDelay

scenarios = standard_scenarios(4, seed=23, n_npc_vehicles=2, n_pedestrians=1)
injectors = {"none": [], "compound": [GaussianNoise(0.1), OutputDelay(3)]}

def run(executor, slot):
    return ParallelCampaignRunner(
        scenarios, autopilot_agent_factory(), injectors,
        executor=executor, episodes_per_slot=slot,
    ).run().records

serial = run("serial", 1)
mux = run("multiplexed", 4)
assert [r.to_dict() for r in serial] == [r.to_dict() for r in mux], \
    "multiplexed records diverged from serial"
print(f"multiplexed == serial over {len(serial)} episodes")
PY

echo "== smoke: self-healing chaos campaign (quarantine + byte-identity) =="
# The harness under its own faults: a queue campaign with one always-
# crashing and one always-hanging episode, every broker interaction
# misbehaving through a seeded ChaosBroker.  Must exit 0 with exactly
# the two poison rows quarantined and the survivors byte-identical to a
# fault-free serial run; the streaming report over the broker's raw
# checkpoint must render the quarantine list.
python examples/chaos_campaign.py --workers 2 --queue-dir "$CHAOS_DIR/broker"
python -m repro report "$CHAOS_DIR/broker/results.jsonl" | tee "$CHAOS_DIR/report.txt"
grep -q "quarantined episodes" "$CHAOS_DIR/report.txt"
grep -q "chaos-crash" "$CHAOS_DIR/report.txt"
grep -q "chaos-hang" "$CHAOS_DIR/report.txt"

echo "== smoke: generative grammar campaign (expand + serial-vs-queue identity) =="
# The grammar suite form end-to-end: `avfi spec expand` renders the
# golden generative spec's concrete suite (and must show the scripted
# junction-conflict NPC), then the example expands it twice, runs it on
# the serial and queue backends (queue workers re-expand the grammar
# from the archived spec in their own processes) and re-drives a
# conflict episode asserting the NPC behavior state machine interrupted.
python -m repro spec expand examples/specs/generated.json \
    | tee "$COMPOUND_DIR/expand.txt"
grep -q "behavior run_junction (LEFT)" "$COMPOUND_DIR/expand.txt"
python examples/generated_campaign.py --workers 1

echo "== smoke: campaign as a service (avfi serve + TCP worker + HTTP submit) =="
# The full network deployment, every role a real subprocess: `avfi serve`
# (HTTP control plane + TCP broker), one `avfi worker` attached over
# tcp://, an HTTP client submitting the smoke spec and polling to
# settlement.  The script exits non-zero unless the streamed results are
# byte-identical to a serial run; subprocesses are reaped through the
# reap_process escalation ladder.
python examples/service_campaign.py | tee "$SERVICE_DIR/service.txt"
grep -q "done  {'ok': 3}" "$SERVICE_DIR/service.txt"
grep -q "byte-identical to serial run: True" "$SERVICE_DIR/service.txt"

if [[ "${1:-}" == "--slow" ]]; then
    echo "== slow tier: benchmarks (incl. sensor pipeline + multiplex gates) =="
    # The multiplex gate (benchmarks/test_bench_multiplex.py) fails the
    # tier if batched sensing drops below 1.5x single-episode serial per
    # core on the dense scene, and records BENCH_multiplex.json.
    python -m pytest -x -q -m slow
    test -s benchmarks/results/BENCH_multiplex.json
    echo "== bench results =="
    ls -l benchmarks/results/
fi

echo "CI OK"
