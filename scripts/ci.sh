#!/usr/bin/env bash
# Single verification entry point: tier-1 tests plus a parallel smoke run.
#
#   scripts/ci.sh            # quick suite (benchmarks deselected) + smoke
#   scripts/ci.sh --slow     # additionally run the slow benchmark tier
set -euo pipefail
cd "$(dirname "$0")/.."

export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== tier-1: pytest -x -q =="
python -m pytest -x -q

echo "== smoke: 2-worker parallel campaign =="
python examples/parallel_campaign.py --workers 2 --runs 2 --agent autopilot

if [[ "${1:-}" == "--slow" ]]; then
    echo "== slow tier: benchmarks =="
    python -m pytest -x -q -m slow
fi

echo "CI OK"
