#!/usr/bin/env python
"""Figure 4's experiment: violations per km vs. actuation delay.

Sweeps the ADA→actuation output delay (replay semantics: the server keeps
applying the last command it received) and prints the VPK/MSR series.  The
simulator runs at 15 FPS, so 30 frames is the paper's "a mere 2 s" case.

Usage::

    python examples/timing_fault_sweep.py [--delays 0 5 10 20 30]
                                          [--agent autopilot|nn] [--runs 4]
                                          [--mode replay|drop]
"""

import argparse

from repro.agent import autopilot_agent_factory, get_or_train_default_model, nn_agent_factory
from repro.core import Campaign, bar_chart, format_table, metrics_by_injector, standard_scenarios
from repro.core.faults import OutputDelay
from repro.sim.builders import SimulationBuilder


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--delays", type=int, nargs="+", default=[0, 5, 10, 20, 30])
    parser.add_argument("--agent", choices=("autopilot", "nn"), default="autopilot")
    parser.add_argument("--runs", type=int, default=4)
    parser.add_argument("--mode", choices=("replay", "drop"), default="replay")
    parser.add_argument("--seed", type=int, default=777)
    args = parser.parse_args()

    builder = SimulationBuilder()
    if args.agent == "nn":
        agent_factory = nn_agent_factory(get_or_train_default_model())
    else:
        agent_factory = autopilot_agent_factory()

    scenarios = standard_scenarios(args.runs, seed=args.seed, n_npc_vehicles=2)
    injectors = {
        f"delay-{k}": ([OutputDelay(k, mode=args.mode)] if k else [])
        for k in args.delays
    }
    campaign = Campaign(scenarios, agent_factory, injectors, builder=builder, verbose=True)
    result = campaign.run()

    metrics = metrics_by_injector(result.records)
    rows = [
        [k, k / 15.0, metrics[f"delay-{k}"].vpk, metrics[f"delay-{k}"].msr]
        for k in args.delays
    ]
    print()
    print(format_table(["delay_frames", "delay_s", "VPK", "MSR_%"], rows,
                       title=f"Figure 4 ({args.mode} semantics, agent={args.agent}):"))
    print()
    print(bar_chart({f"{k} frames": metrics[f'delay-{k}'].vpk for k in args.delays},
                    title="Violations per km vs. output delay:"))


if __name__ == "__main__":
    main()
