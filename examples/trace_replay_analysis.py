#!/usr/bin/env python
"""Trace-based fault forensics: where did the fault take the car?

Runs a golden (fault-free) and a faulted episode with trace recording,
verifies the faulted trajectory diverges only after the injection frame,
and draws both trajectories on an ASCII map of the town with violation
sites marked — the debugging workflow AVFI campaigns need when a metric
regression has to be explained.

Usage::

    python examples/trace_replay_analysis.py [--seed 3] [--fault-frame 60]
"""

import argparse
import tempfile
from pathlib import Path

import numpy as np

from repro.agent import autopilot_agent_factory
from repro.core import TraceReader, compare_traces, run_episode, standard_scenarios
from repro.core.faults import ControlStuckAt, Trigger
from repro.sim.builders import SimulationBuilder
from repro.sim.town import SurfaceType, build_grid_town


def ascii_map(town, trajectories: dict[str, list[tuple[float, float]]],
              violations: list[tuple[float, float]], cols: int = 78, rows: int = 36) -> str:
    """Render the town + trajectories as ASCII art."""
    xmin, ymin, xmax, ymax = town.bounds

    def to_cell(x, y):
        c = int((x - xmin) / (xmax - xmin) * (cols - 1))
        r = int((ymax - y) / (ymax - ymin) * (rows - 1))
        return min(max(r, 0), rows - 1), min(max(c, 0), cols - 1)

    # Background: road layout sampled on the grid.
    xs = np.linspace(xmin, xmax, cols)
    ys = np.linspace(ymax, ymin, rows)
    gx, gy = np.meshgrid(xs, ys)
    classes = town.classify_points(
        np.column_stack([gx.ravel(), gy.ravel()])
    ).reshape(rows, cols)
    grid = np.full((rows, cols), " ", dtype="<U1")
    grid[classes == SurfaceType.ROAD] = "."
    grid[classes == SurfaceType.CURB] = ","

    markers = {"golden": "o", "faulted": "#"}
    for name, path in trajectories.items():
        mark = markers.get(name, "*")
        for x, y in path:
            r, c = to_cell(x, y)
            grid[r, c] = mark
    for x, y in violations:
        r, c = to_cell(x, y)
        grid[r, c] = "X"
    legend = "legend: . road  , curb  o golden path  # faulted path  X violation"
    return "\n".join("".join(row) for row in grid) + "\n" + legend


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seed", type=int, default=3)
    parser.add_argument("--fault-frame", type=int, default=60)
    args = parser.parse_args()

    scenario = standard_scenarios(1, seed=args.seed)[0]
    builder = SimulationBuilder()
    tmp = Path(tempfile.mkdtemp(prefix="avfi-traces-"))

    print("Running golden episode (trace recorded)...")
    golden_rec = run_episode(
        builder, scenario, autopilot_agent_factory(),
        trace_path=tmp / "golden.jsonl",
    )
    print(f"  success={golden_rec.success}, {golden_rec.frames} frames")

    print(f"Running faulted episode (steer stuck at frame {args.fault_frame})...")
    faulted_rec = run_episode(
        builder, scenario, autopilot_agent_factory(),
        faults=[ControlStuckAt("steer", 1.0, trigger=Trigger(start_frame=args.fault_frame))],
        injector_name="stuck-steer",
        trace_path=tmp / "faulted.jsonl",
    )
    print(
        f"  success={faulted_rec.success}, {faulted_rec.n_violations} violations, "
        f"TTV={faulted_rec.time_to_violation_s():.2f}s"
    )

    golden = TraceReader(tmp / "golden.jsonl")
    faulted = TraceReader(tmp / "faulted.jsonl")
    divergence = compare_traces(golden, faulted)
    if divergence is None:
        print("Trajectories identical (fault never manifested).")
    else:
        print(
            f"First divergence at frame {divergence.frame} on '{divergence.field}' "
            f"(injection at frame {args.fault_frame}) -> "
            f"{'OK: after injection' if divergence.frame >= args.fault_frame else 'UNEXPECTED'}"
        )

    town = build_grid_town(scenario.town_config)
    print()
    print(
        ascii_map(
            town,
            {"golden": golden.trajectory(), "faulted": faulted.trajectory()},
            [tuple(v["position"]) for v in faulted_rec.violations],
        )
    )
    print(f"\nTraces kept in {tmp}")


if __name__ == "__main__":
    main()
