#!/usr/bin/env python
"""Train the conditional imitation-learning agent from scratch.

Collects an imitation dataset by driving the privileged expert through a
scenario suite (with steering-noise recovery sessions), trains the
branched IL-CNN, evaluates it on unseen missions and saves the checkpoint.

Usage::

    python examples/train_agent.py --out my_agent.npz
        [--scenarios 16] [--epochs 12] [--eval-runs 6]
"""

import argparse

from repro.agent import (
    CollectionConfig,
    TrainConfig,
    collect_imitation_data,
    nn_agent_factory,
    train_ilcnn,
)
from repro.core import Campaign, format_table, metrics_by_injector, standard_scenarios
from repro.sim.builders import SimulationBuilder


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="ilcnn_trained.npz", help="checkpoint path")
    parser.add_argument("--scenarios", type=int, default=16, help="training missions")
    parser.add_argument("--epochs", type=int, default=12)
    parser.add_argument("--eval-runs", type=int, default=6)
    parser.add_argument("--data-seed", type=int, default=100)
    parser.add_argument("--eval-seed", type=int, default=777)
    args = parser.parse_args()

    builder = SimulationBuilder()

    print(f"Collecting expert demonstrations on {args.scenarios} missions...")
    train_scenarios = standard_scenarios(
        args.scenarios, seed=args.data_seed, n_npc_vehicles=2, n_pedestrians=2
    )
    dataset = collect_imitation_data(
        train_scenarios, builder=builder, config=CollectionConfig(seed=0)
    )
    print(f"  {len(dataset)} frames, command balance: {dataset.command_histogram()}")

    print(f"Training for {args.epochs} epochs (weighted MSE, Adam)...")
    model, history = train_ilcnn(
        dataset, config=TrainConfig(epochs=args.epochs, seed=0)
    )
    print(
        f"  done in {history.wall_time_s:.0f}s; "
        f"val loss {history.val_loss[0]:.5f} -> {history.best_val():.5f}"
    )
    model.save(args.out)
    print(f"  checkpoint written to {args.out}")

    print(f"Evaluating on {args.eval_runs} unseen missions (no faults)...")
    eval_scenarios = standard_scenarios(
        args.eval_runs, seed=args.eval_seed, n_npc_vehicles=2, n_pedestrians=2
    )
    campaign = Campaign(
        eval_scenarios, nn_agent_factory(model), {"none": []}, builder=builder,
        verbose=True,
    )
    metrics = metrics_by_injector(campaign.run().records)
    rows = [[n, m.msr, m.vpk, m.apk] for n, m in metrics.items()]
    print(format_table(["injector", "MSR_%", "VPK", "APK"], rows,
                       title="Fault-free evaluation:"))


if __name__ == "__main__":
    main()
