#!/usr/bin/env python
"""Extending AVFI with a custom fault model: GPS spoofing drift.

AVFI's fault classes are open: subclass one of the base classes in
``repro.core.faults.base`` and the injection harness wires it into the
pipeline like any built-in model.  This example implements a *GPS spoofing
attack* — the measured position drifts away from the true one at a fixed
velocity, the classic way to steer a victim vehicle off its route — and
campaigns it against the honest-GPS baseline.

Usage::

    python examples/custom_fault_model.py [--drift 0.8] [--runs 4]
"""

import argparse

from repro.agent import autopilot_agent_factory, get_or_train_default_model, nn_agent_factory
from repro.core import Campaign, format_table, metrics_by_injector, standard_scenarios
from repro.core.faults import Trigger
from repro.core.faults.base import SensorFault
from repro.sim.builders import SimulationBuilder
from repro.sim.sensors import SensorFrame


class GPSSpoofingDrift(SensorFault):
    """Measured GPS fix drifts at ``drift_mps`` metres per second.

    The drift direction is drawn once per episode (the attacker commits to
    a direction), and the offset grows linearly while the trigger holds —
    exactly how incremental spoofing attacks evade plausibility checks.
    """

    name = "gps-spoof"

    def __init__(self, drift_mps: float = 0.8, fps: float = 15.0,
                 trigger: Trigger | None = None):
        super().__init__(trigger)
        if drift_mps < 0:
            raise ValueError("drift rate cannot be negative")
        self.drift_mps = drift_mps
        self.fps = fps
        self._direction = None
        self._frames_active = 0

    def reset(self) -> None:
        super().reset()
        self._direction = None
        self._frames_active = 0

    def transform(self, bundle: SensorFrame) -> SensorFrame:
        if self._direction is None:
            angle = self.rng.uniform(0.0, 6.28318)
            import math

            self._direction = (math.cos(angle), math.sin(angle))
        self._frames_active += 1
        offset = self.drift_mps * self._frames_active / self.fps
        bundle.gps = (
            bundle.gps[0] + self._direction[0] * offset,
            bundle.gps[1] + self._direction[1] * offset,
        )
        return bundle

    def describe(self) -> dict:
        return {**super().describe(), "drift_mps": self.drift_mps}


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--drift", type=float, default=0.8, help="drift rate, m/s")
    parser.add_argument("--runs", type=int, default=4)
    parser.add_argument("--agent", choices=("nn", "autopilot"), default="nn")
    args = parser.parse_args()

    builder = SimulationBuilder()
    if args.agent == "nn":
        agent_factory = nn_agent_factory(get_or_train_default_model())
    else:
        # Note: the autopilot reads the world directly, so GPS spoofing
        # cannot reach it — useful as a negative control.
        agent_factory = autopilot_agent_factory()

    scenarios = standard_scenarios(args.runs, seed=777, n_npc_vehicles=2)
    campaign = Campaign(
        scenarios,
        agent_factory,
        injectors={
            "none": [],
            f"gps-spoof-{args.drift}": [
                GPSSpoofingDrift(args.drift, trigger=Trigger(start_frame=75))
            ],
        },
        builder=builder,
        verbose=True,
    )
    metrics = metrics_by_injector(campaign.run().records)
    rows = [[n, m.msr, m.vpk, m.ttv_median_s if m.ttv_s else None]
            for n, m in metrics.items()]
    print()
    print(format_table(["injector", "MSR_%", "VPK", "TTV_s"], rows,
                       title="GPS spoofing campaign (command routing under attack):"))


if __name__ == "__main__":
    main()
