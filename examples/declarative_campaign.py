#!/usr/bin/env python
"""Declarative campaigns: experiments as data, not Python.

Builds a :class:`~repro.core.spec.CampaignSpec` programmatically, saves
it as JSON, reloads it, and runs it via ``Campaign.from_spec`` — then
runs the equivalent hand-written programmatic campaign and verifies the
two produce **byte-identical** records (the spec API's core guarantee).
Finally demonstrates resume semantics: re-running the same spec against
its checkpoint executes nothing, while a spec with a different agent
re-runs every episode.

Exits non-zero on any divergence.

Usage::

    python examples/declarative_campaign.py [--runs 2] [--workers 1]
"""

import argparse
import sys
import tempfile
from pathlib import Path

from repro.agent import autopilot_agent_factory
from repro.core import (
    AgentSpec,
    Campaign,
    CampaignSpec,
    ExecutionSpec,
    ScenarioSuiteSpec,
    Study,
    format_table,
    load_spec,
    metrics_by_injector,
    save_spec,
    standard_scenarios,
)
from repro.core.faults import GaussianNoise, OutputDelay, Trigger
from repro.sim.builders import SimulationBuilder
from repro.sim.render import CameraModel
from repro.sim.town import GridTownConfig

TOWN = GridTownConfig(rows=2, cols=3)
CAMERA = CameraModel(width=32, height=24)


def make_spec(runs: int, workers: int) -> CampaignSpec:
    return CampaignSpec(
        name="declarative-demo",
        scenarios=ScenarioSuiteSpec(
            n=runs, seed=9, town=TOWN, min_distance=60.0, max_distance=160.0,
            n_npc_vehicles=1, n_pedestrians=1,
        ),
        agent=AgentSpec("autopilot"),
        injectors={
            "none": [],
            "gaussian": [GaussianNoise(0.1)],
            "late-delay": [OutputDelay(12, trigger=Trigger(start_frame=90))],
        },
        builder=SimulationBuilder(camera=CAMERA, with_lidar=False),
        execution=ExecutionSpec(base_seed=0, workers=workers),
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--runs", type=int, default=2, help="missions per injector")
    parser.add_argument("--workers", type=int, default=1)
    args = parser.parse_args()

    with tempfile.TemporaryDirectory(prefix="avfi-declarative-") as tmp:
        spec_path = Path(tmp) / "demo_spec.json"
        save_spec(make_spec(args.runs, args.workers), spec_path)
        spec = load_spec(spec_path)
        print(f"spec {spec.name!r} (hash {spec.hash()}) -> {spec_path.name}")

        # 1. Run the spec.
        checkpoint = Path(tmp) / "demo.jsonl"
        campaign = Campaign.from_spec(spec, checkpoint_path=checkpoint, verbose=True)
        from_spec = campaign.run()

        # 2. The equivalent hand-written campaign must match byte for byte.
        programmatic = Campaign(
            standard_scenarios(
                args.runs, seed=9, town_config=TOWN, min_distance=60.0,
                max_distance=160.0, n_npc_vehicles=1, n_pedestrians=1,
            ),
            autopilot_agent_factory(),
            {
                "none": [],
                "gaussian": [GaussianNoise(0.1)],
                "late-delay": [OutputDelay(12, trigger=Trigger(start_frame=90))],
            },
            builder=SimulationBuilder(camera=CAMERA, with_lidar=False),
            workers=args.workers,
        ).run()
        if [r.to_dict() for r in from_spec.records] != [
            r.to_dict() for r in programmatic.records
        ]:
            sys.exit("FAIL: spec-driven records differ from the programmatic campaign")
        print(f"spec == programmatic: {len(from_spec.records)} identical records")

        # 3. Same spec + same checkpoint: nothing re-runs.
        study = Study.from_spec(spec, checkpoint_path=checkpoint)
        if study.pending():
            sys.exit(f"FAIL: resume should be complete, {len(study.pending())} pending")
        print("resume with unchanged spec: 0 episodes pending")

        # 4. Change the agent: every episode must re-run (the agent is
        # part of the checkpoint fingerprint now).
        retuned = load_spec(spec_path)
        retuned.agent = AgentSpec("autopilot", {"cruise_speed": 5.0})
        study = Study.from_spec(retuned, checkpoint_path=checkpoint)
        if len(study.pending()) != len(from_spec.records):
            sys.exit("FAIL: retuned agent must invalidate the whole checkpoint")
        print("resume with retuned agent: full grid pending (as it must)")

        rows = [
            [n, m.n_runs, m.msr, m.vpk]
            for n, m in metrics_by_injector(from_spec.records).items()
        ]
        print()
        print(format_table(["injector", "runs", "MSR_%", "VPK"], rows))
    print("OK")


if __name__ == "__main__":
    main()
