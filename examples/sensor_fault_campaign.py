#!/usr/bin/env python
"""The paper's headline experiment: camera-fault campaign (figs. 2-3).

Trains (or loads the cached) conditional imitation-learning agent, then
runs a paired campaign across the paper's five input fault injectors plus
the fault-free baseline, and prints mission success rate and violations
per km — the series behind figures 2 and 3.

Usage::

    python examples/sensor_fault_campaign.py [--runs 6] [--agent nn|autopilot]
                                             [--save results.json]

First run with ``--agent nn`` trains the agent (~6 min); the checkpoint is
cached under ``benchmarks/_artifacts/``.
"""

import argparse

from repro.agent import autopilot_agent_factory, get_or_train_default_model, nn_agent_factory
from repro.core import (
    Campaign,
    bar_chart,
    boxplot,
    format_table,
    metrics_by_injector,
    standard_scenarios,
)
from repro.core.faults import INPUT_FAULT_REGISTRY, make_input_fault
from repro.sim.builders import SimulationBuilder


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--runs", type=int, default=6, help="missions per injector")
    parser.add_argument("--agent", choices=("nn", "autopilot"), default="nn")
    parser.add_argument("--seed", type=int, default=777, help="evaluation suite seed")
    parser.add_argument("--save", default=None, help="write run records to this JSON file")
    args = parser.parse_args()

    builder = SimulationBuilder()
    if args.agent == "nn":
        model = get_or_train_default_model()
        agent_factory = nn_agent_factory(model)
    else:
        agent_factory = autopilot_agent_factory()

    scenarios = standard_scenarios(
        args.runs, seed=args.seed, n_npc_vehicles=2, n_pedestrians=2
    )
    injectors = {"none": []}
    for name in INPUT_FAULT_REGISTRY:
        injectors[name] = [make_input_fault(name)]

    campaign = Campaign(scenarios, agent_factory, injectors, builder=builder, verbose=True)
    print(f"Running {campaign.total_runs()} episodes...")
    result = campaign.run()
    if args.save:
        result.save(args.save)
        print(f"Records written to {args.save}")

    metrics = metrics_by_injector(result.records)
    rows = [
        [name, m.n_runs, m.msr, m.vpk, m.apk, m.total_km]
        for name, m in metrics.items()
    ]
    print()
    print(format_table(["injector", "runs", "MSR_%", "VPK", "APK", "km"], rows,
                       title="Figures 2-3: resilience per input fault injector"))
    print()
    print(bar_chart({n: m.msr for n, m in metrics.items()},
                    title="Mission success rate (fig. 2):", unit="%"))
    print()
    print(boxplot({n: m.vpk_per_run for n, m in metrics.items()},
                  title="Violations per km, per-run distribution (fig. 3):"))


if __name__ == "__main__":
    main()
