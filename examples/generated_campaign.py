#!/usr/bin/env python
"""Generative scenarios: a grammar spec, expanded, run and verified.

Loads the golden grammar spec (``examples/specs/generated.json``) — a
scenario *distribution* with choice/uniform/normal/range nodes and a
junction-conflict block — and demonstrates the three guarantees the
grammar form makes:

1. **Deterministic expansion**: building the suite twice from the same
   spec yields byte-identical scenarios;
2. **Backend-independent records**: the campaign run serially and run
   through the filesystem work queue (whose workers re-expand the
   grammar from the archived spec in their own processes) produce
   byte-identical records;
3. **Reactive conflict NPCs**: re-driving one expanded scenario shows
   the scripted NPC's ``run_junction`` behavior actually interrupting —
   its state machine transitions cruise → maneuver when the ego closes
   in.

Exits non-zero on any divergence.

Usage::

    python examples/generated_campaign.py [--workers 1]
"""

import argparse
import sys
import tempfile
from pathlib import Path

from repro.core import (
    Campaign,
    EpisodeDriver,
    format_table,
    load_spec,
    metrics_by_injector,
)
from repro.sim.actors import NPCVehicle

SPEC_PATH = Path(__file__).parent / "specs" / "generated.json"


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workers", type=int, default=1)
    args = parser.parse_args()

    spec = load_spec(SPEC_PATH)
    print(f"spec {spec.name!r} (hash {spec.hash()}) <- {SPEC_PATH.name}")

    # 1. Expansion is deterministic: two independent builds agree.
    first = spec.scenarios.build()
    second = spec.scenarios.build()
    if [s.to_dict() for s in first] != [s.to_dict() for s in second]:
        sys.exit("FAIL: grammar expansion is not deterministic")
    conflicts = [s for s in first if s.npcs]
    if not conflicts:
        sys.exit("FAIL: the generated suite contains no conflict scenarios")
    print(
        f"expanded {len(first)} scenario(s), {len(conflicts)} with scripted "
        f"conflict NPCs; expansion is deterministic"
    )

    # 2. Serial and queue backends produce byte-identical records.  Queue
    # workers rebuild the campaign from the archived spec.json in their
    # own process, so this also proves cross-process expansion identity.
    serial = Campaign.from_spec(spec, verbose=True).run()
    with tempfile.TemporaryDirectory(prefix="avfi-generated-") as tmp:
        import dataclasses

        queued_spec = load_spec(SPEC_PATH)
        queued_spec.execution = dataclasses.replace(
            queued_spec.execution,
            backend="queue",
            queue_dir=str(Path(tmp) / "q"),
            workers=args.workers,
        )
        queued = Campaign.from_spec(queued_spec).run()
    if [r.to_dict() for r in serial.records] != [
        r.to_dict() for r in queued.records
    ]:
        sys.exit("FAIL: serial and queue backends produced different records")
    print(f"serial == queue: {len(serial.records)} identical records")

    # 3. The conflict NPC's behavior demonstrably interrupts: re-drive
    # one expanded scenario and read its state machine transitions.
    driver = EpisodeDriver(
        spec.build_builder(), conflicts[0], spec.agent.build(), injector_name="none"
    )
    record = driver.run()
    behaviors = [
        a.behavior
        for a in driver.world.actors
        if isinstance(a, NPCVehicle) and a.behavior is not None
    ]
    if not behaviors:
        sys.exit("FAIL: conflict scenario spawned no behavior-scripted NPC")
    interrupted = [b for b in behaviors if b.interrupted()]
    if not interrupted:
        sys.exit(
            "FAIL: no NPC behavior interrupted "
            f"(transitions: {[b.transitions for b in behaviors]})"
        )
    for behavior in interrupted:
        print(
            f"npc behavior {behavior.spec.name!r} interrupted: "
            + " -> ".join(
                f"{src}->{dst}@{frame}" for src, dst, frame in behavior.transitions
            )
        )
    print(
        f"re-driven {conflicts[0].name!r}: "
        f"{'success' if record.success else 'failure'} in {record.duration_s:.1f} s"
    )

    rows = [
        [n, m.n_runs, m.msr, m.vpk]
        for n, m in metrics_by_injector(serial.records).items()
    ]
    print()
    print(format_table(["injector", "runs", "MSR_%", "VPK"], rows))
    print("OK")


if __name__ == "__main__":
    main()
