#!/usr/bin/env python
"""Campaign as a service: ``avfi serve`` + a TCP worker + an HTTP client.

This is the full network deployment in one script, every role a real
subprocess speaking the real protocols:

1. ``avfi serve`` starts the standing service — an HTTP control plane in
   front of a TCP broker, state under a temp directory.
2. One ``avfi worker --queue-dir tcp://...`` attaches over the network
   (in production: any machine that can reach the broker port).
3. This script plays the client: it submits ``examples/specs/smoke.json``
   with plain ``urllib``, polls per-episode status until the campaign
   settles, and streams the results back.
4. The streamed JSONL must be byte-identical to a local serial run of
   the same spec — the service invariant ``scripts/ci.sh`` relies on.
5. ``POST /shutdown`` stops the service; every subprocess is reaped
   through the same escalation ladder the queue uses for drain workers.

Usage::

    python examples/service_campaign.py [--spec examples/specs/smoke.json]
                                        [--lease 30]
"""

import argparse
import json
import os
import subprocess
import sys
import tempfile
import time
import urllib.request
from pathlib import Path

import repro
from repro.core import Campaign, format_table, load_spec, metrics_by_injector
from repro.core.outcomes import reap_process


class PopenHandle:
    """Adapts ``subprocess.Popen`` to the ``multiprocessing.Process``
    surface :func:`~repro.core.outcomes.reap_process` escalates over."""

    def __init__(self, proc: subprocess.Popen):
        self.proc = proc
        self.pid = proc.pid

    def is_alive(self) -> bool:
        return self.proc.poll() is None

    def join(self, timeout: float | None = None) -> None:
        try:
            self.proc.wait(timeout=timeout)
        except subprocess.TimeoutExpired:
            pass

    def terminate(self) -> None:
        self.proc.terminate()

    def kill(self) -> None:
        self.proc.kill()


def _env() -> dict:
    env = os.environ.copy()
    src_root = str(Path(repro.__file__).resolve().parent.parent)
    env["PYTHONPATH"] = os.pathsep.join(
        [src_root] + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
    )
    return env


def _call(url: str, method: str = "GET", payload=None):
    data = None
    headers = {}
    if payload is not None:
        data = json.dumps(payload).encode()
        headers["Content-Type"] = "application/json"
    req = urllib.request.Request(url, data=data, headers=headers, method=method)
    with urllib.request.urlopen(req, timeout=30) as resp:
        body = resp.read()
    if resp.headers.get("Content-Type", "").startswith("application/json"):
        return json.loads(body)
    return body


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--spec", default="examples/specs/smoke.json")
    parser.add_argument("--lease", type=float, default=30.0, help="task lease (s)")
    parser.add_argument("--timeout", type=float, default=300.0, help="settle budget (s)")
    args = parser.parse_args()

    spec = load_spec(args.spec)
    print(f"serial reference for {spec.name!r} ...")
    serial = Campaign.from_spec(spec).run()
    expected = "".join(
        json.dumps(r.to_dict()) + "\n" for r in serial.records
    ).encode()

    procs: list[tuple[str, PopenHandle]] = []
    with tempfile.TemporaryDirectory() as tmp:
        ready_file = Path(tmp) / "ready.json"
        serve = PopenHandle(subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve",
                "--state-dir", str(Path(tmp) / "service"),
                "--port", "0",
                "--lease", str(args.lease),
                "--stall-timeout", str(args.timeout),
                "--ready-file", str(ready_file),
            ],
            env=_env(),
        ))
        procs.append(("serve", serve))
        try:
            deadline = time.monotonic() + 60.0
            while not ready_file.exists():
                if time.monotonic() > deadline or not serve.is_alive():
                    raise RuntimeError("avfi serve never became ready")
                time.sleep(0.05)
            endpoints = json.loads(ready_file.read_text())
            url, broker = endpoints["url"], endpoints["broker"]
            print(f"service up: {url}  (broker {broker})")

            worker = PopenHandle(subprocess.Popen(
                [
                    sys.executable, "-m", "repro", "worker",
                    "--queue-dir", broker,
                    "--worker-id", "service-example",
                    "--lease", str(args.lease),
                    "--poll", "0.1",
                    "--idle-timeout", "30",
                ],
                env=_env(),
            ))
            procs.append(("worker", worker))

            # workers=0: the service only coordinates; every episode runs
            # on the worker attached over TCP.
            summary = _call(
                f"{url}/campaigns", "POST",
                {"spec": spec.to_dict(), "workers": 0},
            )
            sub_id = summary["id"]
            print(f"submitted {sub_id} ({summary['name']})")

            deadline = time.monotonic() + args.timeout
            last = None
            while True:
                summary = _call(f"{url}/campaigns/{sub_id}")
                line = f"{summary['state']}  {summary['counts']}"
                if line != last:
                    print(f"  {line}")
                    last = line
                if summary["state"] in ("done", "failed"):
                    break
                if time.monotonic() > deadline:
                    raise RuntimeError(f"campaign never settled: {summary}")
                time.sleep(0.5)
            if summary["state"] != "done":
                raise RuntimeError(f"campaign failed: {summary.get('error')}")

            streamed = _call(f"{url}/campaigns/{sub_id}/results")
            same = streamed == expected
            print(f"streamed results byte-identical to serial run: {same}")

            _call(f"{url}/shutdown", "POST")
            if not same:
                sys.exit(1)
        finally:
            for name, handle in procs:
                how = reap_process(handle, grace_s=10.0, log=print)
                print(f"{name}: {how}")

    rows = [
        [name, m.n_runs, m.msr, round(m.vpk, 3), round(m.apk, 3)]
        for name, m in metrics_by_injector(serial.records).items()
    ]
    print()
    print(format_table(["injector", "runs", "MSR_%", "VPK", "APK"], rows))


if __name__ == "__main__":
    main()
