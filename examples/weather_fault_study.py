#!/usr/bin/env python
"""Factorial study: weather × camera fault interaction (resumable).

The paper motivates data faults with "changes in the external environment
(such as fog or rain)".  This example crosses CARLA-style weather presets
with a camera occlusion fault using :class:`repro.core.Study`: the study
checkpoints every episode to disk, so interrupting it (Ctrl-C) and
re-running resumes where it stopped — the workflow for overnight
fault-injection campaigns.

Usage::

    python examples/weather_fault_study.py [--runs 3]
        [--checkpoint weather_study.jsonl] [--agent autopilot|nn]
"""

import argparse
import json

from repro.agent import autopilot_agent_factory, get_or_train_default_model, nn_agent_factory
from repro.core import Study, format_table, standard_scenarios, summary_frame
from repro.core.faults import SolidOcclusion
from repro.sim.builders import SimulationBuilder

WEATHERS = ["ClearNoon", "HardRainNoon", "FoggyNoon", "Night"]


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--runs", type=int, default=3, help="missions per cell")
    parser.add_argument("--checkpoint", default="weather_study.jsonl")
    parser.add_argument("--agent", choices=("autopilot", "nn"), default="autopilot")
    args = parser.parse_args()

    builder = SimulationBuilder()
    if args.agent == "nn":
        agent_factory = nn_agent_factory(get_or_train_default_model())
    else:
        agent_factory = autopilot_agent_factory()

    all_rows = []
    for weather in WEATHERS:
        scenarios = standard_scenarios(
            args.runs, seed=777, weather=weather, n_npc_vehicles=2, n_pedestrians=2
        )
        study = Study(
            scenarios,
            agent_factory,
            injectors={"none": [], "solid-occ": [SolidOcclusion(size_frac=0.4)]},
            checkpoint_path=f"{args.checkpoint}.{weather}",
            builder=builder,
            verbose=True,
        )
        pending = len(study.pending())
        done = len(study.records)
        print(f"[{weather}] {done} episodes checkpointed, {pending} to run")
        records = study.run()
        for row in summary_frame(records):
            row["weather"] = weather
            all_rows.append(row)

    table_rows = [
        [r["weather"], r["injector"], r["msr_percent"], r["vpk"], r["apk"]]
        for r in all_rows
    ]
    print()
    print(format_table(["weather", "injector", "MSR_%", "VPK", "APK"], table_rows,
                       title="Weather x camera-fault interaction:"))
    print()
    print("Full rows (json):")
    print(json.dumps(all_rows, indent=1))


if __name__ == "__main__":
    main()
