#!/usr/bin/env python
"""AVFI quickstart: inject a camera fault and watch the metrics move.

Runs two short fault-injection episodes with the privileged autopilot (no
training needed, finishes in well under a minute): a fault-free baseline
and the same mission under a solid camera occlusion plus a 20-frame output
delay.  Prints the run records and the aggregate resilience metrics.

Usage::

    python examples/quickstart.py [--seed 3]
"""

import argparse

from repro.agent import autopilot_agent_factory
from repro.core import format_table, metrics_by_injector, run_episode, standard_scenarios
from repro.core.faults import OutputDelay, SolidOcclusion
from repro.sim.builders import SimulationBuilder


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seed", type=int, default=3, help="scenario suite seed")
    args = parser.parse_args()

    print("Generating a mission (grid town, planner-accurate time limit)...")
    scenario = standard_scenarios(1, seed=args.seed, n_npc_vehicles=2, n_pedestrians=2)[0]
    mission = scenario.mission
    print(
        f"  start=({mission.start.position.x:.0f}, {mission.start.position.y:.0f}) "
        f"goal=({mission.goal.x:.0f}, {mission.goal.y:.0f}) "
        f"time limit={mission.time_limit_s:.0f}s"
    )

    builder = SimulationBuilder()
    agent_factory = autopilot_agent_factory()

    records = []
    configs = {
        "none": [],
        "solid-occ+delay": [SolidOcclusion(size_frac=0.4), OutputDelay(20)],
    }
    for name, faults in configs.items():
        print(f"Running episode under injector {name!r}...")
        record = run_episode(
            builder, scenario, agent_factory, faults=faults, injector_name=name,
            harness_seed=1,
        )
        records.append(record)
        print(
            f"  success={record.success} distance={record.distance_km * 1000:.0f} m "
            f"violations={record.n_violations} accidents={record.n_accidents}"
        )

    print()
    rows = [
        [name, m.msr, m.vpk, m.apk, m.ttv_median_s if m.ttv_s else None]
        for name, m in metrics_by_injector(records).items()
    ]
    print(format_table(["injector", "MSR_%", "VPK", "APK", "TTV_s"], rows,
                       title="Resilience metrics (paper §II):"))


if __name__ == "__main__":
    main()
