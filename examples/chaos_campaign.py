#!/usr/bin/env python
"""Self-healing campaign under chaos: poison episodes + a misbehaving broker.

The fault-injection discipline applied to the harness itself.  A queue
campaign runs with two deliberately poisoned grid rows — one episode
that always crashes (:class:`CrashFault`) and one that always hangs
(:class:`HangFault`) — while every broker interaction misbehaves through
a seeded :class:`ChaosBroker` (delivery delays, duplicate deliveries,
claim races, lease storms, dropped releases).  The campaign's
:class:`FaultTolerancePolicy` must absorb all of it:

* the hung episode is killed by the per-episode wall-clock watchdog;
* both poison episodes are quarantined within the failure budget and
  surface on the result's quarantine list — the campaign completes;
* every *other* episode's record is byte-identical to a fault-free
  serial run.

The script exits non-zero if any of that fails — the invariant
``scripts/ci.sh`` relies on.  The broker's ``results.jsonl`` is left in
``--queue-dir`` (when given) so ``avfi report`` can render the
quarantine table from the checkpoint afterwards.

Usage::

    python examples/chaos_campaign.py [--workers 2] [--runs 1]
                                      [--queue-dir DIR] [--timeout 3]
"""

import argparse
import json
import sys
import tempfile
import time
from pathlib import Path

from repro.agent import autopilot_agent_factory
from repro.core import (
    FaultTolerancePolicy,
    ParallelCampaignRunner,
    QueueExecutor,
    quarantine_table,
    standard_scenarios,
)
from repro.core.chaos import CrashFault, HangFault
from repro.core.faults import GaussianNoise
from repro.sim.builders import SimulationBuilder

#: Survivor rows.  The poison rows are appended AFTER these, so the
#: paired seed formula gives survivors identical seeds in both grids.
SURVIVORS = {"none": [], "gaussian": [GaussianNoise(0.08)]}


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workers", type=int, default=2, help="local drain workers")
    parser.add_argument("--runs", type=int, default=1, help="missions per injector")
    parser.add_argument("--seed", type=int, default=777)
    parser.add_argument("--queue-dir", default=None, help="broker dir (default: temp)")
    parser.add_argument(
        "--timeout", type=float, default=3.0, help="per-episode wall-clock budget (s)"
    )
    args = parser.parse_args()

    scenarios = standard_scenarios(
        args.runs, seed=args.seed, n_npc_vehicles=2, n_pedestrians=2
    )
    poison_grid = dict(
        SURVIVORS,
        **{
            "chaos-crash": [CrashFault()],
            "chaos-hang": [HangFault(hang_s=60.0)],
        },
    )
    policy = FaultTolerancePolicy(
        max_attempts=1, timeout_s=args.timeout, failure_budget=2, backoff_s=0.0
    )

    n = len(scenarios) * len(poison_grid)
    print(
        f"{n} episodes ({len(poison_grid)} injectors x {len(scenarios)} "
        f"scenarios), 2 of them poison"
    )

    start = time.perf_counter()
    reference = ParallelCampaignRunner(
        scenarios, autopilot_agent_factory(), SURVIVORS, builder=SimulationBuilder()
    ).run()
    print(f"fault-free serial reference: {time.perf_counter() - start:6.1f} s")

    with tempfile.TemporaryDirectory() as tmp:
        queue_dir = Path(args.queue_dir) if args.queue_dir else Path(tmp) / "broker"
        executor = QueueExecutor(
            queue_dir,
            workers=args.workers,
            lease_s=5.0,
            poll_s=0.1,
            stall_timeout=300,
            chaos=dict(
                seed=11,
                delay_p=0.5, delay_s=0.02,
                duplicate_claim_p=0.3,
                drop_claim_p=0.3,
                drop_heartbeat_p=0.5,
                drop_release_p=0.3,
            ),
        )
        start = time.perf_counter()
        result = ParallelCampaignRunner(
            scenarios, autopilot_agent_factory(), poison_grid,
            builder=SimulationBuilder(), executor=executor, policy=policy,
        ).run()
        print(f"chaos queue campaign       : {time.perf_counter() - start:6.1f} s")

    print()
    print(quarantine_table(result.failures))
    print()

    quarantined = sorted({f.injector for f in result.failures})
    right_quarantine = quarantined == ["chaos-crash", "chaos-hang"]
    print(f"quarantined exactly the poison rows: {right_quarantine}")

    same = [json.dumps(r.to_dict(), sort_keys=True) for r in result.records] == [
        json.dumps(r.to_dict(), sort_keys=True) for r in reference.records
    ]
    print(f"survivor records byte-identical to fault-free serial: {same}")

    if not (right_quarantine and same):
        # scripts/ci.sh relies on this exit code: a lost survivor, a
        # missed quarantine or a diverging record is the regression this
        # smoke must catch.
        sys.exit(1)


if __name__ == "__main__":
    main()
