#!/usr/bin/env python
"""Distributed campaign over the filesystem work queue: coordinator +
real ``avfi worker`` processes, with a forced lease expiry.

The same sweep runs twice — once serially, once sharded through a broker
directory that two ``python -m repro worker`` subprocesses drain (in
production those run on other machines against a shared/NFS path).  To
prove the fault-tolerance story, one task is first claimed by a fake
"ghost" worker that dies immediately: its lease expires, the task is
requeued automatically, and a live worker completes it.  The script
exits non-zero unless the queue-backed result is identical to the serial
one — the invariant ``scripts/ci.sh`` relies on.

Usage::

    python examples/distributed_queue_campaign.py [--workers 2] [--runs 2]
                                                  [--queue-dir DIR] [--lease 5]
"""

import argparse
import os
import subprocess
import sys
import tempfile
import threading
import time
from pathlib import Path

import repro
from repro.agent import autopilot_agent_factory
from repro.core import (
    FilesystemBroker,
    ParallelCampaignRunner,
    QueueExecutor,
    format_table,
    metrics_by_injector,
    standard_scenarios,
)
from repro.core.faults import GaussianNoise, OutputDelay
from repro.sim.builders import SimulationBuilder


def spawn_worker(queue_dir: Path, index: int, lease_s: float) -> subprocess.Popen:
    """One ``avfi worker`` as a real subprocess — exactly what another
    machine would run against the shared broker directory."""
    env = os.environ.copy()
    src_root = str(Path(repro.__file__).resolve().parent.parent)
    env["PYTHONPATH"] = os.pathsep.join(
        [src_root] + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
    )
    return subprocess.Popen(
        [
            sys.executable, "-m", "repro", "worker",
            "--queue-dir", str(queue_dir),
            "--worker-id", f"example-{index}",
            "--lease", str(lease_s),
            "--poll", "0.1",
            "--idle-timeout", "2",
        ],
        env=env,
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workers", type=int, default=2, help="worker subprocesses")
    parser.add_argument("--runs", type=int, default=2, help="missions per injector")
    parser.add_argument("--seed", type=int, default=777)
    parser.add_argument("--queue-dir", default=None, help="broker dir (default: temp)")
    parser.add_argument("--lease", type=float, default=5.0, help="task lease (s)")
    args = parser.parse_args()

    scenarios = standard_scenarios(
        args.runs, seed=args.seed, n_npc_vehicles=2, n_pedestrians=2
    )
    injectors = {
        "none": [],
        "gaussian": [GaussianNoise(0.08)],
        "delay-10": [OutputDelay(10)],
    }

    def build_runner(executor):
        return ParallelCampaignRunner(
            scenarios, autopilot_agent_factory(), injectors,
            builder=SimulationBuilder(), executor=executor,
        )

    n = len(scenarios) * len(injectors)
    print(f"{n} episodes ({len(injectors)} injectors x {len(scenarios)} scenarios)")

    start = time.perf_counter()
    serial = build_runner("serial").run()
    print(f"serial      : {time.perf_counter() - start:6.1f} s")

    with tempfile.TemporaryDirectory() as tmp:
        queue_dir = Path(args.queue_dir) if args.queue_dir else Path(tmp) / "broker"
        executor = QueueExecutor(
            queue_dir, workers=0, lease_s=args.lease, poll_s=0.1, stall_timeout=300
        )
        runner = build_runner(executor)

        # The coordinator publishes tasks and folds results; run it in a
        # thread so this script can orchestrate workers around it.
        outcome: dict = {}

        def coordinate():
            try:
                outcome["result"] = runner.run()
            except BaseException as exc:  # noqa: BLE001
                outcome["error"] = exc

        start = time.perf_counter()
        coordinator = threading.Thread(target=coordinate, daemon=True)
        coordinator.start()

        broker = FilesystemBroker(queue_dir)
        # A re-used --queue-dir whose checkpoint already completes the
        # grid publishes nothing: the coordinator returns straight from
        # the checkpoint, so don't wait for tasks that will never appear.
        while not broker._list(broker.tasks_dir) and coordinator.is_alive():
            time.sleep(0.01)

        # Forced lease expiry: a ghost worker claims one task with a tiny
        # lease and dies on the spot.  Nobody heartbeats it, so it must
        # requeue and complete anyway.
        ghost_claim = broker.claim("ghost-dead-worker", lease_s=0.5)
        if ghost_claim is not None:
            print(f"ghost worker claimed {ghost_claim.name} and died; lease 0.5 s")
            workers = [spawn_worker(queue_dir, i, args.lease) for i in range(args.workers)]
        else:
            print("nothing pending (campaign already complete in --queue-dir)")
            workers = []
        coordinator.join(timeout=600)
        for proc in workers:
            proc.wait(timeout=120)
        elapsed = time.perf_counter() - start

        if coordinator.is_alive() or "error" in outcome:
            print(f"queue campaign failed: {outcome.get('error', 'coordinator hung')}")
            sys.exit(1)
        parallel = outcome["result"]
        requeued_done = (
            ghost_claim is None
            or ghost_claim.task.identity() in broker.result_identities()
        )
        print(f"{args.workers:2d} workers  : {elapsed:6.1f} s  (+ serial reference)")
        if ghost_claim is not None:
            print(f"ghost-claimed task requeued and completed: {requeued_done}")

        same = [r.to_dict() for r in serial.records] == [
            r.to_dict() for r in parallel.records
        ]
        print(f"records identical across executors: {same}")
        if not (same and requeued_done):
            # scripts/ci.sh relies on this exit code: executor divergence
            # or a lost lease is the regression this smoke must catch.
            sys.exit(1)

    rows = [
        [name, m.n_runs, m.msr, round(m.vpk, 3), round(m.apk, 3)]
        for name, m in metrics_by_injector(parallel.records).items()
    ]
    print()
    print(format_table(["injector", "runs", "MSR_%", "VPK", "APK"], rows))


if __name__ == "__main__":
    main()
