#!/usr/bin/env python
"""Parallel campaign execution: the same sweep, N worker processes.

Runs a small input-fault campaign twice — once serially, once on a
process pool — times both, and verifies the records are identical (the
runner's core guarantee: worker count never changes results).  With a
checkpoint path the run is also resumable: interrupt it and re-run, and
only the missing episodes execute.

Usage::

    python examples/parallel_campaign.py [--workers 4] [--runs 4]
                                         [--agent autopilot|nn]
                                         [--checkpoint out.jsonl]
"""

import argparse
import sys
import time
from pathlib import Path

from repro.agent import autopilot_agent_factory, get_or_train_default_model, nn_agent_factory
from repro.core import (
    ParallelCampaignRunner,
    format_table,
    metrics_by_injector,
    standard_scenarios,
)
from repro.core.faults import GaussianNoise, OutputDelay, SolidOcclusion
from repro.sim.builders import SimulationBuilder


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workers", type=int, default=4, help="worker processes")
    parser.add_argument("--runs", type=int, default=4, help="missions per injector")
    parser.add_argument("--agent", choices=("nn", "autopilot"), default="autopilot")
    parser.add_argument("--seed", type=int, default=777)
    parser.add_argument("--checkpoint", default=None, help="JSONL checkpoint (resumable)")
    args = parser.parse_args()

    if args.agent == "nn":
        agent_factory = nn_agent_factory(get_or_train_default_model())
    else:
        agent_factory = autopilot_agent_factory()

    scenarios = standard_scenarios(
        args.runs, seed=args.seed, n_npc_vehicles=2, n_pedestrians=2
    )
    injectors = {
        "none": [],
        "gaussian": [GaussianNoise(0.08)],
        "solid-occ": [SolidOcclusion(size_frac=0.3)],
        "delay-10": [OutputDelay(10)],
    }

    def build_runner(workers, executor, checkpoint=None):
        return ParallelCampaignRunner(
            scenarios,
            agent_factory,
            injectors,
            builder=SimulationBuilder(),
            workers=workers,
            executor=executor,
            checkpoint_path=checkpoint,
            verbose=checkpoint is not None,
        )

    n = len(scenarios) * len(injectors)
    print(f"{n} episodes ({len(injectors)} injectors x {len(scenarios)} scenarios)")

    # Resuming an existing checkpoint skips the serial comparison run —
    # the point of a resume is to execute only the missing episodes.
    resuming = args.checkpoint is not None and Path(args.checkpoint).exists()
    serial = None
    if not resuming:
        start = time.perf_counter()
        serial = build_runner(1, "serial").run()
        serial_s = time.perf_counter() - start
        print(f"serial      : {serial_s:6.1f} s  ({n / serial_s:.2f} episodes/s)")

    start = time.perf_counter()
    parallel = build_runner(args.workers, "process", args.checkpoint).run()
    parallel_s = time.perf_counter() - start
    print(
        f"{args.workers:2d} workers  : {parallel_s:6.1f} s  "
        f"({n / parallel_s:.2f} episodes/s"
        + (f", {serial_s / parallel_s:.2f}x)" if serial is not None else ")")
    )

    if serial is not None:
        same = [r.to_dict() for r in serial.records] == [
            r.to_dict() for r in parallel.records
        ]
        print(f"records identical across executors: {same}")
        if not same:
            # scripts/ci.sh relies on this exit code: a divergence between
            # executors is the one regression this smoke must catch.
            sys.exit(1)

    rows = [
        [name, m.n_runs, m.msr, round(m.vpk, 3), round(m.apk, 3)]
        for name, m in metrics_by_injector(parallel.records).items()
    ]
    print()
    print(format_table(["injector", "runs", "MSR_%", "VPK", "APK"], rows))


if __name__ == "__main__":
    main()
