"""Tests for experiment orchestration (sweeps, studies) and task tiers."""

import json

import numpy as np
import pytest

from repro.agent import autopilot_agent_factory
from repro.agent.planner import Command, RoutePlanner
from repro.core import Study, summary_frame, sweep
from repro.core.faults import GaussianNoise, OutputDelay
from repro.sim import Task, TASK_SPECS, make_task_scenarios
from repro.sim.builders import SimulationBuilder
from repro.sim.render import CameraModel
from repro.sim.town import GridTownConfig, build_grid_town

TOWN = GridTownConfig(rows=2, cols=3)


@pytest.fixture(scope="module")
def builder():
    return SimulationBuilder(camera=CameraModel(width=24, height=16), with_lidar=False)


class TestSweep:
    def test_builds_named_injectors(self):
        injectors = sweep(lambda k: OutputDelay(int(k)), [5, 10], name_format="delay-{value:g}")
        assert list(injectors) == ["none", "delay-5", "delay-10"]
        assert injectors["none"] == []
        assert injectors["delay-5"][0].delay_frames == 5

    def test_without_baseline(self):
        injectors = sweep(lambda s: GaussianNoise(s), [0.1], include_baseline=False)
        assert "none" not in injectors

    def test_each_value_gets_fresh_instance(self):
        injectors = sweep(lambda s: GaussianNoise(s), [0.1, 0.2])
        a = injectors["0.1"][0]
        b = injectors["0.2"][0]
        assert a is not b
        assert a.sigma != b.sigma


class TestStudy:
    def _scenarios(self):
        from repro.core import standard_scenarios

        return standard_scenarios(
            2, seed=9, town_config=TOWN, min_distance=60, max_distance=160
        )

    def test_validation(self, builder):
        with pytest.raises(ValueError):
            Study([], autopilot_agent_factory(), {"none": []}, builder=builder)
        with pytest.raises(ValueError):
            Study(self._scenarios(), autopilot_agent_factory(), {}, builder=builder)

    def test_run_executes_all(self, builder):
        study = Study(
            self._scenarios(),
            autopilot_agent_factory(),
            {"none": [], "delay": [OutputDelay(8)]},
            builder=builder,
        )
        records = study.run()
        assert len(records) == 4
        assert study.pending() == []
        assert set(study.metrics()) == {"none", "delay"}

    def test_checkpoint_resume_skips_done(self, builder, tmp_path):
        path = tmp_path / "study.jsonl"
        scenarios = self._scenarios()
        study1 = Study(
            scenarios[:1], autopilot_agent_factory(), {"none": []},
            checkpoint_path=path, builder=builder,
        )
        study1.run()
        assert path.exists()
        assert len(path.read_text().splitlines()) == 1

        # A second study over a superset resumes: only the new work runs.
        study2 = Study(
            scenarios, autopilot_agent_factory(), {"none": []},
            checkpoint_path=path, builder=builder,
        )
        assert len(study2.records) == 1  # loaded from checkpoint
        assert len(study2.pending()) == 1
        records = study2.run()
        assert len(records) == 2
        assert len(path.read_text().splitlines()) == 2

    def test_checkpoint_rows_are_valid_records(self, builder, tmp_path):
        path = tmp_path / "study.jsonl"
        study = Study(
            self._scenarios()[:1], autopilot_agent_factory(), {"none": []},
            checkpoint_path=path, builder=builder,
        )
        study.run()
        row = json.loads(path.read_text().splitlines()[0])
        assert row["injector"] == "none"
        assert "distance_km" in row


class TestSummaryFrame:
    def test_rows_per_injector(self, builder):
        from repro.core import standard_scenarios

        scenarios = standard_scenarios(
            1, seed=9, town_config=TOWN, min_distance=60, max_distance=160
        )
        study = Study(
            scenarios, autopilot_agent_factory(),
            {"none": [], "delay": [OutputDelay(8)]}, builder=builder,
        )
        rows = summary_frame(study.run())
        assert [r["injector"] for r in rows] == ["none", "delay"]
        assert all("msr_percent" in r and "vpk" in r for r in rows)
        assert json.dumps(rows)  # fully serialisable


class TestTaskTiers:
    def test_specs_cover_all_tasks(self):
        assert set(TASK_SPECS) == set(Task)

    @staticmethod
    def _lr_turns(route):
        turning = {Command.LEFT, Command.RIGHT}
        turns, prev = 0, False
        for c in route.commands:
            now = c in turning
            if now and not prev:
                turns += 1
            prev = now
        return turns

    def test_straight_has_no_turns(self):
        scenarios = make_task_scenarios(Task.STRAIGHT, 3, seed=1, town_config=TOWN)
        town = build_grid_town(TOWN)
        planner = RoutePlanner(town)
        for scn in scenarios:
            route = planner.plan(
                scn.mission.start.position, scn.mission.goal,
                start_yaw=scn.mission.start.yaw,
            )
            assert self._lr_turns(route) == 0, scn.name

    def test_one_turn_has_exactly_one(self):
        scenarios = make_task_scenarios(Task.ONE_TURN, 3, seed=2, town_config=TOWN)
        town = build_grid_town(TOWN)
        planner = RoutePlanner(town)
        for scn in scenarios:
            route = planner.plan(
                scn.mission.start.position, scn.mission.goal,
                start_yaw=scn.mission.start.yaw,
            )
            assert self._lr_turns(route) == 1, scn.name

    def test_dynamic_navigation_has_traffic(self):
        scenarios = make_task_scenarios(
            Task.DYNAMIC_NAVIGATION, 2, seed=3, town_config=TOWN
        )
        for scn in scenarios:
            assert scn.n_npc_vehicles > 0
            assert scn.n_pedestrians > 0

    def test_accepts_string_task(self):
        scenarios = make_task_scenarios("straight", 1, seed=4, town_config=TOWN)
        assert scenarios[0].name.startswith("straight")

    def test_rejects_unknown_task(self):
        with pytest.raises(ValueError):
            make_task_scenarios("teleportation", 1, town_config=TOWN)

    def test_deterministic(self):
        a = make_task_scenarios(Task.NAVIGATION, 2, seed=5, town_config=TOWN)
        b = make_task_scenarios(Task.NAVIGATION, 2, seed=5, town_config=TOWN)
        assert [s.mission.goal for s in a] == [s.mission.goal for s in b]
