"""Tests for checkpointed resume of interrupted (parallel) studies."""

import json

import pytest

from repro.agent import autopilot_agent_factory
from repro.core import ParallelCampaignRunner, Study, standard_scenarios
from repro.core.faults import OutputDelay
from repro.sim.builders import SimulationBuilder
from repro.sim.render import CameraModel
from repro.sim.town import GridTownConfig

TOWN = GridTownConfig(rows=2, cols=3)
INJECTORS = {"none": [], "delay": [OutputDelay(8)]}


@pytest.fixture(scope="module")
def builder():
    return SimulationBuilder(camera=CameraModel(width=24, height=16), with_lidar=False)


@pytest.fixture(scope="module")
def scenarios():
    return standard_scenarios(2, seed=9, town_config=TOWN, min_distance=60, max_distance=160)


class _Killed(RuntimeError):
    """Simulated hard stop (the overnight machine died)."""


class _ExplodingFactory:
    """Picklable agent factory that fails on one scenario's mission.

    Delegates ``config_signature`` to the wrapped autopilot factory: the
    failure models a *transient* bug around the same agent, so records
    it completed must still satisfy a later plain-autopilot grid (a
    genuinely different agent would — correctly — invalidate them; see
    test_spec.py's agent-change invalidation tests).
    """

    def __init__(self, bad_scenario):
        self.bad_goal = (bad_scenario.mission.goal.x, bad_scenario.mission.goal.y)
        self.inner = autopilot_agent_factory()

    def __call__(self, handles, mission):
        if (mission.goal.x, mission.goal.y) == self.bad_goal:
            raise RuntimeError("boom")
        return self.inner(handles, mission)

    def config_signature(self):
        return self.inner.config_signature()


def _kill_after(n):
    state = {"done": 0}

    def on_record(task, record):
        state["done"] += 1
        if state["done"] >= n:
            raise _Killed(f"killed after {n} episodes")

    return on_record


def _identities(path):
    rows = [json.loads(line) for line in path.read_text().splitlines()]
    return [(r["injector"], r["scenario"], r["seed"]) for r in rows]


class TestStudyResume:
    def test_killed_parallel_study_resumes_exactly_once(self, builder, scenarios, tmp_path):
        """Kill a checkpointed parallel study mid-run; resume finishes the
        remaining episodes exactly once with no duplicate records."""
        checkpoint = tmp_path / "study.jsonl"

        # Ground truth: an uninterrupted serial study of the same grid.
        reference = Study(
            scenarios, autopilot_agent_factory(), INJECTORS,
            checkpoint_path=tmp_path / "reference.jsonl", builder=builder,
        ).run()

        # First attempt dies after 2 of 4 episodes (checkpoint written
        # before the kill lands, as a real mid-run SIGKILL would leave it).
        interrupted = ParallelCampaignRunner(
            scenarios, autopilot_agent_factory(), INJECTORS, builder=builder,
            workers=2, executor="process", checkpoint_path=checkpoint,
            on_record=_kill_after(2),
        )
        with pytest.raises(_Killed):
            interrupted.run()
        survived = _identities(checkpoint)
        assert len(survived) == 2

        # Resume through the Study API with a parallel pool.
        study = Study(
            scenarios, autopilot_agent_factory(), INJECTORS,
            checkpoint_path=checkpoint, builder=builder,
        )
        assert len(study.records) == 2
        assert len(study.pending()) == 2
        records = study.run(workers=2)

        identities = _identities(checkpoint)
        assert len(identities) == 4
        assert len(set(identities)) == 4, "no episode may run twice"
        assert set(identities[:2]) == set(survived), "resume must keep prior rows"
        assert study.pending() == []

        # Same outcomes as the uninterrupted study, row for row.
        key = lambda r: (r.injector, r.scenario, r.seed)
        assert {key(r): r.to_dict() for r in records} == {
            key(r): r.to_dict() for r in reference
        }

    def test_study_parallel_matches_serial(self, builder, scenarios, tmp_path):
        serial = Study(
            scenarios, autopilot_agent_factory(), INJECTORS,
            checkpoint_path=tmp_path / "serial.jsonl", builder=builder,
        ).run()
        parallel = Study(
            scenarios, autopilot_agent_factory(), INJECTORS,
            checkpoint_path=tmp_path / "parallel.jsonl", builder=builder,
        ).run(workers=2)
        key = lambda r: (r.injector, r.scenario, r.seed)
        assert {key(r): r.to_dict() for r in serial} == {
            key(r): r.to_dict() for r in parallel
        }

    def test_unfingerprinted_checkpoint_rows_rerun_without_double_count(
        self, builder, scenarios, tmp_path
    ):
        """Rows written before fingerprinting (or by another suite) must
        re-run AND stay out of the study's records/metrics — not both
        count and re-execute."""
        checkpoint = tmp_path / "prefp.jsonl"
        done = Study(
            scenarios[:1], autopilot_agent_factory(), {"none": []},
            checkpoint_path=checkpoint, builder=builder,
        ).run()
        # Strip the fingerprint, simulating a pre-fingerprint checkpoint.
        row = json.loads(checkpoint.read_text())
        del row["config_fingerprint"]
        checkpoint.write_text(json.dumps(row) + "\n")

        study = Study(
            scenarios[:1], autopilot_agent_factory(), {"none": []},
            checkpoint_path=checkpoint, builder=builder,
        )
        assert study.records == []  # stale row is journal, not results
        assert len(study.pending()) == 1
        records = study.run(workers=2)
        assert len(records) == 1
        assert study.metrics()["none"].n_runs == 1
        assert records[0].to_dict() == done[0].to_dict()

    def test_rerun_without_checkpoint_does_not_reexecute(self, builder, scenarios):
        study = Study(
            scenarios[:1], autopilot_agent_factory(), {"none": []}, builder=builder
        )
        first = study.run()
        again = study.run()
        assert [r.to_dict() for r in again] == [r.to_dict() for r in first]
        assert len(again) == 1

    def test_checkpoint_from_different_suite_never_matches(self, builder, scenarios, tmp_path):
        """Scenario names/seeds repeat across suites (scn-0…); the suite
        fingerprint must keep a stale checkpoint from masquerading as
        results for a different suite."""
        checkpoint = tmp_path / "stale.jsonl"
        ParallelCampaignRunner(
            scenarios, autopilot_agent_factory(), {"none": []}, builder=builder,
            executor="serial", checkpoint_path=checkpoint,
        ).run()

        other_suite = standard_scenarios(
            2, seed=10, town_config=TOWN, min_distance=60, max_distance=160
        )
        resumed = ParallelCampaignRunner(
            other_suite, autopilot_agent_factory(), {"none": []}, builder=builder,
            executor="serial", checkpoint_path=checkpoint,
        )
        assert [s.name for s in other_suite] == [s.name for s in scenarios]
        assert len(resumed.pending()) == 2, "stale suite rows must not satisfy the grid"

    def test_ml_fault_checkpoint_resume_stable(self, builder, scenarios, tmp_path):
        """Stateful faults (WeightBitFlip draws per-episode sites) must
        fingerprint identically before, during and after a run — else
        resume re-executes ML-fault studies forever."""
        from repro.agent import nn_agent_factory
        from repro.agent.ilcnn import ILCNN, ILCNNConfig
        from repro.core.faults import WeightBitFlip

        tiny = ILCNNConfig(input_hw=(16, 24), conv_channels=(4, 6, 6), trunk_dim=16,
                           speed_dim=4, branch_hidden=8, dropout=0.0)
        model = ILCNN(tiny)
        model.set_training(False)
        checkpoint = tmp_path / "ml.jsonl"

        study = Study(
            scenarios[:1], nn_agent_factory(model), {"bitflip": [WeightBitFlip()]},
            checkpoint_path=checkpoint, builder=builder,
        )
        study.run()
        assert study.pending() == [], "mutated fault must still match its record"

        fresh = Study(
            scenarios[:1], nn_agent_factory(model), {"bitflip": [WeightBitFlip()]},
            checkpoint_path=checkpoint, builder=builder,
        )
        assert len(fresh.records) == 1
        assert fresh.pending() == [], "pristine fault must match the checkpoint"

    def test_retuned_fault_params_invalidate_checkpoint(self, builder, scenarios, tmp_path):
        """Same injector name, different fault parameters: the config
        fingerprint must force a re-run instead of serving stale records."""
        checkpoint = tmp_path / "retuned.jsonl"
        ParallelCampaignRunner(
            scenarios[:1], autopilot_agent_factory(), {"delay": [OutputDelay(8)]},
            builder=builder, executor="serial", checkpoint_path=checkpoint,
        ).run()

        retuned = ParallelCampaignRunner(
            scenarios[:1], autopilot_agent_factory(), {"delay": [OutputDelay(30)]},
            builder=builder, executor="serial", checkpoint_path=checkpoint,
        )
        assert len(retuned.pending()) == 1, "retuned fault must not match old rows"
        unchanged = ParallelCampaignRunner(
            scenarios[:1], autopilot_agent_factory(), {"delay": [OutputDelay(8)]},
            builder=builder, executor="serial", checkpoint_path=checkpoint,
        )
        assert unchanged.pending() == []

    def test_truncated_final_checkpoint_line_is_dropped(self, builder, scenarios, tmp_path):
        """A hard kill can cut the last JSONL append mid-line; resume must
        drop the fragment and re-run just that episode."""
        checkpoint = tmp_path / "truncated.jsonl"
        full = ParallelCampaignRunner(
            scenarios, autopilot_agent_factory(), INJECTORS, builder=builder,
            executor="serial", checkpoint_path=checkpoint,
        ).run()
        lines = checkpoint.read_text().splitlines()
        checkpoint.write_text("\n".join(lines[:3]) + "\n" + lines[3][: len(lines[3]) // 2])

        resumed = ParallelCampaignRunner(
            scenarios, autopilot_agent_factory(), INJECTORS, builder=builder,
            executor="serial", checkpoint_path=checkpoint,
        )
        assert len(resumed.pending()) == 1
        result = resumed.run()
        assert [r.to_dict() for r in result.records] == [r.to_dict() for r in full.records]

    def test_corrupt_interior_checkpoint_line_raises(self, builder, scenarios, tmp_path):
        checkpoint = tmp_path / "corrupt.jsonl"
        checkpoint.write_text('{"not json\n{"also": "not a record"}\n')
        with pytest.raises(ValueError, match="corrupt checkpoint"):
            ParallelCampaignRunner(
                scenarios, autopilot_agent_factory(), INJECTORS, builder=builder,
                checkpoint_path=checkpoint,
            )

    def test_worker_error_keeps_completed_records(self, builder, scenarios, tmp_path):
        """One failing episode must not discard finished work: completed
        episodes are checkpointed, the error propagates, and a resume with
        the fault fixed only runs what's missing."""
        checkpoint = tmp_path / "explode.jsonl"
        broken = ParallelCampaignRunner(
            scenarios, _ExplodingFactory(scenarios[1]), INJECTORS, builder=builder,
            workers=2, executor="process", checkpoint_path=checkpoint,
        )
        with pytest.raises(RuntimeError, match="boom"):
            broken.run()
        survivors = _identities(checkpoint)
        assert survivors, "completed episodes must reach the checkpoint"
        assert all(scn != scenarios[1].name for _, scn, _ in survivors)

        reference = ParallelCampaignRunner(
            scenarios, autopilot_agent_factory(), INJECTORS, builder=builder,
            executor="serial",
        ).run()
        resumed = ParallelCampaignRunner(
            scenarios, autopilot_agent_factory(), INJECTORS, builder=builder,
            workers=2, executor="process", checkpoint_path=checkpoint,
        )
        assert len(resumed.pending()) == 4 - len(survivors)
        result = resumed.run()
        assert [r.to_dict() for r in result.records] == [
            r.to_dict() for r in reference.records
        ]
        assert len(set(_identities(checkpoint))) == 4

    def test_runner_resume_returns_full_grid_in_order(self, builder, scenarios, tmp_path):
        """A resumed runner's result is grid-ordered regardless of which
        rows came from the checkpoint and which ran fresh."""
        checkpoint = tmp_path / "grid.jsonl"
        full = ParallelCampaignRunner(
            scenarios, autopilot_agent_factory(), INJECTORS, builder=builder,
            executor="serial", checkpoint_path=checkpoint,
        ).run()

        # Drop half the checkpoint (keep rows 1 and 2, lose 0 and 3).
        lines = checkpoint.read_text().splitlines()
        checkpoint.write_text("\n".join(lines[1:3]) + "\n")

        resumed = ParallelCampaignRunner(
            scenarios, autopilot_agent_factory(), INJECTORS, builder=builder,
            workers=2, executor="process", checkpoint_path=checkpoint,
        )
        assert len(resumed.pending()) == 2
        result = resumed.run()
        assert [r.to_dict() for r in result.records] == [r.to_dict() for r in full.records]
