"""Durability tests for the JSONL checkpoint append path.

The checkpoint is a multi-writer, crash-prone artifact once the queue
backend shards a campaign across machines: several workers append to one
file, and any of them can be SIGKILLed at any instruction.  These tests
pin the two guarantees :func:`repro.core.runner.append_jsonl_line`
provides — concurrent appends never interleave partial lines, and a hard
kill never leaves a torn record that blocks resume.
"""

import json
import multiprocessing
import os
import signal
import time

from repro.agent import autopilot_agent_factory
from repro.core import ParallelCampaignRunner, standard_scenarios
from repro.core.faults import OutputDelay
from repro.core.runner import (
    append_jsonl_line,
    load_checkpoint_records,
    repair_jsonl_tail,
)
from repro.sim.builders import SimulationBuilder
from repro.sim.render import CameraModel
from repro.sim.town import GridTownConfig

TOWN = GridTownConfig(rows=2, cols=3)
INJECTORS = {"none": [], "delay": [OutputDelay(8)]}


def _tiny_builder():
    return SimulationBuilder(camera=CameraModel(width=24, height=16), with_lidar=False)


def _scenarios():
    return standard_scenarios(2, seed=9, town_config=TOWN, min_distance=60, max_distance=160)


def _append_many(path, writer, count):
    # Payload long enough that a stdio-buffered writer would regularly
    # split it across flushes; one append_jsonl_line call per row.
    for i in range(count):
        append_jsonl_line(path, {"writer": writer, "row": i, "pad": "x" * 300})


def _run_checkpointed_campaign(checkpoint):
    runner = ParallelCampaignRunner(
        _scenarios(), autopilot_agent_factory(), INJECTORS,
        builder=_tiny_builder(), executor="serial", checkpoint_path=checkpoint,
    )
    runner.run()


class TestAtomicAppend:
    def test_single_complete_line_per_append(self, tmp_path):
        path = tmp_path / "a.jsonl"
        append_jsonl_line(path, {"k": 1})
        append_jsonl_line(path, {"k": 2})
        text = path.read_text()
        assert text.endswith("\n")
        assert [json.loads(line)["k"] for line in text.splitlines()] == [1, 2]

    def test_concurrent_appenders_never_interleave(self, tmp_path):
        """Two processes hammering one checkpoint: every line must be a
        complete record from exactly one writer — the failure mode of the
        old buffered ``fh.write`` was permanent interleaved corruption."""
        path = tmp_path / "shared.jsonl"
        count = 150
        procs = [
            multiprocessing.Process(target=_append_many, args=(path, w, count))
            for w in ("a", "b")
        ]
        for p in procs:
            p.start()
        for p in procs:
            p.join(timeout=60)
            assert p.exitcode == 0
        lines = path.read_text().splitlines()
        assert len(lines) == 2 * count
        rows = [json.loads(line) for line in lines]  # raises on any torn line
        by_writer = {"a": set(), "b": set()}
        for row in rows:
            by_writer[row["writer"]].add(row["row"])
        assert by_writer == {"a": set(range(count)), "b": set(range(count))}


class TestForeignSchemaRows:
    def test_loader_skips_rows_that_are_not_records(self, tmp_path):
        """A valid-JSON row with the wrong keys (written by another repro
        version into a shared queue checkpoint) is journal noise: skipped
        by the loader, same as the queue-side reader — not a crash at
        coordinator init."""
        from repro.core.campaign import RunRecord

        path = tmp_path / "mixed.jsonl"
        good = RunRecord(
            scenario="s", injector="none", seed=0, success=True, frames=10,
            duration_s=1.0, distance_km=0.5, time_limit_s=60.0,
        )
        append_jsonl_line(path, good.to_dict())
        append_jsonl_line(path, {"schema_version": 2, "episode": "future-format"})
        append_jsonl_line(path, good.to_dict() | {"seed": 1})

        loaded = load_checkpoint_records(path)
        assert [(r.scenario, r.seed) for r in loaded] == [("s", 0), ("s", 1)]


class TestTornTailRepair:
    def test_append_after_torn_tail_does_not_glue(self, tmp_path):
        """The latent bug: a torn final line merely *ignored* at load
        time gets glued to the next append, turning one recoverable tear
        into a permanently corrupt interior line.  Repair makes the drop
        physical before appends resume."""
        path = tmp_path / "torn.jsonl"
        append_jsonl_line(path, {"k": 1})
        append_jsonl_line(path, {"k": 2})
        whole = path.read_text()
        torn = whole[:-4]  # cut into the final record, keep line 1 whole
        assert "\n" in torn
        path.write_text(torn)

        dropped = repair_jsonl_tail(path)
        assert dropped == len(torn) - torn.rfind("\n") - 1 > 0
        append_jsonl_line(path, {"k": 3})
        rows = [json.loads(line) for line in path.read_text().splitlines()]
        assert [row["k"] for row in rows] == [1, 3]

    def test_repair_noops_on_clean_missing_and_empty_files(self, tmp_path):
        path = tmp_path / "clean.jsonl"
        assert repair_jsonl_tail(path) == 0  # missing
        path.write_text("")
        assert repair_jsonl_tail(path) == 0  # empty
        append_jsonl_line(path, {"k": 1})
        assert repair_jsonl_tail(path) == 0  # ends with newline
        assert json.loads(path.read_text()) == {"k": 1}

    def test_fragment_only_file_truncates_to_empty(self, tmp_path):
        path = tmp_path / "frag.jsonl"
        path.write_text('{"half')
        assert repair_jsonl_tail(path) == 6
        assert path.read_bytes() == b""

    def test_runner_resume_after_tear_leaves_parseable_checkpoint(self, tmp_path):
        """End-to-end regression: tear the checkpoint, resume (which
        appends the re-run episode), then resume AGAIN — the second
        resume used to die with 'corrupt checkpoint' on the glued line."""
        checkpoint = tmp_path / "campaign.jsonl"
        full = ParallelCampaignRunner(
            _scenarios(), autopilot_agent_factory(), INJECTORS,
            builder=_tiny_builder(), executor="serial", checkpoint_path=checkpoint,
        ).run()
        lines = checkpoint.read_text().splitlines()
        checkpoint.write_text("\n".join(lines[:-1]) + "\n" + lines[-1][:25])

        resumed = ParallelCampaignRunner(
            _scenarios(), autopilot_agent_factory(), INJECTORS,
            builder=_tiny_builder(), executor="serial", checkpoint_path=checkpoint,
        )
        assert len(resumed.pending()) == 1
        resumed.run()

        again = ParallelCampaignRunner(  # would raise before the fix
            _scenarios(), autopilot_agent_factory(), INJECTORS,
            builder=_tiny_builder(), executor="serial", checkpoint_path=checkpoint,
        )
        assert again.pending() == []
        assert [r.to_dict() for r in again.run().records] == [
            r.to_dict() for r in full.records
        ]


class TestKillMidWrite:
    def test_sigkilled_campaign_leaves_resumable_checkpoint(self, tmp_path):
        """Kill a checkpointing campaign process with SIGKILL as soon as
        it starts appending; every surviving line must parse and a resume
        must complete the grid identically to an uninterrupted run."""
        reference = ParallelCampaignRunner(
            _scenarios(), autopilot_agent_factory(), INJECTORS,
            builder=_tiny_builder(), executor="serial",
        ).run()

        checkpoint = tmp_path / "killed.jsonl"
        victim = multiprocessing.Process(
            target=_run_checkpointed_campaign, args=(checkpoint,), daemon=True
        )
        victim.start()
        deadline = time.monotonic() + 120
        while time.monotonic() < deadline:
            if checkpoint.exists() and checkpoint.stat().st_size > 0:
                break
            if not victim.is_alive():
                break
            time.sleep(0.001)
        if victim.is_alive():
            os.kill(victim.pid, signal.SIGKILL)
        victim.join(timeout=30)

        # Durability: whatever survived the kill is whole lines only.
        survivors = load_checkpoint_records(checkpoint)  # raises on interior tears
        for line in checkpoint.read_text().splitlines():
            json.loads(line)
        assert len(survivors) >= 1, "fsync'd record must survive the kill"

        resumed = ParallelCampaignRunner(
            _scenarios(), autopilot_agent_factory(), INJECTORS,
            builder=_tiny_builder(), executor="serial", checkpoint_path=checkpoint,
        )
        assert len(resumed.pending()) == len(reference.records) - len(survivors)
        result = resumed.run()
        assert [r.to_dict() for r in result.records] == [
            r.to_dict() for r in reference.records
        ]
        identities = [
            (r.injector, r.scenario, r.seed)
            for r in load_checkpoint_records(checkpoint)
        ]
        assert len(set(identities)) == len(identities), "no episode may run twice"
