"""Tests for the network broker (repro.core.netqueue).

The generic Broker semantics are pinned by the conformance suite
(``test_broker_conformance.py``); this module covers what is specific to
the *transport*: the length-prefixed frame protocol, the reconnecting
client, and the hard acceptance invariants — a TCP campaign (with a
worker SIGKILLed mid-episode, and under seeded network chaos) produces a
``CampaignResult`` byte-identical to a serial run.
"""

import multiprocessing
import os
import pickle
import signal
import socket
import struct
import threading
import time

import pytest

from repro.agent import autopilot_agent_factory
from repro.core import (
    FilesystemBroker,
    ParallelCampaignRunner,
    QueueExecutor,
    run_worker,
    standard_scenarios,
)
from repro.core.faults import OutputDelay
from repro.core.netqueue import (
    BrokerError,
    BrokerServer,
    FrameError,
    TcpBroker,
    encode_frame,
    is_broker_url,
    make_broker,
    parse_tcp_url,
    recv_frame,
    send_frame,
)
from repro.sim.builders import SimulationBuilder
from repro.sim.render import CameraModel
from repro.sim.town import GridTownConfig

TOWN = GridTownConfig(rows=2, cols=3)
INJECTORS = {"none": [], "delay": [OutputDelay(8)]}

#: Every chaos dial lit at once: reordering delays, pre-send drops,
#: torn frames, lost responses (at-least-once duplicates), and
#: post-success reconnect storms.
CHAOS = dict(
    seed=1234,
    delay_p=0.2,
    delay_s=0.01,
    drop_before_p=0.1,
    drop_after_p=0.1,
    partial_frame_p=0.1,
    reconnect_p=0.2,
)


@pytest.fixture(scope="module")
def builder():
    return SimulationBuilder(camera=CameraModel(width=24, height=16), with_lidar=False)


@pytest.fixture(scope="module")
def scenarios():
    return standard_scenarios(2, seed=9, town_config=TOWN, min_distance=60, max_distance=160)


def _runner(builder, scenarios, injectors=INJECTORS, **kw):
    return ParallelCampaignRunner(
        scenarios, autopilot_agent_factory(), injectors, builder=builder, **kw
    )


@pytest.fixture(scope="module")
def serial_dicts(builder, scenarios):
    """The serial ground truth every acceptance test compares against."""
    return [r.to_dict() for r in _runner(builder, scenarios).run().records]


def _queue_executor(address, **kw):
    kw.setdefault("lease_s", 10.0)
    kw.setdefault("poll_s", 0.05)
    kw.setdefault("stall_timeout", 120.0)
    return QueueExecutor(address, **kw)


def _dicts(result):
    return [r.to_dict() for r in result.records]


def _spawn_worker(address, worker_id, lease_s=1.5, idle_timeout=1.0, chaos=None):
    proc = multiprocessing.Process(
        target=run_worker,
        kwargs=dict(
            queue_dir=str(address),
            worker_id=worker_id,
            lease_s=lease_s,
            poll_s=0.02,
            idle_timeout=idle_timeout,
            chaos=chaos,
        ),
        daemon=True,
    )
    proc.start()
    return proc


def _wait_for(predicate, timeout=60.0, interval=0.002, message="condition"):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(interval)
    raise AssertionError(f"timed out waiting for {message}")


class _CoordinatorThread(threading.Thread):
    def __init__(self, runner):
        super().__init__(daemon=True)
        self.runner = runner
        self.result = None
        self.error = None

    def run(self):
        try:
            self.result = self.runner.run()
        except BaseException as exc:  # noqa: BLE001 — surfaced in the test
            self.error = exc

    def finish(self, timeout=120.0):
        self.join(timeout)
        assert not self.is_alive(), "coordinator did not finish"
        if self.error is not None:
            raise self.error
        return self.result


@pytest.fixture
def server(tmp_path):
    server = BrokerServer(tmp_path / "queue", host="127.0.0.1", port=0).start()
    yield server
    server.stop()


# ----------------------------------------------------------------------
# Frame protocol
# ----------------------------------------------------------------------


class TestFrames:
    def _pair(self):
        a, b = socket.socketpair()
        a.settimeout(5.0)
        b.settimeout(5.0)
        return a, b

    def test_roundtrip(self):
        a, b = self._pair()
        payload = {"op": "claim", "args": {"worker_id": "w1", "n": 3}}
        send_frame(a, payload)
        assert recv_frame(b) == payload
        a.close(), b.close()

    def test_clean_eof_is_none(self):
        a, b = self._pair()
        a.close()
        assert recv_frame(b) is None
        b.close()

    def test_torn_body_raises(self):
        a, b = self._pair()
        frame = encode_frame({"op": "status"})
        a.sendall(frame[:-3])  # header + partial body, then hangup
        a.close()
        with pytest.raises(FrameError, match="mid-frame"):
            recv_frame(b)
        b.close()

    def test_torn_header_raises(self):
        a, b = self._pair()
        a.sendall(b"\x00\x00")
        a.close()
        with pytest.raises(FrameError):
            recv_frame(b)
        b.close()

    def test_implausible_length_rejected_before_allocation(self):
        a, b = self._pair()
        a.sendall(struct.pack(">I", 2**32 - 1))
        with pytest.raises(FrameError, match="exceeds"):
            recv_frame(b)
        a.close(), b.close()

    def test_non_json_body_raises(self):
        a, b = self._pair()
        a.sendall(struct.pack(">I", 4) + b"\x80ick")
        with pytest.raises(FrameError, match="JSON"):
            recv_frame(b)
        a.close(), b.close()

    def test_parse_tcp_url(self):
        assert parse_tcp_url("tcp://10.0.0.5:8266") == ("10.0.0.5", 8266)
        with pytest.raises(ValueError, match="scheme|supported"):
            parse_tcp_url("http://host:1")
        with pytest.raises(ValueError, match="port"):
            parse_tcp_url("tcp://host")

    def test_make_broker_dispatch(self, tmp_path):
        assert is_broker_url("tcp://h:1") is True
        assert is_broker_url(str(tmp_path)) is False
        assert is_broker_url(tmp_path) is False
        assert isinstance(make_broker("tcp://127.0.0.1:1"), TcpBroker)
        assert isinstance(make_broker(tmp_path / "q"), FilesystemBroker)


# ----------------------------------------------------------------------
# Server-side name validation
# ----------------------------------------------------------------------


class TestWireNameValidation:
    """Wire-supplied task names and worker ids become path components
    under the broker root; the server refuses anything it didn't mint
    itself before touching the filesystem — an unauthenticated frame
    must not become an arbitrary write or unlink via ``../``."""

    EVIL_NAMES = ["../../../../tmp/pwned", "..", "a/b.task", "00000_cafecafecafe.task/.."]

    def test_publish_rejects_traversal_task_names(self, server):
        import base64

        broker = make_broker(server.address)
        for evil in self.EVIL_NAMES:
            with pytest.raises(BrokerError, match="invalid task name"):
                broker._call(
                    "publish",
                    {
                        "context": base64.b64encode(b"ctx").decode(),
                        "tasks": [[evil, base64.b64encode(b"task").decode()]],
                    },
                )
        # Rejected before anything was written: no context, no tasks.
        assert server.broker.status()["pending"] == 0
        assert server.broker.context_blob() is None

    def test_name_taking_ops_reject_traversal(self, server):
        broker = make_broker(server.address)
        for op, args in (
            ("release", {"name": "../escape"}),
            ("quarantine", {"name": "../escape"}),
            (
                "fail",
                {"name": "../escape", "worker_id": "w", "error": "", "traceback": ""},
            ),
            ("heartbeat", {"name": "../escape", "worker_id": "w", "lease_s": 5.0}),
        ):
            with pytest.raises(BrokerError, match="invalid task name"):
                broker._call(op, args)

    def test_worker_id_ops_reject_traversal(self, server):
        broker = make_broker(server.address)
        for op, args in (
            ("claim", {"worker_id": "../../w"}),
            ("heartbeat_worker", {"worker_id": "../../w", "done": 0}),
        ):
            with pytest.raises(BrokerError, match="invalid worker id"):
                broker._call(op, args)

    def test_minted_names_and_default_worker_ids_pass(self):
        from repro.core.netqueue import _TASK_NAME_RE, _WORKER_ID_RE
        from repro.core.queue import default_worker_id

        assert _TASK_NAME_RE.fullmatch("00042_0123456789ab.task")
        assert _WORKER_ID_RE.fullmatch(default_worker_id())
        assert _WORKER_ID_RE.fullmatch(f"local-{os.getpid()}-3")


# ----------------------------------------------------------------------
# Client plumbing
# ----------------------------------------------------------------------


class TestTcpBrokerPlumbing:
    def test_ping_reports_protocol_and_server_identity(self, server):
        info = make_broker(server.address).ping()
        assert info["protocol"] == 1
        assert info["pid"] == os.getpid()  # served from this process

    def test_application_error_raises_broker_error(self, server):
        broker = make_broker(server.address)
        with pytest.raises(BrokerError, match="unknown broker op"):
            broker._call("no-such-op")
        # A server-side exception relays type and message.
        with pytest.raises(BrokerError, match="ValueError"):
            broker.artifact_put("../escape", b"x")

    def test_pickles_and_reconnects(self, server):
        """fork-spawned drain workers receive the broker by pickle; the
        clone drops the socket and reconnects on first use."""
        broker = make_broker(server.address)
        broker.ping()  # holds a live connection now
        clone = pickle.loads(pickle.dumps(broker))
        assert clone.address == broker.address
        assert clone._sock is None
        assert clone.status()["pending"] == 0

    def test_unreachable_server_raises_connection_error(self):
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()  # nothing listens here any more
        broker = TcpBroker(
            "127.0.0.1", port, timeout_s=0.5, retries=2, retry_backoff_s=0.01
        )
        with pytest.raises(ConnectionError, match="unreachable after 3 attempts"):
            broker.ping()

    def test_state_survives_server_restart(self, builder, scenarios, tmp_path):
        """The state directory is authoritative: stop the server, serve
        the same root again, and the published queue is still there."""
        root = tmp_path / "queue"
        runner = _runner(builder, scenarios)
        first = BrokerServer(root, port=0).start()
        try:
            make_broker(first.address).publish(
                runner.context(), runner.tasks()
            )
        finally:
            first.stop()
        second = BrokerServer(root, port=0).start()
        try:
            broker = make_broker(second.address)
            assert broker.status()["pending"] == len(runner.tasks())
            claim = broker.claim("survivor")
            assert claim is not None and broker.release(claim) is True
        finally:
            second.stop()


# ----------------------------------------------------------------------
# Acceptance: byte-identity with a serial run
# ----------------------------------------------------------------------


class TestTcpAcceptance:
    def test_tcp_campaign_with_killed_worker_matches_serial(
        self, builder, scenarios, serial_dicts, server
    ):
        """The FilesystemBroker acceptance invariant, over the network:
        ≥2 TCP workers, one SIGKILLed mid-episode; its lease expires
        server-side, the task requeues, and the folded result is
        identical to a serial run."""
        coordinator = _CoordinatorThread(
            _runner(
                builder, scenarios,
                executor=_queue_executor(server.address, lease_s=1.5),
            )
        )
        coordinator.start()
        fs = server.broker
        _wait_for(lambda: fs._list(fs.tasks_dir), message="tasks published")

        # The victim is the only worker, so it must be the one claiming.
        victim = _spawn_worker(server.address, "victim", lease_s=1.5, idle_timeout=30.0)
        _wait_for(lambda: any(fs.leases_dir.glob("*.json")), message="victim's lease")
        os.kill(victim.pid, signal.SIGKILL)
        victim.join(timeout=30)

        healthy = [_spawn_worker(server.address, f"healthy-{i}") for i in range(2)]
        result = coordinator.finish()
        for proc in healthy:
            proc.join(timeout=60)

        assert _dicts(result) == serial_dicts

        # Resume purely from the server-side checkpoint: nothing pending.
        resumed = _runner(
            builder, scenarios,
            checkpoint_path=fs.root / "results.jsonl",
        )
        assert resumed.pending() == []
        assert _dicts(resumed.run()) == serial_dicts

    def test_chaotic_tcp_campaign_matches_serial(
        self, builder, scenarios, serial_dicts, server
    ):
        """Every chaos dial lit on every worker's transport — delays,
        drops before and after the server executed (at-least-once
        duplicates), torn frames, reconnect storms — and the folded
        campaign is still byte-identical to the serial run."""
        executor = _queue_executor(server.address, workers=2, chaos=CHAOS)
        result = _runner(builder, scenarios, executor=executor).run()
        assert _dicts(result) == serial_dicts

    def test_chaotic_external_workers_match_serial(
        self, builder, scenarios, serial_dicts, server
    ):
        """Same invariant with `avfi worker`-style external drains, each
        carrying its own decorrelated chaos seed."""
        coordinator = _CoordinatorThread(
            _runner(builder, scenarios, executor=_queue_executor(server.address))
        )
        coordinator.start()
        fs = server.broker
        _wait_for(lambda: fs._list(fs.tasks_dir), message="tasks published")
        workers = [
            _spawn_worker(
                server.address, f"chaotic-{i}", lease_s=10.0, idle_timeout=1.0,
                chaos=dict(CHAOS, seed=CHAOS["seed"] + i),
            )
            for i in range(2)
        ]
        result = coordinator.finish()
        for proc in workers:
            proc.join(timeout=60)
        assert _dicts(result) == serial_dicts
