"""Tests for :mod:`repro.core.faults.data_faults` and the trigger machinery."""

import numpy as np
import pytest

from repro.core.faults import (
    INPUT_FAULT_REGISTRY,
    CameraFreeze,
    GaussianNoise,
    GPSFreezeFault,
    GPSNoiseFault,
    LidarDropoutFault,
    SaltAndPepper,
    SolidOcclusion,
    SpeedometerScaleFault,
    TransparentOcclusion,
    Trigger,
    WaterDrop,
    WeatherShiftFault,
    make_input_fault,
)
from repro.sim.sensors import SensorFrame
from repro.sim.town import GridTownConfig, build_grid_town
from repro.sim.world import World


def bundle(frame=0, seed=0, hw=(48, 64)):
    gen = np.random.default_rng(seed)
    return SensorFrame(
        frame=frame,
        image=gen.integers(0, 255, (hw[0], hw[1], 3), dtype=np.uint8),
        gps=(10.0, 20.0),
        speed=5.0,
        heading=0.1,
        lidar=np.full(9, 40.0),
    )


def bind(fault, seed=0):
    fault.reset()
    fault.bind(np.random.default_rng(seed))
    return fault


class TestTrigger:
    def test_defaults_always_fire(self):
        t = Trigger()
        rng = np.random.default_rng(0)
        assert all(t.fires(f, rng) for f in range(100))

    def test_window(self):
        t = Trigger(start_frame=10, end_frame=20)
        rng = np.random.default_rng(0)
        assert not t.fires(9, rng)
        assert t.fires(10, rng)
        assert t.fires(20, rng)
        assert not t.fires(21, rng)

    def test_probability(self):
        t = Trigger(probability=0.3)
        rng = np.random.default_rng(0)
        fires = sum(t.fires(f, rng) for f in range(2000))
        assert 450 <= fires <= 750

    def test_validation(self):
        with pytest.raises(ValueError):
            Trigger(start_frame=-1)
        with pytest.raises(ValueError):
            Trigger(start_frame=10, end_frame=5)
        with pytest.raises(ValueError):
            Trigger(probability=1.5)


class TestRegistry:
    def test_registry_matches_paper_lineup(self):
        assert set(INPUT_FAULT_REGISTRY) == {
            "gaussian", "s&p", "solid-occ", "transp-occ", "water-drop",
        }

    def test_factory_builds_each(self):
        for name in INPUT_FAULT_REGISTRY:
            fault = make_input_fault(name)
            assert fault.name == name

    def test_factory_unknown_name(self):
        with pytest.raises(KeyError, match="gaussian"):
            make_input_fault("blizzard")


class TestGaussianNoise:
    def test_changes_image_not_rest(self):
        fault = bind(GaussianNoise(sigma=0.1))
        b = bundle()
        original = b.image.copy()
        out = fault.apply(b, frame=0)
        assert not np.array_equal(out.image, original)
        assert out.gps == b.gps
        assert np.array_equal(b.image, original), "input bundle must not mutate"

    def test_noise_magnitude_scales(self):
        weak = bind(GaussianNoise(sigma=0.02), seed=1)
        strong = bind(GaussianNoise(sigma=0.3), seed=1)
        b = bundle()
        d_weak = np.abs(weak.apply(b, 0).image.astype(int) - b.image.astype(int)).mean()
        d_strong = np.abs(strong.apply(b, 0).image.astype(int) - b.image.astype(int)).mean()
        assert d_strong > d_weak * 3

    def test_trigger_respected(self):
        fault = bind(GaussianNoise(sigma=0.2, trigger=Trigger(start_frame=100)))
        b = bundle(frame=5)
        out = fault.apply(b, frame=5)
        assert np.array_equal(out.image, b.image)
        assert fault.log.frames == []

    def test_activation_logged(self):
        fault = bind(GaussianNoise(sigma=0.2))
        fault.apply(bundle(frame=7), frame=7)
        assert fault.log.frames == [7]

    def test_validation(self):
        with pytest.raises(ValueError):
            GaussianNoise(sigma=-0.1)


class TestSaltAndPepper:
    def test_extreme_pixels_present(self):
        fault = bind(SaltAndPepper(density=0.2))
        out = fault.apply(bundle(), 0)
        assert (out.image == 0).any()
        assert (out.image == 255).any()

    def test_density_controls_fraction(self):
        fault = bind(SaltAndPepper(density=0.3))
        b = bundle()
        out = fault.apply(b, 0)
        changed = (out.image != b.image).any(axis=2).mean()
        assert 0.15 <= changed <= 0.45

    def test_validation(self):
        with pytest.raises(ValueError):
            SaltAndPepper(density=1.5)


class TestOcclusions:
    def test_solid_patch_is_persistent_across_frames(self):
        fault = bind(SolidOcclusion(size_frac=0.3))
        a = fault.apply(bundle(seed=1), 0)
        b = fault.apply(bundle(seed=2), 1)
        mask_a = np.all(a.image == (15, 12, 10), axis=2)
        mask_b = np.all(b.image == (15, 12, 10), axis=2)
        assert mask_a.sum() > 0
        assert np.array_equal(mask_a, mask_b), "occlusion must not move between frames"

    def test_solid_patch_moves_between_episodes(self):
        fault = SolidOcclusion(size_frac=0.3)
        bind(fault, seed=1)
        a = fault.apply(bundle(), 0)
        bind(fault, seed=2)  # new episode, new rng
        b = fault.apply(bundle(), 0)
        assert not np.array_equal(a.image, b.image)

    def test_solid_size_frac(self):
        fault = bind(SolidOcclusion(size_frac=0.5))
        out = fault.apply(bundle(), 0)
        frac = np.all(out.image == (15, 12, 10), axis=2).mean()
        assert 0.15 <= frac <= 0.35  # ~0.25 of the frame

    def test_transparent_blends(self):
        fault = bind(TransparentOcclusion(size_frac=0.4, alpha=0.5))
        b = bundle()
        out = fault.apply(b, 0)
        diff = (out.image.astype(int) - b.image.astype(int))
        assert (diff != 0).any()
        # Blending never saturates to the pure tint at alpha=0.5.
        assert not np.all(out.image == (200, 200, 205))

    def test_validation(self):
        with pytest.raises(ValueError):
            SolidOcclusion(size_frac=0.0)
        with pytest.raises(ValueError):
            TransparentOcclusion(alpha=0.0)


class TestWaterDrop:
    def test_droplets_change_local_regions(self):
        fault = bind(WaterDrop(n_drops=4, radius_frac=0.12))
        b = bundle()
        out = fault.apply(b, 0)
        changed = (out.image != b.image).any(axis=2)
        assert 0.01 < changed.mean() < 0.5

    def test_droplets_persist(self):
        fault = bind(WaterDrop(n_drops=3))
        a = fault.apply(bundle(seed=3), 0)
        b = fault.apply(bundle(seed=3), 1)
        assert np.array_equal(a.image, b.image)

    def test_validation(self):
        with pytest.raises(ValueError):
            WaterDrop(n_drops=0)


class TestCameraFreeze:
    def test_replays_last_prefault_frame(self):
        fault = bind(CameraFreeze(trigger=Trigger(start_frame=2)))
        f0 = fault.apply(bundle(frame=0, seed=0), 0)
        f1 = fault.apply(bundle(frame=1, seed=1), 1)
        frozen = fault.apply(bundle(frame=2, seed=2), 2)
        assert np.array_equal(frozen.image, f1.image)
        later = fault.apply(bundle(frame=3, seed=3), 3)
        assert np.array_equal(later.image, f1.image)


class TestNonCameraFaults:
    def test_gps_noise_shifts_fix(self):
        fault = bind(GPSNoiseFault(sigma_m=5.0))
        out = fault.apply(bundle(), 0)
        assert out.gps != (10.0, 20.0)

    def test_gps_freeze_holds_fix(self):
        fault = bind(GPSFreezeFault(trigger=Trigger(start_frame=1)))
        fault.apply(bundle(frame=0), 0)
        b = bundle(frame=1)
        b.gps = (99.0, 99.0)
        out = fault.apply(b, 1)
        assert out.gps == (10.0, 20.0)

    def test_speed_scale(self):
        fault = bind(SpeedometerScaleFault(scale=0.5))
        out = fault.apply(bundle(), 0)
        assert out.speed == pytest.approx(2.5)

    def test_lidar_dropout(self):
        fault = bind(LidarDropoutFault(drop_prob=1.0, max_range=40.0))
        b = bundle()
        b.lidar[:] = 5.0
        out = fault.apply(b, 0)
        assert np.all(out.lidar == 40.0)

    def test_lidar_dropout_no_lidar_ok(self):
        fault = bind(LidarDropoutFault(drop_prob=1.0))
        b = bundle()
        b.lidar = None
        out = fault.apply(b, 0)
        assert out.lidar is None

    def test_weather_shift_mutates_world(self):
        town = build_grid_town(GridTownConfig(rows=2, cols=3))
        world = World(town, weather="ClearNoon")
        fault = bind(WeatherShiftFault("FoggyNoon"))
        fault.step(world, frame=1)
        assert world.weather.name == "FoggyNoon"
        assert fault.log.frames == [1]

    def test_weather_shift_fires_once_by_default(self):
        town = build_grid_town(GridTownConfig(rows=2, cols=3))
        world = World(town)
        fault = bind(WeatherShiftFault("Night"))
        for f in range(5):
            fault.step(world, frame=f)
        assert fault.log.frames == [1]

    def test_weather_shift_validates_name_eagerly(self):
        with pytest.raises(KeyError):
            WeatherShiftFault("Blizzard")
