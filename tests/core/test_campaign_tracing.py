"""Tests for trace recording through run_episode and monitor retriggering."""

import math

import pytest

from repro.agent import autopilot_agent_factory
from repro.core import TraceReader, run_episode, standard_scenarios
from repro.core.faults import ControlStuckAt, Trigger
from repro.sim.actors import Vehicle
from repro.sim.builders import SimulationBuilder
from repro.sim.geometry import Transform, Vec2
from repro.sim.render import CameraModel
from repro.sim.town import GridTownConfig, build_grid_town
from repro.sim.violations import ViolationMonitor, ViolationType
from repro.sim.world import World

TOWN = GridTownConfig(rows=2, cols=3)


@pytest.fixture(scope="module")
def builder():
    return SimulationBuilder(camera=CameraModel(width=24, height=16), with_lidar=False)


@pytest.fixture(scope="module")
def scenario():
    return standard_scenarios(
        1, seed=9, town_config=TOWN, min_distance=60, max_distance=160
    )[0]


class TestRunEpisodeTracing:
    def test_trace_has_one_state_per_frame(self, builder, scenario, tmp_path):
        path = tmp_path / "run.jsonl"
        record = run_episode(
            builder, scenario, autopilot_agent_factory(), trace_path=path
        )
        trace = TraceReader(path)
        assert len(trace.states) == record.frames
        assert trace.header["scenario"] == scenario.name
        assert trace.footer["success"] == record.success

    def test_trace_records_violations_and_injections(self, builder, scenario, tmp_path):
        path = tmp_path / "faulted.jsonl"
        record = run_episode(
            builder,
            scenario,
            autopilot_agent_factory(),
            faults=[ControlStuckAt("steer", 1.0, trigger=Trigger(start_frame=30))],
            injector_name="stuck",
            trace_path=path,
        )
        trace = TraceReader(path)
        assert len(trace.violations) == record.n_violations
        assert len(trace.injections) == len(record.injection_frames)
        assert all(i["fault"] == "stuck" for i in trace.injections)

    def test_no_trace_by_default(self, builder, scenario, tmp_path):
        run_episode(builder, scenario, autopilot_agent_factory())
        assert list(tmp_path.iterdir()) == []


class TestSustainedViolationRetrigger:
    def test_long_offroad_drive_accumulates_events(self):
        """Driving far on the sidewalk re-triggers per retrigger_m metres."""
        town = build_grid_town(TOWN)
        world = World(town, seed=0)
        road = town.roads[0]
        lane = road.lane(+1)
        start = lane.centerline.point_at(5.0)
        heading = lane.centerline.heading_at(5.0)
        off = Vec2.from_heading(heading + math.pi / 2.0) * (
            -(road.half_width + town.sidewalk_width / 2.0 - 1.0)
        )
        ego = world.spawn_ego(Transform(start + off, heading))
        monitor = ViolationMonitor(retrigger_m=10.0)
        from repro.sim.physics import VehicleControl

        ego.apply_control(VehicleControl(throttle=0.6))
        for _ in range(15 * 10):  # ~10 s, tens of metres
            world.tick()
            monitor.step(world, ego, world.frame)
        curb_events = [e for e in monitor.events if e.type == ViolationType.CURB]
        expected = ego.odometer_m / 10.0
        assert len(curb_events) >= max(2, int(expected) - 1)
        # Retriggered events carry the marker.
        assert any(e.details.get("retriggered") for e in curb_events[1:])

    def test_short_excursion_single_event(self):
        town = build_grid_town(TOWN)
        world = World(town, seed=0)
        road = town.roads[0]
        lane = road.lane(+1)
        start = lane.centerline.point_at(20.0)
        heading = lane.centerline.heading_at(20.0)
        ego = world.spawn_ego(Transform(start, heading))
        monitor = ViolationMonitor(retrigger_m=25.0)
        # Static off-lane position: no distance accrues, so one event only.
        off = Vec2.from_heading(heading + math.pi / 2.0) * 2.5
        ego.teleport(Transform(start + off, heading))
        for _ in range(60):
            world.tick()
            monitor.step(world, ego, world.frame)
        assert monitor.count(ViolationType.LANE) == 1

    def test_retrigger_validation(self):
        with pytest.raises(ValueError):
            ViolationMonitor(retrigger_m=0.0)
