"""Chaos-testing the harness with its own faults (repro.core.chaos).

The acceptance invariant of the self-healing machinery: a campaign whose
grid contains one always-crashing and one always-hanging episode
completes on every backend, quarantines *exactly* those two identities,
and produces byte-identical records for every other episode compared to
a fault-free serial run.  On top of that, a distributed-queue campaign
whose broker misbehaves (delays, duplicate deliveries, claim races,
lease storms, dropped releases) must still match the serial reference —
at-least-once delivery plus the exactly-once results fold absorbs all of
it.
"""

import json

import pytest

from repro.agent import autopilot_agent_factory
from repro.core import (
    EpisodeOutcome,
    EpisodeTimeout,
    FaultTolerancePolicy,
    FilesystemBroker,
    ParallelCampaignRunner,
    QueueExecutor,
    standard_scenarios,
)
from repro.core.chaos import (
    ChaosBroker,
    CrashFault,
    FlakyFault,
    HangFault,
    InjectedCrash,
)
from repro.core.faults import OutputDelay
from repro.sim.builders import SimulationBuilder
from repro.sim.render import CameraModel
from repro.sim.town import GridTownConfig

TOWN = GridTownConfig(rows=2, cols=3)
#: The survivor grid.  Chaos injectors are appended AFTER these rows, so
#: the (injector index, scenario index) seed formula gives the survivor
#: episodes identical seeds with or without the poison rows present.
SURVIVORS = {"none": [], "delay": [OutputDelay(8)]}
BASE_SEED = 5


@pytest.fixture(scope="module")
def builder():
    return SimulationBuilder(camera=CameraModel(width=24, height=16), with_lidar=False)


@pytest.fixture(scope="module")
def scenarios():
    return standard_scenarios(1, seed=9, town_config=TOWN, min_distance=60, max_distance=160)


@pytest.fixture(scope="module")
def reference(builder, scenarios):
    """The fault-free serial reference the chaos runs must reproduce."""
    result = ParallelCampaignRunner(
        scenarios, autopilot_agent_factory(), SURVIVORS,
        builder=builder, base_seed=BASE_SEED,
    ).run()
    assert len(result.records) == 2 and not result.failures
    return [json.dumps(r.to_dict(), sort_keys=True) for r in result.records]


def _poison_grid():
    """Survivors plus one always-crashing and one always-hanging row."""
    return dict(
        SURVIVORS,
        **{
            "chaos-crash": [CrashFault()],
            "chaos-hang": [HangFault(hang_s=60.0)],
        },
    )


def _policy(**kw):
    kw.setdefault("max_attempts", 1)
    kw.setdefault("timeout_s", 3.0)
    kw.setdefault("failure_budget", 2)
    kw.setdefault("backoff_s", 0.0)
    return FaultTolerancePolicy(**kw)


def _runner(builder, scenarios, injectors, **kw):
    kw.setdefault("base_seed", BASE_SEED)
    return ParallelCampaignRunner(
        scenarios, autopilot_agent_factory(), injectors, builder=builder, **kw
    )


def _assert_quarantined_exactly_poison(result, scenarios):
    scn = scenarios[0].name
    assert [(f.injector, f.scenario) for f in result.failures] == [
        ("chaos-crash", scn), ("chaos-hang", scn),
    ]
    assert all(f.outcome == EpisodeOutcome.QUARANTINED for f in result.failures)
    by_injector = {f.injector: f for f in result.failures}
    assert by_injector["chaos-crash"].error_type == InjectedCrash.__name__
    assert by_injector["chaos-hang"].error_type == EpisodeTimeout.__name__


class TestPoisonEpisodeAcceptance:
    """Crash + hang quarantined on all three backends, survivors
    byte-identical to the fault-free serial reference."""

    def _check(self, result, reference, scenarios):
        _assert_quarantined_exactly_poison(result, scenarios)
        assert [
            json.dumps(r.to_dict(), sort_keys=True) for r in result.records
        ] == reference

    def test_serial_backend(self, builder, scenarios, reference):
        result = _runner(
            builder, scenarios, _poison_grid(), policy=_policy()
        ).run()
        self._check(result, reference, scenarios)

    def test_process_backend(self, builder, scenarios, reference):
        result = _runner(
            builder, scenarios, _poison_grid(), policy=_policy(), workers=2
        ).run()
        self._check(result, reference, scenarios)

    def test_queue_backend(self, builder, scenarios, reference, tmp_path):
        executor = QueueExecutor(
            tmp_path / "q", workers=2, lease_s=10.0, poll_s=0.05,
            stall_timeout=120.0,
        )
        result = _runner(
            builder, scenarios, _poison_grid(), policy=_policy(),
            executor=executor,
        ).run()
        self._check(result, reference, scenarios)
        broker = FilesystemBroker(tmp_path / "q")
        assert len(broker._list(broker.quarantined_dir)) == 2
        assert broker.failures() == [], "no task may stay parked in failed/"

    def test_quarantined_triples_surface_on_the_result(
        self, builder, scenarios, reference
    ):
        result = _runner(
            builder, scenarios, _poison_grid(), policy=_policy()
        ).run()
        scn = scenarios[0].name
        assert [(i, s) for i, s, _ in result.quarantined()] == [
            ("chaos-crash", scn), ("chaos-hang", scn),
        ]

    def test_save_load_round_trips_the_quarantine_list(
        self, builder, scenarios, tmp_path
    ):
        result = _runner(
            builder, scenarios, _poison_grid(), policy=_policy()
        ).run()
        path = tmp_path / "records.json"
        result.save(path)
        loaded = type(result).load(path)
        assert loaded.records == result.records
        assert loaded.failures == result.failures

    def test_budget_exceeded_aborts_with_the_original_error(
        self, builder, scenarios, tmp_path
    ):
        """One poison episode over budget aborts the campaign — after
        completed episodes have drained to the checkpoint."""
        checkpoint = tmp_path / "abort.jsonl"
        runner = _runner(
            builder, scenarios, _poison_grid(),
            policy=_policy(failure_budget=1), checkpoint_path=checkpoint,
        )
        # crash (admitted, budget spent) ... hang (over budget: aborts
        # with its own EpisodeTimeout).
        with pytest.raises(EpisodeTimeout):
            runner.run()
        assert len(runner.grid_records()) == 2, "survivors checkpoint first"

    def test_resume_skips_quarantined_episodes(
        self, builder, scenarios, tmp_path
    ):
        """Quarantined identities count as completed: a resumed campaign
        must not re-burn compute on poison tasks."""
        checkpoint = tmp_path / "resume.jsonl"
        _runner(
            builder, scenarios, _poison_grid(), policy=_policy(),
            checkpoint_path=checkpoint,
        ).run()
        resumed = _runner(
            builder, scenarios, _poison_grid(), policy=_policy(),
            checkpoint_path=checkpoint,
        )
        assert resumed.pending() == []
        result = resumed.run()
        assert len(result.records) == 2 and len(result.failures) == 2


class TestTransientRetryAcrossBackends:
    def test_flaky_episode_retries_to_byte_identity(
        self, builder, scenarios, tmp_path
    ):
        """A fails-twice-succeeds-third episode lands in the campaign as
        the exact bytes of its never-failed counterpart (paired runs
        through the full runner, not just attempt_task)."""
        policy = FaultTolerancePolicy(max_attempts=3, backoff_s=0.0)
        flaky = FlakyFault(str(tmp_path), fail_times=2)
        grid = dict(SURVIVORS, **{"chaos-flaky": [flaky]})
        retried = _runner(builder, scenarios, grid, policy=policy).run()
        assert not retried.failures
        # Counterpart: same fault config/state_dir, allowance pre-spent.
        flaky.counter_path.unlink()
        flaky.exhaust()
        first_try = _runner(builder, scenarios, grid, policy=policy).run()
        assert not first_try.failures
        assert [json.dumps(r.to_dict(), sort_keys=True) for r in retried.records] \
            == [json.dumps(r.to_dict(), sort_keys=True) for r in first_try.records]


class TestChaosBrokerUnit:
    def _published(self, builder, scenarios, tmp_path, **chaos):
        runner = _runner(builder, scenarios, SURVIVORS)
        inner = FilesystemBroker(tmp_path / "q", lease_s=30.0)
        inner.publish(runner.context(), runner.tasks())
        return inner, ChaosBroker(inner, seed=7, **chaos)

    def test_probability_validation(self, tmp_path):
        with pytest.raises(ValueError, match="drop_claim_p"):
            ChaosBroker(FilesystemBroker(tmp_path), drop_claim_p=1.5)

    def test_delegates_the_rest_of_the_broker_surface(
        self, builder, scenarios, tmp_path
    ):
        inner, chaos = self._published(builder, scenarios, tmp_path)
        assert chaos.results_path == inner.results_path
        assert chaos.status()["pending"] == 2

    def test_drop_claim_requeues_and_reports_empty(
        self, builder, scenarios, tmp_path
    ):
        inner, chaos = self._published(
            builder, scenarios, tmp_path, drop_claim_p=1.0
        )
        assert chaos.claim("w0") is None, "the phantom competitor won"
        assert len(inner._list(inner.tasks_dir)) == 2, "task back in pending"
        assert inner._list(inner.claimed_dir) == []

    def test_duplicate_claim_republishes_the_task(
        self, builder, scenarios, tmp_path
    ):
        inner, chaos = self._published(
            builder, scenarios, tmp_path, duplicate_claim_p=1.0
        )
        claim = chaos.claim("w0")
        assert claim is not None
        assert claim.name in inner._list(inner.tasks_dir), (
            "a second worker can claim the same episode concurrently"
        )
        assert claim.name in inner._list(inner.claimed_dir)

    def test_dropped_heartbeats_let_a_live_lease_expire(
        self, builder, scenarios, tmp_path
    ):
        inner, chaos = self._published(
            builder, scenarios, tmp_path, drop_heartbeat_p=1.0
        )
        claim = chaos.claim("w0", lease_s=0.2)
        before = inner._lease_path(claim.name).read_text()
        chaos.heartbeat(claim)
        assert inner._lease_path(claim.name).read_text() == before
        import time

        time.sleep(0.5)
        assert inner.requeue_expired() == [claim.name], (
            "the lease storms back into the queue mid-episode"
        )

    def test_drop_release_requeues_a_finished_task(
        self, builder, scenarios, tmp_path
    ):
        inner, chaos = self._published(
            builder, scenarios, tmp_path, drop_release_p=1.0
        )
        claim = chaos.claim("w0")
        assert chaos.release(claim) is False
        assert claim.name in inner._list(inner.tasks_dir), (
            "the episode re-runs; the results fold must dedupe it"
        )


class TestChaosCampaignByteIdentity:
    def test_queue_campaign_under_chaos_matches_serial(
        self, builder, scenarios, reference, tmp_path
    ):
        """The headline chaos claim: a queue campaign whose every broker
        interaction misbehaves (seeded) still folds to the exact serial
        records."""
        executor = QueueExecutor(
            tmp_path / "q", workers=2, lease_s=2.0, poll_s=0.05,
            stall_timeout=120.0,
            chaos=dict(
                seed=11,
                delay_p=0.5, delay_s=0.02,
                duplicate_claim_p=0.3,
                drop_claim_p=0.3,
                drop_heartbeat_p=0.5,
                drop_release_p=0.3,
            ),
        )
        result = _runner(builder, scenarios, SURVIVORS, executor=executor).run()
        assert not result.failures
        assert [
            json.dumps(r.to_dict(), sort_keys=True) for r in result.records
        ] == reference
