"""Tests for the injection harness and campaign runner."""

import numpy as np
import pytest

from repro.agent import autopilot_agent_factory, nn_agent_factory
from repro.agent.ilcnn import ILCNN, ILCNNConfig
from repro.core import Campaign, CampaignResult, InjectionHarness, run_episode, standard_scenarios
from repro.core.campaign import RunRecord
from repro.core.faults import (
    ControlStuckAt,
    GaussianNoise,
    OutputDelay,
    Trigger,
    WeatherShiftFault,
    WeightNoise,
)
from repro.sim.builders import SimulationBuilder
from repro.sim.channel import Channel
from repro.sim.client import AgentClient
from repro.sim.physics import VehicleControl
from repro.sim.server import SimulationServer
from repro.sim.town import GridTownConfig

TOWN = GridTownConfig(rows=2, cols=3)
TINY = ILCNNConfig(input_hw=(16, 24), conv_channels=(4, 6, 6), trunk_dim=16,
                   speed_dim=4, branch_hidden=8, dropout=0.0)


@pytest.fixture(scope="module")
def builder():
    from repro.sim.render import CameraModel

    return SimulationBuilder(camera=CameraModel(width=24, height=16), with_lidar=False)


@pytest.fixture(scope="module")
def scenarios():
    return standard_scenarios(2, seed=9, town_config=TOWN, min_distance=60, max_distance=160)


def _episode_parts(builder, scenario):
    handles = builder.build_episode(scenario)
    agent = autopilot_agent_factory()(handles, scenario.mission)
    sensor_ch, control_ch = Channel("sensor"), Channel("control")
    server = SimulationServer(handles.world, handles.sensors, sensor_ch, control_ch)
    client = AgentClient(agent, sensor_ch, control_ch)
    return handles, server, client


class TestInjectionHarness:
    def test_attach_detach_restores_hooks(self, builder, scenarios):
        handles, server, client = _episode_parts(builder, scenarios[0])
        faults = [GaussianNoise(0.1), ControlStuckAt("steer", 1.0), OutputDelay(5)]
        harness = InjectionHarness(faults, seed=1)
        harness.attach(server, client)
        assert len(client.input_filters) == 1
        assert len(client.output_filters) == 1
        assert len(server.control_channel.transforms) == 1
        harness.detach()
        assert client.input_filters == []
        assert client.output_filters == []
        assert server.control_channel.transforms == []

    def test_double_attach_rejected(self, builder, scenarios):
        handles, server, client = _episode_parts(builder, scenarios[0])
        harness = InjectionHarness([], seed=0)
        harness.attach(server, client)
        with pytest.raises(RuntimeError):
            harness.attach(server, client)
        harness.detach()

    def test_model_fault_requires_model(self, builder, scenarios):
        handles, server, client = _episode_parts(builder, scenarios[0])
        harness = InjectionHarness([WeightNoise(0.2)], seed=0)
        with pytest.raises(ValueError, match="autopilot"):
            harness.attach(server, client, model=None)

    def test_model_fault_installed_and_removed(self, builder, scenarios):
        handles, server, client = _episode_parts(builder, scenarios[0])
        model = ILCNN(TINY)
        before = model.state_dict()
        harness = InjectionHarness([WeightNoise(0.5)], seed=0)
        harness.attach(server, client, model=model)
        assert any(
            not np.array_equal(before[k], model.state_dict()[k]) for k in before
        )
        harness.detach()
        assert all(np.array_equal(before[k], model.state_dict()[k]) for k in before)

    def test_world_fault_stepped(self, builder, scenarios):
        handles, server, client = _episode_parts(builder, scenarios[0])
        harness = InjectionHarness([WeatherShiftFault("Night")], seed=0)
        harness.attach(server, client)
        harness.on_frame(handles.world, 1)
        assert handles.world.weather.name == "Night"
        harness.detach()

    def test_injection_frames_merged_sorted(self, builder, scenarios):
        handles, server, client = _episode_parts(builder, scenarios[0])
        f1 = GaussianNoise(0.1, trigger=Trigger(start_frame=5, end_frame=5))
        f2 = GaussianNoise(0.1, trigger=Trigger(start_frame=2, end_frame=2))
        harness = InjectionHarness([f1, f2], seed=0)
        harness.attach(server, client)
        server.send_initial_frame()
        for _ in range(8):
            client.tick(handles.world.frame)
            server.tick()
        assert harness.injection_frames() == [2, 5]
        assert harness.first_injection_frame() == 2
        harness.detach()

    def test_unknown_fault_kind_rejected(self):
        class NotAFault:
            pass

        with pytest.raises(TypeError):
            InjectionHarness([NotAFault()], seed=0)


class TestRunEpisode:
    def test_baseline_run_succeeds(self, builder, scenarios):
        record = run_episode(builder, scenarios[0], autopilot_agent_factory())
        assert record.success
        assert record.distance_km > 0.05
        assert record.injector == "none"
        assert record.violations == []
        assert record.injection_frames == []

    def test_fault_run_records_injections(self, builder, scenarios):
        record = run_episode(
            builder,
            scenarios[0],
            autopilot_agent_factory(),
            faults=[GaussianNoise(0.05)],
            injector_name="gaussian",
            harness_seed=4,
        )
        assert record.injector == "gaussian"
        assert record.injection_frames, "always-on fault must log activations"
        assert record.faults[0]["name"] == "gaussian"

    def test_stuck_steer_causes_violations(self, builder, scenarios):
        record = run_episode(
            builder,
            scenarios[0],
            autopilot_agent_factory(),
            faults=[ControlStuckAt("steer", 1.0, trigger=Trigger(start_frame=30))],
            injector_name="stuck-steer",
        )
        assert not record.success
        assert record.n_violations > 0
        ttv = record.time_to_violation_s()
        assert ttv is not None and ttv >= 0.0

    def test_deterministic_replay(self, builder, scenarios):
        kwargs = dict(
            faults=[GaussianNoise(0.08)], injector_name="g", harness_seed=11
        )
        a = run_episode(builder, scenarios[0], autopilot_agent_factory(), **kwargs)
        b = run_episode(builder, scenarios[0], autopilot_agent_factory(), **kwargs)
        assert a.distance_km == b.distance_km
        assert a.frames == b.frames
        assert [v["frame"] for v in a.violations] == [v["frame"] for v in b.violations]

    def test_nn_agent_episode_runs(self, builder, scenarios):
        model = ILCNN(TINY)
        model.set_training(False)
        record = run_episode(
            builder, scenarios[0], nn_agent_factory(model), faults=[WeightNoise(0.3)],
            injector_name="wnoise",
        )
        # The tiny random model won't succeed; the pipeline must still work.
        assert record.frames > 0
        assert record.faults[0]["name"] == "weight-noise"


class TestRunRecord:
    def _record(self, **kw):
        defaults = dict(
            scenario="s", injector="i", seed=0, success=False, frames=150,
            duration_s=10.0, distance_km=0.5, time_limit_s=60.0,
            violations=[
                {"type": "lane", "frame": 30, "time_s": 2.0, "is_accident": False, "position": [0, 0]},
                {"type": "collision_vehicle", "frame": 90, "time_s": 6.0, "is_accident": True, "position": [0, 0]},
            ],
            injection_frames=[15],
        )
        defaults.update(kw)
        return RunRecord(**defaults)

    def test_counts(self):
        r = self._record()
        assert r.n_violations == 2
        assert r.n_accidents == 1
        assert r.violations_per_km == pytest.approx(4.0)
        assert r.accidents_per_km == pytest.approx(2.0)

    def test_zero_distance_guard(self):
        r = self._record(distance_km=0.0)
        assert r.violations_per_km == 0.0

    def test_ttv_first_violation_after_injection(self):
        r = self._record()
        assert r.time_to_violation_s() == pytest.approx((30 - 15) / 15.0)

    def test_ttv_none_without_injection(self):
        r = self._record(injection_frames=[])
        assert r.time_to_violation_s() is None

    def test_ttv_none_when_violations_precede(self):
        r = self._record(injection_frames=[120])
        assert r.time_to_violation_s() is None


class TestCampaign:
    def test_paired_design_and_grouping(self, builder, scenarios):
        campaign = Campaign(
            scenarios,
            autopilot_agent_factory(),
            injectors={"none": [], "delay": [OutputDelay(10)]},
            builder=builder,
        )
        assert campaign.total_runs() == 4
        result = campaign.run()
        groups = result.by_injector()
        assert set(groups) == {"none", "delay"}
        assert [r.scenario for r in groups["none"]] == [r.scenario for r in groups["delay"]]

    def test_validation(self, builder, scenarios):
        with pytest.raises(ValueError):
            Campaign([], autopilot_agent_factory(), {"none": []})
        with pytest.raises(ValueError):
            Campaign(scenarios, autopilot_agent_factory(), {})

    def test_result_save_load_roundtrip(self, tmp_path, builder, scenarios):
        campaign = Campaign(
            scenarios[:1], autopilot_agent_factory(), {"none": []}, builder=builder
        )
        result = campaign.run()
        path = tmp_path / "result.json"
        result.save(path)
        loaded = CampaignResult.load(path)
        assert len(loaded.records) == 1
        assert loaded.records[0].scenario == result.records[0].scenario
        assert loaded.records[0].success == result.records[0].success

    def test_filter_and_injector_order(self, builder, scenarios):
        campaign = Campaign(
            scenarios[:1],
            autopilot_agent_factory(),
            injectors={"none": [], "a": [GaussianNoise(0.01)]},
            builder=builder,
        )
        result = campaign.run()
        assert result.injectors() == ["none", "a"]
        assert len(result.filter("a")) == 1

    def test_fault_models_reusable_across_episodes(self, builder, scenarios):
        """The same fault instances serve every episode of an injector."""
        fault = GaussianNoise(0.05)
        campaign = Campaign(
            scenarios, autopilot_agent_factory(), {"g": [fault]}, builder=builder
        )
        result = campaign.run()
        assert all(r.injection_frames for r in result.records)


class TestStandardScenarios:
    def test_time_limits_track_route_length(self):
        suite = standard_scenarios(3, seed=4, town_config=TOWN)
        for scn in suite:
            # limit = route/5*1.8 + 15 and route >= manhattan >= 100
            assert scn.mission.time_limit_s >= 100 / 5.0 * 1.8
