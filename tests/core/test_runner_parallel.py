"""Tests for the parallel campaign runner: tasks, executors, determinism."""

import pickle

import pytest

from repro.agent import autopilot_agent_factory, nn_agent_factory
from repro.agent.ilcnn import ILCNN, ILCNNConfig
from repro.core import (
    Campaign,
    ParallelCampaignRunner,
    ProcessExecutor,
    SerialExecutor,
    episode_seed,
    execute_task,
    make_executor,
    metrics_by_injector,
    standard_scenarios,
    summary_frame,
)
from repro.core.faults import GaussianNoise, OutputDelay
from repro.sim.builders import SimulationBuilder
from repro.sim.render import CameraModel
from repro.sim.town import GridTownConfig

TOWN = GridTownConfig(rows=2, cols=3)
TINY = ILCNNConfig(input_hw=(16, 24), conv_channels=(4, 6, 6), trunk_dim=16,
                   speed_dim=4, branch_hidden=8, dropout=0.0)


@pytest.fixture(scope="module")
def builder():
    return SimulationBuilder(camera=CameraModel(width=24, height=16), with_lidar=False)


@pytest.fixture(scope="module")
def scenarios():
    return standard_scenarios(2, seed=9, town_config=TOWN, min_distance=60, max_distance=160)


INJECTORS = {
    "none": [],
    "delay": [OutputDelay(8)],
    "gaussian": [GaussianNoise(0.05)],
}


def _runner(builder, scenarios, **kw):
    return ParallelCampaignRunner(
        scenarios, autopilot_agent_factory(), INJECTORS, builder=builder, **kw
    )


class TestTaskGrid:
    def test_canonical_order_and_seeds(self, builder, scenarios):
        runner = _runner(builder, scenarios, base_seed=3)
        tasks = runner.tasks()
        assert len(tasks) == runner.total_runs() == 6
        assert [t.index for t in tasks] == list(range(6))
        # Injector-major, scenario-minor, with the paired-design formula.
        assert [t.injector for t in tasks[:2]] == ["none", "none"]
        assert tasks[3].seed == episode_seed(3, 1, 1)

    def test_seed_formula_matches_serial_campaign(self, builder, scenarios):
        """Runner seeds must equal the historical Campaign formula."""
        runner = _runner(builder, scenarios, base_seed=7)
        for task in runner.tasks():
            inj_idx = list(INJECTORS).index(task.injector)
            scn_idx = [s.name for s in scenarios].index(task.scenario.name)
            assert task.seed == 7 * 1_000_003 + inj_idx * 10_007 + scn_idx

    def test_validation(self, builder, scenarios):
        with pytest.raises(ValueError):
            ParallelCampaignRunner([], autopilot_agent_factory(), INJECTORS)
        with pytest.raises(ValueError):
            ParallelCampaignRunner(scenarios, autopilot_agent_factory(), {})


class TestExecutorSelection:
    def test_default_is_serial(self):
        assert isinstance(make_executor(), SerialExecutor)
        assert isinstance(make_executor(workers=1), SerialExecutor)

    def test_workers_select_process(self):
        ex = make_executor(workers=4)
        assert isinstance(ex, ProcessExecutor)
        assert ex.workers == 4

    def test_explicit_names_and_instances(self):
        assert isinstance(make_executor("serial"), SerialExecutor)
        assert isinstance(make_executor("process", workers=2), ProcessExecutor)
        ex = SerialExecutor()
        assert make_executor(ex) is ex
        with pytest.raises(ValueError):
            make_executor("threads")

    def test_serial_with_multiple_workers_conflicts(self):
        with pytest.raises(ValueError, match="conflicts"):
            make_executor("serial", workers=8)
        with pytest.raises(ValueError, match="conflicts"):
            make_executor(SerialExecutor(), workers=2)

    def test_executor_instance_is_authoritative(self):
        ex = ProcessExecutor(workers=2)
        assert make_executor(ex, workers=8) is ex

    def test_process_chunking_covers_all_tasks(self, builder, scenarios):
        runner = _runner(builder, scenarios)
        tasks = runner.tasks()
        ex = ProcessExecutor(workers=2, chunksize=4)
        chunks = ex._chunks(tasks)
        assert [len(c) for c in chunks] == [4, 2]
        flat = [t.index for c in chunks for t in c]
        assert flat == list(range(6))


class TestPicklability:
    """Everything crossing the process boundary must pickle."""

    def test_context_roundtrip(self, builder, scenarios):
        runner = _runner(builder, scenarios)
        context = pickle.loads(pickle.dumps(runner.context()))
        record = execute_task(context, runner.tasks()[0])
        assert record.injector == "none"

    def test_nn_factory_roundtrip(self):
        model = ILCNN(TINY)
        model.set_training(False)
        factory = pickle.loads(pickle.dumps(nn_agent_factory(model)))
        assert factory.model.config.trunk_dim == TINY.trunk_dim


class TestDeterminism:
    def test_serial_vs_parallel_identical(self, builder, scenarios):
        """The hard invariant: worker count must not change any result.

        Serial Campaign, serial-executor runner and a 2-worker process
        pool must produce identical RunRecord rows, identical per-injector
        metrics and identical summary rows for the same scenario suite
        and seeds.
        """
        serial = Campaign(
            scenarios, autopilot_agent_factory(), INJECTORS, builder=builder
        ).run()
        in_process = _runner(builder, scenarios, executor="serial").run()
        pooled = _runner(builder, scenarios, workers=2, executor="process").run()

        serial_rows = [r.to_dict() for r in serial.records]
        assert [r.to_dict() for r in in_process.records] == serial_rows
        assert [r.to_dict() for r in pooled.records] == serial_rows
        assert metrics_by_injector(pooled.records) == metrics_by_injector(serial.records)
        assert summary_frame(pooled.records) == summary_frame(serial.records)

    def test_campaign_workers_kwarg(self, builder, scenarios):
        """Campaign(..., workers=2) routes through the pool, same results."""
        base = Campaign(
            scenarios[:1], autopilot_agent_factory(), {"none": [], "delay": [OutputDelay(8)]},
            builder=builder,
        ).run()
        pooled = Campaign(
            scenarios[:1], autopilot_agent_factory(), {"none": [], "delay": [OutputDelay(8)]},
            builder=builder, workers=2,
        ).run()
        assert [r.to_dict() for r in pooled.records] == [r.to_dict() for r in base.records]


class TestCliWiring:
    def test_workers_flag_parsed(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["campaign", "--workers", "3"])
        assert args.workers == 3

    def test_workers_default_serial(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["sweep-delay"])
        assert args.workers == 1


class TestWarmStart:
    def test_context_carries_deduplicated_town_configs(self, builder, scenarios):
        runner = _runner(builder, scenarios)
        context = runner.context()
        assert context.warm_configs == (TOWN,)

    def test_init_worker_prewarms_scene_cache(self, builder, scenarios):
        from repro.core.runner import _init_worker
        from repro.sim.builders import SceneCache, SimulationBuilder
        from repro.sim.render import CameraModel

        cache = SceneCache()
        warm_builder = SimulationBuilder(
            camera=CameraModel(width=24, height=16),
            with_lidar=False,
            scene_cache=cache,
        )
        runner = ParallelCampaignRunner(
            scenarios, autopilot_agent_factory(), INJECTORS, builder=warm_builder
        )
        _init_worker(runner.context())
        stats = cache.stats()
        assert stats["towns"] == 1 and stats["renderers"] == 1
