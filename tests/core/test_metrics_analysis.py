"""Tests for resilience metrics and statistical analysis."""

import numpy as np
import pytest

from repro.core.analysis import (
    bootstrap_ci,
    compare_to_baseline,
    mann_whitney_u,
    summarize,
)
from repro.core.campaign import RunRecord
from repro.core.metrics import (
    accidents_per_km,
    compute_metrics,
    metrics_by_injector,
    mission_success_rate,
    time_to_violation,
    violations_per_km,
)


def record(injector="none", success=True, km=1.0, violations=(), injections=(), frames=150):
    return RunRecord(
        scenario="s",
        injector=injector,
        seed=0,
        success=success,
        frames=frames,
        duration_s=frames / 15.0,
        distance_km=km,
        time_limit_s=60.0,
        violations=[
            {
                "type": t,
                "frame": f,
                "time_s": f / 15.0,
                "is_accident": t.startswith("collision"),
                "position": [0, 0],
            }
            for t, f in violations
        ],
        injection_frames=list(injections),
    )


class TestMetricFunctions:
    def test_msr(self):
        records = [record(success=True), record(success=True), record(success=False)]
        assert mission_success_rate(records) == pytest.approx(100.0 * 2 / 3)

    def test_msr_empty_is_nan(self):
        assert np.isnan(mission_success_rate([]))

    def test_vpk_pooled_over_distance(self):
        records = [
            record(km=1.0, violations=[("lane", 10)]),
            record(km=3.0, violations=[("lane", 10), ("curb", 20), ("lane", 30)]),
        ]
        assert violations_per_km(records) == pytest.approx(4 / 4.0)

    def test_vpk_zero_distance(self):
        assert violations_per_km([record(km=0.0)]) == 0.0

    def test_apk_counts_only_collisions(self):
        records = [
            record(km=2.0, violations=[("lane", 10), ("collision_vehicle", 20)]),
        ]
        assert accidents_per_km(records) == pytest.approx(0.5)
        assert violations_per_km(records) == pytest.approx(1.0)

    def test_ttv_only_manifested(self):
        records = [
            record(violations=[("lane", 30)], injections=[15]),  # ttv = 1 s
            record(violations=[("lane", 30)], injections=[]),  # no injection
            record(violations=[], injections=[15]),  # no manifestation
        ]
        ttvs = time_to_violation(records)
        assert len(ttvs) == 1
        assert ttvs[0] == pytest.approx(1.0)


class TestComputeMetrics:
    def test_aggregate_fields(self):
        records = [
            record(success=True, km=1.0, violations=[("lane", 30)], injections=[15]),
            record(success=False, km=2.0, violations=[("collision_vehicle", 45)], injections=[15]),
        ]
        m = compute_metrics(records)
        assert m.n_runs == 2
        assert m.msr == pytest.approx(50.0)
        assert m.total_km == pytest.approx(3.0)
        assert m.total_violations == 2
        assert m.total_accidents == 1
        assert len(m.vpk_per_run) == 2
        assert m.ttv_median_s == pytest.approx(np.median([1.0, 2.0]))

    def test_ttv_median_nan_when_empty(self):
        m = compute_metrics([record()])
        assert np.isnan(m.ttv_median_s)

    def test_summary_row_keys(self):
        m = compute_metrics([record()])
        row = m.summary_row()
        assert set(row) == {"runs", "MSR_%", "VPK", "APK", "TTV_median_s", "km"}

    def test_group_by_injector(self):
        records = [record("none"), record("gauss"), record("gauss", success=False)]
        groups = metrics_by_injector(records)
        assert groups["none"].n_runs == 1
        assert groups["gauss"].n_runs == 2
        assert groups["gauss"].msr == pytest.approx(50.0)


class TestEmptySlice:
    """The documented empty-slice convention: rates NaN, counts 0.

    A fault class with no completed runs (freshly resumed or partially
    drained queue campaign) must aggregate, not raise — and it must not
    masquerade as "0 % success" / "0 violations" either.
    """

    def test_all_rate_aggregates_agree_on_nan(self):
        assert np.isnan(mission_success_rate([]))
        assert np.isnan(violations_per_km([]))
        assert np.isnan(accidents_per_km([]))

    def test_compute_metrics_empty_does_not_raise(self):
        m = compute_metrics([])
        assert m.n_runs == 0
        assert np.isnan(m.msr) and np.isnan(m.vpk) and np.isnan(m.apk)
        assert m.total_km == 0.0
        assert m.total_violations == 0 and m.total_accidents == 0
        assert m.ttv_s == [] and m.vpk_per_run == [] and m.success_flags == []
        assert np.isnan(m.ttv_median_s)

    def test_empty_summary_row_is_renderable(self):
        row = compute_metrics([]).summary_row()
        assert row["runs"] == 0
        assert np.isnan(row["MSR_%"])
        assert row["TTV_median_s"] is None

    def test_zero_distance_with_runs_stays_zero(self):
        # Distinct case: completed runs that never moved keep rate 0.0 —
        # the runs happened and produced no per-km events.
        assert violations_per_km([record(km=0.0)]) == 0.0
        assert accidents_per_km([record(km=0.0)]) == 0.0
        assert mission_success_rate([record(km=0.0)]) == pytest.approx(100.0)


class TestSummarize:
    def test_five_numbers(self):
        s = summarize([1, 2, 3, 4, 5])
        assert (s.minimum, s.median, s.maximum) == (1, 3, 5)
        assert s.q1 == 2 and s.q3 == 4
        assert s.iqr() == 2
        assert s.n == 5

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize([])


class TestBootstrap:
    def test_ci_brackets_mean(self):
        rng = np.random.default_rng(0)
        values = rng.normal(10.0, 2.0, 200)
        lo, hi = bootstrap_ci(values, np.mean, seed=1)
        assert lo < values.mean() < hi
        assert hi - lo < 1.5

    def test_ci_narrows_with_n(self):
        rng = np.random.default_rng(0)
        small = rng.normal(0, 1, 10)
        large = rng.normal(0, 1, 1000)
        lo_s, hi_s = bootstrap_ci(small, np.mean, seed=2)
        lo_l, hi_l = bootstrap_ci(large, np.mean, seed=2)
        assert (hi_l - lo_l) < (hi_s - lo_s)

    def test_deterministic(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert bootstrap_ci(values, seed=5) == bootstrap_ci(values, seed=5)

    def test_validation(self):
        with pytest.raises(ValueError):
            bootstrap_ci([])
        with pytest.raises(ValueError):
            bootstrap_ci([1.0], confidence=1.5)


class TestMannWhitney:
    def test_detects_clear_shift(self):
        rng = np.random.default_rng(0)
        a = rng.normal(0, 1, 40)
        b = rng.normal(3, 1, 40)
        _, p = mann_whitney_u(a, b)
        assert p < 1e-4

    def test_no_difference_high_p(self):
        rng = np.random.default_rng(0)
        a = rng.normal(0, 1, 40)
        b = rng.normal(0, 1, 40)
        _, p = mann_whitney_u(a, b)
        assert p > 0.05

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            mann_whitney_u([], [1.0])

    def test_fallback_matches_scipy(self):
        """Our normal-approximation fallback agrees with scipy on ranks."""
        pytest.importorskip("scipy")
        import repro.core.analysis as analysis

        rng = np.random.default_rng(3)
        a = rng.normal(0, 1, 30)
        b = rng.normal(0.8, 1, 30)
        u_scipy, p_scipy = mann_whitney_u(a, b)

        # Re-run with scipy hidden to exercise the fallback.
        import sys
        import unittest.mock as mock

        with mock.patch.dict(sys.modules, {"scipy": None, "scipy.stats": None}):
            u_fallback, p_fallback = analysis.mann_whitney_u(a, b)
        assert p_fallback == pytest.approx(p_scipy, abs=0.02)


class TestCompareToBaseline:
    def test_effect_summary(self):
        groups = {
            "none": [0.0, 0.0, 0.5, 0.0],
            "gauss": [3.0, 5.0, 4.0, 6.0],
        }
        out = compare_to_baseline(groups, baseline="none")
        assert "gauss" in out and "none" not in out
        assert out["gauss"]["median_shift"] > 3.0
        assert out["gauss"]["p_value"] < 0.1

    def test_missing_baseline(self):
        with pytest.raises(KeyError):
            compare_to_baseline({"a": [1.0]}, baseline="none")
