"""Episode-multiplexed execution: drivers, slots, byte-identity.

The contract under test: running E episodes interleaved at tick
granularity through :class:`~repro.core.multiplex.EpisodeMultiplexer`
(with cross-episode batched sensing) produces **exactly** the records
the serial path produces — same violations, same frame counts, same
fingerprints — across compound faults, mixed weather, model faults (via
the serial fallback) and the process/queue backend compositions.
"""

from dataclasses import replace

import pytest

from repro.agent import AutopilotAgentFactory, autopilot_agent_factory, nn_agent_factory
from repro.agent.ilcnn import ILCNN, ILCNNConfig
from repro.core import (
    Campaign,
    DEFAULT_EPISODES_PER_SLOT,
    EpisodeDriver,
    EpisodeMultiplexer,
    FaultTolerancePolicy,
    MultiplexedExecutor,
    ParallelCampaignRunner,
    make_executor,
    multiplex_slot_size,
    run_episode,
    standard_scenarios,
)
from repro.core.faults import (
    GPSNoiseFault,
    GaussianNoise,
    OutputDelay,
    WeightBitFlip,
)
from repro.core.spec import ExecutionSpec, SpecError
from repro.sim.builders import SimulationBuilder
from repro.sim.render import CameraModel
from repro.sim.town import GridTownConfig

TOWN = GridTownConfig(rows=2, cols=3)
TINY = ILCNNConfig(input_hw=(16, 24), conv_channels=(4, 6, 6), trunk_dim=16,
                   speed_dim=4, branch_hidden=8, dropout=0.0)


@pytest.fixture(scope="module")
def builder():
    return SimulationBuilder(camera=CameraModel(width=24, height=16), with_lidar=True)


@pytest.fixture(scope="module")
def scenarios():
    """Three missions, deliberately in three different weathers."""
    suite = standard_scenarios(
        3, seed=9, town_config=TOWN, n_npc_vehicles=2, n_pedestrians=1,
        min_distance=60, max_distance=160,
    )
    weathers = ("HardRainNoon", "FoggyNoon", "ClearSunset")
    return [replace(s, weather=w) for s, w in zip(suite, weathers)]


def injectors():
    return {
        "none": [],
        "compound": [GaussianNoise(sigma=0.1), OutputDelay(delay_frames=3)],
        "gps": [GPSNoiseFault(sigma_m=4.0)],
    }


def assert_records_equal(a, b):
    assert len(a.records) == len(b.records)
    for ra, rb in zip(a.records, b.records):
        assert ra.to_dict() == rb.to_dict(), (ra.injector, ra.scenario)


class TestEpisodeDriver:
    def test_stepwise_drive_equals_run_episode(self, builder, scenarios):
        faults = [GaussianNoise(sigma=0.08), OutputDelay(delay_frames=2)]
        reference = run_episode(
            builder, scenarios[0], autopilot_agent_factory(),
            faults=[GaussianNoise(sigma=0.08), OutputDelay(delay_frames=2)],
            injector_name="compound", harness_seed=13,
        )
        driver = EpisodeDriver(
            builder, scenarios[0], autopilot_agent_factory(),
            faults=faults, injector_name="compound", harness_seed=13,
        )
        driver.setup()
        try:
            driver.start()
            # Manual phase-by-phase stepping, the multiplexer's view.
            while driver.begin_frame():
                driver.step_client()
                driver.step_world()
                driver.complete_frame(driver.sense())
            record = driver.finalize()
        finally:
            driver.close()
        assert record.to_dict() == reference.to_dict()

    def test_close_is_idempotent_and_safe_before_setup(self, builder, scenarios):
        driver = EpisodeDriver(builder, scenarios[0], autopilot_agent_factory())
        driver.close()  # never set up: must not raise
        driver.close()
        assert driver.state == "closed"

    def test_client_clock_skew_changes_behaviour_not_integrity(
        self, builder, scenarios
    ):
        """The decoupled-clock seam: a lagging client acts on stale
        bundles.  The episode still runs to a well-formed record."""
        lockstep = EpisodeDriver(
            builder, scenarios[0], autopilot_agent_factory(), harness_seed=1,
        ).run()
        skewed = EpisodeDriver(
            builder, scenarios[0], autopilot_agent_factory(), harness_seed=1,
            client_clock_skew=-3,
        ).run()
        assert lockstep.to_dict() == EpisodeDriver(
            builder, scenarios[0], autopilot_agent_factory(), harness_seed=1,
            client_clock_skew=0,
        ).run().to_dict()  # skew 0 is byte-identical lockstep
        assert skewed.frames > 0
        assert skewed.scenario == lockstep.scenario


class TestMultiplexedByteIdentity:
    def test_mixed_weather_compound_faults(self, builder, scenarios):
        serial = Campaign(
            scenarios, AutopilotAgentFactory(), injectors(),
            builder=builder, base_seed=7,
        ).run()
        mux = Campaign(
            scenarios, AutopilotAgentFactory(), injectors(),
            builder=builder, base_seed=7, backend="multiplexed",
            episodes_per_slot=4,
        ).run()
        assert_records_equal(serial, mux)

    def test_model_fault_falls_back_to_serial_and_matches(self, builder, scenarios):
        model = ILCNN(TINY)
        injectors_nn = {"none": [], "bitflip": [WeightBitFlip(n_flips=2)]}
        serial = Campaign(
            scenarios[:2], nn_agent_factory(model), injectors_nn,
            builder=builder, base_seed=3,
        ).run()
        mux = Campaign(
            scenarios[:2], nn_agent_factory(model), injectors_nn,
            builder=builder, base_seed=3, backend="multiplexed",
            episodes_per_slot=4,
        ).run()
        assert_records_equal(serial, mux)

    def test_process_workers_drain_multiplexed_slots(self, builder, scenarios):
        serial = Campaign(
            scenarios, AutopilotAgentFactory(), injectors(),
            builder=builder, base_seed=7,
        ).run()
        proc = Campaign(
            scenarios, AutopilotAgentFactory(), injectors(),
            builder=builder, base_seed=7, workers=2, episodes_per_slot=3,
        ).run()
        assert_records_equal(serial, proc)

    def test_queue_workers_drain_multiplexed_slots(self, builder, scenarios, tmp_path):
        serial = Campaign(
            scenarios[:2], AutopilotAgentFactory(), injectors(),
            builder=builder, base_seed=7,
        ).run()
        queued = Campaign(
            scenarios[:2], AutopilotAgentFactory(), injectors(),
            builder=builder, base_seed=7, backend="queue",
            queue_dir=tmp_path / "q", workers=1, episodes_per_slot=3,
        ).run()
        assert_records_equal(serial, queued)

    def test_timeout_policy_takes_sandboxed_serial_path(self, builder, scenarios):
        policy = FaultTolerancePolicy(timeout_s=300.0)
        serial = Campaign(
            scenarios[:1], AutopilotAgentFactory(), {"none": []},
            builder=builder, base_seed=7, fault_tolerance=policy,
        ).run()
        mux = Campaign(
            scenarios[:1], AutopilotAgentFactory(), {"none": []},
            builder=builder, base_seed=7, backend="multiplexed",
            episodes_per_slot=4, fault_tolerance=policy,
        ).run()
        assert_records_equal(serial, mux)


class TestSlotResolution:
    def test_make_executor_multiplexed(self):
        ex = make_executor("multiplexed", episodes_per_slot=6)
        assert isinstance(ex, MultiplexedExecutor)
        assert ex.episodes_per_slot == 6

    def test_multiplexed_conflicts_with_workers(self):
        with pytest.raises(ValueError, match="conflicts with workers"):
            make_executor("multiplexed", workers=4)

    def test_bare_slot_size_selects_multiplexed(self):
        assert isinstance(
            make_executor(None, episodes_per_slot=4), MultiplexedExecutor
        )
        # ...but an explicit worker pool keeps the process backend.
        assert make_executor(None, workers=3, episodes_per_slot=4).name == "process"

    def test_context_slot_size_fallbacks(self, builder, scenarios):
        runner = ParallelCampaignRunner(
            scenarios, autopilot_agent_factory(), {"none": []},
            builder=builder, episodes_per_slot=5,
        )
        assert multiplex_slot_size(runner.context()) == 5
        plain = ParallelCampaignRunner(
            scenarios, autopilot_agent_factory(), {"none": []}, builder=builder,
        )
        assert multiplex_slot_size(plain.context()) == 1

    def test_bare_multiplexed_backend_defaults_slot(self, builder, scenarios):
        """backend="multiplexed" without a slot size must still
        actually multiplex (the default, not 1)."""
        runner = ParallelCampaignRunner(
            scenarios, autopilot_agent_factory(), {"none": []},
            builder=builder, executor="multiplexed",
        )
        mux = EpisodeMultiplexer(runner.context())
        assert mux.episodes_per_slot == 1  # context says 1...
        assert DEFAULT_EPISODES_PER_SLOT > 1  # ...executor upgrades it

    def test_validation(self, builder, scenarios):
        with pytest.raises(ValueError):
            MultiplexedExecutor(episodes_per_slot=0)
        with pytest.raises(ValueError):
            Campaign(
                scenarios, autopilot_agent_factory(), {"none": []},
                builder=builder, episodes_per_slot=0,
            )
        with pytest.raises(ValueError):
            ParallelCampaignRunner(
                scenarios, autopilot_agent_factory(), {"none": []},
                builder=builder, episodes_per_slot=0,
            )


class TestSpecPlumbing:
    def test_round_trip(self):
        spec = ExecutionSpec(backend="multiplexed", episodes_per_slot=3)
        data = spec.to_dict()
        assert data["backend"] == "multiplexed"
        assert data["episodes_per_slot"] == 3
        again = ExecutionSpec.from_dict(data)
        assert again.backend == "multiplexed"
        assert again.episodes_per_slot == 3

    def test_defaults_to_none(self):
        assert ExecutionSpec.from_dict({}).episodes_per_slot is None

    def test_validation(self):
        with pytest.raises(SpecError):
            ExecutionSpec(episodes_per_slot=0)
        with pytest.raises(SpecError):
            ExecutionSpec.from_dict({"episodes_per_slot": "4"})
        with pytest.raises(SpecError):
            ExecutionSpec.from_dict({"episodes_per_slot": True})
        with pytest.raises(SpecError):
            ExecutionSpec(backend="threads")

    def test_campaign_from_spec_override(self, builder):
        from repro.core.spec import AgentSpec, CampaignSpec, ScenarioSuiteSpec

        spec = CampaignSpec(
            name="mux",
            scenarios=ScenarioSuiteSpec(n=1, seed=1),
            agent=AgentSpec(name="autopilot"),
            injectors={"none": []},
            execution=ExecutionSpec(backend="multiplexed", episodes_per_slot=2),
        )
        campaign = Campaign.from_spec(spec)
        assert campaign.backend == "multiplexed"
        assert campaign.episodes_per_slot == 2
        override = Campaign.from_spec(spec, episodes_per_slot=7)
        assert override.episodes_per_slot == 7


class TestCliPlumbing:
    def test_flags_parse(self):
        from repro.cli import build_parser

        parser = build_parser()
        args = parser.parse_args(
            ["run", "spec.json", "--episodes-per-slot", "4"]
        )
        assert args.episodes_per_slot == 4
        args = parser.parse_args(
            ["worker", "--queue-dir", "q", "--episodes-per-slot", "2"]
        )
        assert args.episodes_per_slot == 2
        args = parser.parse_args(["campaign", "--episodes-per-slot", "8"])
        assert args.episodes_per_slot == 8

    def test_campaign_spec_carries_slot_size(self):
        from repro.cli import _execution_spec_from_args, build_parser

        args = build_parser().parse_args(["campaign", "--episodes-per-slot", "8"])
        assert _execution_spec_from_args(args).episodes_per_slot == 8

    def test_queue_status_empty_dir(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["queue-status", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "none published" in out
        assert "pending: 0" in out

    def test_queue_status_missing_dir_exits_2(self, tmp_path):
        from repro.cli import main

        with pytest.raises(SystemExit) as exc:
            main(["queue-status", str(tmp_path / "nope")])
        assert exc.value.code == 2

    def test_queue_status_reports_campaign(self, builder, scenarios, tmp_path, capsys):
        Campaign(
            scenarios[:1], AutopilotAgentFactory(), {"none": []},
            builder=builder, backend="queue", queue_dir=tmp_path / "q", workers=1,
        ).run()
        from repro.cli import main

        assert main(["queue-status", str(tmp_path / "q")]) == 0
        out = capsys.readouterr().out
        assert "1 task(s)" in out
        assert "results: 1" in out
        assert "workers: 1 seen" in out
