"""The Broker conformance suite, run against both shipped brokers.

``FilesystemBroker`` on a shared directory and ``TcpBroker`` against a
:class:`~repro.core.netqueue.BrokerServer` must be operationally
indistinguishable — same claim exclusivity, same lease/expiry semantics,
same failure parking, same checkpoint behaviour.  The suite itself lives
in :mod:`tests.core.broker_conformance`; this module only binds it to
concrete brokers (and is the template for binding any future one).
"""

import pytest

from repro.agent import autopilot_agent_factory
from repro.core import FilesystemBroker, ParallelCampaignRunner, standard_scenarios
from repro.core.faults import OutputDelay
from repro.core.netqueue import BrokerServer, make_broker
from repro.sim.builders import SimulationBuilder
from repro.sim.render import CameraModel
from repro.sim.town import GridTownConfig

from broker_conformance import BrokerConformanceSuite

INJECTORS = {"none": [], "delay": [OutputDelay(8)]}


@pytest.fixture(scope="module")
def material():
    """One published-campaign payload shared by every test (read-only)."""
    builder = SimulationBuilder(
        camera=CameraModel(width=24, height=16), with_lidar=False
    )
    scenarios = standard_scenarios(
        2, seed=9, town_config=GridTownConfig(rows=2, cols=3),
        min_distance=60, max_distance=160,
    )
    runner = ParallelCampaignRunner(
        scenarios, autopilot_agent_factory(), INJECTORS, builder=builder
    )
    return runner.context(), runner.tasks()


class TestFilesystemBrokerConformance(BrokerConformanceSuite):
    @pytest.fixture
    def make_broker(self, tmp_path):
        return lambda lease_s: FilesystemBroker(tmp_path / "q", lease_s=lease_s)


class TestTcpBrokerConformance(BrokerConformanceSuite):
    @pytest.fixture
    def make_broker(self, tmp_path):
        servers = []

        def factory(lease_s):
            server = BrokerServer(
                tmp_path / "q", host="127.0.0.1", port=0, lease_s=lease_s
            ).start()
            servers.append(server)
            return make_broker(server.address, lease_s=lease_s)

        yield factory
        for server in servers:
            server.stop()
