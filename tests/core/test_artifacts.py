"""Tests for the content-addressed artifact store (repro.core.artifacts).

The warm-start invariant: an NN campaign whose weights travel through
the artifact store is indistinguishable from one whose context carried
them inline — same ``config_signature`` (hence same episode
fingerprints), same model arrays — while the factory itself pickles at
bytes, not megabytes, and each worker process fetches the blob once.
"""

import pickle

import pytest

import repro.core.artifacts as artifacts
from repro.agent.agents import NNAgentFactory, model_weight_digest
from repro.agent.ilcnn import ILCNN, ILCNNConfig
from repro.core.artifacts import (
    ArtifactNNAgentFactory,
    ArtifactStore,
    internalize_nn_factory,
    local_artifact_cache_dir,
)
from repro.core.netqueue import BrokerServer, make_broker
from repro.core.queue import FilesystemBroker

#: Deliberately non-default architecture: the .npz holds only arrays, so
#: round-tripping this config through the factory is what the tests pin.
TINY = ILCNNConfig(
    input_hw=(16, 24),
    conv_channels=(4, 8, 8),
    trunk_dim=16,
    speed_dim=8,
    branch_hidden=8,
    seed=7,
)


@pytest.fixture
def fresh_caches(tmp_path, monkeypatch):
    """An empty process cache and a private on-disk cache — every fetch
    in the test starts cold."""
    monkeypatch.setattr(artifacts, "_MODEL_CACHE", {})
    monkeypatch.setenv("REPRO_ARTIFACT_CACHE", str(tmp_path / "local-cache"))


@pytest.fixture(scope="module")
def eager_factory():
    return NNAgentFactory(ILCNN(TINY), replan_tolerance=12.0)


class TestArtifactStore:
    def test_put_get_has_roundtrip(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        sha = "ab" * 20
        assert store.has(sha) is False
        assert store.get(sha) is None
        assert store.put(b"payload", sha) == sha
        assert store.has(sha) is True
        assert store.get(sha) == b"payload"
        # Sharded layout: root/<sha[:2]>/<sha>.
        assert store.path(sha) == tmp_path / "store" / "ab" / sha

    def test_put_is_idempotent(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        sha = "cd" * 20
        store.put(b"first", sha)
        store.put(b"ignored", sha)  # same key = same bytes, by contract
        assert store.get(sha) == b"first"

    @pytest.mark.parametrize(
        "bad", ["../../etc/passwd", "ABCDEF123456", "short", "", "a" * 65, 42]
    )
    def test_non_hex_digests_are_rejected(self, tmp_path, bad):
        store = ArtifactStore(tmp_path / "store")
        with pytest.raises(ValueError, match="invalid artifact digest"):
            store.path(bad)

    def test_local_cache_dir_honours_env_override(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_ARTIFACT_CACHE", str(tmp_path / "mine"))
        assert local_artifact_cache_dir() == tmp_path / "mine"


class TestInternalize:
    def test_non_nn_factory_passes_through(self, tmp_path):
        from repro.agent import autopilot_agent_factory

        factory = autopilot_agent_factory()
        broker = FilesystemBroker(tmp_path / "q")
        assert internalize_nn_factory(factory, broker, str(tmp_path / "q")) is factory

    def test_signature_identical_and_pickle_small(self, tmp_path, eager_factory):
        """Fingerprints must not depend on how weights travel."""
        broker = FilesystemBroker(tmp_path / "q")
        replica = internalize_nn_factory(eager_factory, broker, str(tmp_path / "q"))
        assert isinstance(replica, ArtifactNNAgentFactory)
        assert replica.config_signature() == eager_factory.config_signature()
        assert replica.sha == model_weight_digest(eager_factory.model)
        assert broker.artifact_has(replica.sha)
        assert len(pickle.dumps(replica)) < 2_000
        assert len(pickle.dumps(eager_factory)) > 10_000  # the weights
        # Idempotent: an already-internalized factory passes through.
        assert internalize_nn_factory(replica, broker, "x") is replica

    def test_worker_fetches_over_tcp_once(
        self, tmp_path, eager_factory, fresh_caches
    ):
        """The worker side, cold: the model comes over the wire with its
        architecture intact, lands in the process cache, and repeated
        access (context reloads, multiplexed slots) reuses the object."""
        server = BrokerServer(tmp_path / "q", port=0).start()
        try:
            replica = internalize_nn_factory(
                eager_factory, make_broker(server.address), server.address
            )
            # Simulate the worker process: nothing cached yet.
            artifacts._MODEL_CACHE.clear()
            fetched = replica.model
            assert model_weight_digest(fetched) == replica.sha
            assert fetched.config == TINY
            assert replica.model is fetched  # process cache hit
            # A clone from the coordinator's pickle shares the cache too.
            clone = pickle.loads(pickle.dumps(replica))
            assert clone.config == TINY
            assert clone.model is fetched
        finally:
            server.stop()

    def test_fetch_prefers_local_disk_cache(
        self, tmp_path, eager_factory, fresh_caches
    ):
        """Once the blob is on the worker's disk, a restarted process
        (empty in-memory cache) must not touch the broker at all — the
        source may even be unreachable."""
        broker = FilesystemBroker(tmp_path / "q")
        replica = internalize_nn_factory(eager_factory, broker, "tcp://127.0.0.1:1")
        ArtifactStore(local_artifact_cache_dir()).put(
            broker.artifact_get(replica.sha), replica.sha
        )
        artifacts._MODEL_CACHE.clear()
        assert model_weight_digest(replica.model) == replica.sha

    def test_missing_artifact_is_a_clear_error(self, tmp_path, fresh_caches):
        broker = FilesystemBroker(tmp_path / "q")
        broker.ensure_layout()
        orphan = ArtifactNNAgentFactory("ee" * 20, str(tmp_path / "q"), config=TINY)
        with pytest.raises(RuntimeError, match="not found at broker"):
            orphan.model

    def test_poisoned_artifact_is_rejected_on_load(
        self, tmp_path, eager_factory, fresh_caches
    ):
        """The store cannot verify a weights digest itself (it hashes the
        loaded arrays, not the blob) — the worker must: a wrong blob under
        a known sha raises instead of silently running different weights
        behind correct-looking fingerprints."""
        import dataclasses

        broker = FilesystemBroker(tmp_path / "q")
        replica = internalize_nn_factory(eager_factory, broker, str(tmp_path / "q"))
        # Poison the store: same architecture, different weights (seed),
        # written straight over the real blob.
        imposter = ILCNN(dataclasses.replace(TINY, seed=TINY.seed + 1))
        evil = tmp_path / "evil.npz"
        imposter.save(evil)
        broker.artifacts.path(replica.sha).write_bytes(evil.read_bytes())
        artifacts._MODEL_CACHE.clear()
        with pytest.raises(RuntimeError, match="weight digest"):
            replica.model
        # The local disk copy was evicted — a fixed store heals on retry.
        assert not ArtifactStore(local_artifact_cache_dir()).has(replica.sha)

    def test_process_cache_keys_by_config(self, tmp_path, eager_factory, fresh_caches):
        """Two factories sharing weights but not configs must not share
        whichever model loaded first."""
        import dataclasses

        broker = FilesystemBroker(tmp_path / "q")
        replica = internalize_nn_factory(eager_factory, broker, str(tmp_path / "q"))
        artifacts._MODEL_CACHE.clear()
        # dropout changes behaviour, not weights: same digest, other config.
        twin_cfg = dataclasses.replace(TINY, dropout=0.5)
        twin = ArtifactNNAgentFactory(replica.sha, replica.source, config=twin_cfg)
        assert replica.model is not twin.model
        assert replica.model.config == TINY
        assert twin.model.config == twin_cfg
        assert twin.model is twin.model  # each key still caches
