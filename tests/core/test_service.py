"""Tests for the HTTP control plane (repro.core.service).

Everything here goes through a real socket — urllib against a live
:class:`~repro.core.service.CampaignService` — because the satellite
invariant is end-to-end: submit ``examples/specs/smoke.json`` over HTTP,
poll until settled, and the streamed JSONL results are byte-identical to
what a serial ``avfi run`` of the same spec produces.
"""

import hashlib
import json
import time
import urllib.error
import urllib.request
from pathlib import Path

import pytest

import repro.core.service as service_module
from repro.core.campaign import Campaign
from repro.core.service import CampaignService, Submission
from repro.core.spec import CampaignSpec

SMOKE = Path(__file__).resolve().parents[2] / "examples" / "specs" / "smoke.json"


def _request(url, method="GET", payload=None, body=None):
    """(status, parsed-or-raw body, content-type); 4xx/5xx don't raise."""
    data = body
    headers = {}
    if payload is not None:
        data = json.dumps(payload).encode()
        headers["Content-Type"] = "application/json"
    req = urllib.request.Request(url, data=data, headers=headers, method=method)
    try:
        with urllib.request.urlopen(req, timeout=30) as resp:
            raw, status = resp.read(), resp.status
            ctype = resp.headers.get("Content-Type", "")
    except urllib.error.HTTPError as err:
        raw, status = err.read(), err.code
        ctype = err.headers.get("Content-Type", "")
    if ctype.startswith("application/json"):
        return status, json.loads(raw), ctype
    return status, raw, ctype


def _poll_settled(url, sub_id, timeout=180.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        status, summary, _ = _request(f"{url}/campaigns/{sub_id}")
        assert status == 200
        if summary["state"] in ("done", "failed"):
            return summary
        time.sleep(0.1)
    raise AssertionError(f"campaign {sub_id} never settled: {summary}")


@pytest.fixture(scope="module")
def smoke_payload():
    return json.loads(SMOKE.read_text())


@pytest.fixture(scope="module")
def expected_jsonl(smoke_payload):
    """What a local `avfi run` of the same spec yields, rendered exactly
    like the service streams it."""
    records = Campaign.from_spec(CampaignSpec.from_dict(smoke_payload)).run().records
    return "".join(json.dumps(r.to_dict()) + "\n" for r in records).encode()


@pytest.fixture(scope="module")
def service(tmp_path_factory):
    service = CampaignService(
        tmp_path_factory.mktemp("service"),
        port=0,
        default_workers=1,
        stall_timeout=120.0,
        poll_s=0.05,
    ).start()
    yield service
    service.stop()


@pytest.fixture(scope="module")
def settled_id(service, smoke_payload):
    """The smoke spec, submitted over HTTP and polled to completion —
    the shared subject of the happy-path assertions."""
    status, summary, _ = _request(
        f"{service.url}/campaigns", method="POST", payload=smoke_payload
    )
    assert status == 201, summary
    assert summary["state"] in ("queued", "running")
    final = _poll_settled(service.url, summary["id"])
    assert final["state"] == "done", final
    return summary["id"]


class TestHappyPath:
    def test_root_reports_service_and_broker(self, service):
        status, info, _ = _request(service.url)
        assert status == 200
        assert info["service"] == "avfi-campaigns"
        assert info["broker"].startswith("tcp://")

    def test_summary_counts_every_episode_ok(self, service, settled_id):
        status, summary, _ = _request(f"{service.url}/campaigns/{settled_id}")
        assert status == 200
        assert summary["name"] == "smoke"
        assert summary["total"] == 3  # 1 scenario x 3 injectors
        assert summary["counts"] == {"ok": 3}

    def test_streamed_results_byte_identical_to_serial_run(
        self, service, settled_id, expected_jsonl
    ):
        status, body, ctype = _request(f"{service.url}/campaigns/{settled_id}/results")
        assert status == 200
        assert ctype == "application/x-ndjson"
        assert body == expected_jsonl

    def test_episode_rows_in_grid_order(self, service, settled_id, smoke_payload):
        status, payload, _ = _request(
            f"{service.url}/campaigns/{settled_id}/episodes"
        )
        assert status == 200
        episodes = payload["episodes"]
        assert [e["index"] for e in episodes] == [0, 1, 2]
        assert [e["injector"] for e in episodes] == list(smoke_payload["injectors"])
        assert all(e["outcome"] == "ok" for e in episodes)
        assert all(isinstance(e["success"], bool) for e in episodes)

    def test_resubmission_resumes_from_result_cache(
        self, service, settled_id, smoke_payload, expected_jsonl
    ):
        """The shared checkpoint is a service-wide result cache: the same
        spec resubmitted with *zero* workers still settles (instantly) —
        every row folds back from the first run."""
        status, summary, _ = _request(
            f"{service.url}/campaigns",
            method="POST",
            payload={"spec": smoke_payload, "workers": 0},
        )
        assert status == 201
        assert summary["id"] != settled_id
        final = _poll_settled(service.url, summary["id"], timeout=60.0)
        assert final["state"] == "done"
        _, body, _ = _request(f"{service.url}/campaigns/{summary['id']}/results")
        assert body == expected_jsonl

    def test_campaign_listing_shows_all_submissions(self, service, settled_id):
        status, payload, _ = _request(f"{service.url}/campaigns")
        assert status == 200
        ids = [c["id"] for c in payload["campaigns"]]
        assert settled_id in ids


class TestRejection:
    """Malformed input is a 4xx with a path-anchored SpecError body —
    never a stack trace, never a submission."""

    def test_malformed_spec_is_400_with_spec_error_path(self, service, smoke_payload):
        broken = dict(smoke_payload)
        del broken["injectors"]
        status, body, _ = _request(
            f"{service.url}/campaigns", method="POST", payload=broken
        )
        assert status == 400
        assert body["error"] == "invalid campaign spec at spec.injectors: missing"
        assert body["path"] == "spec.injectors"
        bad_fault = json.loads(json.dumps(smoke_payload))
        bad_fault["injectors"]["gaussian"][0]["fault"] = "no-such-fault"
        status, body, _ = _request(
            f"{service.url}/campaigns", method="POST", payload=bad_fault
        )
        assert status == 400
        assert body["path"] == "spec.injectors['gaussian'][0]"

    def test_unknown_envelope_key_is_400(self, service, smoke_payload):
        status, body, _ = _request(
            f"{service.url}/campaigns",
            method="POST",
            payload={"spec": smoke_payload, "wrokers": 2},
        )
        assert status == 400
        assert "unknown envelope key" in body["error"]
        assert "wrokers" in body["error"]

    def test_bad_override_types_are_400_with_request_path(self, service, smoke_payload):
        for field, bad in (
            ("workers", -1),
            ("lease_s", 0),
            ("episodes_per_slot", 0),
            ("fault_tolerance", {"max_attempts": "lots"}),
        ):
            status, body, _ = _request(
                f"{service.url}/campaigns",
                method="POST",
                payload={"spec": smoke_payload, field: bad},
            )
            assert status == 400, (field, body)
            assert body["path"] == f"request.{field}"

    def test_non_json_body_is_400(self, service):
        status, body, _ = _request(
            f"{service.url}/campaigns", method="POST", body=b"not json {"
        )
        assert status == 400
        assert "not JSON" in body["error"]

    def test_unknown_campaign_and_endpoint_are_404(self, service):
        status, body, _ = _request(f"{service.url}/campaigns/c9999")
        assert status == 404
        assert "no such campaign" in body["error"]
        status, body, _ = _request(f"{service.url}/nope")
        assert status == 404


class TestArtifacts:
    """The content-addressed store, over HTTP (workers use the broker's
    TCP ops; these endpoints serve humans and CI)."""

    def test_put_get_roundtrip(self, service):
        blob = b"weights-bytes"
        sha = hashlib.sha1(blob).hexdigest()
        status, body, _ = _request(
            f"{service.url}/artifacts/{sha}", method="PUT", body=blob
        )
        assert status == 200 and body["sha"] == sha
        status, fetched, ctype = _request(f"{service.url}/artifacts/{sha}")
        assert status == 200
        assert ctype == "application/octet-stream"
        assert fetched == blob

    def test_missing_artifact_is_404_and_bad_sha_is_400(self, service):
        status, _, _ = _request(f"{service.url}/artifacts/{'0' * 40}")
        assert status == 404
        status, body, _ = _request(f"{service.url}/artifacts/..%2Fescape")
        assert status == 400


class TestBodyLimit:
    """Content-Length is client-controlled on an unauthenticated socket;
    past the cap it is a 413, never a server-side allocation."""

    def test_oversized_bodies_are_413(self, service, monkeypatch):
        monkeypatch.setattr(service_module, "MAX_BODY_BYTES", 1024)
        blob = b"x" * 4096
        sha = hashlib.sha1(blob).hexdigest()
        status, body, _ = _request(
            f"{service.url}/artifacts/{sha}", method="PUT", body=blob
        )
        assert status == 413
        assert "exceeds" in body["error"]
        status, body, _ = _request(
            f"{service.url}/campaigns", method="POST", body=b"{}" + b" " * 4096
        )
        assert status == 413
        # The service is still healthy afterwards.
        status, _, _ = _request(service.url)
        assert status == 200


class TestShutdown:
    def test_shutdown_endpoint_unblocks_wait_and_refuses_new_work(
        self, tmp_path, smoke_payload
    ):
        service = CampaignService(tmp_path / "svc", port=0).start()
        try:
            status, body, _ = _request(f"{service.url}/shutdown", method="POST")
            assert status == 200 and body["ok"] is True
            service.wait()  # returns promptly once the trigger lands
            status, body, _ = _request(
                f"{service.url}/campaigns", method="POST", payload=smoke_payload
            )
            assert status == 503
            assert "shutting down" in body["error"]
        finally:
            service.stop()

    def test_stop_settles_submissions_the_run_loop_never_saw(
        self, tmp_path, smoke_payload
    ):
        """The submit/stop race, made deterministic: a submission sitting
        in the queue after the run loop exited must be settled as failed
        by stop() — a ``--wait`` poller sees a terminal state, not
        'queued' forever."""
        service = CampaignService(tmp_path / "svc", port=0).start()
        # Kill the run loop directly (as stop()'s sentinel would).
        service._queue.put(None)
        service._run_thread.join(timeout=10)
        assert not service._run_thread.is_alive()
        # Re-create the pre-fix race: a submission enqueued behind the
        # sentinel, which no run loop will ever pick up.
        sub = Submission("c9999", CampaignSpec.from_dict(smoke_payload), {})
        with service._lock:
            service._submissions[sub.id] = sub
            service._order.append(sub.id)
            service._queue.put(sub.id)
        service.stop()
        assert sub.state == "failed"
        assert "shut down" in sub.error
        assert sub.settled.is_set()
