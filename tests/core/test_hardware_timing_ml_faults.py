"""Tests for hardware, timing and machine-learning fault models."""

import math

import numpy as np
import pytest

from repro.agent.ilcnn import ILCNN, ILCNNConfig
from repro.core.faults import (
    ActivationFault,
    ControlBitFlip,
    ControlStuckAt,
    OutputDelay,
    PacketBitFlip,
    PacketLoss,
    PacketReorder,
    SensorBitFlip,
    SensorDelay,
    Trigger,
    WeightBitFlip,
    WeightNoise,
    flip_float32_bits,
    set_float32_bit,
)
from repro.sim.channel import Channel, Packet
from repro.sim.physics import VehicleControl
from repro.sim.sensors import SensorFrame

TINY = ILCNNConfig(input_hw=(16, 24), conv_channels=(4, 6, 6), trunk_dim=16,
                   speed_dim=4, branch_hidden=8, dropout=0.0)


def bind(fault, seed=0):
    fault.reset()
    fault.bind(np.random.default_rng(seed))
    return fault


class TestBitPrimitives:
    def test_flip_sign_bit(self):
        arr = np.array([1.5], dtype=np.float32)
        flip_float32_bits(arr, np.array([0]), np.array([31]))
        assert arr[0] == -1.5

    def test_flip_is_involution(self):
        arr = np.array([3.25, -7.5], dtype=np.float32)
        original = arr.copy()
        for bit in range(32):
            flip_float32_bits(arr, np.array([0, 1]), np.array([bit, bit]))
            flip_float32_bits(arr, np.array([0, 1]), np.array([bit, bit]))
        assert np.array_equal(arr, original)

    def test_exponent_flip_changes_magnitude(self):
        arr = np.array([1.0], dtype=np.float32)
        flip_float32_bits(arr, np.array([0]), np.array([30]))
        assert arr[0] != 1.0

    def test_requires_float32(self):
        with pytest.raises(TypeError):
            flip_float32_bits(np.array([1.0]), np.array([0]), np.array([0]))

    def test_stuck_at_high_and_low(self):
        arr = np.array([1.5], dtype=np.float32)
        set_float32_bit(arr, 0, 31, True)
        assert arr[0] == -1.5
        set_float32_bit(arr, 0, 31, False)
        assert arr[0] == 1.5


class TestControlFaults:
    def test_bitflip_changes_one_field(self):
        fault = bind(ControlBitFlip(), seed=3)
        control = VehicleControl(steer=0.25, throttle=0.5, brake=0.0)
        out = fault.apply(control, 0)
        changed = sum(
            getattr(out, f) != getattr(control, f) for f in ("steer", "throttle", "brake")
        )
        assert changed == 1

    def test_bitflip_survives_physics(self):
        from repro.sim.physics import BicycleModel, VehicleState

        fault = bind(ControlBitFlip(bit_range=(30, 32)), seed=1)
        model = BicycleModel()
        state = VehicleState(0, 0, 0, 5.0)
        for f in range(50):
            control = fault.apply(VehicleControl(throttle=0.5), f)
            state = model.step(state, control, 1 / 15)
        assert math.isfinite(state.x)

    def test_bitflip_validation(self):
        with pytest.raises(ValueError):
            ControlBitFlip(fields=())
        with pytest.raises(ValueError):
            ControlBitFlip(fields=("warp",))
        with pytest.raises(ValueError):
            ControlBitFlip(bit_range=(30, 40))

    def test_stuck_at_forces_field(self):
        fault = bind(ControlStuckAt(field="steer", value=1.0))
        out = fault.apply(VehicleControl(steer=-0.2, throttle=0.4), 0)
        assert out.steer == 1.0
        assert out.throttle == 0.4

    def test_stuck_at_validation(self):
        with pytest.raises(ValueError):
            ControlStuckAt(field="gear")

    def test_preserves_flags(self):
        fault = bind(ControlStuckAt(field="brake", value=1.0))
        out = fault.apply(VehicleControl(reverse=True), 0)
        assert out.reverse


class TestSensorBitFlip:
    def test_flips_image_bytes(self):
        fault = bind(SensorBitFlip(n_bits=200, gps_fraction=0.0))
        gen = np.random.default_rng(0)
        b = SensorFrame(0, gen.integers(0, 255, (32, 48, 3), dtype=np.uint8),
                        (1.0, 2.0), 3.0, 0.0)
        out = fault.apply(b, 0)
        n_changed = (out.image != b.image).sum()
        assert 0 < n_changed <= 200

    def test_gps_corruption_possible(self):
        fault = bind(SensorBitFlip(n_bits=1, gps_fraction=1.0))
        b = SensorFrame(0, np.zeros((8, 8, 3), dtype=np.uint8), (1.0, 2.0), 3.0, 0.0)
        out = fault.apply(b, 0)
        assert out.gps != (1.0, 2.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            SensorBitFlip(n_bits=0)
        with pytest.raises(ValueError):
            SensorBitFlip(gps_fraction=2.0)


class TestTimingFaults:
    def _run_channel(self, fault, n=10, poll_offset=0):
        ch = Channel("control")
        ch.add_transform(fault)
        delivered = []
        for f in range(n):
            ch.send(Packet("control", f, f))
            delivered.extend(p.payload for p in ch.poll(f + poll_offset))
        return ch, delivered

    def test_output_delay_replay_shifts_delivery(self):
        fault = bind(OutputDelay(delay_frames=3))
        ch, delivered = self._run_channel(fault, n=10)
        # Packet f arrives at frame f+3: at poll f we see packet f-3.
        assert delivered == [0, 1, 2, 3, 4, 5, 6]

    def test_output_delay_drop_discards(self):
        fault = bind(OutputDelay(delay_frames=5, mode="drop"))
        ch, delivered = self._run_channel(fault, n=10)
        assert delivered == []
        assert ch.stats.dropped == 10

    def test_output_delay_zero_noop(self):
        fault = bind(OutputDelay(delay_frames=0))
        _, delivered = self._run_channel(fault, n=5)
        assert delivered == [0, 1, 2, 3, 4]

    def test_output_delay_windowed(self):
        fault = bind(OutputDelay(delay_frames=100, trigger=Trigger(start_frame=3, end_frame=5)))
        _, delivered = self._run_channel(fault, n=10)
        assert delivered == [0, 1, 2, 6, 7, 8, 9]
        assert fault.log.frames == [3, 4, 5]

    def test_output_delay_validation(self):
        with pytest.raises(ValueError):
            OutputDelay(delay_frames=-1)
        with pytest.raises(ValueError):
            OutputDelay(delay_frames=5, mode="mangle")

    def test_sensor_delay_channel_attr(self):
        fault = SensorDelay(delay_frames=2)
        assert fault.channel == "sensor"

    def test_packet_loss_rate(self):
        fault = bind(PacketLoss(Trigger(probability=0.5)))
        ch, delivered = self._run_channel(fault, n=400)
        assert 120 <= len(delivered) <= 280
        assert ch.stats.dropped == 400 - len(delivered)

    def test_packet_loss_channel_validation(self):
        with pytest.raises(ValueError):
            PacketLoss(channel="wifi")

    def test_reorder_produces_out_of_order_delivery(self):
        fault = bind(PacketReorder(max_extra_frames=4, trigger=Trigger(probability=0.5)))
        ch = Channel("control")
        ch.add_transform(fault)
        order = []
        for f in range(200):
            ch.send(Packet("control", f, f))
            order.extend(p.payload for p in ch.poll(f))
        order.extend(p.payload for p in ch.poll(10_000))
        assert sorted(order) == list(range(200))
        inversions = sum(a > b for a, b in zip(order, order[1:]))
        assert inversions > 0, "reordering must actually reorder something"

    def test_reorder_validation(self):
        with pytest.raises(ValueError):
            PacketReorder(max_extra_frames=0)

    def test_packet_bitflip_corrupts_payload(self):
        fault = bind(PacketBitFlip(), seed=2)
        ch = Channel("control")
        ch.add_transform(fault)
        ch.send(Packet("control", 0, VehicleControl(steer=0.5, throttle=0.5)))
        out = ch.poll(0)[0].payload
        assert (out.steer, out.throttle, out.brake) != (0.5, 0.5, 0.0)

    def test_packet_bitflip_ignores_non_control(self):
        fault = bind(PacketBitFlip())
        result = fault.rewrite(Packet("sensor", 0, "not-a-control"), 0)
        assert result[0][0].payload == "not-a-control"


class TestWeightFaults:
    def test_weight_noise_install_and_exact_restore(self):
        model = ILCNN(TINY)
        before = model.state_dict()
        fault = bind(WeightNoise(sigma_rel=0.5))
        fault.install(model)
        after = model.state_dict()
        assert any(not np.array_equal(before[k], after[k]) for k in before)
        fault.remove(model)
        restored = model.state_dict()
        assert all(np.array_equal(before[k], restored[k]) for k in before)

    def test_weight_noise_changes_predictions(self):
        model = ILCNN(TINY)
        model.set_training(False)
        gen = np.random.default_rng(0)
        img = gen.integers(0, 255, (16, 24, 3), dtype=np.uint8)
        clean = model.predict_one(img, 5.0, 0)
        fault = bind(WeightNoise(sigma_rel=1.0))
        fault.install(model)
        noisy = model.predict_one(img, 5.0, 0)
        fault.remove(model)
        assert not np.allclose(clean, noisy)
        assert np.allclose(clean, model.predict_one(img, 5.0, 0))

    def test_weight_noise_double_install_rejected(self):
        model = ILCNN(TINY)
        fault = bind(WeightNoise())
        fault.install(model)
        with pytest.raises(RuntimeError):
            fault.install(model)
        fault.remove(model)

    def test_weight_noise_fraction(self):
        model = ILCNN(TINY)
        before = model.state_dict()
        fault = bind(WeightNoise(sigma_rel=0.5, fraction=0.1))
        fault.install(model)
        after = model.state_dict()
        changed = sum(
            (before[k] != after[k]).sum() for k in before
        )
        total = sum(v.size for v in before.values())
        assert 0.02 < changed / total < 0.25
        fault.remove(model)

    def test_weight_noise_validation(self):
        with pytest.raises(ValueError):
            WeightNoise(sigma_rel=-1.0)
        with pytest.raises(ValueError):
            WeightNoise(fraction=0.0)

    def test_weight_bitflip_sites_and_restore(self):
        model = ILCNN(TINY)
        before = model.state_dict()
        fault = bind(WeightBitFlip(n_flips=5))
        fault.install(model)
        assert len(fault.sites) == 5
        changed = sum(
            (before[k] != model.state_dict()[k]).sum() for k in before
        )
        assert 1 <= changed <= 5  # flips may collide
        fault.remove(model)
        assert all(np.array_equal(before[k], model.state_dict()[k]) for k in before)

    def test_weight_bitflip_describe_reports_sites(self):
        model = ILCNN(TINY)
        fault = bind(WeightBitFlip(n_flips=2))
        fault.install(model)
        desc = fault.describe()
        assert len(desc["sites"]) == 2
        fault.remove(model)

    def test_weight_bitflip_validation(self):
        with pytest.raises(ValueError):
            WeightBitFlip(n_flips=0)
        with pytest.raises(ValueError):
            WeightBitFlip(bit_range=(10, 40))


class TestActivationFault:
    def _model_and_input(self):
        model = ILCNN(TINY)
        model.set_training(False)
        gen = np.random.default_rng(1)
        img = gen.integers(0, 255, (16, 24, 3), dtype=np.uint8)
        return model, img

    @pytest.mark.parametrize("mode", ["zero", "saturate", "noise"])
    def test_modes_change_output(self, mode):
        model, img = self._model_and_input()
        clean = model.predict_one(img, 5.0, 0)
        fault = bind(ActivationFault(block="join", layer_index=0, n_units=8, mode=mode))
        fault.install(model)
        faulty = model.predict_one(img, 5.0, 0)
        fault.remove(model)
        assert not np.allclose(clean, faulty)
        assert np.allclose(clean, model.predict_one(img, 5.0, 0))

    def test_fire_count_tracks_forwards(self):
        model, img = self._model_and_input()
        fault = bind(ActivationFault(block="trunk", layer_index=0, n_units=2))
        fault.install(model)
        model.predict_one(img, 5.0, 0)
        model.predict_one(img, 5.0, 0)
        assert fault.fire_count == 2
        fault.remove(model)

    def test_conv_layer_targetable(self):
        model, img = self._model_and_input()
        fault = bind(ActivationFault(block="trunk", layer_index=0, n_units=1, mode="zero"))
        fault.install(model)
        out = model.predict_one(img, 5.0, 0)
        assert np.isfinite(out).all()
        fault.remove(model)

    def test_unknown_block_rejected(self):
        model, _ = self._model_and_input()
        fault = bind(ActivationFault(block="cerebellum"))
        with pytest.raises(KeyError):
            fault.install(model)

    def test_validation(self):
        with pytest.raises(ValueError):
            ActivationFault(mode="explode")
        with pytest.raises(ValueError):
            ActivationFault(n_units=0)
