"""Tests for the generative scenario grammar (repro.core.scenariogen).

The load-bearing guarantees:

* distribution nodes (``uniform``/``choice``/``normal``/``range``) parse
  strictly, serialise back to their exact JSON form, and sample
  deterministically from a seeded generator;
* grammar expansion is a pure function of (spec, seed): the same grammar
  expands to the byte-identical concrete suite twice in one process and
  in a fresh interpreter (checked via subprocess, like the spec
  fingerprint tests);
* procedural town grammars give every scenario its own sampled road
  network while staying deterministic;
* conflict sampling really produces junction conflicts: the ego goes
  straight, the scripted NPC takes a crossing left turn, and driving the
  episode shows the NPC's reactive behavior interrupting (state machine
  transitions), which is what the generated suites exist to provoke.
"""

import json
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.core import Campaign, EpisodeDriver, load_spec
from repro.core.scenariogen import (
    Choice,
    ConflictGrammar,
    GrammarError,
    Normal,
    Range,
    ScenarioGrammar,
    TownGrammar,
    Uniform,
    enumerate_conflicts,
    node_to_json,
    parse_node,
    resolve_bool,
    resolve_float,
    resolve_int,
    resolve_str,
)
from repro.core.spec import CampaignSpec, ScenarioSuiteSpec, SpecError
from repro.sim.actors import BehaviorSpec, NPCBehavior, NPCVehicle, make_behavior
from repro.sim.scenario import derive_scenario_seed
from repro.sim.town import (
    GridTownConfig,
    ProceduralTownConfig,
    build_grid_town,
    build_procedural_town,
    build_town,
)

REPO_ROOT = Path(__file__).resolve().parents[2]
SPEC_DIR = REPO_ROOT / "examples" / "specs"


def rng(seed=7):
    return np.random.default_rng(seed)


class TestDistributionNodes:
    def test_literals_pass_through(self):
        assert parse_node(3, "p") == 3
        assert parse_node(2.5, "p") == 2.5
        assert parse_node("ClearNoon", "p") == "ClearNoon"
        assert parse_node(True, "p") is True

    def test_uniform_parses_and_round_trips(self):
        node = parse_node({"uniform": [1.0, 4.0]}, "p")
        assert node == Uniform(1.0, 4.0)
        assert node_to_json(node) == {"uniform": [1.0, 4.0]}

    def test_uniform_float_stays_in_bounds(self):
        node = Uniform(2.0, 3.0)
        g = rng()
        assert all(2.0 <= node.sample_float(g) <= 3.0 for _ in range(100))

    def test_uniform_int_is_inclusive_both_ends(self):
        node = Uniform(0, 3)
        g = rng()
        seen = {node.sample_int(g) for _ in range(300)}
        assert seen == {0, 1, 2, 3}

    def test_uniform_rejects_inverted_bounds(self):
        with pytest.raises(GrammarError, match="exceeds"):
            parse_node({"uniform": [5, 1]}, "p")

    def test_choice_samples_only_listed_options(self):
        node = parse_node({"choice": ["a", "b", "c"]}, "p")
        g = rng()
        assert {node.sample_value(g) for _ in range(100)} == {"a", "b", "c"}

    def test_choice_rejects_empty_and_nested(self):
        with pytest.raises(GrammarError, match="non-empty"):
            parse_node({"choice": []}, "p")
        with pytest.raises(GrammarError, match="scalars"):
            parse_node({"choice": [{"uniform": [0, 1]}]}, "p")

    def test_normal_clamps_to_bounds(self):
        node = parse_node(
            {"normal": {"mean": 0.0, "std": 10.0, "low": -1.0, "high": 1.0}}, "p"
        )
        g = rng()
        assert all(-1.0 <= node.sample_float(g) <= 1.0 for _ in range(100))

    def test_normal_requires_mean_and_std(self):
        with pytest.raises(GrammarError, match="mean"):
            parse_node({"normal": {"std": 1.0}}, "p")

    def test_range_is_half_open_lattice(self):
        node = parse_node({"range": {"start": 0, "stop": 10, "step": 2}}, "p")
        assert node.values() == [0, 2, 4, 6, 8]
        g = rng()
        assert {node.sample_value(g) for _ in range(200)} == {0, 2, 4, 6, 8}

    def test_range_rejects_empty_and_bad_step(self):
        with pytest.raises(GrammarError, match="no values"):
            parse_node({"range": {"start": 5, "stop": 5}}, "p")
        with pytest.raises(GrammarError, match="> 0"):
            parse_node({"range": {"start": 0, "stop": 5, "step": 0}}, "p")

    def test_multi_key_object_rejected(self):
        with pytest.raises(GrammarError, match="exactly one"):
            parse_node({"uniform": [0, 1], "choice": [2]}, "p")
        with pytest.raises(GrammarError, match="exactly one"):
            parse_node({"gaussian": [0, 1]}, "p")

    def test_error_names_the_json_path(self):
        with pytest.raises(GrammarError, match=r"grammar\.weather"):
            parse_node({"normal": {"mean": "x", "std": 1}}, "grammar.weather")

    def test_typed_resolvers_accept_literals_and_nodes(self):
        g = rng()
        assert resolve_float(2.5, g) == 2.5
        assert resolve_int(3, g) == 3
        assert resolve_str("WetNoon", g) == "WetNoon"
        assert resolve_bool(False, g) is False
        assert resolve_str(Choice(("a",)), g) == "a"
        assert resolve_bool(Choice((True, False)), g) in (True, False)

    def test_typed_resolvers_reject_wrong_types(self):
        g = rng()
        with pytest.raises(GrammarError, match="expected an integer"):
            resolve_int(2.5, g)
        with pytest.raises(GrammarError, match="expected a number"):
            resolve_float("x", g)
        with pytest.raises(GrammarError, match="only support 'choice'"):
            resolve_str(Uniform(0, 1), g)
        with pytest.raises(GrammarError, match="expected a string"):
            resolve_str(Choice((3,)), g)

    def test_same_seed_same_samples(self):
        node = Normal(5.0, 2.0)
        a = [node.sample_float(rng(3)) for _ in range(1)]
        b = [node.sample_float(rng(3)) for _ in range(1)]
        assert a == b


class TestProceduralTowns:
    def test_equal_configs_build_identical_towns(self):
        cfg = ProceduralTownConfig(rows=3, cols=3, seed=11, road_density=0.75)
        t1, t2 = build_procedural_town(cfg), build_procedural_town(cfg)
        assert [repr(l) for l in t1.iter_lanes()] == [repr(l) for l in t2.iter_lanes()]
        assert len(t1.buildings) == len(t2.buildings)

    def test_different_seeds_differ(self):
        base = dict(rows=3, cols=4, road_density=0.7)
        towns = [
            build_procedural_town(ProceduralTownConfig(seed=s, **base))
            for s in range(6)
        ]
        shapes = {tuple(sorted(t.roads)) for t in towns}
        assert len(shapes) > 1, "six seeds produced identical road networks"

    def test_thinning_keeps_lane_graph_strongly_connected(self):
        for seed in range(5):
            cfg = ProceduralTownConfig(rows=3, cols=3, seed=seed, road_density=0.55)
            assert build_procedural_town(cfg).lane_graph_strongly_connected()

    def test_full_density_matches_grid_road_count(self):
        cfg = ProceduralTownConfig(rows=3, cols=3, road_density=1.0, seed=1)
        town = build_procedural_town(cfg)
        # 3x3 grid: 2*3 vertical + 3*2 horizontal edges
        assert len(town.roads) == 12

    def test_build_town_dispatches_by_config_type(self):
        assert build_town(GridTownConfig(rows=2, cols=3)).name == "grid-town-2x3"
        proc = build_town(ProceduralTownConfig(rows=3, cols=3, seed=2))
        assert proc.name.startswith("proc-town-3x3-s2")
        with pytest.raises(TypeError, match="unsupported town config"):
            build_town(object())

    def test_config_validation(self):
        with pytest.raises(ValueError):
            ProceduralTownConfig(rows=1, cols=2)
        with pytest.raises(ValueError):
            ProceduralTownConfig(road_density=0.0)
        with pytest.raises(ValueError):
            ProceduralTownConfig(road_density=1.5)


class TestTownGrammar:
    def test_grid_fields_sample(self):
        tg = TownGrammar.from_dict(
            {"grid": {"rows": 2, "cols": {"choice": [3, 4]}, "with_buildings": False}}
        )
        cfg = tg.sample(rng())
        assert isinstance(cfg, GridTownConfig)
        assert cfg.rows == 2 and cfg.cols in (3, 4) and not cfg.with_buildings

    def test_procedural_auto_samples_seed(self):
        tg = TownGrammar.from_dict({"procedural": {"rows": 3, "cols": 3}})
        seeds = {tg.sample(rng(s)).seed for s in range(5)}
        assert len(seeds) > 1

    def test_explicit_procedural_seed_respected(self):
        tg = TownGrammar.from_dict({"procedural": {"rows": 3, "cols": 3, "seed": 99}})
        assert tg.sample(rng()).seed == 99

    def test_rejects_unknown_kind_and_keys(self):
        with pytest.raises(GrammarError, match="grid.*procedural"):
            TownGrammar.from_dict({"hexagonal": {}})
        with pytest.raises(GrammarError, match="unknown keys"):
            TownGrammar.from_dict({"grid": {"rowz": 2}})

    def test_invalid_sampled_config_names_path(self):
        tg = TownGrammar.from_dict({"grid": {"rows": 1}})
        with pytest.raises(GrammarError, match=r"town\.grid"):
            tg.sample(rng())

    def test_round_trips_nodes_exactly(self):
        data = {"grid": {"rows": {"choice": [2, 3]}, "block_size": 80.0}}
        assert TownGrammar.from_dict(data).to_dict() == data


class _FakePoint:
    def __init__(self, x):
        self.x = x
        self.y = 0.0

    def distance_to(self, other):
        return abs(self.x - other.x)


class _FakeEgo:
    def __init__(self, x):
        self.position = _FakePoint(x)
        self.id = 1


class _FakeWorld:
    def __init__(self, ego_x, frame=10):
        self.ego = _FakeEgo(ego_x)
        self.frame = frame


class _FakeNPC:
    def __init__(self, x=0.0):
        self.position = _FakePoint(x)
        self.id = 2


class TestBehaviorStateMachine:
    def make(self, name="run_junction", **kw):
        return NPCBehavior(BehaviorSpec(name=name, **kw))

    FakeWorld = _FakeWorld
    FakeNPC = _FakeNPC

    def test_starts_in_cruise_with_no_transitions(self):
        b = self.make()
        assert b.state == NPCBehavior.CRUISE
        assert b.transitions == []
        assert not b.interrupted()
        assert not b.active

    def test_triggers_when_ego_within_distance(self):
        b = self.make(trigger_distance=25.0)
        b.update(self.FakeNPC(), self.FakeWorld(ego_x=30.0, frame=5), dt=0.1)
        assert b.state == NPCBehavior.CRUISE
        b.update(self.FakeNPC(), self.FakeWorld(ego_x=20.0, frame=6), dt=0.1)
        assert b.state == NPCBehavior.MANEUVER
        assert b.transitions == [(NPCBehavior.CRUISE, NPCBehavior.MANEUVER, 6)]
        assert b.interrupted()
        assert b.active

    def test_completes_after_duration(self):
        b = self.make(duration_s=0.5)
        world = self.FakeWorld(ego_x=1.0, frame=1)
        b.update(self.FakeNPC(), world, dt=0.1)
        for _ in range(6):
            b.update(self.FakeNPC(), world, dt=0.1)
        assert b.state == NPCBehavior.DONE
        assert [t[1] for t in b.transitions] == [
            NPCBehavior.MANEUVER,
            NPCBehavior.DONE,
        ]
        assert b.interrupted()  # the interrupt happened, even though over
        assert not b.active

    def test_behavior_modifiers_only_while_active(self):
        b = self.make("brake_on_proximity", speed_scale=0.2)
        assert not b.brake_now() and b.speed_scale() == 1.0
        b.update(self.FakeNPC(), self.FakeWorld(ego_x=1.0), dt=0.1)
        assert b.brake_now() and b.speed_scale() == 0.2

    def test_cut_in_lateral_offset_gated_on_active(self):
        b = self.make("cut_in", lateral_m=1.5)
        assert b.lateral_offset() == 0.0
        b.update(self.FakeNPC(), self.FakeWorld(ego_x=1.0), dt=0.1)
        assert b.lateral_offset() == 1.5

    def test_run_junction_ignores_hazards_only_while_active(self):
        b = self.make("run_junction")
        assert not b.ignore_hazards()
        b.update(self.FakeNPC(), self.FakeWorld(ego_x=1.0), dt=0.1)
        assert b.ignore_hazards()

    def test_forced_turn_picks_matching_successor_once(self):
        town = build_grid_town(GridTownConfig(rows=2, cols=3))
        picked = None
        b = self.make(turn="LEFT")
        for lane in town.iter_lanes():
            options = town.lane_successors(lane)
            choice = b.pick_successor(town, lane, options)
            if choice is not None:
                picked = (lane, choice)
                break
        assert picked is not None, "no lane offered a LEFT successor"
        lane, choice = picked
        assert town.turn_direction(lane, choice) == "LEFT"
        # the forced turn is one-shot: afterwards the RNG fallback rules
        assert b.pick_successor(town, lane, town.lane_successors(lane)) is None

    def test_behavior_spec_validation_and_round_trip(self):
        with pytest.raises(ValueError, match="unknown behavior"):
            BehaviorSpec(name="teleport")
        with pytest.raises(ValueError, match="turn"):
            BehaviorSpec(name="cut_in", turn="SIDEWAYS")
        spec = BehaviorSpec(name="cut_in", trigger_distance=10.0, turn=None)
        assert BehaviorSpec.from_dict(spec.to_dict()) == spec
        with pytest.raises(ValueError, match="unknown keys"):
            BehaviorSpec.from_dict({"name": "cut_in", "warp": 1})

    def test_make_behavior_none_passthrough(self):
        assert make_behavior(None) is None
        assert make_behavior(BehaviorSpec(name="cut_in")).spec.name == "cut_in"


class TestConflictSampling:
    def test_enumeration_is_deterministic_and_nonempty(self):
        town = build_grid_town(GridTownConfig(rows=2, cols=3))
        a = enumerate_conflicts(town)
        b = enumerate_conflicts(town)
        assert a and [tuple(l.ref for l in c) for c in a] == [
            tuple(l.ref for l in c) for c in b
        ]

    def test_conflict_geometry_really_crosses(self):
        town = build_grid_town(GridTownConfig(rows=2, cols=3))
        for ego_in, ego_out, npc_in, npc_out in enumerate_conflicts(town):
            assert town.turn_direction(ego_in, ego_out) == "STRAIGHT"
            assert town.turn_direction(npc_in, npc_out) == "LEFT"
            assert npc_in.road.id != ego_in.road.id
            assert ego_in.end_intersection == npc_in.end_intersection

    def test_sample_produces_mission_and_scripted_npc(self):
        town = build_grid_town(GridTownConfig(rows=2, cols=3))
        cg = ConflictGrammar()
        mission, npcs = cg.sample(town, rng(3), time_factor=1.8)
        assert mission.name.startswith("conflict-j")
        assert mission.time_limit_s > 15.0
        (npc,) = npcs
        assert npc.behavior is not None
        assert npc.behavior.name == "run_junction"
        assert npc.behavior.turn == "LEFT"
        assert npc.station >= 2.0

    def test_sample_errors_without_conflicts(self):
        # right turns at the 2x3 grid's T-junctions never cross the
        # straight-through path, so a RIGHT conflict grammar has no
        # candidates and must say so readably
        town = build_grid_town(GridTownConfig(rows=2, cols=3))
        assert enumerate_conflicts(town, "RIGHT") == []
        with pytest.raises(GrammarError, match="no straight-vs-RIGHT"):
            ConflictGrammar.from_dict({"turn": "RIGHT"}).sample(
                town, rng(), time_factor=1.8
            )

    def test_from_dict_validates(self):
        with pytest.raises(GrammarError, match="unknown behavior"):
            ConflictGrammar.from_dict({"behavior": "teleport"})
        with pytest.raises(GrammarError, match="LEFT, RIGHT or STRAIGHT"):
            ConflictGrammar.from_dict({"turn": "AROUND"})
        with pytest.raises(GrammarError, match="unknown keys"):
            ConflictGrammar.from_dict({"npc_velocity": 3})

    def test_round_trip_preserves_nodes(self):
        data = ConflictGrammar.from_dict(
            {"npc_speed": {"uniform": [5.0, 7.0]}, "turn": "RIGHT"}
        ).to_dict()
        assert data["npc_speed"] == {"uniform": [5.0, 7.0]}
        assert data["turn"] == "RIGHT"
        assert ConflictGrammar.from_dict(data).to_dict() == data


class TestGrammarExpansion:
    GRAMMAR = {
        "n": 3,
        "seed": 17,
        "name": "g",
        "town": {"grid": {"rows": 2, "cols": 3, "with_buildings": False}},
        "weather": {"choice": ["ClearNoon", "WetNoon", "FoggyNoon"]},
        "n_npc_vehicles": {"uniform": [0, 2]},
        "min_distance": 60.0,
        "max_distance": 160.0,
    }

    def test_expansion_is_deterministic(self):
        g = ScenarioGrammar.from_dict(self.GRAMMAR)
        a = [s.to_dict() for s in g.expand()]
        b = [s.to_dict() for s in ScenarioGrammar.from_dict(self.GRAMMAR).expand()]
        assert a == b

    def test_scenarios_have_independent_child_streams(self):
        """Same child seeds regardless of n: growing the suite appends
        scenarios without resampling the existing ones."""
        small = ScenarioGrammar.from_dict({**self.GRAMMAR, "n": 2}).expand()
        large = ScenarioGrammar.from_dict(self.GRAMMAR).expand()
        assert [s.to_dict() for s in small] == [s.to_dict() for s in large[:2]]

    def test_different_seeds_differ(self):
        a = ScenarioGrammar.from_dict(self.GRAMMAR).expand()
        b = ScenarioGrammar.from_dict({**self.GRAMMAR, "seed": 18}).expand()
        assert [s.to_dict() for s in a] != [s.to_dict() for s in b]

    def test_episode_seeds_are_distinct(self):
        scenarios = ScenarioGrammar.from_dict(self.GRAMMAR).expand()
        seeds = [s.seed for s in scenarios]
        assert len(set(seeds)) == len(seeds)

    def test_unknown_weather_rejected_at_expansion(self):
        g = ScenarioGrammar.from_dict({**self.GRAMMAR, "weather": "Blizzard"})
        with pytest.raises(GrammarError, match="Blizzard"):
            g.expand()

    def test_procedural_town_per_scenario(self):
        g = ScenarioGrammar.from_dict(
            {
                "n": 2,
                "seed": 5,
                "town": {"procedural": {"rows": 3, "cols": 3, "road_density": 0.8}},
            }
        )
        scenarios = g.expand()
        cfgs = [s.town_config for s in scenarios]
        assert all(isinstance(c, ProceduralTownConfig) for c in cfgs)
        assert cfgs[0].seed != cfgs[1].seed

    def test_conflict_grammar_yields_scripted_npcs(self):
        g = ScenarioGrammar.from_dict(
            {
                "n": 2,
                "seed": 11,
                "town": {"grid": {"rows": 2, "cols": 3}},
                "conflict": {},
            }
        )
        for s in g.expand():
            assert len(s.npcs) == 1
            assert s.npcs[0].behavior.name == "run_junction"

    def test_round_trip_dict_stable(self):
        g = ScenarioGrammar.from_dict(self.GRAMMAR)
        assert ScenarioGrammar.from_dict(g.to_dict()).to_dict() == g.to_dict()

    def test_rejects_unknown_keys_and_bad_counts(self):
        with pytest.raises(GrammarError, match="unknown keys"):
            ScenarioGrammar.from_dict({"count": 3})
        with pytest.raises(GrammarError, match="positive integer"):
            ScenarioGrammar.from_dict({"n": 0})
        with pytest.raises(GrammarError, match="non-negative integer"):
            ScenarioGrammar.from_dict({"seed": -1})


class TestSpecGrammarForm:
    def test_spec_accepts_grammar_form(self):
        suite = ScenarioSuiteSpec.from_dict(
            {"grammar": {"n": 2, "seed": 3, "town": {"grid": {"rows": 2, "cols": 3}}}}
        )
        scenarios = suite.build()
        assert len(scenarios) == 2
        assert suite.to_dict()["grammar"]["n"] == 2

    def test_grammar_is_exclusive_with_other_forms(self):
        with pytest.raises(SpecError, match="exactly one"):
            ScenarioSuiteSpec.from_dict({"grammar": {}, "generate": {}})

    def test_grammar_errors_surface_as_spec_errors_with_path(self):
        with pytest.raises(SpecError, match=r"scenarios\.grammar"):
            ScenarioSuiteSpec.from_dict({"grammar": {"n": 0}})
        suite = ScenarioSuiteSpec.from_dict(
            {"grammar": {"n": 1, "weather": "Blizzard"}}
        )
        with pytest.raises(SpecError, match="Blizzard"):
            suite.build()

    def test_golden_generated_spec_loads_and_expands(self):
        spec = load_spec(SPEC_DIR / "generated.json")
        scenarios = spec.scenarios.build()
        assert len(scenarios) == 2
        assert all(s.npcs for s in scenarios)

    def test_grammar_expansion_stable_across_processes(self):
        """Same spec + seed must expand byte-identically in a fresh
        interpreter with a different hash seed — the property queue
        workers rely on when they rebuild campaigns from archived specs."""
        spec = load_spec(SPEC_DIR / "generated.json")
        local = [spec.hash()] + [
            json.dumps(s.to_dict(), sort_keys=True) for s in spec.scenarios.build()
        ]
        script = (
            "import json\n"
            "from repro.core import load_spec\n"
            f"spec = load_spec({str(SPEC_DIR / 'generated.json')!r})\n"
            "out = [spec.hash()] + [json.dumps(s.to_dict(), sort_keys=True)"
            " for s in spec.scenarios.build()]\n"
            "print(json.dumps(out))\n"
        )
        out = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            check=True,
            cwd=REPO_ROOT,
            env={"PYTHONPATH": str(REPO_ROOT / "src"), "PYTHONHASHSEED": "31"},
        )
        assert json.loads(out.stdout) == local


class TestSeedDerivation:
    def test_matches_frozen_reference(self):
        # frozen: changing the derivation silently invalidates every
        # committed checkpoint, so pin exact values
        assert derive_scenario_seed(0, 0) == 7102454461328411745
        assert derive_scenario_seed(9, 2) == 7363147331205935961

    def test_no_collisions_across_nearby_suites(self):
        """The historical seed*1000+i scheme collided between suites
        (seed 1 episode 0 == seed 0 episode 1000); the hash scheme must
        keep nearby (seed, index) grids disjoint."""
        seen = {}
        for seed in range(30):
            for index in range(40):
                value = derive_scenario_seed(seed, index)
                assert value not in seen, (seed, index, seen[value])
                seen[value] = (seed, index)

    def test_fits_in_63_bits(self):
        for seed, index in [(0, 0), (2**31, 999), (7, 10**6)]:
            assert 0 <= derive_scenario_seed(seed, index) < 2**63


class TestConflictEpisodeInterrupts:
    def test_driven_conflict_episode_interrupts_npc_behavior(self):
        """Acceptance: a generated conflict scenario, actually driven,
        shows the NPC behavior state machine interrupting."""
        spec = load_spec(SPEC_DIR / "generated.json")
        scenario = next(s for s in spec.scenarios.build() if s.npcs)
        driver = EpisodeDriver(
            spec.build_builder(), scenario, spec.agent.build(), injector_name="none"
        )
        driver.run()
        behaviors = [
            a.behavior
            for a in driver.world.actors
            if isinstance(a, NPCVehicle) and a.behavior is not None
        ]
        assert behaviors, "conflict scenario spawned no scripted NPC"
        assert any(b.interrupted() for b in behaviors), [
            b.transitions for b in behaviors
        ]
        interrupted = next(b for b in behaviors if b.interrupted())
        src, dst, frame = interrupted.transitions[0]
        assert (src, dst) == (NPCBehavior.CRUISE, NPCBehavior.MANEUVER)
        assert frame > 0

    def test_campaign_runs_generated_spec(self):
        spec = load_spec(SPEC_DIR / "generated.json")
        result = Campaign.from_spec(spec).run()
        assert len(result.records) == 4  # 2 scenarios x 2 injectors
        assert all(r.config_fingerprint for r in result.records)
