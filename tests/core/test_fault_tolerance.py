"""Tests for the episode outcome taxonomy and fault-tolerance policy.

Covers the self-healing machinery in isolation: the
:class:`FaultTolerancePolicy` contract (validation, deterministic
backoff, spec round-trip), :class:`EpisodeFailure` rows beside normal
records in checkpoints and metrics, per-attempt retry/timeout behaviour
in :func:`attempt_task`, the escalating process reaper, and the queue
broker's failed→pending round-trip.  The end-to-end quarantine
acceptance (all three backends, byte-identity) lives in test_chaos.py.
"""

import json
import multiprocessing
import os
import signal
import time

import pytest

from repro.agent import autopilot_agent_factory
from repro.core import (
    EpisodeFailure,
    EpisodeFailureError,
    EpisodeOutcome,
    EpisodeTimeout,
    FaultTolerancePolicy,
    FilesystemBroker,
    MetricsAccumulator,
    ParallelCampaignRunner,
    attempt_task,
    load_checkpoint_rows,
    metrics_by_injector,
    quarantine_table,
    standard_scenarios,
)
from repro.core.chaos import FlakyFault, HangFault, TransientEpisodeError
from repro.core.outcomes import reap_process
from repro.core.sink import iter_jsonl_records
from repro.sim.builders import SimulationBuilder
from repro.sim.render import CameraModel
from repro.sim.town import GridTownConfig

TOWN = GridTownConfig(rows=2, cols=3)


@pytest.fixture(scope="module")
def builder():
    return SimulationBuilder(camera=CameraModel(width=24, height=16), with_lidar=False)


@pytest.fixture(scope="module")
def scenarios():
    return standard_scenarios(1, seed=9, town_config=TOWN, min_distance=60, max_distance=160)


def _runner(builder, scenarios, injectors, **kw):
    return ParallelCampaignRunner(
        scenarios, autopilot_agent_factory(), injectors, builder=builder, **kw
    )


def _task_and_context(builder, scenarios, injectors, policy=None):
    runner = _runner(builder, scenarios, injectors, policy=policy)
    return runner.tasks()[0], runner.context()


class TestFaultTolerancePolicy:
    def test_defaults_reproduce_historical_behaviour(self):
        policy = FaultTolerancePolicy()
        assert policy.max_attempts == 1
        assert policy.timeout_s is None
        assert policy.failure_budget == 0

    def test_round_trip(self):
        policy = FaultTolerancePolicy(
            max_attempts=3, timeout_s=45.0, backoff_s=0.5, backoff_max_s=8.0,
            backoff_jitter=0.2, failure_budget=None,
        )
        assert FaultTolerancePolicy.from_dict(policy.to_dict()) == policy

    def test_validation(self):
        with pytest.raises(ValueError, match="max_attempts"):
            FaultTolerancePolicy(max_attempts=0)
        with pytest.raises(ValueError, match="timeout_s"):
            FaultTolerancePolicy(timeout_s=0.0)
        with pytest.raises(ValueError, match="backoff_jitter"):
            FaultTolerancePolicy(backoff_jitter=1.5)
        with pytest.raises(ValueError, match="failure_budget"):
            FaultTolerancePolicy(failure_budget=-1)

    def test_from_dict_rejects_unknown_and_mistyped_keys(self):
        with pytest.raises(ValueError, match="unknown fault_tolerance keys"):
            FaultTolerancePolicy.from_dict({"max_attempt": 3})
        with pytest.raises(ValueError, match="max_attempts"):
            FaultTolerancePolicy.from_dict({"max_attempts": "three"})
        with pytest.raises(TypeError, match="must be an object"):
            FaultTolerancePolicy.from_dict([1, 2])

    def test_backoff_is_deterministic_and_exponential(self):
        policy = FaultTolerancePolicy(
            max_attempts=5, backoff_s=1.0, backoff_max_s=100.0, backoff_jitter=0.1
        )
        first = [policy.backoff_for(seed=42, attempt=a) for a in (1, 2, 3)]
        again = [policy.backoff_for(seed=42, attempt=a) for a in (1, 2, 3)]
        assert first == again, "same (seed, attempt) must back off identically"
        # Exponential base with bounded jitter: each delay lands in
        # [base, base * 1.1].
        for attempt, delay in enumerate(first, start=1):
            base = 1.0 * 2 ** (attempt - 1)
            assert base <= delay <= base * 1.1
        # Different seeds decorrelate (thundering-herd spread).
        assert policy.backoff_for(1, 1) != policy.backoff_for(2, 1)

    def test_backoff_respects_ceiling(self):
        policy = FaultTolerancePolicy(
            max_attempts=10, backoff_s=1.0, backoff_max_s=2.0, backoff_jitter=0.0
        )
        assert policy.backoff_for(0, 8) == 2.0


class TestEpisodeFailureRow:
    def _failure(self):
        return EpisodeFailure(
            scenario="scn-0", injector="chaos-crash", seed=123,
            config_fingerprint="abc", outcome=EpisodeOutcome.FAILED,
            error_type="RuntimeError", error="RuntimeError('boom')",
            traceback_digest="deadbeef0123", attempts=2, wall_time_s=1.5,
        )

    def test_dict_round_trip(self):
        failure = self._failure()
        rebuilt = EpisodeFailure.from_dict(failure.to_dict())
        assert rebuilt == failure
        assert "outcome" in failure.to_dict(), "the discriminator key"

    def test_from_dict_rejects_non_failure_outcome(self):
        row = self._failure().to_dict()
        row["outcome"] = "ok"
        with pytest.raises(TypeError, match="not an episode-failure outcome"):
            EpisodeFailure.from_dict(row)

    def test_raise_error_prefers_original_exception(self):
        failure = self._failure()
        failure.exception = RuntimeError("boom")
        with pytest.raises(RuntimeError, match="boom"):
            failure.raise_error()

    def test_raise_error_falls_back_to_readable_wrapper(self):
        with pytest.raises(EpisodeFailureError, match="chaos-crash.*2 attempt"):
            self._failure().raise_error()

    def test_checkpoint_rows_split_and_stream(self, tmp_path):
        """Records and failure rows share one JSONL checkpoint; readers
        split on the ``outcome`` key."""
        failure = self._failure()
        path = tmp_path / "mixed.jsonl"
        record_row = {
            "scenario": "scn-0", "injector": "none", "seed": 1, "success": True,
            "frames": 10, "duration_s": 1.0, "distance_km": 0.1,
            "time_limit_s": 60.0, "violations": [], "injection_frames": [],
            "agent_frames_missed": 0, "config_fingerprint": "abc", "faults": [],
        }
        with open(path, "w") as fh:
            fh.write(json.dumps({"event": "queue-heartbeat"}) + "\n")
            fh.write(json.dumps(record_row) + "\n")
            fh.write(json.dumps(failure.to_dict()) + "\n")
        records, failures = load_checkpoint_rows(path)
        assert [r.seed for r in records] == [1]
        assert failures == [failure]
        streamed = list(iter_jsonl_records(path))
        assert len(streamed) == 2 and streamed[1] == failure

    def test_metrics_count_failures_without_folding_them_in(self):
        acc = MetricsAccumulator()
        acc.add(self._failure())
        m = acc.result()
        assert m.n_runs == 0, "a failure is not a mission result"
        assert m.failure_counts == {EpisodeOutcome.FAILED: 1}
        assert m.n_failures == 1
        grouped = metrics_by_injector([self._failure()])
        assert grouped["chaos-crash"].failure_counts == {EpisodeOutcome.FAILED: 1}

    def test_quarantine_table_renders(self):
        table = quarantine_table([self._failure()])
        assert "chaos-crash" in table and "RuntimeError" in table
        assert "no quarantined episodes" in quarantine_table([])


class TestAttemptTask:
    def test_transient_episode_succeeds_on_retry(self, builder, scenarios, tmp_path):
        fault = FlakyFault(str(tmp_path), fail_times=2)
        task, context = _task_and_context(builder, scenarios, {"flaky": [fault]})
        policy = FaultTolerancePolicy(max_attempts=3, backoff_s=0.0)
        record = attempt_task(context, task, policy)
        assert not isinstance(record, EpisodeFailure)
        assert fault.counter_path.stat().st_size == 3, "two failures + one success"

    def test_retry_success_is_byte_identical_to_first_try_success(
        self, builder, scenarios, tmp_path
    ):
        """The tentpole determinism invariant: a fails-twice-then-succeeds
        episode must checkpoint the exact bytes of its never-failed twin."""
        fault = FlakyFault(str(tmp_path), fail_times=2)
        task, context = _task_and_context(builder, scenarios, {"flaky": [fault]})
        # Twin 1: allowance pre-spent, so the very first attempt succeeds.
        fault.exhaust()
        first_try = attempt_task(
            context, task, FaultTolerancePolicy(max_attempts=1)
        )
        # Twin 2: fresh counter, fails twice, succeeds on attempt 3.
        fault.counter_path.unlink()
        retried = attempt_task(
            context, task, FaultTolerancePolicy(max_attempts=3, backoff_s=0.0)
        )
        assert not isinstance(first_try, EpisodeFailure)
        assert json.dumps(retried.to_dict(), sort_keys=True) == json.dumps(
            first_try.to_dict(), sort_keys=True
        )

    def test_exhausted_attempts_return_structured_failure(
        self, builder, scenarios, tmp_path
    ):
        fault = FlakyFault(str(tmp_path), fail_times=99)
        task, context = _task_and_context(builder, scenarios, {"flaky": [fault]})
        failure = attempt_task(
            context, task, FaultTolerancePolicy(max_attempts=2, backoff_s=0.0)
        )
        assert isinstance(failure, EpisodeFailure)
        assert failure.outcome == EpisodeOutcome.FAILED
        assert failure.attempts == 2
        assert failure.error_type == "TransientEpisodeError"
        assert failure.traceback_digest
        assert isinstance(failure.exception, TransientEpisodeError)
        assert (task.injector, task.scenario.name, task.seed) == (
            failure.injector, failure.scenario, failure.seed,
        )

    def test_hung_episode_times_out_without_killing_the_caller(
        self, builder, scenarios
    ):
        hang = HangFault(hang_s=60.0)
        task, context = _task_and_context(builder, scenarios, {"hang": [hang]})
        policy = FaultTolerancePolicy(max_attempts=1, timeout_s=1.5)
        start = time.monotonic()
        failure = attempt_task(context, task, policy)
        elapsed = time.monotonic() - start
        assert isinstance(failure, EpisodeFailure)
        assert failure.outcome == EpisodeOutcome.TIMED_OUT
        assert failure.error_type == EpisodeTimeout.__name__
        assert failure.wall_time_s >= 1.5
        assert elapsed < 30.0, "the hang must be killed, not waited out"

    def test_sandboxed_success_matches_inline_execution(self, builder, scenarios):
        """timeout_s moves episodes into a sandbox fork; a healthy episode
        must come back byte-identical to the inline path."""
        task, context = _task_and_context(builder, scenarios, {"none": []})
        inline = attempt_task(context, task, FaultTolerancePolicy())
        sandboxed = attempt_task(
            context, task, FaultTolerancePolicy(timeout_s=120.0)
        )
        assert json.dumps(sandboxed.to_dict(), sort_keys=True) == json.dumps(
            inline.to_dict(), sort_keys=True
        )


def _exit_quickly():
    pass


def _sleep_forever():
    time.sleep(600)


def _ignore_sigterm_and_sleep():
    signal.signal(signal.SIGTERM, signal.SIG_IGN)
    time.sleep(600)


class TestReapProcess:
    def test_cooperative_exit(self):
        proc = multiprocessing.Process(target=_exit_quickly)
        proc.start()
        proc.join()
        assert reap_process(proc) == "exited"

    def test_terminate_escalation(self):
        proc = multiprocessing.Process(target=_sleep_forever)
        proc.start()
        time.sleep(0.2)
        assert reap_process(proc, grace_s=5.0) == "terminated"
        assert not proc.is_alive()

    def test_kill_escalation_reports_pid(self):
        proc = multiprocessing.Process(target=_ignore_sigterm_and_sleep)
        proc.start()
        time.sleep(0.5)  # let the child install its SIG_IGN handler
        lines = []
        assert reap_process(proc, grace_s=1.0, log=lines.append) == "killed"
        assert not proc.is_alive()
        assert any(f"pid={proc.pid}" in line for line in lines)


class TestBrokerFailureRoundTrip:
    """Satellite: requeue_failed preserves payloads and clears reports."""

    def _published(self, builder, scenarios, tmp_path):
        runner = _runner(builder, scenarios, {"none": []})
        broker = FilesystemBroker(tmp_path / "q", lease_s=30.0)
        broker.publish(runner.context(), runner.tasks())
        return broker

    def test_requeue_failed_round_trip(self, builder, scenarios, tmp_path):
        broker = self._published(builder, scenarios, tmp_path)
        claim = broker.claim("w0")
        payload = (broker.claimed_dir / claim.name).read_bytes()
        broker.fail(claim, error=RuntimeError("transient infra blip"))
        assert broker.failures(), "error report must be parked"
        assert not broker._list(broker.tasks_dir)

        recovered = broker.requeue_failed()
        assert recovered == [claim.name]
        assert broker._list(broker.tasks_dir) == [claim.name]
        assert (broker.tasks_dir / claim.name).read_bytes() == payload, (
            "failed→pending must preserve the task payload byte for byte"
        )
        assert broker.failures() == [], "parked traceback must be cleared"
        assert not list(broker.failed_dir.glob("*.error.json"))

    def test_recover_failed_alias_still_works(self, builder, scenarios, tmp_path):
        broker = self._published(builder, scenarios, tmp_path)
        claim = broker.claim("w0")
        broker.fail(claim, error=RuntimeError("x"))
        assert broker.recover_failed() == [claim.name]

    def test_lease_keeper_thread_joins_on_exit(self, builder, scenarios, tmp_path):
        from repro.core.queue import _LeaseKeeper

        broker = self._published(builder, scenarios, tmp_path)
        claim = broker.claim("w0", lease_s=0.4)
        with _LeaseKeeper(broker, claim) as keeper:
            time.sleep(0.3)
            assert keeper._thread.is_alive()
        assert not keeper._thread.is_alive(), "heartbeat thread must join cleanly"
        broker.release(claim)

    def test_quarantine_retires_task_and_report(self, builder, scenarios, tmp_path):
        broker = self._published(builder, scenarios, tmp_path)
        claim = broker.claim("w0")
        broker.fail(claim, error=RuntimeError("poison"))
        broker.quarantine(claim.name)
        assert broker.requeue_failed() == [], "quarantined tasks never requeue"
        assert (broker.quarantined_dir / claim.name).exists()


class TestCliExitCodes:
    """Satellite: missing input files exit 2 with one stderr line."""

    def test_report_missing_path_exits_2(self, tmp_path, capsys):
        from repro.cli import main

        with pytest.raises(SystemExit) as exc_info:
            main(["report", str(tmp_path / "ghost.jsonl")])
        assert exc_info.value.code == 2
        err = capsys.readouterr().err
        assert "no such results file" in err
        assert "\n" not in err.rstrip("\n"), "one readable line, not a traceback"

    def test_run_retry_flags_reach_the_campaign(self, tmp_path):
        from repro.cli import build_parser, _fault_tolerance_from_args
        from repro.core.spec import CampaignSpec

        args = build_parser().parse_args(
            ["run", "spec.json", "--max-attempts", "3",
             "--episode-timeout", "20", "--failure-budget", "2"]
        )
        policy = _fault_tolerance_from_args(args, CampaignSpec())
        assert policy == FaultTolerancePolicy(
            max_attempts=3, timeout_s=20.0, failure_budget=2
        )
        bare = build_parser().parse_args(["run", "spec.json"])
        assert _fault_tolerance_from_args(bare, CampaignSpec()) is None


class TestSpecRoundTrip:
    def test_execution_spec_carries_fault_tolerance(self):
        from repro.core.spec import CampaignSpec, ExecutionSpec, parse_spec

        spec = CampaignSpec(
            execution=ExecutionSpec(
                fault_tolerance=FaultTolerancePolicy(
                    max_attempts=3, timeout_s=90.0, failure_budget=5
                )
            )
        )
        rebuilt = parse_spec(json.dumps(spec.to_dict()))
        assert rebuilt.execution.fault_tolerance == spec.execution.fault_tolerance
        assert rebuilt.hash() == spec.hash()

    def test_bad_fault_tolerance_is_a_spec_error(self):
        from repro.core.spec import CampaignSpec, SpecError, parse_spec

        data = CampaignSpec().to_dict()
        data["execution"]["fault_tolerance"] = {"max_attempts": 0}
        with pytest.raises(SpecError, match="fault_tolerance"):
            parse_spec(json.dumps(data))
