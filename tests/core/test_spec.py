"""Tests for declarative campaign specs (repro.core.spec) and the
universal fault/agent registries they are built on.

The load-bearing guarantees:

* every registered fault survives ``to_config → from_config → to_config``
  exactly, whatever trigger it carries and whatever per-episode state it
  has accumulated;
* a campaign defined purely as a JSON spec produces records
  byte-identical to the equivalent programmatic ``Campaign``, on every
  backend;
* checkpoint fingerprints cover the agent and builder, so editing a
  spec's agent/builder re-runs episodes instead of silently matching;
* spec files round-trip, hash stably across processes, and fail
  validation with errors naming the JSON path.
"""

import copy
import json
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.agent import (
    AGENT_REGISTRY,
    autopilot_agent_factory,
    make_agent_factory,
)
from repro.agent.autopilot import ExpertConfig
from repro.core import (
    Campaign,
    CampaignSpec,
    ParallelCampaignRunner,
    Study,
    component_signature,
    load_spec,
    parse_spec,
    save_spec,
    standard_scenarios,
)
from repro.core.spec import (
    SPEC_SCHEMA_VERSION,
    AgentSpec,
    ExecutionSpec,
    ScenarioSuiteSpec,
    SpecError,
)
from repro.core.faults import (
    FAULT_REGISTRY,
    FaultModel,
    GaussianNoise,
    OutputDelay,
    Trigger,
    WeightBitFlip,
    make_fault,
)
from repro.sim.builders import SimulationBuilder
from repro.sim.render import CameraModel
from repro.sim.town import GridTownConfig

REPO_ROOT = Path(__file__).resolve().parents[2]
SPEC_DIR = REPO_ROOT / "examples" / "specs"

TOWN = GridTownConfig(rows=2, cols=3)

#: Registered faults whose constructors have required arguments.
REQUIRED_KWARGS = {
    "output-delay": {"delay_frames": 7},
    "sensor-delay": {"delay_frames": 3},
}


@pytest.fixture(scope="module")
def builder():
    return SimulationBuilder(camera=CameraModel(width=24, height=16), with_lidar=False)


@pytest.fixture(scope="module")
def scenarios():
    return standard_scenarios(2, seed=9, town_config=TOWN, min_distance=60, max_distance=160)


def make_default_instance(name, trigger=None):
    return make_fault(name, trigger=trigger, **REQUIRED_KWARGS.get(name, {}))


class TestFaultRegistry:
    def test_registry_covers_every_concrete_fault_class(self):
        """Any FaultModel subclass exported from repro.core.faults (bar
        the five hook-point base classes) must be registered."""
        import repro.core.faults as faults_module
        from repro.core.faults import (
            ControlFault,
            ModelFault,
            SensorFault,
            TimingFault,
            WorldFault,
        )

        bases = {FaultModel, ControlFault, ModelFault, SensorFault, TimingFault, WorldFault}
        concrete = {
            obj
            for name in faults_module.__all__
            if isinstance(obj := getattr(faults_module, name), type)
            and issubclass(obj, FaultModel)
            and obj not in bases
        }
        registered = set(FAULT_REGISTRY.values())
        missing = {cls.__name__ for cls in concrete - registered}
        assert not missing, f"unregistered fault classes: {sorted(missing)}"
        assert len(FAULT_REGISTRY) >= 24

    def test_registry_names_match_class_name_attribute(self):
        for name, cls in FAULT_REGISTRY.items():
            assert cls.name == name

    def test_every_fault_has_a_known_hook(self):
        for name, cls in FAULT_REGISTRY.items():
            assert cls.hook in ("input", "output", "model", "timing", "world"), name

    def test_make_fault_unknown_name_lists_known(self):
        with pytest.raises(KeyError, match="unknown fault 'warp'"):
            make_fault("warp")

    def test_register_rejects_duplicate_and_nameless(self):
        from repro.core.faults import register_fault

        with pytest.raises(ValueError, match="already registered"):

            @register_fault
            class Impostor(FaultModel):
                name = "gaussian"

        with pytest.raises(ValueError, match="class-level `name`"):

            @register_fault
            class Nameless(FaultModel):
                pass


class TestFaultConfigRoundTrip:
    @pytest.mark.parametrize("name", sorted(FAULT_REGISTRY))
    def test_default_instance_round_trips(self, name):
        fault = make_default_instance(name)
        config = fault.to_config()
        json.dumps(config)  # must be pure JSON
        rebuilt = FaultModel.from_config(config)
        assert type(rebuilt) is FAULT_REGISTRY[name]
        assert rebuilt.to_config() == config

    @pytest.mark.parametrize("name", sorted(FAULT_REGISTRY))
    def test_nondefault_trigger_round_trips(self, name):
        trigger = Trigger(start_frame=3, end_frame=77, probability=0.25)
        fault = make_default_instance(name, trigger=trigger)
        rebuilt = FaultModel.from_config(fault.to_config())
        assert rebuilt.trigger == trigger
        assert rebuilt.to_config() == fault.to_config()

    @pytest.mark.parametrize("name", sorted(FAULT_REGISTRY))
    def test_per_episode_state_never_leaks_into_config(self, name):
        """Mutating runtime state (activation log, drawn patches/sites)
        must not change the serialised config — a mid-campaign fault and
        a pristine clone describe the same configuration."""
        fault = make_default_instance(name)
        pristine = copy.deepcopy(fault).to_config()
        fault.bind(np.random.default_rng(5))
        fault.log.record(17)
        # Exercise state-drawing paths where they exist without needing
        # a live model/world: occlusion patches and water drops draw
        # lazily from an image.
        image = np.zeros((32, 48, 3), dtype=np.uint8)
        for attr in ("_patch_for", "_drops_for"):
            if hasattr(fault, attr):
                getattr(fault, attr)(image)
        assert fault.to_config() == pristine

    def test_ml_fault_installed_state_not_serialised(self):
        from repro.agent.ilcnn import ILCNN, ILCNNConfig

        tiny = ILCNNConfig(input_hw=(16, 24), conv_channels=(4, 6, 6), trunk_dim=16,
                           speed_dim=4, branch_hidden=8, dropout=0.0)
        model = ILCNN(tiny)
        fault = WeightBitFlip(n_flips=2)
        pristine = fault.to_config()
        fault.bind(np.random.default_rng(0))
        fault.install(model)
        assert fault.sites, "install must draw sites"
        assert fault.to_config() == pristine
        fault.remove(model)

    def test_from_config_parameter_values_survive(self):
        fault = GaussianNoise(sigma=0.31, trigger=Trigger(probability=0.5))
        rebuilt = FaultModel.from_config(fault.to_config())
        assert rebuilt.sigma == 0.31
        assert rebuilt.trigger.probability == 0.5

    def test_from_config_rejects_unknown_fault(self):
        with pytest.raises(KeyError, match="unknown fault 'nope'"):
            FaultModel.from_config({"fault": "nope"})

    def test_from_config_rejects_bad_params_readably(self):
        with pytest.raises(ValueError, match="accepted params: sigma"):
            FaultModel.from_config({"fault": "gaussian", "params": {"sgima": 1}})

    def test_from_config_rejects_unknown_keys(self):
        with pytest.raises(ValueError, match="unknown keys"):
            FaultModel.from_config({"fault": "gaussian", "parms": {}})

    def test_from_config_rejects_non_object_params(self):
        """Falsy non-objects ([], "", false) must not silently mean
        'all defaults' — the file would describe a different experiment
        than the one that runs."""
        for bad in ([], "", False, [1]):
            with pytest.raises(TypeError, match="'params' must be an object"):
                FaultModel.from_config({"fault": "gaussian", "params": bad})

    def test_trigger_dict_round_trip(self):
        for trigger in (Trigger(), Trigger(5, 9, 0.5), Trigger(end_frame=0)):
            assert Trigger.from_dict(trigger.to_dict()) == trigger
        with pytest.raises(ValueError, match="unknown keys"):
            Trigger.from_dict({"start": 1})

    def test_trigger_dict_rejects_wrong_types_at_load(self):
        """A hand-edited '"start_frame": "90"' must fail at load time,
        not mid-campaign inside Trigger.fires."""
        with pytest.raises(ValueError, match="start_frame must be an integer"):
            Trigger.from_dict({"start_frame": "90"})
        with pytest.raises(ValueError, match="end_frame must be an integer"):
            Trigger.from_dict({"end_frame": "forever"})
        with pytest.raises(ValueError, match="probability must be a number"):
            Trigger.from_dict({"probability": "always"})
        with pytest.raises(ValueError, match="probability must be a number"):
            Trigger.from_dict({"probability": True})

    def test_trigger_to_dict_is_canonical(self):
        assert json.dumps(Trigger(probability=1).to_dict()) == json.dumps(
            Trigger(probability=1.0).to_dict()
        )


class TestAgentRegistry:
    def test_registry_has_both_shipped_agents(self):
        assert {"autopilot", "nn"} <= set(AGENT_REGISTRY)

    def test_make_agent_factory_unknown_name(self):
        with pytest.raises(KeyError, match="unknown agent 'teleport'"):
            make_agent_factory("teleport")

    def test_autopilot_params_build_expert_config(self):
        factory = make_agent_factory("autopilot", cruise_speed=5.5)
        assert factory.expert_config.cruise_speed == 5.5

    def test_autopilot_signature_normalises_default_config(self):
        """None and an explicit default ExpertConfig drive identically,
        so they must not invalidate each other's checkpoints."""
        assert (
            autopilot_agent_factory().config_signature()
            == autopilot_agent_factory(ExpertConfig()).config_signature()
        )

    def test_retuned_expert_changes_signature(self):
        assert (
            autopilot_agent_factory(ExpertConfig(cruise_speed=5.0)).config_signature()
            != autopilot_agent_factory().config_signature()
        )

    def test_nn_signature_tracks_model_weights(self):
        from repro.agent import nn_agent_factory
        from repro.agent.ilcnn import ILCNN, ILCNNConfig

        tiny = ILCNNConfig(input_hw=(16, 24), conv_channels=(4, 6, 6), trunk_dim=16,
                           speed_dim=4, branch_hidden=8, dropout=0.0)
        model = ILCNN(tiny)
        factory = nn_agent_factory(model)
        before = factory.config_signature()
        params = model.named_parameters()
        name = sorted(params)[0]
        original = params[name].data.flat[0]
        params[name].data.flat[0] = original + 1.0
        assert factory.config_signature() != before
        params[name].data.flat[0] = original  # bit-exact restore
        assert factory.config_signature() == before

    def test_component_signature_fallback_is_process_portable(self):
        def custom(handles, mission):  # pragma: no cover - never called
            return None

        signature = component_signature(custom)
        assert "custom" in signature and "0x" not in signature


class TestSpecRoundTrip:
    def make_spec(self):
        return CampaignSpec(
            name="rt",
            scenarios=ScenarioSuiteSpec(
                n=2, seed=9, town=TOWN, min_distance=60.0, max_distance=160.0
            ),
            agent=AgentSpec("autopilot", {"cruise_speed": 6.0}),
            injectors={
                "none": [],
                "gaussian": [GaussianNoise(0.1)],
                "delay": [OutputDelay(8, trigger=Trigger(start_frame=30))],
            },
            builder=SimulationBuilder(camera=CameraModel(width=24, height=16)),
            execution=ExecutionSpec(base_seed=3, workers=2, backend="process"),
        )

    def test_to_dict_from_dict_identity(self):
        spec = self.make_spec()
        data = spec.to_dict()
        again = CampaignSpec.from_dict(json.loads(json.dumps(data)))
        assert again.to_dict() == data
        assert again.hash() == spec.hash()

    def test_save_load_spec_file(self, tmp_path):
        spec = self.make_spec()
        path = tmp_path / "spec.json"
        save_spec(spec, path)
        loaded = load_spec(path)
        assert loaded.to_dict() == spec.to_dict()
        assert loaded.execution.workers == 2
        assert loaded.agent.params == {"cruise_speed": 6.0}

    def test_int_float_spelling_hashes_identically(self):
        a = ScenarioSuiteSpec(min_distance=60, max_distance=160)
        b = ScenarioSuiteSpec(min_distance=60.0, max_distance=160.0)
        assert json.dumps(a.to_dict(), sort_keys=True) == json.dumps(
            b.to_dict(), sort_keys=True
        )

    def test_explicit_suite_int_float_spelling_hashes_identically(self, scenarios):
        """Explicit suites canonicalise numerics like the generate form:
        dataclass-equal scenarios spelled with ints vs floats must emit
        identical JSON (spec hashes are content hashes)."""
        import dataclasses

        base = scenarios[0]
        as_int = dataclasses.replace(
            base, town_config=GridTownConfig(rows=2, cols=3, block_size=80)
        )
        as_float = dataclasses.replace(
            base, town_config=GridTownConfig(rows=2, cols=3, block_size=80.0)
        )
        assert as_int == as_float
        assert json.dumps(as_int.to_dict()) == json.dumps(as_float.to_dict())

    def test_explicit_scenario_suite_round_trips(self, scenarios):
        spec = CampaignSpec(scenarios=ScenarioSuiteSpec(scenarios=list(scenarios)))
        data = spec.to_dict()
        assert "explicit" in data["scenarios"]
        again = CampaignSpec.from_dict(json.loads(json.dumps(data)))
        assert again.scenarios.build() == list(scenarios)
        assert again.to_dict() == data

    def test_generated_suite_matches_standard_scenarios(self, scenarios):
        suite = ScenarioSuiteSpec(
            n=2, seed=9, town=TOWN, min_distance=60.0, max_distance=160.0
        )
        assert suite.build() == list(scenarios)


class TestSpecValidation:
    def test_missing_schema_version(self):
        with pytest.raises(SpecError, match="spec.schema_version: missing"):
            CampaignSpec.from_dict({"injectors": {"none": []}})

    def test_future_schema_version(self):
        with pytest.raises(SpecError, match="only understands"):
            CampaignSpec.from_dict(
                {"schema_version": SPEC_SCHEMA_VERSION + 1, "injectors": {"none": []}}
            )

    def test_unknown_top_level_key(self):
        with pytest.raises(SpecError, match=r"spec: unknown keys \['agnt'\]"):
            CampaignSpec.from_dict(
                {"schema_version": 1, "injectors": {"none": []}, "agnt": {}}
            )

    def test_unknown_fault_names_its_path(self):
        with pytest.raises(SpecError, match=r"spec.injectors\['bad'\]\[0\]"):
            CampaignSpec.from_dict(
                {
                    "schema_version": 1,
                    "injectors": {"bad": [{"fault": "no-such-fault"}]},
                }
            )

    def test_unknown_agent_lists_registered(self):
        with pytest.raises(SpecError, match="registered agents"):
            CampaignSpec.from_dict(
                {
                    "schema_version": 1,
                    "injectors": {"none": []},
                    "agent": {"name": "teleport"},
                }
            )

    def test_empty_injectors_rejected(self):
        with pytest.raises(SpecError, match="at least one injector"):
            CampaignSpec.from_dict({"schema_version": 1, "injectors": {}})

    def test_agent_params_non_object_rejected(self):
        with pytest.raises(SpecError, match="spec.agent.params"):
            AgentSpec.from_dict({"name": "autopilot", "params": []})

    def test_execution_types_strictly_validated(self):
        with pytest.raises(SpecError, match=r"workers: must be an integer, got '2'"):
            ExecutionSpec.from_dict({"workers": "2"})
        with pytest.raises(SpecError, match="workers: must be an integer, got 2.9"):
            ExecutionSpec.from_dict({"workers": 2.9})
        with pytest.raises(SpecError, match="base_seed: must be an integer"):
            ExecutionSpec.from_dict({"base_seed": "7"})
        with pytest.raises(SpecError, match="lease_s: must be a number"):
            ExecutionSpec.from_dict({"lease_s": "60"})
        with pytest.raises(SpecError, match="queue_dir: must be a string"):
            ExecutionSpec.from_dict({"queue_dir": 7})

    def test_bad_backend_rejected(self):
        with pytest.raises(SpecError, match="unknown backend"):
            CampaignSpec.from_dict(
                {
                    "schema_version": 1,
                    "injectors": {"none": []},
                    "execution": {"backend": "carrier-pigeon"},
                }
            )

    def test_suite_needs_exactly_one_form(self):
        with pytest.raises(SpecError, match="exactly one of"):
            ScenarioSuiteSpec.from_dict({})
        with pytest.raises(SpecError, match="exactly one of"):
            ScenarioSuiteSpec.from_dict({"generate": {}, "explicit": []})

    def test_not_json_file(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{nope")
        with pytest.raises(SpecError, match="not valid JSON"):
            load_spec(path)

    def test_missing_file(self, tmp_path):
        with pytest.raises(SpecError, match="no such spec file"):
            load_spec(tmp_path / "ghost.json")

    def test_queue_backend_without_queue_dir_rejected_at_build(self):
        spec = CampaignSpec(execution=ExecutionSpec(backend="queue"))
        with pytest.raises(ValueError, match="queue_dir"):
            Campaign.from_spec(spec)
        with pytest.raises(ValueError, match="queue_dir"):
            Study.from_spec(spec)

    def test_queue_dir_override_beats_pinned_backend(self, tmp_path):
        """--queue-dir must shard ANY archived spec, including one whose
        execution block pinned another backend."""
        spec = CampaignSpec(execution=ExecutionSpec(workers=2, backend="process"))
        campaign = Campaign.from_spec(spec, queue_dir=str(tmp_path / "q"))
        assert campaign.backend == "queue"
        assert campaign.queue_dir == str(tmp_path / "q")


class TestStudyFromSpecExecution:
    def test_study_run_defaults_to_spec_execution(self, builder, scenarios, tmp_path):
        """A spec declaring the queue backend must actually run through
        the broker when studied — not silently fall back to serial."""
        queue_dir = tmp_path / "study-q"
        spec = CampaignSpec(
            scenarios=ScenarioSuiteSpec(
                n=1, seed=9, town=TOWN, min_distance=60.0, max_distance=160.0
            ),
            agent=AgentSpec("autopilot"),
            injectors={"none": []},
            builder=builder,
            execution=ExecutionSpec(
                workers=1, backend="queue", queue_dir=str(queue_dir)
            ),
        )
        study = Study.from_spec(spec)
        records = study.run()
        assert len(records) == 1
        # Proof the broker was used: it archived the spec and checkpoint.
        assert (queue_dir / "spec.json").exists()
        assert (queue_dir / "results.jsonl").exists()


class TestSpecExecutionEquivalence:
    """A spec-driven campaign is byte-identical to the programmatic one,
    on every backend (acceptance criterion)."""

    INJECTORS = {"none": [], "delay": [OutputDelay(8)]}

    def make_spec(self, builder, workers=None, backend=None, queue_dir=None):
        return CampaignSpec(
            name="equiv",
            scenarios=ScenarioSuiteSpec(
                n=2, seed=9, town=TOWN, min_distance=60.0, max_distance=160.0
            ),
            agent=AgentSpec("autopilot"),
            injectors={
                name: [copy.deepcopy(f) for f in faults]
                for name, faults in self.INJECTORS.items()
            },
            builder=builder,
            execution=ExecutionSpec(
                workers=workers, backend=backend, queue_dir=queue_dir
            ),
        )

    @pytest.fixture(scope="class")
    def reference(self, builder, scenarios):
        return Campaign(
            scenarios, autopilot_agent_factory(), self.INJECTORS, builder=builder
        ).run()

    def test_serial_backend_matches_programmatic(self, builder, reference):
        result = Campaign.from_spec(self.make_spec(builder, backend="serial")).run()
        assert [r.to_dict() for r in result.records] == [
            r.to_dict() for r in reference.records
        ]

    def test_process_backend_matches_programmatic(self, builder, reference):
        result = Campaign.from_spec(
            self.make_spec(builder, workers=2, backend="process")
        ).run()
        assert [r.to_dict() for r in result.records] == [
            r.to_dict() for r in reference.records
        ]

    def test_queue_backend_matches_programmatic(self, builder, reference, tmp_path):
        spec = self.make_spec(
            builder, workers=1, backend="queue", queue_dir=str(tmp_path / "q")
        )
        campaign = Campaign.from_spec(spec)
        result = campaign.run()
        assert [r.to_dict() for r in result.records] == [
            r.to_dict() for r in reference.records
        ]
        # The broker archived the spec as a portable artifact.
        spec_json = json.loads((tmp_path / "q" / "spec.json").read_text())
        assert CampaignSpec.from_dict(spec_json).hash() == spec.hash()

    def test_spec_round_trip_does_not_change_fingerprints(self, builder):
        spec = self.make_spec(builder)
        reloaded = parse_spec(json.dumps(spec.to_dict()))
        tasks_a = ParallelCampaignRunner(
            spec.scenarios.build(), spec.agent.build(), spec.injectors,
            builder=spec.build_builder(),
        ).tasks()
        tasks_b = ParallelCampaignRunner(
            reloaded.scenarios.build(), reloaded.agent.build(), reloaded.injectors,
            builder=reloaded.build_builder(),
        ).tasks()
        assert [t.identity() for t in tasks_a] == [t.identity() for t in tasks_b]


class TestComponentFingerprintInvalidation:
    """Changing the spec's agent or builder re-runs episodes instead of
    silently matching the old checkpoint (acceptance criterion)."""

    def run_study(self, spec, checkpoint):
        study = Study.from_spec(spec, checkpoint_path=checkpoint)
        study.run()
        return study

    def base_spec(self, builder):
        return CampaignSpec(
            scenarios=ScenarioSuiteSpec(
                n=1, seed=9, town=TOWN, min_distance=60.0, max_distance=160.0
            ),
            agent=AgentSpec("autopilot"),
            injectors={"none": []},
            builder=builder,
        )

    def test_agent_change_invalidates_checkpoint(self, builder, tmp_path):
        checkpoint = tmp_path / "agent.jsonl"
        spec = self.base_spec(builder)
        self.run_study(spec, checkpoint)

        unchanged = Study.from_spec(spec, checkpoint_path=checkpoint)
        assert unchanged.pending() == []

        retuned = self.base_spec(builder)
        retuned.agent = AgentSpec("autopilot", {"cruise_speed": 5.0})
        stale = Study.from_spec(retuned, checkpoint_path=checkpoint)
        assert len(stale.pending()) == 1, "agent change must re-run episodes"

    def test_builder_change_invalidates_checkpoint(self, builder, tmp_path):
        checkpoint = tmp_path / "builder.jsonl"
        spec = self.base_spec(builder)
        self.run_study(spec, checkpoint)

        rebuilt = self.base_spec(
            SimulationBuilder(camera=CameraModel(width=24, height=16), with_lidar=True)
        )
        stale = Study.from_spec(rebuilt, checkpoint_path=checkpoint)
        assert len(stale.pending()) == 1, "builder change must re-run episodes"


class TestGoldenSpecFiles:
    """The committed examples/specs/*.json stay loadable and stable."""

    def test_all_committed_specs_load(self):
        paths = sorted(SPEC_DIR.glob("*.json"))
        assert paths, f"no committed specs under {SPEC_DIR}"
        for path in paths:
            spec = load_spec(path)
            assert spec.injectors
            # Re-serialising a loaded spec reproduces the file exactly —
            # the committed artifacts are canonical.
            assert json.dumps(spec.to_dict(), indent=2) + "\n" == path.read_text(), path

    def test_smoke_spec_runs_one_episode_grid(self):
        spec = load_spec(SPEC_DIR / "smoke.json")
        result = Campaign.from_spec(spec).run()
        assert len(result.records) == 3
        assert [r.injector for r in result.records] == ["none", "gaussian", "delay-10"]
        assert all(r.config_fingerprint for r in result.records)

    def test_smoke_spec_fingerprints_stable_across_processes(self):
        """The spec hash and every task fingerprint must be identical
        when computed in a fresh interpreter — no id()/PYTHONHASHSEED
        dependence anywhere in the identity chain."""
        spec = load_spec(SPEC_DIR / "smoke.json")
        campaign = Campaign.from_spec(spec)
        runner = ParallelCampaignRunner(
            campaign.scenarios, campaign.agent_factory, campaign.injectors,
            builder=campaign.builder,
        )
        local = [spec.hash()] + [t.fingerprint for t in runner.tasks()]
        script = (
            "import json\n"
            "from repro.core import Campaign, ParallelCampaignRunner, load_spec\n"
            f"spec = load_spec({str(SPEC_DIR / 'smoke.json')!r})\n"
            "c = Campaign.from_spec(spec)\n"
            "r = ParallelCampaignRunner(c.scenarios, c.agent_factory, c.injectors,"
            " builder=c.builder)\n"
            "print(json.dumps([spec.hash()] + [t.fingerprint for t in r.tasks()]))\n"
        )
        out = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            check=True,
            cwd=REPO_ROOT,
            env={"PYTHONPATH": str(REPO_ROOT / "src"), "PYTHONHASHSEED": "31"},
        )
        assert json.loads(out.stdout) == local


class TestSweepCollision:
    def test_collision_raises_readably(self):
        from repro.core import sweep

        with pytest.raises(ValueError, match="sweep name collision"):
            sweep(lambda k: OutputDelay(int(k)), [5, 10], name_format="d")

    def test_rounded_float_collision_raises(self):
        from repro.core import sweep

        with pytest.raises(ValueError, match="0.30001"):
            sweep(
                lambda k: GaussianNoise(k), [0.3, 0.30001], name_format="g-{value:.1f}"
            )

    def test_baseline_name_collision_raises(self):
        from repro.core import sweep

        with pytest.raises(ValueError, match="collision"):
            sweep(lambda k: OutputDelay(int(k)), [5], name_format="none")

    def test_distinct_names_still_work(self):
        from repro.core import sweep

        injectors = sweep(lambda k: OutputDelay(int(k)), [5, 10], name_format="d{value}")
        assert list(injectors) == ["none", "d5", "d10"]


class TestSpecCli:
    def test_run_subcommand_executes_spec(self, capsys):
        from repro.cli import main

        assert main(["run", str(SPEC_DIR / "smoke.json"), "--workers", "1"]) == 0
        out = capsys.readouterr().out
        assert "spec: smoke" in out
        assert "delay-10" in out and "MSR_%" in out

    def test_run_rejects_missing_spec(self, tmp_path, capsys):
        from repro.cli import main

        with pytest.raises(SystemExit) as exc_info:
            main(["run", str(tmp_path / "ghost.json")])
        # Usage-level error: exit status 2 (like argparse), one readable
        # line on stderr — scripts branch on the code, humans read the line.
        assert exc_info.value.code == 2
        err = capsys.readouterr().err
        assert "no such spec file" in err and "\n" not in err.rstrip("\n")

    def test_run_rejects_coordinate_only_without_queue(self):
        from repro.cli import main

        with pytest.raises(SystemExit, match="queue"):
            main(["run", str(SPEC_DIR / "smoke.json"), "--workers", "0"])

    def test_run_reports_spec_execution_errors_readably(self, tmp_path):
        """Construction-time ValueErrors (queue backend without a queue
        dir) surface as CLI errors, not tracebacks."""
        from repro.cli import main

        spec_path = tmp_path / "queueless.json"
        spec = CampaignSpec(execution=ExecutionSpec(backend="queue"))
        save_spec(spec, spec_path)
        with pytest.raises(SystemExit, match="avfi run: .*queue_dir"):
            main(["run", str(spec_path)])

    def test_spec_emit_campaign_output_reloads(self, capsys):
        from repro.cli import main

        assert main(["spec", "emit", "campaign", "--runs", "2"]) == 0
        emitted = capsys.readouterr().out
        spec = parse_spec(emitted)
        assert spec.name == "input-fault-campaign"
        assert set(spec.injectors) == {
            "none", "gaussian", "s&p", "solid-occ", "transp-occ", "water-drop",
        }
        assert spec.scenarios.n == 2

    def test_spec_emit_sweep_delay_matches_figure_grid(self, capsys):
        from repro.cli import main

        assert main(["spec", "emit", "sweep-delay", "--delays", "0", "10"]) == 0
        spec = parse_spec(capsys.readouterr().out)
        assert list(spec.injectors) == ["delay-0", "delay-10"]
        assert spec.injectors["delay-0"] == []
        assert spec.injectors["delay-10"][0].delay_frames == 10

    def test_spec_emit_out_file(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "emitted.json"
        assert main(["spec", "emit", "campaign", "--out", str(out)]) == 0
        assert load_spec(out).name == "input-fault-campaign"

    def test_spec_emit_allows_coordinate_only_without_queue_dir(self, capsys):
        """Emitting runs nothing; a coordinate-only spec pairs with a
        --queue-dir supplied later at `avfi run` time."""
        from repro.cli import main

        assert main(["spec", "emit", "campaign", "--workers", "0"]) == 0
        spec = parse_spec(capsys.readouterr().out)
        assert spec.execution.workers == 0

    def test_spec_validate_reports_hash(self, capsys):
        from repro.cli import main

        assert main(["spec", "validate", str(SPEC_DIR / "smoke.json")]) == 0
        out = capsys.readouterr().out
        assert "OK: 'smoke'" in out and load_spec(SPEC_DIR / "smoke.json").hash() in out

    def test_spec_validate_rejects_broken(self, tmp_path):
        from repro.cli import main

        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"schema_version": 1, "injectors": {}}))
        with pytest.raises(SystemExit, match="at least one injector"):
            main(["spec", "validate", str(bad)])

    def test_list_faults_driven_by_registry(self, capsys):
        from repro.cli import main

        assert main(["list-faults"]) == 0
        out = capsys.readouterr().out
        for name in FAULT_REGISTRY:
            assert name in out, f"{name} missing from list-faults"
        for hook in ("input", "output", "timing", "model", "world"):
            assert f"\n{hook} — " in out
        assert "delay_frames" in out  # parameters are listed
