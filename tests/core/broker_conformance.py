"""Reusable Broker conformance suite.

Any class implementing the :class:`~repro.core.queue.Broker` protocol —
today the shared-directory :class:`~repro.core.queue.FilesystemBroker`
and the networked :class:`~repro.core.netqueue.TcpBroker`, tomorrow a
redis one — must pass every test here.  The suite exercises the
*semantics* the queue executor and workers rely on, through the public
Broker surface only (no reaching into ``tasks/`` listings or lease
files, which a remote broker cannot offer):

* claims are exclusive even under thread contention, and an empty queue
  claims ``None``;
* leases expire without heartbeats, survive with them, and a worker that
  finishes *after* its lease was requeued is told so (``release() is
  False``) instead of silently double-completing;
* failed tasks park with their structured error report and round-trip
  back to pending via ``requeue_failed`` (or retire via ``quarantine``);
* the results checkpoint appends durably, reads back incrementally by
  offset, and discriminates records from failure rows;
* the campaign context and manifest survive publish/load;
* worker heartbeats surface through ``workers()`` with a sane age.

Usage: subclass :class:`BrokerConformanceSuite` in a ``test_*`` module
and provide two fixtures —

``make_broker(lease_s) -> Broker``
    a factory building a broker on a **fresh, empty** backing store
    (each test calls it at most twice; both calls must reach the same
    store);
``material -> (context, tasks)``
    a published-campaign payload: a real
    :class:`~repro.core.runner.CampaignContext` and its grid of
    :class:`~repro.core.runner.EpisodeTask` (module-scoped is fine, the
    suite never mutates it).
"""

import threading
import time

import pytest

from repro.core.campaign import RunRecord
from repro.core.outcomes import EpisodeFailure

__all__ = ["BrokerConformanceSuite", "record_for", "failure_for"]


def record_for(task, success: bool = True) -> RunRecord:
    """A synthetic result row carrying ``task``'s checkpoint identity."""
    return RunRecord(
        scenario=task.scenario.name,
        injector=task.injector,
        seed=task.seed,
        success=success,
        frames=10,
        duration_s=1.0,
        distance_km=0.1,
        time_limit_s=60.0,
        config_fingerprint=task.fingerprint,
    )


def failure_for(task, outcome: str = "failed") -> EpisodeFailure:
    """A synthetic failure row carrying ``task``'s checkpoint identity."""
    return EpisodeFailure(
        scenario=task.scenario.name,
        injector=task.injector,
        seed=task.seed,
        config_fingerprint=task.fingerprint,
        outcome=outcome,
        error_type="RuntimeError",
        error="RuntimeError('synthetic')",
        attempts=1,
    )


class BrokerConformanceSuite:
    """Semantics every Broker implementation must honour (see module
    docstring for the fixtures a subclass provides)."""

    #: Default lease for tests that never let one expire.
    LEASE_S = 10.0

    @pytest.fixture
    def broker(self, make_broker, material):
        """A broker on a fresh store with the campaign published."""
        broker = make_broker(self.LEASE_S)
        context, tasks = material
        broker.publish(context, tasks)
        return broker

    # -- claims --------------------------------------------------------

    def test_claim_is_exclusive_under_contention(self, broker, material):
        _, tasks = material
        claimed: list[str] = []
        lock = threading.Lock()

        def grab(worker_id):
            while True:
                claim = broker.claim(worker_id)
                if claim is None:
                    return
                assert claim.worker_id == worker_id
                with lock:
                    claimed.append(claim.name)

        threads = [
            threading.Thread(target=grab, args=(f"w{i}",)) for i in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(claimed) == len(tasks), "every task claimed exactly once"
        assert len(set(claimed)) == len(claimed), "no task claimed twice"
        assert broker.claim("late") is None

    def test_claim_returns_task_payload(self, broker, material):
        _, tasks = material
        by_identity = {t.identity(): t for t in tasks}
        claim = broker.claim("reader")
        assert claim is not None
        task = claim.task
        assert task.identity() in by_identity
        assert task.fingerprint == by_identity[task.identity()].fingerprint

    # -- leases --------------------------------------------------------

    def test_forced_expiry_requeues(self, broker, material):
        _, tasks = material
        claim = broker.claim("ghost", lease_s=0.2)
        assert claim is not None
        status = broker.status()
        assert status["pending"] == len(tasks) - 1
        assert status["claimed"] == 1
        assert broker.live_leases() == 1
        assert broker.requeue_expired() == []  # still live
        time.sleep(0.5)
        assert broker.live_leases() == 0
        assert broker.requeue_expired() == [claim.name]
        status = broker.status()
        assert status["pending"] == len(tasks)
        assert status["claimed"] == 0

    def test_heartbeat_keeps_lease_alive(self, broker):
        claim = broker.claim("keeper", lease_s=0.5)
        assert claim is not None
        for _ in range(3):
            time.sleep(0.25)
            broker.heartbeat(claim)
            assert broker.requeue_expired() == []
        time.sleep(1.0)
        assert broker.requeue_expired() == [claim.name]

    def test_finish_after_expiry_is_reported_lost(self, broker, material):
        """The 'lease expired after the worker actually finished' race:
        release() tells the slow worker its claim was already requeued,
        and must not eat the requeued pending copy."""
        _, tasks = material
        claim = broker.claim("slow", lease_s=0.15)
        assert claim is not None
        time.sleep(0.4)
        assert broker.requeue_expired() == [claim.name]
        assert broker.release(claim) is False
        assert broker.status()["pending"] == len(tasks)

    def test_release_retires_claim(self, broker, material):
        _, tasks = material
        claim = broker.claim("worker")
        assert broker.release(claim) is True
        status = broker.status()
        assert status["claimed"] == 0
        assert status["pending"] == len(tasks) - 1  # released ≠ requeued
        assert claim.name not in broker.claimed_names()

    def test_claimed_names_reports_in_flight(self, broker):
        claim = broker.claim("watcher")
        assert claim.name in broker.claimed_names()
        broker.release(claim)
        assert claim.name not in broker.claimed_names()

    # -- failure parking -----------------------------------------------

    def test_requeue_failed_roundtrip(self, broker, material):
        _, tasks = material
        claim = broker.claim("unlucky")
        parked = failure_for(claim.task)
        broker.fail(claim, failure=parked)
        status = broker.status()
        assert status["failed"] == 1
        assert status["pending"] == len(tasks) - 1
        reports = broker.failures()
        assert len(reports) == 1
        assert reports[0]["task"] == claim.name
        assert reports[0]["worker"] == "unlucky"
        assert reports[0]["failure"] == parked.to_dict()
        assert broker.requeue_failed() == [claim.name]
        status = broker.status()
        assert status["failed"] == 0
        assert status["pending"] == len(tasks)
        assert broker.failures() == []
        # The payload survived the round-trip: it can be claimed again.
        names = set()
        while (again := broker.claim("retrier")) is not None:
            names.add(again.name)
        assert claim.name in names

    def test_quarantine_retires_failed_task(self, broker):
        claim = broker.claim("doomed")
        broker.fail(claim, failure=failure_for(claim.task))
        broker.quarantine(claim.name)
        status = broker.status()
        assert status["failed"] == 0
        assert status["quarantined"] == 1
        assert broker.requeue_failed() == []  # gone for good

    # -- the results checkpoint ----------------------------------------

    def test_append_and_read_results_by_offset(self, broker, material):
        _, tasks = material
        first, second = record_for(tasks[0]), record_for(tasks[1], success=False)
        broker.append_result(first)
        offset, rows = broker.read_results(0)
        assert [r.to_dict() for r in rows] == [first.to_dict()]
        broker.append_result(second)
        offset2, rows = broker.read_results(offset)
        assert [r.to_dict() for r in rows] == [second.to_dict()]
        _, nothing = broker.read_results(offset2)
        assert nothing == []
        assert broker.status()["results"] == 2

    def test_checkpoint_rows_discriminate_records_from_failures(
        self, broker, material
    ):
        _, tasks = material
        record = record_for(tasks[0])
        failure = failure_for(tasks[1], outcome="quarantined")
        broker.append_result(record)
        broker.append_failure(failure)
        records, failures = broker.checkpoint_rows()
        assert [r.to_dict() for r in records] == [record.to_dict()]
        assert [f.to_dict() for f in failures] == [failure.to_dict()]
        # read_results skips failure rows (they are journal, not results)
        _, rows = broker.read_results(0)
        assert [r.to_dict() for r in rows] == [record.to_dict()]

    def test_result_identities_cover_both_row_kinds(self, broker, material):
        _, tasks = material
        broker.append_result(record_for(tasks[0]))
        broker.append_failure(failure_for(tasks[1], outcome="quarantined"))
        identities = broker.result_identities()
        assert tasks[0].identity() in identities
        assert tasks[1].identity() in identities

    # -- context, manifest, liveness -----------------------------------

    def test_context_and_manifest_roundtrip(self, broker, material):
        context, tasks = material
        loaded = broker.load_context()
        assert loaded is not None
        assert list(loaded.injectors) == list(context.injectors)
        assert loaded.warm_configs == context.warm_configs
        manifest = broker.manifest()
        assert manifest is not None
        assert manifest["n_tasks"] == len(tasks)

    def test_is_idle_tracks_pending_and_claimed(self, broker):
        assert broker.is_idle() is False
        claims = []
        while (claim := broker.claim("drainer")) is not None:
            claims.append(claim)
        assert broker.is_idle() is False  # claimed, not yet released
        for claim in claims:
            broker.release(claim)
        assert broker.is_idle() is True

    def test_worker_heartbeat_surfaces_with_fresh_age(self, broker):
        broker.heartbeat_worker("conformance-w1", 3)
        rows = [r for r in broker.workers() if r.get("worker") == "conformance-w1"]
        assert len(rows) == 1
        assert rows[0]["episodes_done"] == 3
        assert rows[0]["age_s"] is not None
        assert rows[0]["age_s"] < 30.0
