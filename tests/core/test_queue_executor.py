"""Tests for the distributed work-queue backend (repro.core.queue).

The hard acceptance invariant: a campaign run through ``QueueExecutor``
with multiple worker processes — one of them SIGKILLed mid-episode and
its lease requeued — produces a ``CampaignResult`` identical in record
content and grid order to the same campaign run through
``SerialExecutor``, resuming purely from the shared JSONL checkpoint.
"""

import json
import multiprocessing
import os
import signal
import threading
import time

import pytest

from repro.agent import autopilot_agent_factory
from repro.core import (
    Campaign,
    FilesystemBroker,
    ParallelCampaignRunner,
    QueueExecutor,
    Study,
    make_executor,
    run_worker,
    standard_scenarios,
)
from repro.core.faults import OutputDelay
from repro.core.runner import record_identity
from repro.sim.builders import SimulationBuilder
from repro.sim.render import CameraModel
from repro.sim.town import GridTownConfig

TOWN = GridTownConfig(rows=2, cols=3)
INJECTORS = {"none": [], "delay": [OutputDelay(8)]}


@pytest.fixture(scope="module")
def builder():
    return SimulationBuilder(camera=CameraModel(width=24, height=16), with_lidar=False)


@pytest.fixture(scope="module")
def scenarios():
    return standard_scenarios(2, seed=9, town_config=TOWN, min_distance=60, max_distance=160)


def _runner(builder, scenarios, injectors=INJECTORS, **kw):
    return ParallelCampaignRunner(
        scenarios, autopilot_agent_factory(), injectors, builder=builder, **kw
    )


def _queue_executor(qdir, **kw):
    kw.setdefault("lease_s", 10.0)
    kw.setdefault("poll_s", 0.05)
    kw.setdefault("stall_timeout", 120.0)
    return QueueExecutor(qdir, **kw)


def _dicts(result):
    return [r.to_dict() for r in result.records]


def _spawn_worker(qdir, worker_id, lease_s=1.5, idle_timeout=1.0):
    proc = multiprocessing.Process(
        target=run_worker,
        kwargs=dict(
            queue_dir=str(qdir),
            worker_id=worker_id,
            lease_s=lease_s,
            poll_s=0.02,
            idle_timeout=idle_timeout,
        ),
        daemon=True,
    )
    proc.start()
    return proc


def _wait_for(predicate, timeout=60.0, interval=0.002, message="condition"):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(interval)
    raise AssertionError(f"timed out waiting for {message}")


class _CoordinatorThread(threading.Thread):
    """Runs ``runner.run()`` so the test can orchestrate workers around it."""

    def __init__(self, runner):
        super().__init__(daemon=True)
        self.runner = runner
        self.result = None
        self.error = None

    def run(self):
        try:
            self.result = self.runner.run()
        except BaseException as exc:  # noqa: BLE001 — surfaced in the test
            self.error = exc

    def finish(self, timeout=120.0):
        self.join(timeout)
        assert not self.is_alive(), "coordinator did not finish"
        if self.error is not None:
            raise self.error
        return self.result


class TestQueueAcceptance:
    def test_queue_with_killed_worker_matches_serial(self, builder, scenarios, tmp_path):
        """≥2 worker processes, one SIGKILLed mid-episode; its lease
        expires, the task requeues, and the result — rebuilt purely from
        the shared JSONL checkpoint — is identical to a serial run."""
        serial = _runner(builder, scenarios, executor="serial").run()

        qdir = tmp_path / "queue"
        coordinator = _CoordinatorThread(
            _runner(builder, scenarios, executor=_queue_executor(qdir, lease_s=1.5))
        )
        coordinator.start()
        broker = FilesystemBroker(qdir)
        _wait_for(lambda: broker._list(broker.tasks_dir), message="tasks published")

        # The victim is the only worker, so it must be the one claiming.
        victim = _spawn_worker(qdir, "victim", lease_s=1.5, idle_timeout=30.0)
        _wait_for(
            lambda: any(broker.leases_dir.glob("*.json")), message="victim's lease"
        )
        os.kill(victim.pid, signal.SIGKILL)
        victim.join(timeout=30)

        healthy = [_spawn_worker(qdir, f"healthy-{i}") for i in range(2)]
        result = coordinator.finish()
        for proc in healthy:
            proc.join(timeout=60)

        assert _dicts(result) == _dicts(serial)

        # Resume purely from the checkpoint: nothing pending, same grid.
        resumed = _runner(
            builder, scenarios, executor="serial", checkpoint_path=qdir / "results.jsonl"
        )
        assert resumed.pending() == []
        assert _dicts(resumed.run()) == _dicts(serial)

    def test_inline_local_workers_match_serial_and_resume(self, builder, scenarios, tmp_path):
        """backend-style inline use: the executor spawns its own drain
        processes; a second run against the same queue dir resumes from
        the checkpoint and executes nothing."""
        serial = _runner(builder, scenarios, executor="serial").run()
        qdir = tmp_path / "queue"
        first = _runner(builder, scenarios, executor=_queue_executor(qdir, workers=2))
        assert first.checkpoint_path == qdir / "results.jsonl"
        assert _dicts(first.run()) == _dicts(serial)

        again = _runner(builder, scenarios, executor=_queue_executor(qdir, workers=2))
        assert again.pending() == []
        assert _dicts(again.run()) == _dicts(serial)


class TestLeases:
    """Filesystem-specific lease mechanics (mtime fallbacks, lease files,
    republish pruning).  The *generic* lease semantics — forced expiry,
    heartbeat keep-alive, the finish-after-expiry race — live in the
    Broker conformance suite (tests/core/broker_conformance.py), which
    runs them against the filesystem AND TCP brokers."""

    def _published_broker(self, builder, scenarios, qdir):
        runner = _runner(builder, scenarios)
        broker = FilesystemBroker(qdir, lease_s=0.5)
        broker.publish(runner.context(), runner.tasks())
        return broker, runner

    def test_claiming_stale_pending_task_is_not_stolen(self, builder, scenarios, tmp_path):
        """A task pending longer than the lease keeps its publish-time
        mtime through the claim rename; the claim must not look expired
        to a concurrent requeue scan before its lease lands."""
        broker, _ = self._published_broker(builder, scenarios, tmp_path / "q")
        name = broker._list(broker.tasks_dir)[0]
        old = time.time() - 20 * broker.lease_s
        os.utime(broker.tasks_dir / name, (old, old))
        claim = broker.claim("slowpoke", lease_s=broker.lease_s)
        assert claim.name == name
        # Re-create the dangerous window: the claim exists but its lease
        # has not landed yet.  The age fallback must now see the *claim*
        # time (utime'd at claim), not the stale publish-time mtime.
        broker._lease_path(name).unlink()
        assert broker.requeue_expired() == [], "fresh claim must not be stolen"
        broker.heartbeat(claim)
        assert broker.live_leases() == 1

    def test_lagging_clock_heartbeat_does_not_expire_lease(
        self, builder, scenarios, tmp_path
    ):
        """Regression: a worker whose clock lags stamps heartbeats 'in
        the past'.  Judged by the embedded timestamp alone its lease
        would expire the instant it lands and the running task would be
        requeued (duplicate execution); expiry must trust the fresher of
        the embedded time and the lease file's mtime."""
        broker, _ = self._published_broker(builder, scenarios, tmp_path / "q")
        claim = broker.claim("lagger", lease_s=5.0)
        lease_path = broker._lease_path(claim.name)
        lease = json.loads(lease_path.read_text())
        lease["heartbeat_at"] -= 600.0  # ten minutes of clock lag
        lease_path.write_text(json.dumps(lease))  # rewrite => fresh mtime
        assert broker.requeue_expired() == [], "skewed-but-fresh lease stolen"
        assert broker.live_leases() == 1
        # A lease that is *actually* stale — old embedded time AND old
        # mtime — must still expire; the guard is not an immortality pass.
        old = time.time() - 600.0
        os.utime(lease_path, (old, old))
        assert broker.requeue_expired() == [claim.name]

    def test_worker_liveness_survives_clock_skew(self, builder, scenarios, tmp_path):
        """Same guard for observability: a lagging worker rewriting its
        heartbeat file every few seconds must read as alive in
        ``workers()``, and a genuinely dead one as stale."""
        broker, _ = self._published_broker(builder, scenarios, tmp_path / "q")
        broker.heartbeat_worker("lagger", 2)
        path = broker.workers_dir / "lagger.json"
        beat = json.loads(path.read_text())
        beat["heartbeat_at"] -= 600.0
        path.write_text(json.dumps(beat))  # fresh mtime, skewed stamp
        (row,) = [r for r in broker.workers() if r.get("worker") == "lagger"]
        assert row["episodes_done"] == 2
        assert row["age_s"] < 30.0, "skew misread as staleness"
        old = time.time() - 600.0
        os.utime(path, (old, old))  # now both signals agree: dead
        (row,) = [r for r in broker.workers() if r.get("worker") == "lagger"]
        assert row["age_s"] > 500.0

    def test_claim_without_lease_file_requeues_by_age(self, builder, scenarios, tmp_path):
        """A claimer that died between rename and lease write leaves a
        lease-less claim; it requeues once the file is older than the
        default lease."""
        broker, _ = self._published_broker(builder, scenarios, tmp_path / "q")
        name = broker._list(broker.tasks_dir)[0]
        os.rename(broker.tasks_dir / name, broker.claimed_dir / name)
        assert broker.requeue_expired() == []  # too fresh to judge
        old = time.time() - 10 * broker.lease_s
        os.utime(broker.claimed_dir / name, (old, old))
        assert broker.requeue_expired() == [name]

    def test_long_lived_worker_reloads_context_on_republish(self, builder, scenarios, tmp_path):
        """A worker that outlives its campaign must pick up a re-publish
        with retuned faults — executing new tasks against the old context
        would checkpoint wrong results under the new fingerprints."""
        qdir = tmp_path / "q"
        first = _runner(builder, scenarios[:1], injectors={"delay": [OutputDelay(8)]})
        broker = FilesystemBroker(qdir)
        broker.publish(first.context(), first.tasks())

        worker = threading.Thread(
            target=run_worker,
            kwargs=dict(queue_dir=str(qdir), worker_id="lived", lease_s=10.0,
                        poll_s=0.02, idle_timeout=30.0, max_tasks=2),
            daemon=True,
        )
        worker.start()
        _wait_for(lambda: len(broker.result_identities()) >= 1,
                  message="first campaign drained")

        retuned = _runner(builder, scenarios[:1], injectors={"delay": [OutputDelay(30)]})
        broker.publish(retuned.context(), retuned.tasks())
        worker.join(timeout=60)
        assert not worker.is_alive()

        _, rows = broker.read_results(0)
        by_fp = {r.config_fingerprint: r for r in rows}
        new_task = retuned.tasks()[0]
        assert new_task.fingerprint in by_fp, "retuned task must have run"
        delays = [f["delay_frames"] for f in by_fp[new_task.fingerprint].faults]
        assert delays == [30], "record must reflect the NEW fault config"

    def test_publish_prunes_stale_claimed_orphans(self, builder, scenarios, tmp_path):
        """An orphaned claim from a previous (different-config) campaign
        must not survive a re-publish — it would expire, requeue, and
        burn a worker on work outside the new grid."""
        qdir = tmp_path / "q"
        old = _runner(builder, scenarios, injectors={"none": []})
        broker = FilesystemBroker(qdir, lease_s=0.5)
        broker.publish(old.context(), old.tasks())
        orphan = broker.claim("crashed-worker")
        assert orphan is not None

        new = _runner(builder, scenarios, injectors={"delay": [OutputDelay(8)]})
        broker.publish(new.context(), new.tasks())
        assert broker._list(broker.claimed_dir) == []
        assert not broker._lease_path(orphan.name).exists()
        expected = sorted(broker._task_filename(t) for t in new.tasks())
        assert broker._list(broker.tasks_dir) == expected
        assert broker.requeue_expired() == []

    def test_worker_skips_identity_already_in_results(self, builder, scenarios, tmp_path):
        """A requeued task whose record already landed (finish-after-
        expiry) must be retired by the next claimer, not re-run."""
        reference = _runner(builder, scenarios[:1], injectors={"none": []},
                            executor="serial").run()
        qdir = tmp_path / "q"
        runner = _runner(builder, scenarios[:1], injectors={"none": []})
        broker = FilesystemBroker(qdir)
        broker.publish(runner.context(), runner.tasks())
        broker.append_result(reference.records[0])
        drained = run_worker(qdir, worker_id="late", lease_s=5.0, poll_s=0.02,
                             idle_timeout=0.2)
        assert drained == 0, "already-checkpointed episode must not re-run"
        assert broker.is_idle()
        _, rows = broker.read_results(0)
        assert len(rows) == 1


class TestCheckpointRecovery:
    def test_duplicate_identity_rows_dedupe(self, builder, scenarios, tmp_path):
        """Two records for one identity (lease expired after the worker
        finished, episode re-ran) must fold to a single grid row."""
        checkpoint = tmp_path / "dup.jsonl"
        reference = _runner(builder, scenarios, executor="serial",
                            checkpoint_path=checkpoint).run()
        lines = checkpoint.read_text().splitlines()
        checkpoint.write_text("\n".join(lines + [lines[-1], lines[0]]) + "\n")

        resumed = _runner(builder, scenarios, executor="serial",
                          checkpoint_path=checkpoint)
        assert resumed.pending() == []
        records = resumed.grid_records()
        assert len(records) == len(reference.records)
        assert _dicts(resumed.run()) == _dicts(reference)
        identities = [record_identity(r) for r in records]
        assert len(set(identities)) == len(identities)

    def test_foreign_fingerprint_rows_ignored_not_matched(self, builder, scenarios, tmp_path):
        """Rows from a different suite sharing the queue checkpoint are
        journal noise: the grid re-runs and excludes them."""
        other_suite = standard_scenarios(
            1, seed=10, town_config=TOWN, min_distance=60, max_distance=160
        )
        qdir = tmp_path / "q"
        _runner(builder, other_suite, injectors={"none": []}, executor="serial",
                checkpoint_path=qdir / "results.jsonl").run()

        serial = _runner(builder, scenarios[:1], executor="serial").run()
        queue_run = _runner(builder, scenarios[:1],
                            executor=_queue_executor(qdir, workers=1))
        assert len(queue_run.pending()) == len(queue_run.tasks()), \
            "foreign rows must not satisfy the grid"
        result = queue_run.run()
        assert _dicts(result) == _dicts(serial)
        foreign = {
            t.fingerprint
            for t in _runner(builder, other_suite, injectors={"none": []}).tasks()
        }
        assert all(r.config_fingerprint not in foreign for r in result.records)

    def test_truncated_final_line_reruns_one_episode(self, builder, scenarios, tmp_path):
        """A worker hard-killed mid-append (or a torn NFS write) leaves a
        partial final line; the queue resume drops it and re-runs exactly
        that episode."""
        qdir = tmp_path / "q"
        full = _runner(builder, scenarios,
                       executor=_queue_executor(qdir, workers=2)).run()
        checkpoint = qdir / "results.jsonl"
        lines = checkpoint.read_text().splitlines()
        checkpoint.write_text(
            "\n".join(lines[:-1]) + "\n" + lines[-1][: len(lines[-1]) // 2]
        )

        resumed = _runner(builder, scenarios,
                          executor=_queue_executor(qdir, workers=1))
        assert len(resumed.pending()) == 1
        assert _dicts(resumed.run()) == _dicts(full)

    def test_worker_error_propagates_and_keeps_completed(self, builder, scenarios, tmp_path):
        """A failing episode parks in failed/, the coordinator raises,
        completed records stay checkpointed, and a resume with the fault
        fixed runs only the remainder."""
        qdir = tmp_path / "q"
        broken = ParallelCampaignRunner(
            scenarios, _ExplodingFactory(scenarios[1]), {"none": []},
            builder=builder, executor=_queue_executor(qdir, workers=1),
        )
        with pytest.raises(RuntimeError, match="boom"):
            broken.run()
        assert FilesystemBroker(qdir).failures(), "error report must be parked"

        serial = _runner(builder, scenarios, injectors={"none": []},
                         executor="serial").run()
        fixed = _runner(builder, scenarios, injectors={"none": []},
                        executor=_queue_executor(qdir, workers=1))
        assert 1 <= len(fixed.pending()) <= 2
        assert _dicts(fixed.run()) == _dicts(serial)


class _ExplodingFactory:
    """Picklable agent factory that fails on one scenario's mission."""

    def __init__(self, bad_scenario):
        self.bad_goal = (bad_scenario.mission.goal.x, bad_scenario.mission.goal.y)
        self.inner = autopilot_agent_factory()

    def __call__(self, handles, mission):
        if (mission.goal.x, mission.goal.y) == self.bad_goal:
            raise RuntimeError("boom")
        return self.inner(handles, mission)


class TestPlumbing:
    def test_make_executor_queue_specs(self, tmp_path):
        ex = make_executor("queue", queue_dir=tmp_path / "q", workers=2, lease_s=7.0)
        assert isinstance(ex, QueueExecutor)
        assert ex.workers == 2 and ex.lease_s == 7.0
        defaulted = make_executor(queue_dir=tmp_path / "q")
        assert isinstance(defaulted, QueueExecutor)
        assert defaulted.workers == 1, "bare queue_dir must make progress alone"
        assert make_executor(queue_dir=tmp_path / "q", workers=0).workers == 0
        with pytest.raises(ValueError, match="queue_dir"):
            make_executor("queue")
        with pytest.raises(ValueError, match="workers"):
            make_executor(workers=-1)
        instance = QueueExecutor(tmp_path / "q2")
        assert make_executor(instance) is instance

    def test_queue_dir_conflicts_with_non_queue_executor(self, tmp_path):
        """queue_dir + an explicit non-queue executor must raise, not
        silently run locally with the broker directory ignored."""
        with pytest.raises(ValueError, match="conflicts"):
            make_executor("process", workers=4, queue_dir=tmp_path / "q")
        with pytest.raises(ValueError, match="conflicts"):
            make_executor("serial", queue_dir=tmp_path / "q")
        # A queue instance is compatible (and authoritative).
        instance = QueueExecutor(tmp_path / "q")
        assert make_executor(instance, queue_dir=tmp_path / "q") is instance

    def test_checkpoint_ownership_survives_path_spelling(self, builder, scenarios, tmp_path, monkeypatch):
        """The same checkpoint spelled relatively must still be treated
        as executor-owned — otherwise the runner duplicates every line
        the workers already appended."""
        monkeypatch.chdir(tmp_path)
        runner = _runner(
            builder, scenarios,
            executor=_queue_executor(tmp_path / "q"),
            checkpoint_path="q/results.jsonl",
        )
        assert runner._executor_owns_checkpoint

    def test_campaign_backend_queue(self, builder, scenarios, tmp_path):
        serial = Campaign(scenarios[:1], autopilot_agent_factory(), INJECTORS,
                          builder=builder).run()
        queued = Campaign(
            scenarios[:1], autopilot_agent_factory(), INJECTORS, builder=builder,
            backend="queue", queue_dir=tmp_path / "q", workers=2, lease_s=10.0,
        ).run()
        assert _dicts(queued) == _dicts(serial)
        with pytest.raises(ValueError, match="not both"):
            Campaign(scenarios[:1], autopilot_agent_factory(), INJECTORS,
                     backend="queue", executor="serial")

    def test_study_run_over_queue_mirrors_checkpoint(self, builder, scenarios, tmp_path):
        reference = Study(
            scenarios[:1], autopilot_agent_factory(), INJECTORS,
            checkpoint_path=tmp_path / "ref.jsonl", builder=builder,
        ).run()
        study = Study(
            scenarios[:1], autopilot_agent_factory(), INJECTORS,
            checkpoint_path=tmp_path / "study.jsonl", builder=builder,
        )
        records = study.run(workers=1, queue_dir=tmp_path / "q")
        assert [r.to_dict() for r in records] == [r.to_dict() for r in reference]
        # The study's own checkpoint got every record (mirrored), so a
        # plain serial resume sees nothing pending.
        assert study.pending() == []
        mirrored = (tmp_path / "study.jsonl").read_text().splitlines()
        assert len(mirrored) == len(records)


class TestCliValidation:
    def _parse(self, argv):
        from repro.cli import build_parser

        return build_parser().parse_args(argv)

    @pytest.mark.parametrize("value", ["-3", "two"])
    def test_workers_rejected_with_clear_error(self, value, capsys):
        with pytest.raises(SystemExit):
            self._parse(["campaign", "--workers", value])
        err = capsys.readouterr().err
        assert "--workers" in err and ("must be >= 0" in err or "expected an integer" in err)

    def test_workers_zero_requires_queue_dir(self, capsys):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["campaign", "--workers", "0"])
        assert "requires --queue-dir" in capsys.readouterr().err
        # Coordinate-only is a legitimate queue-mode request.
        args = self._parse(["campaign", "--workers", "0", "--queue-dir", "q"])
        assert args.workers == 0 and args.queue_dir == "q"

    @pytest.mark.parametrize("value", ["0", "-1.5", "nan"])
    def test_lease_rejected_with_clear_error(self, value, capsys):
        with pytest.raises(SystemExit):
            self._parse(["worker", "--queue-dir", "q", "--lease", value])
        assert "--lease" in capsys.readouterr().err

    def test_worker_subcommand_defaults(self):
        args = self._parse(["worker", "--queue-dir", "/shared/q"])
        assert args.queue_dir == "/shared/q"
        assert args.lease == 60.0 and args.poll == 0.5 and args.idle_timeout == 5.0
        assert args.max_tasks is None and args.worker_id is None
        assert args.func.__name__ == "cmd_worker"

    def test_worker_requires_queue_dir(self, capsys):
        with pytest.raises(SystemExit):
            self._parse(["worker"])
        assert "--queue-dir" in capsys.readouterr().err

    def test_campaign_queue_flags_parsed(self):
        args = self._parse(
            ["campaign", "--queue-dir", "/shared/q", "--workers", "2", "--lease", "30"]
        )
        assert args.queue_dir == "/shared/q" and args.workers == 2 and args.lease == 30.0

    def test_worker_poll_and_idle_validated(self, capsys):
        with pytest.raises(SystemExit):
            self._parse(["worker", "--queue-dir", "q", "--poll", "0"])
        with pytest.raises(SystemExit):
            self._parse(["worker", "--queue-dir", "q", "--idle-timeout", "-1"])
