"""Compound-fault episodes end-to-end: harness unwind and ordering, the
Snippet-catalog faults, interaction-effect analysis, compound spec
expansion, the streaming metrics path and the parquet/JSONL sinks."""

import copy
import json
import math
import warnings
from types import SimpleNamespace

import numpy as np
import pytest

from repro.agent import autopilot_agent_factory
from repro.agent.ilcnn import ILCNN, ILCNNConfig
from repro.core import (
    Campaign,
    CampaignSpec,
    CompoundInjectorSpec,
    InjectionHarness,
    compute_metrics,
    interaction_effects,
    interaction_table,
    metrics_by_injector,
    standard_scenarios,
)
from repro.core.analysis import compare_to_baseline
from repro.core.campaign import RunRecord
from repro.core.faults import (
    DuplicationFault,
    FaultModel,
    GaussianNoise,
    OutputDelay,
    SchemaChangeFault,
    SensorDriftFault,
    SpikeFault,
    StuckAtFault,
    Trigger,
    WeightNoise,
)
from repro.core.metrics import MetricsAccumulator
from repro.core.sink import (
    HAVE_PYARROW,
    ParquetUnavailable,
    iter_jsonl_records,
    iter_records,
    record_to_row,
    row_to_record,
)
from repro.core.spec import ExecutionSpec, SpecError
from repro.sim.builders import SimulationBuilder
from repro.sim.channel import Channel
from repro.sim.render import CameraModel
from repro.sim.sensors import SensorFrame
from repro.sim.town import GridTownConfig

TOWN = GridTownConfig(rows=2, cols=3)
TINY = ILCNNConfig(input_hw=(16, 24), conv_channels=(4, 6, 6), trunk_dim=16,
                   speed_dim=4, branch_hidden=8, dropout=0.0)


@pytest.fixture(scope="module")
def builder():
    return SimulationBuilder(camera=CameraModel(width=24, height=16), with_lidar=False)


@pytest.fixture(scope="module")
def scenarios():
    return standard_scenarios(1, seed=9, town_config=TOWN, min_distance=60, max_distance=160)


def _bundle(frame=0, speed=10.0, gps=(5.0, 7.0), heading=0.25):
    return SensorFrame(
        frame=frame,
        image=np.zeros((8, 8, 3), dtype=np.uint8),
        gps=gps,
        speed=speed,
        heading=heading,
        lidar=None,
    )


def _parts():
    """Minimal client/server stand-ins exposing the harness hook points."""
    client = SimpleNamespace(input_filters=[], output_filters=[])
    server = SimpleNamespace(
        sensor_channel=Channel("sensor"), control_channel=Channel("control")
    )
    return server, client


def bind(fault, seed=0):
    fault.reset()
    fault.bind(np.random.default_rng(seed))
    return fault


# ----------------------------------------------------------------------
# Harness: duplicate rejection, partial-failure unwind, compound order
# ----------------------------------------------------------------------


class TestHarnessDuplicateRejection:
    def test_same_instance_twice_rejected(self):
        fault = GaussianNoise(0.1)
        with pytest.raises(ValueError, match="appears twice.*position 1"):
            InjectionHarness([fault, fault], seed=0)

    def test_error_suggests_deepcopy(self):
        fault = OutputDelay(5)
        with pytest.raises(ValueError, match="deepcopy"):
            InjectionHarness([fault, GaussianNoise(0.1), fault], seed=0)

    def test_equal_but_distinct_instances_allowed(self):
        harness = InjectionHarness([GaussianNoise(0.1), GaussianNoise(0.1)], seed=0)
        assert len(harness.faults) == 2


class TestHarnessPartialAttachUnwind:
    def test_model_fault_without_model_unwinds_earlier_hooks(self):
        server, client = _parts()
        harness = InjectionHarness(
            [GaussianNoise(0.1), OutputDelay(5), WeightNoise(0.2)], seed=0
        )
        with pytest.raises(ValueError, match="no model"):
            harness.attach(server, client, model=None)
        # The sensor filter and channel transform planted before the
        # failure must be gone; the components are pristine.
        assert client.input_filters == []
        assert client.output_filters == []
        assert server.control_channel.transforms == []
        assert server.sensor_channel.transforms == []

    def test_failed_attach_restores_model_weights(self):
        class ExplodingFault(FaultModel):
            """Attaches to no hook point -> TypeError mid-attach."""

        server, client = _parts()
        model = ILCNN(TINY)
        before = model.state_dict()
        harness = InjectionHarness(
            [WeightNoise(0.5), GaussianNoise(0.1), ExplodingFault()], seed=1
        )
        with pytest.raises(TypeError, match="unknown fault kind"):
            harness.attach(server, client, model=model)
        assert all(np.array_equal(before[k], model.state_dict()[k]) for k in before)
        assert client.input_filters == []

    def test_harness_reusable_after_failed_attach(self):
        server, client = _parts()
        harness = InjectionHarness([GaussianNoise(0.1), WeightNoise(0.2)], seed=0)
        with pytest.raises(ValueError):
            harness.attach(server, client, model=None)
        # Not attached: a subsequent attach with a model must succeed.
        model = ILCNN(TINY)
        harness.attach(server, client, model=model)
        assert len(client.input_filters) == 1
        harness.detach()
        assert client.input_filters == []

    def test_detach_noop_without_attach(self):
        harness = InjectionHarness([GaussianNoise(0.1)], seed=0)
        harness.detach()  # must not raise


class TestCompoundAttachOrdering:
    def test_sensor_faults_compose_in_declaration_order(self):
        """stuck-at then schema-change: the stuck value gets rescaled."""
        server, client = _parts()
        stuck = StuckAtFault(field="speed", value=10.0)
        schema = SchemaChangeFault(swap_gps=False, speed_factor=2.0)
        harness = InjectionHarness([stuck, schema], seed=0)
        harness.attach(server, client)
        out = _bundle(speed=3.0)
        for filt in client.input_filters:  # what AgentClient.tick does
            out = filt(out)
        assert out.speed == pytest.approx(20.0)
        harness.detach()

        # Reversed declaration: the stuck-at wins, rescale never shows.
        server, client = _parts()
        harness = InjectionHarness(
            [SchemaChangeFault(swap_gps=False, speed_factor=2.0),
             StuckAtFault(field="speed", value=10.0)],
            seed=0,
        )
        harness.attach(server, client)
        out = _bundle(speed=3.0)
        for filt in client.input_filters:
            out = filt(out)
        assert out.speed == pytest.approx(10.0)
        harness.detach()

    def test_detach_restores_weights_after_compound_ml_sensor_episode(self):
        server, client = _parts()
        model = ILCNN(TINY)
        before = model.state_dict()
        harness = InjectionHarness(
            [GaussianNoise(0.2), WeightNoise(0.5), OutputDelay(4)], seed=3
        )
        harness.attach(server, client, model=model)
        assert any(
            not np.array_equal(before[k], model.state_dict()[k]) for k in before
        )
        harness.detach()
        assert all(np.array_equal(before[k], model.state_dict()[k]) for k in before)
        assert client.input_filters == []
        assert server.control_channel.transforms == []

    def test_per_position_child_rngs_are_deterministic(self):
        """Same fault set + seed -> identical streams; the draw depends
        on the fault's position, not its identity."""

        def spikes(seed):
            server, client = _parts()
            faults = [SpikeFault(magnitude=5.0, trigger=Trigger(probability=1.0)),
                      SpikeFault(magnitude=5.0, trigger=Trigger(probability=1.0))]
            harness = InjectionHarness(faults, seed=seed)
            harness.attach(server, client)
            out = []
            for filt in client.input_filters:
                out.append(filt(_bundle(speed=50.0)).speed)
            harness.detach()
            return out

        first, second = spikes(11), spikes(11)
        assert first == second
        # Two positions draw from different child streams.
        assert first[0] != first[1]
        assert spikes(12) != first


# ----------------------------------------------------------------------
# The ported Snippet-catalog faults
# ----------------------------------------------------------------------


class TestCatalogFaults:
    def test_schema_change_swaps_and_rescales(self):
        fault = bind(SchemaChangeFault(swap_gps=True, speed_factor=3.6))
        out = fault.apply(_bundle(speed=10.0, gps=(5.0, 7.0)), 0)
        assert out.gps == (7.0, 5.0)
        assert out.speed == pytest.approx(36.0)

    def test_stuck_at_heading(self):
        fault = bind(StuckAtFault(field="heading", value=1.5))
        out = fault.apply(_bundle(heading=0.2), 0)
        assert out.heading == 1.5

    def test_stuck_at_rejects_unknown_field(self):
        with pytest.raises(ValueError, match="field must be one of"):
            StuckAtFault(field="altitude")

    def test_spike_speed_never_negative(self):
        fault = bind(SpikeFault(field="speed", magnitude=100.0,
                                trigger=Trigger(probability=1.0)))
        for frame in range(50):
            assert fault.apply(_bundle(speed=1.0), frame).speed >= 0.0

    def test_spike_gps_displaces_fix(self):
        fault = bind(SpikeFault(field="gps", magnitude=25.0,
                                trigger=Trigger(probability=1.0)))
        out = fault.apply(_bundle(gps=(0.0, 0.0)), 0)
        assert math.hypot(*out.gps) > 25.0 * 0.25 - 1e-9

    def test_drift_accumulates_and_resets(self):
        fault = bind(SensorDriftFault(rate_m=1.0, heading_deg=0.0))
        first = fault.apply(_bundle(gps=(0.0, 0.0)), 0)
        second = fault.apply(_bundle(gps=(0.0, 0.0)), 1)
        assert first.gps[0] == pytest.approx(1.0)
        assert second.gps[0] == pytest.approx(2.0)  # grows every frame
        fault.reset()
        again = fault.apply(_bundle(gps=(0.0, 0.0)), 0)
        assert again.gps[0] == pytest.approx(1.0)

    def test_duplication_replays_stale_bundle(self):
        fault = bind(DuplicationFault(lag=2, trigger=Trigger(probability=1.0)))
        outs = [fault.apply(_bundle(frame=i, speed=float(i)), i) for i in range(5)]
        # Until `lag` history exists the live bundle passes through.
        assert outs[0].speed == 0.0 and outs[1].speed == 1.0
        # From then on the agent sees the bundle from `lag` frames ago.
        assert outs[2].speed == 0.0
        assert outs[3].speed == 1.0
        assert outs[4].speed == 2.0

    def test_duplication_validation(self):
        with pytest.raises(ValueError, match="lag"):
            DuplicationFault(lag=0)

    @pytest.mark.parametrize(
        "fault",
        [
            SchemaChangeFault(swap_gps=False, speed_factor=2.5),
            StuckAtFault(field="heading", value=-1.0),
            SpikeFault(field="gps", magnitude=12.0),
            SensorDriftFault(rate_m=0.2, heading_deg=90.0),
            DuplicationFault(lag=4),
        ],
        ids=lambda f: f.name,
    )
    def test_config_roundtrip(self, fault):
        config = fault.to_config()
        rebuilt = FaultModel.from_config(config)
        assert type(rebuilt) is type(fault)
        assert rebuilt.to_config() == config


# ----------------------------------------------------------------------
# Analysis: NaN propagation + interaction effects
# ----------------------------------------------------------------------


def _record(injector, seed, *, success=True, violations=0, km=1.0, faults=()):
    return RunRecord(
        scenario="scn-0",
        injector=injector,
        seed=seed,
        success=success,
        frames=150,
        duration_s=10.0,
        distance_km=km,
        time_limit_s=60.0,
        violations=[
            {"type": "lane", "frame": 30 + i, "time_s": 2.0,
             "is_accident": False, "position": [0, 0]}
            for i in range(violations)
        ],
        injection_frames=[10] if faults else [],
        faults=[{"name": name, "class": "X"} for name in faults],
    )


class TestCompareToBaselineNaN:
    def test_empty_baseline_yields_nan_not_crash(self):
        out = compare_to_baseline({"none": [], "delay": [1.0, 2.0]})
        assert all(math.isnan(v) for v in out["delay"].values())

    def test_empty_group_yields_nan(self):
        out = compare_to_baseline({"none": [1.0, 2.0], "empty": []})
        assert all(math.isnan(v) for v in out["empty"].values())

    def test_zero_mean_baseline_ratio_is_nan_not_inf(self):
        out = compare_to_baseline({"none": [0.0, 0.0], "delay": [3.0, 4.0]})
        ratio = out["delay"]["mean_ratio_vs_baseline"]
        assert math.isnan(ratio) and not math.isinf(ratio)
        # The other summaries stay defined.
        assert out["delay"]["median_shift"] == pytest.approx(3.5)

    def test_nan_mean_baseline_ratio_is_nan_not_inf(self):
        out = compare_to_baseline(
            {"none": [float("nan"), 1.0], "delay": [3.0, 4.0]}
        )
        assert math.isnan(out["delay"]["mean_ratio_vs_baseline"])

    def test_missing_baseline_raises(self):
        with pytest.raises(KeyError):
            compare_to_baseline({"delay": [1.0]}, baseline="none")


class TestInteractionEffects:
    def _metrics(self):
        records = (
            [_record("none", s) for s in range(4)]
            + [_record("a", s, violations=1, faults=("fa",)) for s in range(4)]
            + [_record("b", s, violations=2, faults=("fb",)) for s in range(4)]
            + [
                _record("ab", s, success=False, violations=5, faults=("fa", "fb"))
                for s in range(4)
            ]
        )
        return metrics_by_injector(records)

    def test_deltas_vs_worst_marginal(self):
        effects = interaction_effects(self._metrics())
        assert list(effects) == ["ab"]
        e = effects["ab"]
        assert e["components"] == ["fa", "fb"]
        assert e["marginals"] == {"fa": "a", "fb": "b"}
        # worst marginal MSR = 100 (both succeed), compound = 0.
        assert e["msr_delta_vs_worst"] == pytest.approx(-100.0)
        # worst marginal VPK = 2.0 (b), compound = 5.0.
        assert e["vpk_delta_vs_worst"] == pytest.approx(3.0)
        assert set(e["p_vs_marginals"]) == {"fa", "fb"}
        assert all(0.0 <= p <= 1.0 for p in e["p_vs_marginals"].values())

    def test_missing_marginal_nan_propagates(self):
        metrics = self._metrics()
        metrics.pop("b")  # fb now has no single-fault marginal
        e = interaction_effects(metrics)["ab"]
        assert e["marginals"]["fb"] is None
        assert math.isnan(e["msr_delta_vs_worst"])
        assert math.isnan(e["vpk_delta_vs_worst"])
        assert math.isnan(e["p_vs_marginals"]["fb"])
        assert not math.isnan(e["p_vs_marginals"]["fa"])

    def test_single_fault_only_campaign_has_no_interactions(self):
        records = [_record("a", 0, faults=("fa",)), _record("none", 0)]
        assert interaction_effects(metrics_by_injector(records)) == {}

    def test_interaction_table_renders(self):
        table = interaction_table(interaction_effects(self._metrics()))
        assert "ab" in table and "fa+fb" in table
        empty = interaction_table({})
        assert "no compound injectors" in empty


# ----------------------------------------------------------------------
# Streaming metrics + sinks
# ----------------------------------------------------------------------


def _synthetic_records(n, rng=None):
    rng = rng or np.random.default_rng(0)
    injectors = ["none", "a", "b", "ab"]
    fault_sets = {"none": (), "a": ("fa",), "b": ("fb",), "ab": ("fa", "fb")}
    for i in range(n):
        injector = injectors[i % len(injectors)]
        yield _record(
            injector,
            i,
            success=bool(rng.random() < 0.7),
            violations=int(rng.integers(0, 4)),
            km=float(rng.uniform(0.1, 2.0)),
            faults=fault_sets[injector],
        )


class TestStreamingMetrics:
    def test_accumulator_equals_batch_exactly(self):
        records = list(_synthetic_records(200))
        batch = compute_metrics(records)
        acc = MetricsAccumulator()
        for record in records:
            acc.add(record)
        streamed = acc.result()
        # Same fold order -> bit-identical floats, not just approx.
        assert streamed == batch

    def test_compute_metrics_accepts_generator(self):
        metrics = compute_metrics(_synthetic_records(50))
        assert metrics.n_runs == 50

    def test_metrics_by_injector_accepts_generator(self):
        by_injector = metrics_by_injector(_synthetic_records(100))
        assert set(by_injector) == {"none", "a", "b", "ab"}
        assert sum(m.n_runs for m in by_injector.values()) == 100
        assert by_injector["ab"].fault_names == ("fa", "fb")

    def test_empty_iterable_follows_empty_slice_convention(self):
        metrics = compute_metrics(iter(()))
        assert metrics.n_runs == 0
        assert math.isnan(metrics.msr) and math.isnan(metrics.vpk)


class TestJsonlStreaming:
    def _write(self, path, records):
        with open(path, "w") as fh:
            for record in records:
                fh.write(json.dumps(record.to_dict()) + "\n")

    def test_roundtrip(self, tmp_path):
        records = list(_synthetic_records(20))
        path = tmp_path / "results.jsonl"
        self._write(path, records)
        assert list(iter_jsonl_records(path)) == records

    def test_missing_file_is_empty(self, tmp_path):
        assert list(iter_jsonl_records(tmp_path / "nope.jsonl")) == []

    def test_torn_tail_dropped(self, tmp_path):
        records = list(_synthetic_records(5))
        path = tmp_path / "results.jsonl"
        self._write(path, records)
        with open(path, "a") as fh:
            fh.write('{"scenario": "scn-0", "inj')  # hard-kill fragment
        assert list(iter_jsonl_records(path)) == records

    def test_interior_corruption_raises(self, tmp_path):
        path = tmp_path / "results.jsonl"
        with open(path, "w") as fh:
            fh.write("not json\n")
            fh.write(json.dumps(next(_synthetic_records(1)).to_dict()) + "\n")
        with pytest.raises(ValueError, match="line 1"):
            list(iter_jsonl_records(path))

    def test_foreign_schema_rows_skipped(self, tmp_path):
        records = list(_synthetic_records(3))
        path = tmp_path / "results.jsonl"
        with open(path, "w") as fh:
            fh.write(json.dumps({"event": "queue-heartbeat"}) + "\n")
            for record in records:
                fh.write(json.dumps(record.to_dict()) + "\n")
        assert list(iter_jsonl_records(path)) == records

    def test_ten_thousand_episode_streaming_report(self, tmp_path):
        """A 10k-episode checkpoint aggregates in one streaming pass and
        matches the batch path exactly."""
        path = tmp_path / "big.jsonl"
        self._write(path, _synthetic_records(10_000))
        streamed = metrics_by_injector(iter_records(path))
        batch = metrics_by_injector(list(_synthetic_records(10_000)))
        assert streamed == batch
        assert sum(m.n_runs for m in streamed.values()) == 10_000

    def test_iter_records_rejects_unknown_format(self, tmp_path):
        with pytest.raises(ValueError, match="unknown checkpoint format"):
            iter_records(tmp_path / "x.jsonl", fmt="csv")


class TestParquetSink:
    def test_row_roundtrip_needs_no_pyarrow(self):
        record = next(_synthetic_records(1))
        assert row_to_record(record_to_row(record)) == record

    @pytest.mark.skipif(HAVE_PYARROW, reason="pyarrow installed")
    def test_sink_unavailable_raises_readable_error(self, tmp_path):
        from repro.core.sink import ParquetSink

        with pytest.raises(ParquetUnavailable, match="pyarrow"):
            ParquetSink(tmp_path / "x.parquet")
        with pytest.raises(ParquetUnavailable):
            list(iter_records(tmp_path / "x.parquet"))

    @pytest.mark.skipif(not HAVE_PYARROW, reason="pyarrow not installed")
    def test_sink_roundtrip(self, tmp_path):
        from repro.core.sink import ParquetSink, iter_parquet_records

        records = list(_synthetic_records(300))
        path = tmp_path / "results.parquet"
        with ParquetSink(path, batch_size=64) as sink:
            sink.extend(records)
        assert list(iter_parquet_records(path)) == records
        assert metrics_by_injector(iter_records(path)) == metrics_by_injector(records)


# ----------------------------------------------------------------------
# Compound spec entries
# ----------------------------------------------------------------------


def _pools():
    return [
        [GaussianNoise(0.1)],
        [OutputDelay(5), StuckAtFault(field="speed", value=0.0)],
    ]


class TestCompoundInjectorSpec:
    def test_cartesian_expansion_names_and_copies(self):
        entry = CompoundInjectorSpec(pools=_pools())
        expanded = entry.expand("pairs")
        assert [name for name, _ in expanded] == [
            "pairs:gaussian+output-delay",
            "pairs:gaussian+stuck-at",
        ]
        # Deep copies: the two combos never share the pool instances.
        gaussians = [faults[0] for _, faults in expanded]
        assert gaussians[0] is not gaussians[1]
        assert gaussians[0] is not entry.pools[0][0]

    def test_self_pairing_skipped(self):
        shared = GaussianNoise(0.1)
        entry = CompoundInjectorSpec(pools=[[shared, OutputDelay(5)], [shared]])
        names = [name for name, _ in entry.expand("p")]
        assert names == ["p:output-delay+gaussian"]

    def test_sample_mode_is_seed_deterministic(self):
        a = CompoundInjectorSpec(pools=_pools(), mode="sample", n_samples=1, seed=4)
        b = CompoundInjectorSpec(pools=_pools(), mode="sample", n_samples=1, seed=4)
        assert [n for n, _ in a.expand("s")] == [n for n, _ in b.expand("s")]
        c = CompoundInjectorSpec(pools=_pools(), mode="sample", n_samples=2, seed=4)
        assert len(c.expand("s")) == 2

    def test_sample_larger_than_product_returns_all(self):
        entry = CompoundInjectorSpec(pools=_pools(), mode="sample", n_samples=99, seed=0)
        assert len(entry.expand("s")) == 2

    def test_validation(self):
        with pytest.raises(SpecError, match="mode"):
            CompoundInjectorSpec(pools=_pools(), mode="zip")
        with pytest.raises(SpecError, match="pool"):
            CompoundInjectorSpec(pools=[])
        with pytest.raises(SpecError, match="n_samples"):
            CompoundInjectorSpec(pools=_pools(), mode="sample")

    def test_spec_roundtrip_through_json(self):
        spec = CampaignSpec(
            injectors={
                "none": [],
                "gaussian": [GaussianNoise(0.1)],
                "pairs": CompoundInjectorSpec(pools=_pools()),
            }
        )
        data = json.loads(json.dumps(spec.to_dict()))
        rebuilt = CampaignSpec.from_dict(data)
        assert isinstance(rebuilt.injectors["pairs"], CompoundInjectorSpec)
        assert list(rebuilt.expanded_injectors()) == list(spec.expanded_injectors())
        assert rebuilt.hash() == spec.hash()

    def test_expanded_injectors_disambiguates_collisions(self):
        spec = CampaignSpec(
            injectors={
                "p:gaussian+output-delay": [],
                "p": CompoundInjectorSpec(
                    pools=[[GaussianNoise(0.1)], [OutputDelay(5)]]
                ),
            }
        )
        names = list(spec.expanded_injectors())
        assert names == ["p:gaussian+output-delay", "p:gaussian+output-delay#2"]

    def test_from_dict_validation_paths(self):
        base = {"schema_version": 1, "injectors": {}}
        base["injectors"] = {"p": {"compound": {"pools": []}}}
        with pytest.raises(SpecError, match=r"injectors\['p'\]"):
            CampaignSpec.from_dict(base)
        base["injectors"] = {"p": {"compound": {"mode": "zip", "pools": [[{"fault": "gaussian"}]]}}}
        with pytest.raises(SpecError, match="zip"):
            CampaignSpec.from_dict(base)
        base["injectors"] = {"p": {"unknown_key": []}}
        with pytest.raises(SpecError, match="unknown keys"):
            CampaignSpec.from_dict(base)

    def test_execution_spec_parquet_roundtrip(self):
        execution = ExecutionSpec(parquet="out/results.parquet")
        rebuilt = ExecutionSpec.from_dict(execution.to_dict())
        assert rebuilt.parquet == "out/results.parquet"
        with pytest.raises(SpecError, match="parquet"):
            ExecutionSpec.from_dict({"parquet": 7})


# ----------------------------------------------------------------------
# Compound campaigns: backends agree, parquet sink degrades gracefully
# ----------------------------------------------------------------------


COMPOUND_INJECTORS = {
    "none": [],
    "gaussian": [GaussianNoise(0.05)],
    "pair": [GaussianNoise(0.05), OutputDelay(8)],
}


class TestCompoundCampaign:
    def test_compound_records_carry_full_fault_set(self, builder, scenarios):
        result = Campaign(
            scenarios,
            autopilot_agent_factory(),
            {k: copy.deepcopy(v) for k, v in COMPOUND_INJECTORS.items()},
            builder=builder,
        ).run()
        by_injector = result.by_injector()
        pair = by_injector["pair"][0]
        assert pair.fault_names == ("gaussian", "output-delay")
        assert by_injector["none"][0].fault_names == ()
        # The fingerprint covers the full fault set: compound and single
        # gaussian cells must not collide.
        assert pair.config_fingerprint != by_injector["gaussian"][0].config_fingerprint

    def test_serial_process_queue_backends_identical(
        self, builder, scenarios, tmp_path
    ):
        def run(**kw):
            return Campaign(
                scenarios,
                autopilot_agent_factory(),
                {k: copy.deepcopy(v) for k, v in COMPOUND_INJECTORS.items()},
                builder=builder,
                base_seed=5,
                **kw,
            ).run()

        serial = run()
        process = run(workers=2)
        queue = run(backend="queue", queue_dir=tmp_path / "q", workers=1)
        serial_rows = [r.to_dict() for r in serial.records]
        assert [r.to_dict() for r in process.records] == serial_rows
        assert [r.to_dict() for r in queue.records] == serial_rows

    def test_parquet_sink_or_graceful_fallback(self, builder, scenarios, tmp_path):
        parquet = tmp_path / "results.parquet"
        campaign = Campaign(
            scenarios,
            autopilot_agent_factory(),
            {"none": [], "pair": copy.deepcopy(COMPOUND_INJECTORS["pair"])},
            builder=builder,
            checkpoint_path=tmp_path / "results.jsonl",
            parquet_path=parquet,
        )
        if HAVE_PYARROW:
            result = campaign.run()
            assert parquet.exists()
            assert list(iter_records(parquet)) == result.records
        else:
            with pytest.warns(RuntimeWarning, match="pyarrow"):
                result = campaign.run()
            assert not parquet.exists()
        # The JSONL checkpoint is written either way.
        assert list(iter_records(tmp_path / "results.jsonl")) == result.records
