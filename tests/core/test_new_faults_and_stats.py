"""Tests for WeightStuckAt, LidarGhostFault, Wilson intervals and
violation-type breakdowns — the extension features beyond the first
feature-complete pass."""

import numpy as np
import pytest

from repro.agent.ilcnn import ILCNN, ILCNNConfig
from repro.core.analysis import wilson_interval
from repro.core.campaign import RunRecord
from repro.core.faults import LidarGhostFault, WeightStuckAt
from repro.core.metrics import compute_metrics
from repro.sim.sensors import SensorFrame

TINY = ILCNNConfig(input_hw=(16, 24), conv_channels=(4, 6, 6), trunk_dim=16,
                   speed_dim=4, branch_hidden=8, dropout=0.0)


def bind(fault, seed=0):
    fault.reset()
    fault.bind(np.random.default_rng(seed))
    return fault


class TestWeightStuckAt:
    def test_install_restore(self):
        model = ILCNN(TINY)
        before = model.state_dict()
        fault = bind(WeightStuckAt(n_cells=6))
        fault.install(model)
        assert len(fault.sites) == 6
        after = model.state_dict()
        assert any(not np.array_equal(before[k], after[k]) for k in before)
        fault.remove(model)
        assert all(np.array_equal(before[k], model.state_dict()[k]) for k in before)

    def test_stuck_high_raises_magnitude(self):
        model = ILCNN(TINY)
        before = model.state_dict()
        fault = bind(WeightStuckAt(n_cells=4, bit_range=(30, 31), stuck_high=True), seed=2)
        fault.install(model)
        after = model.state_dict()
        for pname, idx, _ in fault.sites:
            old = abs(float(before[pname].reshape(-1)[idx]))
            new = abs(float(after[pname].reshape(-1)[idx]))
            assert new >= old  # setting an exponent bit high never shrinks
        fault.remove(model)

    def test_stuck_low_is_idempotent(self):
        """A stuck-at-0 cell re-stuck stays at the same value."""
        model = ILCNN(TINY)
        fault = bind(WeightStuckAt(n_cells=3, stuck_high=False), seed=3)
        fault.install(model)
        state_once = model.state_dict()
        sites = list(fault.sites)
        fault.remove(model)
        # Reinstall with the same rng state recreated.
        fault2 = bind(WeightStuckAt(n_cells=3, stuck_high=False), seed=3)
        fault2.install(model)
        assert fault2.sites == sites
        state_twice = model.state_dict()
        for k in state_once:
            assert np.array_equal(state_once[k], state_twice[k])
        fault2.remove(model)

    def test_validation(self):
        with pytest.raises(ValueError):
            WeightStuckAt(n_cells=0)
        with pytest.raises(ValueError):
            WeightStuckAt(bit_range=(0, 40))

    def test_double_install_rejected(self):
        model = ILCNN(TINY)
        fault = bind(WeightStuckAt())
        fault.install(model)
        with pytest.raises(RuntimeError):
            fault.install(model)
        fault.remove(model)


class TestLidarGhost:
    def _bundle(self):
        return SensorFrame(
            frame=0,
            image=np.zeros((8, 8, 3), dtype=np.uint8),
            gps=(0.0, 0.0),
            speed=0.0,
            heading=0.0,
            lidar=np.full(50, 40.0),
        )

    def test_ghosts_are_short_ranges(self):
        fault = bind(LidarGhostFault(ghost_prob=0.5, min_ghost_m=1.0, max_ghost_m=8.0))
        out = fault.apply(self._bundle(), 0)
        ghosts = out.lidar < 40.0
        assert ghosts.any()
        assert np.all(out.lidar[ghosts] >= 1.0)
        assert np.all(out.lidar[ghosts] <= 8.0)

    def test_probability_zero_noop(self):
        fault = bind(LidarGhostFault(ghost_prob=0.0))
        out = fault.apply(self._bundle(), 0)
        assert np.all(out.lidar == 40.0)

    def test_no_lidar_tolerated(self):
        fault = bind(LidarGhostFault())
        b = self._bundle()
        b.lidar = None
        assert fault.apply(b, 0).lidar is None

    def test_validation(self):
        with pytest.raises(ValueError):
            LidarGhostFault(ghost_prob=1.5)
        with pytest.raises(ValueError):
            LidarGhostFault(min_ghost_m=5.0, max_ghost_m=2.0)


class TestWilsonInterval:
    def test_brackets_proportion(self):
        lo, hi = wilson_interval(7, 10)
        assert lo < 0.7 < hi

    def test_perfect_success_upper_is_one(self):
        lo, hi = wilson_interval(10, 10)
        assert hi == pytest.approx(1.0)
        assert lo > 0.6

    def test_zero_success_lower_is_zero(self):
        lo, hi = wilson_interval(0, 10)
        assert lo == pytest.approx(0.0)
        assert hi < 0.4

    def test_narrows_with_n(self):
        lo_s, hi_s = wilson_interval(5, 10)
        lo_l, hi_l = wilson_interval(500, 1000)
        assert (hi_l - lo_l) < (hi_s - lo_s)

    def test_validation(self):
        with pytest.raises(ValueError):
            wilson_interval(1, 0)
        with pytest.raises(ValueError):
            wilson_interval(5, 3)
        with pytest.raises(ValueError):
            wilson_interval(1, 2, confidence=0.0)

    def test_matches_known_value(self):
        # Classic textbook case: 15/20 at 95% -> (0.531, 0.888) approx.
        lo, hi = wilson_interval(15, 20)
        assert lo == pytest.approx(0.531, abs=0.02)
        assert hi == pytest.approx(0.888, abs=0.02)


class TestViolationBreakdown:
    def test_by_type_counts(self):
        record = RunRecord(
            scenario="s", injector="i", seed=0, success=False, frames=100,
            duration_s=6.7, distance_km=0.5, time_limit_s=60.0,
            violations=[
                {"type": "lane", "frame": 5, "time_s": 0.3, "is_accident": False, "position": [0, 0]},
                {"type": "lane", "frame": 50, "time_s": 3.3, "is_accident": False, "position": [0, 0]},
                {"type": "curb", "frame": 60, "time_s": 4.0, "is_accident": False, "position": [0, 0]},
            ],
        )
        m = compute_metrics([record])
        assert m.violations_by_type == {"lane": 2, "curb": 1}
