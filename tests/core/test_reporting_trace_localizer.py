"""Tests for reporting, tracing and fault localisation."""

import numpy as np
import pytest

from repro.agent.ilcnn import ILCNN, ILCNNConfig
from repro.core.localizer import FaultLocalizer
from repro.core.reporting import bar_chart, boxplot, figure_header, format_table
from repro.core.trace import TraceReader, TraceWriter, compare_traces

TINY = ILCNNConfig(input_hw=(16, 24), conv_channels=(4, 6, 6), trunk_dim=16,
                   speed_dim=4, branch_hidden=8, dropout=0.0)


class TestFormatTable:
    def test_alignment_and_headers(self):
        out = format_table(["name", "value"], [["a", 1], ["long-name", 2.5]])
        lines = out.splitlines()
        assert lines[0].startswith("name")
        assert "long-name" in lines[3]
        assert "2.50" in lines[3]

    def test_title(self):
        out = format_table(["x"], [[1]], title="Table 1")
        assert out.splitlines()[0] == "Table 1"

    def test_none_renders_dash(self):
        out = format_table(["x"], [[None]])
        assert "-" in out.splitlines()[-1]

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            format_table(["x"], [])


class TestBarChart:
    def test_bars_scale(self):
        out = bar_chart({"a": 10.0, "b": 5.0}, width=20)
        lines = out.splitlines()
        assert lines[0].count("#") == 20
        assert lines[1].count("#") == 10

    def test_unit_suffix(self):
        out = bar_chart({"a": 1.0}, unit="%")
        assert "1.00%" in out

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            bar_chart({})


class TestBoxplot:
    def test_render_contains_median_markers(self):
        out = boxplot({"g1": [1, 2, 3, 4, 5], "g2": [2, 4, 6, 8, 10]}, width=30)
        assert out.count("|") >= 2
        assert "med=3.00" in out
        assert "n=5" in out

    def test_shared_axis(self):
        out = boxplot({"low": [0, 1], "high": [9, 10]}, width=40)
        lines = out.splitlines()
        # low group's box must start left of high group's.
        low_start = lines[0].index("-")
        high_start = lines[1].index("-")
        assert low_start < high_start

    def test_skips_empty_groups(self):
        out = boxplot({"a": [1.0, 2.0], "b": []})
        assert "a" in out and "b [" not in out

    def test_all_empty_rejected(self):
        with pytest.raises(ValueError):
            boxplot({"a": []})


class TestFigureHeader:
    def test_banner(self):
        out = figure_header("Figure 2", "Mission success rate")
        assert "Figure 2" in out
        assert out.splitlines()[0] == "=" * 72


class TestTrace:
    def _write(self, path, states, violations=(), injections=()):
        with TraceWriter(path, header={"scenario": "s0"}) as tw:
            for frame, x in states:
                tw.state(frame, x, 0.0, 0.0, 1.0)
            for frame in violations:
                tw.violation(frame, "lane")
            for frame in injections:
                tw.injection(frame, "gaussian")
        return path

    def test_roundtrip(self, tmp_path):
        path = self._write(tmp_path / "t.jsonl", [(0, 1.0), (1, 2.0)], [1], [0])
        reader = TraceReader(path)
        assert reader.header["scenario"] == "s0"
        assert len(reader.states) == 2
        assert reader.violations[0]["type"] == "lane"
        assert reader.injections[0]["fault"] == "gaussian"
        assert reader.trajectory() == [(1.0, 0.0), (2.0, 0.0)]

    def test_footer(self, tmp_path):
        path = tmp_path / "t.jsonl"
        tw = TraceWriter(path)
        tw.state(0, 0, 0, 0, 0)
        tw.close(footer={"success": True})
        reader = TraceReader(path)
        assert reader.footer["success"] is True

    def test_write_after_close_rejected(self, tmp_path):
        tw = TraceWriter(tmp_path / "t.jsonl")
        tw.close()
        with pytest.raises(RuntimeError):
            tw.state(0, 0, 0, 0, 0)

    def test_compare_identical(self, tmp_path):
        a = TraceReader(self._write(tmp_path / "a.jsonl", [(0, 1.0), (1, 2.0)]))
        b = TraceReader(self._write(tmp_path / "b.jsonl", [(0, 1.0), (1, 2.0)]))
        assert compare_traces(a, b) is None

    def test_compare_divergence_field(self, tmp_path):
        a = TraceReader(self._write(tmp_path / "a.jsonl", [(0, 1.0), (1, 2.0)]))
        b = TraceReader(self._write(tmp_path / "b.jsonl", [(0, 1.0), (1, 9.0)]))
        div = compare_traces(a, b)
        assert div is not None
        assert div.frame == 1
        assert div.field == "x"

    def test_compare_length_mismatch(self, tmp_path):
        a = TraceReader(self._write(tmp_path / "a.jsonl", [(0, 1.0)]))
        b = TraceReader(self._write(tmp_path / "b.jsonl", [(0, 1.0), (1, 2.0)]))
        div = compare_traces(a, b)
        assert div is not None
        assert div.field == "length"


class TestFaultLocalizer:
    def test_pixel_region_inside_image(self):
        loc = FaultLocalizer(0)
        for _ in range(50):
            site = loc.pick_pixel_region((48, 64), size_frac=0.3)
            assert 0 <= site.row and site.row + site.height <= 48
            assert 0 <= site.col and site.col + site.width <= 64

    def test_pixel_region_validation(self):
        with pytest.raises(ValueError):
            FaultLocalizer(0).pick_pixel_region((48, 64), size_frac=0.0)

    def test_weight_sites_valid(self):
        model = ILCNN(TINY)
        named = model.named_parameters()
        sites = FaultLocalizer(1).pick_weights(model, 20)
        assert len(sites) == 20
        for site in sites:
            assert site.param in named
            assert 0 <= site.flat_index < named[site.param].size

    def test_weight_sites_spread_over_params(self):
        model = ILCNN(TINY)
        sites = FaultLocalizer(2).pick_weights(model, 200)
        assert len({s.param for s in sites}) > 3

    def test_neuron_sites(self):
        model = ILCNN(TINY)
        sites = FaultLocalizer(3).pick_neurons(model, 10)
        blocks = model.submodules()
        for site in sites:
            assert site.block in blocks
            module = blocks[site.block].modules[site.layer_index]
            width = module.parameters()[0].data.shape[-1]
            assert 0 <= site.unit < width

    def test_neuron_sites_restricted_block(self):
        model = ILCNN(TINY)
        sites = FaultLocalizer(4).pick_neurons(model, 5, block="join")
        assert all(s.block == "join" for s in sites)

    def test_bit_site_range(self):
        loc = FaultLocalizer(5)
        for _ in range(50):
            site = loc.pick_bit(20, 32)
            assert 20 <= site.bit < 32
        with pytest.raises(ValueError):
            loc.pick_bit(10, 40)

    def test_channel_site(self):
        loc = FaultLocalizer(6)
        channels = {loc.pick_channel().channel for _ in range(30)}
        assert channels == {"sensor", "control"}

    def test_deterministic_under_seed(self):
        model = ILCNN(TINY)
        a = FaultLocalizer(7).pick_weights(model, 5)
        b = FaultLocalizer(7).pick_weights(model, 5)
        assert a == b

    def test_accepts_generator(self):
        loc = FaultLocalizer(np.random.default_rng(8))
        assert loc.pick_bit().bit >= 0

    def test_pick_weights_validation(self):
        model = ILCNN(TINY)
        with pytest.raises(ValueError):
            FaultLocalizer(0).pick_weights(model, 0)
