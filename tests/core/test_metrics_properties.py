"""Property-based invariants on metrics aggregation (hypothesis)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.campaign import RunRecord
from repro.core.faults import ActivationLog
from repro.core.metrics import compute_metrics, metrics_by_injector


@st.composite
def run_records(draw, injectors=("none", "a", "b")):
    n = draw(st.integers(1, 12))
    records = []
    for i in range(n):
        frames = draw(st.integers(10, 600))
        km = draw(st.floats(0.0, 2.0, allow_nan=False))
        n_viol = draw(st.integers(0, 6))
        violations = []
        for _ in range(n_viol):
            frame = draw(st.integers(0, frames))
            is_accident = draw(st.booleans())
            violations.append(
                {
                    "type": "collision_vehicle" if is_accident else "lane",
                    "frame": frame,
                    "time_s": frame / 15.0,
                    "is_accident": is_accident,
                    "position": [0.0, 0.0],
                }
            )
        injections = sorted(
            draw(st.lists(st.integers(0, frames), min_size=0, max_size=3))
        )
        records.append(
            RunRecord(
                scenario=f"s{i}",
                injector=draw(st.sampled_from(list(injectors))),
                seed=i,
                success=draw(st.booleans()),
                frames=frames,
                duration_s=frames / 15.0,
                distance_km=km,
                time_limit_s=60.0,
                violations=violations,
                injection_frames=injections,
            )
        )
    return records


class TestMetricsInvariants:
    @given(run_records())
    @settings(max_examples=60)
    def test_msr_bounded(self, records):
        m = compute_metrics(records)
        assert 0.0 <= m.msr <= 100.0

    @given(run_records())
    @settings(max_examples=60)
    def test_pooled_vpk_identity(self, records):
        m = compute_metrics(records)
        if m.total_km > 0:
            assert m.vpk == pytest.approx(m.total_violations / m.total_km)
            assert m.apk == pytest.approx(m.total_accidents / m.total_km)
        else:
            assert m.vpk == 0.0

    @given(run_records())
    @settings(max_examples=60)
    def test_accidents_never_exceed_violations(self, records):
        m = compute_metrics(records)
        assert 0 <= m.total_accidents <= m.total_violations
        assert m.apk <= m.vpk + 1e-12

    @given(run_records())
    @settings(max_examples=60)
    def test_per_run_lists_align(self, records):
        m = compute_metrics(records)
        assert len(m.vpk_per_run) == m.n_runs == len(records)
        assert len(m.success_flags) == m.n_runs

    @given(run_records())
    @settings(max_examples=60)
    def test_type_breakdown_sums_to_total(self, records):
        m = compute_metrics(records)
        assert sum(m.violations_by_type.values()) == m.total_violations

    @given(run_records())
    @settings(max_examples=60)
    def test_grouping_partitions_records(self, records):
        groups = metrics_by_injector(records)
        assert sum(g.n_runs for g in groups.values()) == len(records)
        assert {r.injector for r in records} == set(groups)

    @given(run_records())
    @settings(max_examples=60)
    def test_ttv_non_negative_and_bounded(self, records):
        m = compute_metrics(records)
        for ttv in m.ttv_s:
            assert ttv >= 0.0
            assert ttv <= max(r.duration_s for r in records) + 1e-9


class TestActivationLog:
    def test_first_and_latest_before(self):
        log = ActivationLog()
        for f in (5, 9, 20):
            log.record(f)
        assert log.first() == 5
        assert log.latest_before(9) == 9
        assert log.latest_before(19) == 9
        assert log.latest_before(4) is None

    def test_empty(self):
        log = ActivationLog()
        assert log.first() is None
        assert log.latest_before(100) is None

    def test_clear(self):
        log = ActivationLog()
        log.record(1)
        log.clear()
        assert log.frames == []
