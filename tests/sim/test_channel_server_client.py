"""Unit tests for channels and the server/client loop."""

import numpy as np
import pytest

from repro.sim.builders import SimulationBuilder
from repro.sim.channel import Channel, ChannelTransform, FixedLatency, Packet
from repro.sim.client import AgentClient
from repro.sim.physics import VehicleControl
from repro.sim.scenario import Mission, Scenario
from repro.sim.server import SimulationServer
from repro.sim.town import GridTownConfig


class TestChannel:
    def test_same_frame_delivery(self):
        ch = Channel("c")
        ch.send(Packet("control", 3, "x"))
        assert [p.payload for p in ch.poll(3)] == ["x"]

    def test_not_delivered_early(self):
        ch = Channel("c", latency_frames=2)
        ch.send(Packet("control", 3, "x"))
        assert ch.poll(4) == []
        assert [p.payload for p in ch.poll(5)] == ["x"]

    def test_negative_latency_rejected(self):
        with pytest.raises(ValueError):
            Channel("c", latency_frames=-1)

    def test_poll_order_stable(self):
        ch = Channel("c")
        ch.send(Packet("k", 1, "a"))
        ch.send(Packet("k", 1, "b"))
        assert [p.payload for p in ch.poll(1)] == ["a", "b"]

    def test_poll_latest_picks_freshest(self):
        ch = Channel("c")
        ch.send(Packet("k", 1, "old"))
        ch.send(Packet("k", 2, "new"))
        pkt = ch.poll_latest(5)
        assert pkt is not None and pkt.payload == "new"

    def test_poll_latest_empty(self):
        assert Channel("c").poll_latest(10) is None

    def test_drop_transform_counts(self):
        class DropAll(ChannelTransform):
            def on_send(self, packet, deliver_frame):
                return None

        ch = Channel("c")
        ch.add_transform(DropAll())
        ch.send(Packet("k", 1, "x"))
        assert ch.poll(10) == []
        assert ch.stats.dropped == 1
        assert ch.stats.sent == 1

    def test_delay_transform_counts(self):
        ch = Channel("c")
        ch.add_transform(FixedLatency(3))
        ch.send(Packet("k", 1, "x"))
        assert ch.poll(2) == []
        assert len(ch.poll(4)) == 1
        assert ch.stats.delayed == 1

    def test_duplicating_transform(self):
        class Dup(ChannelTransform):
            def on_send(self, packet, deliver_frame):
                return [(packet, deliver_frame), (packet, deliver_frame + 1)]

        ch = Channel("c")
        ch.add_transform(Dup())
        ch.send(Packet("k", 1, "x"))
        assert len(ch.poll(0)) == 0
        assert len(ch.poll(1)) == 1
        assert len(ch.poll(2)) == 1

    def test_transforms_chain_in_order(self):
        ch = Channel("c")
        ch.add_transform(FixedLatency(1))
        ch.add_transform(FixedLatency(2))
        ch.send(Packet("k", 0, "x"))
        assert ch.poll(2) == []
        assert len(ch.poll(3)) == 1

    def test_remove_transform(self):
        t = FixedLatency(5)
        ch = Channel("c")
        ch.add_transform(t)
        ch.remove_transform(t)
        ch.send(Packet("k", 0, "x"))
        assert len(ch.poll(0)) == 1

    def test_clear_resets_everything(self):
        ch = Channel("c")
        ch.send(Packet("k", 0, "x"))
        ch.clear()
        assert ch.pending() == 0
        assert ch.stats.sent == 0
        assert ch.poll(100) == []

    def test_reordered_delivery_by_frame(self):
        ch = Channel("c")
        ch.send(Packet("k", 0, "slow"))
        ch.send(Packet("k", 1, "fast"))
        # Delay the first packet by rescheduling through the heap directly:
        # packets delivered in deliver-frame order regardless of send order.
        ch2 = Channel("c2")
        ch2.add_transform(FixedLatency(2))
        ch2.send(Packet("k", 0, "slow"))
        ch2.remove_transform(ch2.transforms[0])
        ch2.send(Packet("k", 1, "fast"))
        delivered = [p.payload for p in ch2.poll(10)]
        assert delivered == ["fast", "slow"]


class _ConstantAgent:
    """Drives straight at fixed throttle; counts steps."""

    def __init__(self):
        self.steps = 0

    def reset(self, mission):
        pass

    def step(self, frame):
        self.steps += 1
        return VehicleControl(throttle=0.5)


@pytest.fixture(scope="module")
def episode():
    builder = SimulationBuilder(with_lidar=False)
    scenarios = _scenario()
    handles = builder.build_episode(scenarios)
    return handles


def _scenario():
    from repro.sim.town import build_grid_town

    cfg = GridTownConfig(rows=2, cols=3)
    town = build_grid_town(cfg)
    wp = town.spawn_points()[0]
    from repro.sim.geometry import Transform, Vec2

    mission = Mission(
        start=Transform(wp.position, wp.yaw),
        goal=wp.next(40.0).position,
        time_limit_s=30.0,
    )
    return Scenario(mission=mission, town_config=cfg, seed=5)


class TestServerClientLoop:
    def test_lockstep_loop_moves_vehicle(self):
        builder = SimulationBuilder(with_lidar=False)
        handles = builder.build_episode(_scenario())
        world = handles.world
        sensor_ch, control_ch = Channel("sensor"), Channel("control")
        server = SimulationServer(world, handles.sensors, sensor_ch, control_ch)
        agent = _ConstantAgent()
        client = AgentClient(agent, sensor_ch, control_ch)
        server.send_initial_frame()
        for _ in range(30):
            client.tick(world.frame)
            server.tick()
        assert agent.steps == 30
        assert world.ego.odometer_m > 1.0
        assert client.frames_missed == 0

    def test_server_requires_ego(self):
        from repro.sim.town import build_grid_town
        from repro.sim.world import World

        town = build_grid_town(GridTownConfig(rows=2, cols=3))
        world = World(town)
        builder = SimulationBuilder(with_lidar=False)
        suite = builder.build_episode(_scenario()).sensors
        with pytest.raises(ValueError):
            SimulationServer(world, suite, Channel("s"), Channel("c"))

    def test_control_hold_when_channel_starved(self):
        """When control packets stop, the server replays the last command."""
        builder = SimulationBuilder(with_lidar=False)
        handles = builder.build_episode(_scenario())
        world = handles.world
        sensor_ch, control_ch = Channel("sensor"), Channel("control")
        server = SimulationServer(world, handles.sensors, sensor_ch, control_ch)
        agent = _ConstantAgent()
        client = AgentClient(agent, sensor_ch, control_ch)
        server.send_initial_frame()
        for _ in range(10):
            client.tick(world.frame)
            server.tick()
        # Stop the client entirely: the car must keep its last throttle.
        speed_before = world.ego.speed()
        for _ in range(10):
            server.tick()
        assert world.ego.speed() >= speed_before * 0.8

    def test_input_filters_applied(self):
        builder = SimulationBuilder(with_lidar=False)
        handles = builder.build_episode(_scenario())
        world = handles.world
        sensor_ch, control_ch = Channel("sensor"), Channel("control")
        server = SimulationServer(world, handles.sensors, sensor_ch, control_ch)

        seen = []

        class Spy:
            def reset(self, mission):
                pass

            def step(self, frame):
                seen.append(frame.image.max())
                return VehicleControl()

        client = AgentClient(Spy(), sensor_ch, control_ch)

        def blackout(bundle):
            bundle = bundle.copy()
            bundle.image[:] = 0
            return bundle

        client.input_filters.append(blackout)
        server.send_initial_frame()
        client.tick(world.frame)
        assert seen == [0]

    def test_output_filters_applied(self):
        builder = SimulationBuilder(with_lidar=False)
        handles = builder.build_episode(_scenario())
        world = handles.world
        sensor_ch, control_ch = Channel("sensor"), Channel("control")
        server = SimulationServer(world, handles.sensors, sensor_ch, control_ch)
        client = AgentClient(_ConstantAgent(), sensor_ch, control_ch)

        def slam_brakes(control, frame):
            return VehicleControl(brake=1.0)

        client.output_filters.append(slam_brakes)
        server.send_initial_frame()
        for _ in range(20):
            client.tick(world.frame)
            server.tick()
        assert world.ego.speed() == pytest.approx(0.0, abs=1e-6)
        assert world.ego.odometer_m < 0.5

    def test_client_counts_missed_frames(self):
        builder = SimulationBuilder(with_lidar=False)
        handles = builder.build_episode(_scenario())
        world = handles.world
        sensor_ch, control_ch = Channel("sensor"), Channel("control")
        server = SimulationServer(world, handles.sensors, sensor_ch, control_ch)
        client = AgentClient(_ConstantAgent(), sensor_ch, control_ch)
        sensor_ch.add_transform(FixedLatency(5))
        server.send_initial_frame()
        for _ in range(10):
            client.tick(world.frame)
            server.tick()
        assert client.frames_missed > 0
