"""Unit tests for :mod:`repro.sim.actors` and :mod:`repro.sim.weather`."""

import math

import numpy as np
import pytest

from repro.sim.actors import NPCVehicle, Pedestrian, Vehicle
from repro.sim.geometry import Transform, Vec2
from repro.sim.physics import VehicleControl, VehicleSpec
from repro.sim.town import GridTownConfig, SurfaceType, build_grid_town
from repro.sim.weather import PRESETS, Weather, get_preset
from repro.sim.world import World


@pytest.fixture(scope="module")
def town():
    return build_grid_town(GridTownConfig(rows=3, cols=3))


@pytest.fixture
def world(town):
    return World(town, seed=3)


class TestWeather:
    def test_presets_include_paper_conditions(self):
        # CARLA's sunny / rainy / foggy trio must exist.
        assert "ClearNoon" in PRESETS
        assert any("Rain" in name for name in PRESETS)
        assert any("Fog" in name for name in PRESETS)

    def test_get_preset_unknown_raises_with_choices(self):
        with pytest.raises(KeyError, match="ClearNoon"):
            get_preset("SnowStorm")

    def test_validation_fog_range(self):
        with pytest.raises(ValueError):
            Weather("bad", fog_density=1.5)

    def test_validation_brightness(self):
        with pytest.raises(ValueError):
            Weather("bad", brightness=0.0)

    def test_presets_are_frozen(self):
        with pytest.raises(AttributeError):
            PRESETS["ClearNoon"].fog_density = 0.9  # type: ignore[misc]


class TestVehicleActor:
    def test_unique_ids(self):
        a = Vehicle(Transform(Vec2(0, 0), 0.0))
        b = Vehicle(Transform(Vec2(0, 0), 0.0))
        assert a.id != b.id

    def test_tick_integrates_and_tracks_odometer(self, world):
        v = Vehicle(Transform(Vec2(50, 50), 0.0))
        v.apply_control(VehicleControl(throttle=1.0))
        for _ in range(30):
            v.tick(world, world.dt, world.rng)
        assert v.position.x > 50.0
        assert v.odometer_m == pytest.approx(v.position.x - 50.0, rel=1e-6)

    def test_bounding_box_tracks_pose(self):
        v = Vehicle(Transform(Vec2(5, 5), math.pi / 2), VehicleSpec(length=4.0, width=2.0))
        box = v.bounding_box()
        assert box.contains_point(Vec2(5, 6.9))
        assert not box.contains_point(Vec2(6.9, 5))

    def test_teleport(self):
        v = Vehicle(Transform(Vec2(0, 0), 0.0))
        v.teleport(Transform(Vec2(9, 9), 1.0), speed=3.0)
        assert v.position.distance_to(Vec2(9, 9)) < 1e-9
        assert v.speed() == 3.0


class TestNPCVehicle:
    def _npc(self, town, speed=6.0):
        lane = town.roads[0].lane(+1)
        return NPCVehicle(lane, 10.0, town, target_speed=speed)

    def test_follows_lane(self, town):
        world = World(town, seed=1)
        npc = self._npc(town)
        world.add_actor(npc)
        for _ in range(15 * 8):
            world.tick()
        # It moved, stayed on pavement, and went in the lane direction.
        assert npc.odometer_m > 20.0
        cls = town.classify_points(np.array([[npc.position.x, npc.position.y]]))[0]
        assert cls == SurfaceType.ROAD

    def test_traverses_junction_without_leaving_road(self, town):
        world = World(town, seed=2)
        npc = self._npc(town)
        world.add_actor(npc)
        offroad_frames = 0
        for _ in range(15 * 30):
            world.tick()
            cls = town.classify_points(np.array([[npc.position.x, npc.position.y]]))[0]
            if cls != SurfaceType.ROAD:
                offroad_frames += 1
        assert npc.odometer_m > 100.0
        # Tolerate brief clips at junction corners, not systematic off-roading.
        assert offroad_frames < 15

    def test_brakes_for_vehicle_ahead(self, town):
        world = World(town, seed=3)
        lane = town.roads[0].lane(+1)
        npc = NPCVehicle(lane, 10.0, town, target_speed=8.0)
        world.add_actor(npc)
        blocker_wp = lane.waypoint_at(26.0)
        blocker = Vehicle(Transform(blocker_wp.position, blocker_wp.yaw))
        world.add_actor(blocker)
        for _ in range(15 * 6):
            world.tick()
        assert not npc.bounding_box().overlaps(blocker.bounding_box())
        assert npc.speed() < 1.0  # stopped behind the blocker

    def test_deterministic_under_same_seed(self, town):
        def run():
            world = World(town, seed=42)
            npc = self._npc(town)
            world.add_actor(npc)
            for _ in range(100):
                world.tick()
            return (npc.position.x, npc.position.y, npc.yaw)

        assert run() == run()


class TestPedestrian:
    def test_walks(self, town):
        world = World(town, seed=5)
        lane = town.roads[0].lane(+1)
        base = lane.centerline.point_at(20.0)
        ped = Pedestrian(Transform(Vec2(base.x, base.y + 6.0), 0.0), town)
        world.add_actor(ped)
        start = ped.position
        for _ in range(15 * 10):
            world.tick()
        assert ped.position.distance_to(start) > 2.0

    def test_speed_reflects_goal_state(self, town):
        ped = Pedestrian(Transform(Vec2(40, 46), 0.0), town)
        assert ped.speed() == 0.0  # no goal yet

    def test_crossing_goal_lands_on_far_side(self, town):
        lane = town.roads[0].lane(+1)
        base = lane.centerline.point_at(20.0)
        road = lane.road
        near_side = Vec2(base.x, base.y - road.half_width - 1.0)
        ped = Pedestrian(Transform(near_side, 0.0), town)
        goal = ped._crossing_goal()
        # Goal must be on the other side of the road centreline.
        road_mid = road.centerline.point_at(20.0)
        assert (near_side.y - road_mid.y) * (goal.y - road_mid.y) < 0


class TestWorld:
    def test_tick_advances_frame_and_time(self, world):
        world.tick()
        world.tick()
        assert world.frame == 2
        assert world.time_s == pytest.approx(2 / 15.0)

    def test_single_ego_enforced(self, world):
        world.spawn_ego(Transform(Vec2(40, 38.25), 0.0))
        with pytest.raises(RuntimeError):
            world.spawn_ego(Transform(Vec2(50, 38.25), 0.0))

    def test_populate_respects_clearance(self, town):
        world = World(town, seed=7)
        ego_pos = Vec2(40, 78.25)
        world.spawn_ego(Transform(ego_pos, 0.0))
        world.populate(6, 4, keep_clear=ego_pos, clear_radius=25.0)
        vehicles = [a for a in world.actors if a.role == "npc_vehicle"]
        assert vehicles, "should place some NPC vehicles"
        for v in vehicles:
            assert v.position.distance_to(ego_pos) >= 25.0

    def test_populate_counts(self, town):
        world = World(town, seed=8)
        world.populate(5, 7)
        roles = [a.role for a in world.actors]
        assert roles.count("npc_vehicle") == 5
        assert roles.count("pedestrian") <= 7  # clearance may skip a few

    def test_actors_near(self, town):
        world = World(town, seed=9)
        v = world.spawn_ego(Transform(Vec2(40, 78.25), 0.0))
        world.populate(4, 0, keep_clear=v.position, clear_radius=15.0)
        near = world.actors_near(v.position, 1.0, exclude_id=v.id)
        assert near == []

    def test_invalid_fps(self, town):
        with pytest.raises(ValueError):
            World(town, fps=0.0)

    def test_set_weather_by_name(self, world):
        world.set_weather("FoggyNoon")
        assert world.weather.fog_density > 0.0
