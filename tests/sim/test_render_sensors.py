"""Unit tests for :mod:`repro.sim.render` and :mod:`repro.sim.sensors`."""

import math

import numpy as np
import pytest

from repro.sim.actors import Pedestrian, Vehicle
from repro.sim.geometry import Transform, Vec2
from repro.sim.render import SURFACE_COLORS, CameraModel, Renderer, TownTexture
from repro.sim.sensors import GPS, Camera, Lidar2D, SensorFrame, SensorSuite, Speedometer
from repro.sim.town import GridTownConfig, SurfaceType, build_grid_town
from repro.sim.weather import get_preset
from repro.sim.world import World


@pytest.fixture(scope="module")
def town():
    return build_grid_town(GridTownConfig(rows=2, cols=3))


@pytest.fixture(scope="module")
def renderer(town):
    return Renderer(town, CameraModel(width=64, height=48))


@pytest.fixture
def ego_pose(town):
    wp = town.spawn_points()[0]
    return Transform(wp.position, wp.yaw)


class TestCameraModel:
    def test_rejects_tiny_resolution(self):
        with pytest.raises(ValueError):
            CameraModel(width=4, height=4)

    def test_rejects_extreme_fov(self):
        with pytest.raises(ValueError):
            CameraModel(fov_deg=170.0)

    def test_focal_length(self):
        cam = CameraModel(width=100, fov_deg=90.0)
        assert cam.focal_px == pytest.approx(50.0)


class TestTownTexture:
    def test_texture_contains_all_surfaces(self, town):
        tex = TownTexture(town, resolution=0.5)
        flat = tex.texture.reshape(-1, 3)
        for color in SURFACE_COLORS.values():
            assert np.any(np.all(flat == color, axis=1)), f"missing surface color {color}"

    def test_markings_stamped(self, town):
        tex = TownTexture(town, resolution=0.25)
        flat = tex.texture.reshape(-1, 3)
        yellow = np.array([200, 180, 40])
        assert np.any(np.all(flat == yellow, axis=1)), "centre lines missing"

    def test_sample_inside_matches_classification(self, town):
        tex = TownTexture(town, resolution=0.25)
        lane = town.roads[0].lane(+1)
        p = lane.centerline.point_at(lane.length / 2)
        color = tex.sample(np.array([[p.x, p.y]]))[0]
        road = np.array(SURFACE_COLORS[int(SurfaceType.ROAD)])
        marking_like = color.max() > 100  # the sample may land on paint
        assert marking_like or np.array_equal(color, road)

    def test_sample_outside_is_grass(self, town):
        tex = TownTexture(town, resolution=0.5)
        color = tex.sample(np.array([[-1000.0, -1000.0]]))[0]
        assert tuple(color) == SURFACE_COLORS[int(SurfaceType.OFFROAD)]

    def test_invalid_resolution(self, town):
        with pytest.raises(ValueError):
            TownTexture(town, resolution=0.0)


class TestRenderer:
    def test_output_shape_dtype(self, renderer, ego_pose):
        img = renderer.render(ego_pose, [], None, np.random.default_rng(0))
        assert img.shape == (48, 64, 3)
        assert img.dtype == np.uint8

    def test_deterministic_given_rng(self, renderer, ego_pose):
        a = renderer.render(ego_pose, [], None, np.random.default_rng(5))
        b = renderer.render(ego_pose, [], None, np.random.default_rng(5))
        assert np.array_equal(a, b)

    def test_sky_above_horizon(self):
        # Building-free town: the whole top row must be sky (blue dominates).
        town = build_grid_town(GridTownConfig(rows=2, cols=3, with_buildings=False))
        renderer = Renderer(town, CameraModel(width=64, height=48))
        wp = town.spawn_points()[0]
        img = renderer.render(Transform(wp.position, wp.yaw), [])
        top = img[0].astype(int)
        assert (top[:, 2] > top[:, 0]).mean() > 0.9

    def test_road_visible_ahead(self, renderer, town, ego_pose):
        img = renderer.render(ego_pose, [])
        # Bottom-centre pixels look at the road right in front: dark asphalt.
        patch = img[-6:, 24:40].reshape(-1, 3).astype(int)
        road = np.array(SURFACE_COLORS[int(SurfaceType.ROAD)], dtype=int)
        close = (np.abs(patch - road).sum(axis=1) < 90).mean()
        assert close > 0.5, f"road not visible ahead: {patch.mean(axis=0)}"

    def test_actor_changes_image(self, renderer, ego_pose):
        base = renderer.render(ego_pose, [])
        blocker_pos = ego_pose.to_world(Vec2(10.0, 0.0))
        blocker = Vehicle(Transform(blocker_pos, ego_pose.yaw))
        with_actor = renderer.render(ego_pose, [blocker])
        assert not np.array_equal(base, with_actor)
        # The car ahead must occupy a meaningful chunk of the view.
        assert (base != with_actor).any(axis=2).mean() > 0.01

    def test_actor_behind_invisible(self, renderer, ego_pose):
        base = renderer.render(ego_pose, [])
        behind_pos = ego_pose.to_world(Vec2(-10.0, 0.0))
        behind = Vehicle(Transform(behind_pos, ego_pose.yaw))
        img = renderer.render(ego_pose, [behind])
        assert np.array_equal(base, img)

    def test_fog_washes_out_distance(self, town, ego_pose):
        renderer = Renderer(town, CameraModel(width=64, height=48))
        clear = renderer.render(ego_pose, [], get_preset("ClearNoon"))
        foggy = renderer.render(ego_pose, [], get_preset("FoggyNoon"))
        # Fog reduces contrast in the horizon band.
        band_clear = clear[20:26].astype(float).std()
        band_foggy = foggy[20:26].astype(float).std()
        assert band_foggy < band_clear

    def test_night_darker(self, renderer, ego_pose):
        day = renderer.render(ego_pose, [], get_preset("ClearNoon"))
        night = renderer.render(ego_pose, [], get_preset("Night"))
        assert night.mean() < day.mean() * 0.7

    def test_rain_streaks_change_pixels(self, renderer, ego_pose):
        dry = renderer.render(ego_pose, [], get_preset("ClearNoon"), np.random.default_rng(1))
        wet = renderer.render(ego_pose, [], get_preset("HardRainNoon"), np.random.default_rng(1))
        assert not np.array_equal(dry, wet)


class TestSensors:
    @pytest.fixture
    def world_with_ego(self, town):
        world = World(town, seed=11)
        wp = town.spawn_points()[0]
        ego = world.spawn_ego(Transform(wp.position, wp.yaw))
        return world, ego

    def test_gps_noise_scales_with_weather(self, world_with_ego):
        world, ego = world_with_ego
        gps = GPS(noise_std=1.0)
        clear_err, foggy_err = [], []
        rng = np.random.default_rng(0)
        world.set_weather("ClearNoon")
        for _ in range(300):
            fix = gps.read(world, ego, rng)
            clear_err.append(math.hypot(fix[0] - ego.position.x, fix[1] - ego.position.y))
        world.set_weather("FoggyNoon")
        for _ in range(300):
            fix = gps.read(world, ego, rng)
            foggy_err.append(math.hypot(fix[0] - ego.position.x, fix[1] - ego.position.y))
        assert np.mean(foggy_err) > np.mean(clear_err)

    def test_gps_zero_noise_exact(self, world_with_ego):
        world, ego = world_with_ego
        fix = GPS(noise_std=0.0).read(world, ego, np.random.default_rng(0))
        assert fix == (ego.position.x, ego.position.y)

    def test_gps_rejects_negative_noise(self):
        with pytest.raises(ValueError):
            GPS(noise_std=-1.0)

    def test_speedometer_tracks_speed(self, world_with_ego):
        world, ego = world_with_ego
        ego.state = ego.model.teleport(ego.state, ego.transform, speed=10.0)
        reading = Speedometer(noise_frac=0.0).read(world, ego, np.random.default_rng(0))
        assert reading == pytest.approx(10.0)

    def test_lidar_detects_vehicle_ahead(self, world_with_ego):
        world, ego = world_with_ego
        blocker_pos = ego.transform.to_world(Vec2(12.0, 0.0))
        world.add_actor(Vehicle(Transform(blocker_pos, ego.yaw)))
        lidar = Lidar2D(n_rays=31, fov_deg=90.0, max_range=40.0)
        ranges = lidar.read(world, ego, np.random.default_rng(0))
        centre = ranges[len(ranges) // 2]
        assert centre == pytest.approx(12.0 - 2.25, abs=0.6)  # minus half lengths

    def test_lidar_max_range_when_clear(self, town):
        world = World(town, seed=12)
        wp = town.spawn_points()[0]
        ego = world.spawn_ego(Transform(wp.position, wp.yaw))
        lidar = Lidar2D(n_rays=5, fov_deg=20.0, max_range=15.0)
        ranges = lidar.read(world, ego, np.random.default_rng(0))
        assert np.all(ranges <= 15.0)
        assert ranges.shape == (5,)

    def test_lidar_ray_angles_left_to_right(self):
        lidar = Lidar2D(n_rays=3, fov_deg=90.0)
        angles = lidar.ray_angles()
        assert angles[0] > angles[-1]
        assert angles[1] == pytest.approx(0.0)

    def test_sensor_suite_bundle(self, town, renderer):
        world = World(town, seed=13)
        wp = town.spawn_points()[0]
        ego = world.spawn_ego(Transform(wp.position, wp.yaw))
        suite = SensorSuite(Camera(renderer), GPS(), Speedometer(), Lidar2D(n_rays=7))
        bundle = suite.read_frame(world, ego, 5, world.rng)
        assert bundle.frame == 5
        assert bundle.image.shape == (48, 64, 3)
        assert bundle.lidar is not None and bundle.lidar.shape == (7,)
        assert math.isfinite(bundle.speed)

    def test_sensor_frame_copy_is_deep_enough(self, town, renderer):
        world = World(town, seed=14)
        wp = town.spawn_points()[0]
        ego = world.spawn_ego(Transform(wp.position, wp.yaw))
        suite = SensorSuite(Camera(renderer))
        bundle = suite.read_frame(world, ego, 0, world.rng)
        clone = bundle.copy()
        clone.image[:] = 0
        assert bundle.image.any(), "copy must not share image memory"
