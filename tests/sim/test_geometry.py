"""Unit tests for :mod:`repro.sim.geometry`."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.geometry import (
    OrientedBox,
    Polyline,
    Transform,
    Vec2,
    angle_diff,
    batch_ray_hits,
    pack_boxes,
    point_segment_distance,
    project_on_segment,
    segments_intersect,
    wrap_angle,
)

finite_floats = st.floats(-1e3, 1e3, allow_nan=False, allow_infinity=False)
angles = st.floats(-10.0 * math.pi, 10.0 * math.pi, allow_nan=False)


class TestAngles:
    def test_wrap_identity_in_range(self):
        assert wrap_angle(0.5) == pytest.approx(0.5)

    def test_wrap_positive_overflow(self):
        assert wrap_angle(math.pi + 0.1) == pytest.approx(-math.pi + 0.1)

    def test_wrap_negative_overflow(self):
        assert wrap_angle(-math.pi - 0.1) == pytest.approx(math.pi - 0.1)

    def test_wrap_pi_maps_to_pi(self):
        assert wrap_angle(math.pi) == pytest.approx(math.pi)

    @given(angles)
    def test_wrap_always_in_interval(self, a):
        w = wrap_angle(a)
        assert -math.pi < w <= math.pi + 1e-12

    @given(angles)
    def test_wrap_preserves_direction(self, a):
        w = wrap_angle(a)
        assert math.cos(w) == pytest.approx(math.cos(a), abs=1e-9)
        assert math.sin(w) == pytest.approx(math.sin(a), abs=1e-9)

    def test_angle_diff_signed(self):
        assert angle_diff(0.1, -0.1) == pytest.approx(0.2)
        assert angle_diff(-math.pi + 0.05, math.pi - 0.05) == pytest.approx(0.1)


class TestVec2:
    def test_add_sub(self):
        v = Vec2(1, 2) + Vec2(3, 4) - Vec2(1, 1)
        assert (v.x, v.y) == (3, 5)

    def test_scalar_multiply_both_sides(self):
        assert (Vec2(1, -2) * 2.0).y == -4.0
        assert (2.0 * Vec2(1, -2)).x == 2.0

    def test_dot_and_cross(self):
        assert Vec2(1, 0).dot(Vec2(0, 1)) == 0.0
        assert Vec2(1, 0).cross(Vec2(0, 1)) == 1.0

    def test_norm(self):
        assert Vec2(3, 4).norm() == pytest.approx(5.0)
        assert Vec2(3, 4).norm_sq() == pytest.approx(25.0)

    def test_normalized_zero_vector_defaults_to_x(self):
        n = Vec2(0, 0).normalized()
        assert (n.x, n.y) == (1.0, 0.0)

    def test_rotated_quarter_turn(self):
        r = Vec2(1, 0).rotated(math.pi / 2)
        assert r.x == pytest.approx(0.0, abs=1e-12)
        assert r.y == pytest.approx(1.0)

    def test_perp_is_left_normal(self):
        p = Vec2(1, 0).perp()
        assert (p.x, p.y) == (0.0, 1.0)

    def test_heading(self):
        assert Vec2(0, 2).heading() == pytest.approx(math.pi / 2)

    def test_from_heading_roundtrip(self):
        v = Vec2.from_heading(0.7, 2.0)
        assert v.heading() == pytest.approx(0.7)
        assert v.norm() == pytest.approx(2.0)

    def test_array_roundtrip(self):
        v = Vec2.from_array(Vec2(1.5, -2.5).as_array())
        assert (v.x, v.y) == (1.5, -2.5)

    @given(finite_floats, finite_floats, angles)
    def test_rotation_preserves_norm(self, x, y, a):
        v = Vec2(x, y)
        assert v.rotated(a).norm() == pytest.approx(v.norm(), rel=1e-9, abs=1e-9)


class TestTransform:
    def test_to_world_identity(self):
        t = Transform(Vec2(0, 0), 0.0)
        w = t.to_world(Vec2(1, 2))
        assert (w.x, w.y) == (1, 2)

    def test_to_world_translation_rotation(self):
        t = Transform(Vec2(10, 0), math.pi / 2)
        w = t.to_world(Vec2(1, 0))
        assert w.x == pytest.approx(10.0, abs=1e-12)
        assert w.y == pytest.approx(1.0)

    @given(finite_floats, finite_floats, angles, finite_floats, finite_floats)
    def test_local_world_roundtrip(self, px, py, yaw, x, y):
        t = Transform(Vec2(px, py), yaw)
        p = Vec2(x, y)
        back = t.to_local(t.to_world(p))
        assert back.x == pytest.approx(p.x, abs=1e-6)
        assert back.y == pytest.approx(p.y, abs=1e-6)

    def test_forward_left_orthogonal(self):
        t = Transform(Vec2(0, 0), 0.8)
        assert t.forward().dot(t.left()) == pytest.approx(0.0, abs=1e-12)

    def test_compose(self):
        parent = Transform(Vec2(1, 0), math.pi / 2)
        child = Transform(Vec2(1, 0), 0.3)
        c = parent.compose(child)
        assert c.position.x == pytest.approx(1.0, abs=1e-12)
        assert c.position.y == pytest.approx(1.0)
        assert c.yaw == pytest.approx(math.pi / 2 + 0.3)


class TestSegments:
    def test_project_interior(self):
        t, p = project_on_segment(Vec2(1, 1), Vec2(0, 0), Vec2(2, 0))
        assert t == pytest.approx(0.5)
        assert (p.x, p.y) == (1.0, 0.0)

    def test_project_clamps_to_endpoints(self):
        t, p = project_on_segment(Vec2(-5, 1), Vec2(0, 0), Vec2(2, 0))
        assert t == 0.0
        assert (p.x, p.y) == (0.0, 0.0)

    def test_degenerate_segment(self):
        t, p = project_on_segment(Vec2(1, 1), Vec2(3, 3), Vec2(3, 3))
        assert t == 0.0
        assert (p.x, p.y) == (3.0, 3.0)

    def test_distance(self):
        assert point_segment_distance(Vec2(1, 2), Vec2(0, 0), Vec2(2, 0)) == pytest.approx(2.0)

    def test_segments_crossing(self):
        assert segments_intersect(Vec2(0, 0), Vec2(2, 2), Vec2(0, 2), Vec2(2, 0))

    def test_segments_parallel_disjoint(self):
        assert not segments_intersect(Vec2(0, 0), Vec2(1, 0), Vec2(0, 1), Vec2(1, 1))

    def test_segments_touching_endpoint(self):
        assert segments_intersect(Vec2(0, 0), Vec2(1, 0), Vec2(1, 0), Vec2(2, 1))


class TestOrientedBox:
    def test_invalid_extents_rejected(self):
        with pytest.raises(ValueError):
            OrientedBox(Vec2(0, 0), 0.0, 0.0, 1.0)

    def test_contains_center(self):
        box = OrientedBox(Vec2(1, 1), 0.5, 2.0, 1.0)
        assert box.contains_point(Vec2(1, 1))

    def test_contains_respects_rotation(self):
        box = OrientedBox(Vec2(0, 0), math.pi / 2, 2.0, 0.5)
        assert box.contains_point(Vec2(0, 1.9))
        assert not box.contains_point(Vec2(1.9, 0))

    def test_corners_form_rectangle(self):
        box = OrientedBox(Vec2(3, 4), 0.3, 2.0, 1.0)
        corners = box.corners()
        d1 = corners[0].distance_to(corners[2])
        d2 = corners[1].distance_to(corners[3])
        assert d1 == pytest.approx(d2)

    def test_overlap_identical(self):
        a = OrientedBox(Vec2(0, 0), 0.0, 1.0, 1.0)
        assert a.overlaps(a)

    def test_overlap_disjoint(self):
        a = OrientedBox(Vec2(0, 0), 0.0, 1.0, 1.0)
        b = OrientedBox(Vec2(5, 0), 0.0, 1.0, 1.0)
        assert not a.overlaps(b)
        assert not b.overlaps(a)

    def test_overlap_rotated_near_miss(self):
        # Diamond next to a square: corners interleave but no overlap.
        a = OrientedBox(Vec2(0, 0), 0.0, 1.0, 1.0)
        b = OrientedBox(Vec2(2.6, 0), math.pi / 4, 1.0, 1.0)
        assert not a.overlaps(b)

    def test_overlap_rotated_hit(self):
        a = OrientedBox(Vec2(0, 0), 0.0, 1.0, 1.0)
        b = OrientedBox(Vec2(2.0, 0), math.pi / 4, 1.0, 1.0)
        assert a.overlaps(b)

    @given(
        st.floats(-5, 5),
        st.floats(-5, 5),
        angles,
        st.floats(0.2, 3),
        st.floats(0.2, 3),
    )
    @settings(max_examples=50)
    def test_overlap_symmetry(self, x, y, yaw, hl, hw):
        a = OrientedBox(Vec2(0, 0), 0.4, 1.5, 0.8)
        b = OrientedBox(Vec2(x, y), yaw, hl, hw)
        assert a.overlaps(b) == b.overlaps(a)

    def test_expanded(self):
        a = OrientedBox(Vec2(0, 0), 0.0, 1.0, 1.0)
        assert a.expanded(0.5).contains_point(Vec2(1.4, 0))

    def test_ray_hit_head_on(self):
        box = OrientedBox(Vec2(10, 0), 0.0, 1.0, 1.0)
        d = box.ray_hit_distance(Vec2(0, 0), Vec2(1, 0), 50.0)
        assert d == pytest.approx(9.0)

    def test_ray_miss(self):
        box = OrientedBox(Vec2(10, 5), 0.0, 1.0, 1.0)
        assert box.ray_hit_distance(Vec2(0, 0), Vec2(1, 0), 50.0) is None

    def test_ray_beyond_range(self):
        box = OrientedBox(Vec2(100, 0), 0.0, 1.0, 1.0)
        assert box.ray_hit_distance(Vec2(0, 0), Vec2(1, 0), 50.0) is None

    def test_ray_from_inside_hits_at_zero(self):
        box = OrientedBox(Vec2(0, 0), 0.0, 2.0, 2.0)
        d = box.ray_hit_distance(Vec2(0, 0), Vec2(1, 0), 50.0)
        assert d == pytest.approx(0.0)


class TestPolyline:
    def line(self):
        return Polyline([Vec2(0, 0), Vec2(10, 0), Vec2(10, 10)])

    def test_needs_two_points(self):
        with pytest.raises(ValueError):
            Polyline([Vec2(0, 0)])

    def test_rejects_zero_length_segments(self):
        with pytest.raises(ValueError):
            Polyline([Vec2(0, 0), Vec2(0, 0), Vec2(1, 0)])

    def test_length(self):
        assert self.line().length == pytest.approx(20.0)

    def test_point_at_interior(self):
        p = self.line().point_at(15.0)
        assert (p.x, p.y) == (10.0, 5.0)

    def test_point_at_clamps(self):
        p = self.line().point_at(1e9)
        assert (p.x, p.y) == (10.0, 10.0)
        p = self.line().point_at(-5)
        assert (p.x, p.y) == (0.0, 0.0)

    def test_heading_changes_at_corner(self):
        pl = self.line()
        assert pl.heading_at(5.0) == pytest.approx(0.0)
        assert pl.heading_at(15.0) == pytest.approx(math.pi / 2)

    def test_locate_signed_lateral(self):
        pl = self.line()
        s, lat = pl.locate(Vec2(5, 2))
        assert s == pytest.approx(5.0)
        assert lat == pytest.approx(2.0)  # left of +x direction
        s, lat = pl.locate(Vec2(5, -2))
        assert lat == pytest.approx(-2.0)

    def test_distance_to_beyond_endpoint(self):
        pl = Polyline([Vec2(0, 0), Vec2(10, 0)])
        assert pl.distance_to(Vec2(13, 4)) == pytest.approx(5.0)

    def test_resampled_preserves_endpoints_and_length(self):
        pl = self.line().resampled(1.0)
        assert pl.points[0].distance_to(Vec2(0, 0)) < 1e-9
        assert pl.points[-1].distance_to(Vec2(10, 10)) < 1e-9
        assert pl.length == pytest.approx(20.0, rel=1e-3)

    def test_resample_invalid_spacing(self):
        with pytest.raises(ValueError):
            self.line().resampled(0.0)

    def test_offset_straight_line(self):
        pl = Polyline([Vec2(0, 0), Vec2(10, 0)]).offset(2.0)
        assert pl.points[0].y == pytest.approx(2.0)
        assert pl.points[-1].y == pytest.approx(2.0)

    def test_offset_negative_goes_right(self):
        pl = Polyline([Vec2(0, 0), Vec2(10, 0)]).offset(-1.5)
        assert pl.points[0].y == pytest.approx(-1.5)

    def test_reversed(self):
        r = self.line().reversed()
        assert r.points[0].distance_to(Vec2(10, 10)) < 1e-9
        assert r.length == pytest.approx(20.0)

    @given(st.lists(st.tuples(finite_floats, finite_floats), min_size=2, max_size=8, unique=True))
    @settings(max_examples=40)
    def test_locate_station_within_bounds(self, pts):
        vecs = [Vec2(x, y) for x, y in pts]
        try:
            pl = Polyline(vecs)
        except ValueError:
            return  # duplicate-adjacent points: rejected by construction
        s, _ = pl.locate(Vec2(0, 0))
        assert 0.0 <= s <= pl.length + 1e-9


class TestBatchRayHits:
    """The batched LIDAR slab test against the scalar reference.

    ``batch_ray_hits`` must agree *exactly* (not approximately) with
    folding :meth:`OrientedBox.ray_hit_distance` over the boxes — the
    vectorised LIDAR promises bit-identical readings.
    """

    @staticmethod
    def _scalar_reference(origin, directions, boxes, max_range):
        out = np.full(len(directions), max_range, dtype=np.float64)
        for i, (dx, dy) in enumerate(directions):
            direction = Vec2(dx, dy)
            best = max_range
            for box in boxes:
                hit = box.ray_hit_distance(origin, direction, best)
                if hit is not None and hit < best:
                    best = hit
            out[i] = best
        return out

    @staticmethod
    def _unit_directions(angles):
        dirs = np.empty((len(angles), 2))
        for i, a in enumerate(angles):
            d = Vec2.from_heading(a).normalized()
            dirs[i, 0] = d.x
            dirs[i, 1] = d.y
        return dirs

    def test_pack_boxes_layout(self):
        box = OrientedBox(Vec2(3.0, -2.0), 0.7, 2.5, 1.25)
        packed = pack_boxes([box])
        assert packed.shape == (1, 6)
        assert packed[0, 0] == 3.0 and packed[0, 1] == -2.0
        assert packed[0, 2] == math.cos(-0.7) and packed[0, 3] == math.sin(-0.7)
        assert packed[0, 4] == 2.5 and packed[0, 5] == 1.25

    def test_no_boxes_returns_max_range(self):
        dirs = self._unit_directions([0.0, 1.0])
        ranges = batch_ray_hits(Vec2(0, 0), dirs, np.empty((0, 6)), 25.0)
        assert np.array_equal(ranges, [25.0, 25.0])

    def test_single_box_straight_ahead(self):
        box = OrientedBox(Vec2(10.0, 0.0), 0.0, 2.0, 1.0)
        dirs = self._unit_directions([0.0])
        ranges = batch_ray_hits(Vec2(0, 0), dirs, pack_boxes([box]), 40.0)
        assert ranges[0] == pytest.approx(8.0)

    def test_axis_parallel_rays_match_scalar(self):
        """Exactly axis-parallel rays exercise the parallel-slab branch."""
        boxes = [
            OrientedBox(Vec2(10.0, 0.0), 0.0, 2.0, 1.0),
            OrientedBox(Vec2(0.0, 8.0), 0.0, 1.5, 1.5),
            OrientedBox(Vec2(-6.0, 3.0), math.pi / 2.0, 2.0, 0.5),
            OrientedBox(Vec2(10.0, 5.0), 0.0, 2.0, 1.0),  # origin outside slab
        ]
        angles = [0.0, math.pi / 2.0, math.pi, -math.pi / 2.0]
        dirs = self._unit_directions(angles)
        origin = Vec2(0.0, 0.0)
        got = batch_ray_hits(origin, dirs, pack_boxes(boxes), 30.0)
        want = self._scalar_reference(origin, dirs, boxes, 30.0)
        assert np.array_equal(got, want)

    def test_origin_inside_box_hits_at_zero(self):
        box = OrientedBox(Vec2(0.0, 0.0), 0.3, 4.0, 4.0)
        dirs = self._unit_directions([0.0, 2.0])
        ranges = batch_ray_hits(Vec2(0.5, -0.5), dirs, pack_boxes([box]), 40.0)
        assert np.array_equal(ranges, [0.0, 0.0])

    @given(
        st.integers(min_value=0, max_value=2**32 - 1),
        st.integers(min_value=1, max_value=8),
        st.integers(min_value=1, max_value=7),
    )
    @settings(max_examples=60, deadline=None)
    def test_batch_equals_scalar_reference(self, seed, n_rays, n_boxes):
        rng = np.random.default_rng(seed)
        origin = Vec2(*rng.uniform(-15.0, 15.0, 2))
        boxes = [
            OrientedBox(
                Vec2(*rng.uniform(-25.0, 25.0, 2)),
                float(rng.uniform(-math.pi, math.pi)),
                float(rng.uniform(0.2, 6.0)),
                float(rng.uniform(0.2, 4.0)),
            )
            for _ in range(n_boxes)
        ]
        angles = rng.uniform(-math.pi, math.pi, n_rays)
        dirs = self._unit_directions(angles)
        max_range = float(rng.uniform(5.0, 60.0))
        got = batch_ray_hits(origin, dirs, pack_boxes(boxes), max_range)
        want = self._scalar_reference(origin, dirs, boxes, max_range)
        assert np.array_equal(got, want), (got, want)
