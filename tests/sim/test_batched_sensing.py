"""Bit-identity of the cross-episode batched sensing kernels.

The episode multiplexer stacks per-episode sensor work into ``(E, ...)``
slabs (`repro.sim.geometry.batch_ray_hits_multi`,
`repro.sim.render.Renderer.render_batch`,
`repro.sim.sensors.read_frames_batch`).  The multiplexed backend's
byte-identity guarantee rests on these kernels being *bitwise* equal to
their serial counterparts — not merely numerically close — so every
comparison here is exact (``array_equal`` on float arrays) and the RNG
end states are compared too: a batched path that consumed a different
number of draws would silently diverge every frame after the first.
"""

import copy
from dataclasses import replace

import numpy as np
import pytest

from repro.sim.builders import SimulationBuilder
from repro.sim.geometry import (
    Vec2,
    batch_ray_hits,
    batch_ray_hits_multi,
    pad_box_packs,
)
from repro.sim.sensors import read_frames_batch
from repro.sim.physics import VehicleControl
from repro.sim.scenario import make_scenarios
from repro.sim.town import GridTownConfig


def _rng_state(world):
    return copy.deepcopy(world.rng.bit_generator.state)


def _episodes(n, with_lidar=True, weathers=("ClearNoon", "HardRainNoon", "FoggyNoon")):
    """``n`` live episodes on one shared town/renderer, advanced a few
    frames so actors have moved off their spawn poses."""
    builder = SimulationBuilder(with_lidar=with_lidar)
    scenarios = make_scenarios(
        n,
        seed=5,
        town_config=GridTownConfig(rows=3, cols=3),
        n_npc_vehicles=3,
        n_pedestrians=2,
        min_distance=40.0,
        max_distance=200.0,
    )
    episodes = []
    for i, scenario in enumerate(scenarios):
        scenario = replace(scenario, weather=weathers[i % len(weathers)])
        handles = builder.build_episode(scenario)
        world = handles.world
        ego = world.actors[0]
        for _ in range(3):
            ego.apply_control(VehicleControl(throttle=0.6, steer=0.05 * i))
            world.tick()
        episodes.append((handles.sensors, world, ego))
    return episodes


class TestBatchRayHitsMulti:
    def test_matches_per_episode_kernel_bitwise(self):
        rng = np.random.default_rng(42)
        origins, dir_stack, packs = [], [], []
        n_rays = 17
        for e in range(4):
            origins.append(Vec2(*rng.uniform(-50, 50, size=2)))
            angles = rng.uniform(0, 2 * np.pi, size=n_rays)
            dir_stack.append(np.stack([np.cos(angles), np.sin(angles)], axis=1))
            n_boxes = int(rng.integers(0, 6))  # ragged on purpose, incl. empty
            boxes = np.empty((n_boxes, 6))
            boxes[:, 0:2] = rng.uniform(-40, 40, size=(n_boxes, 2))
            yaw = rng.uniform(0, 2 * np.pi, size=n_boxes)
            boxes[:, 2] = np.cos(yaw)
            boxes[:, 3] = np.sin(yaw)
            boxes[:, 4:6] = rng.uniform(0.5, 4.0, size=(n_boxes, 2))
            packs.append(boxes)
        serial = [
            batch_ray_hits(origin, dirs, boxes, 60.0)
            for origin, dirs, boxes in zip(origins, dir_stack, packs)
        ]
        batched = batch_ray_hits_multi(
            np.array([[o.x, o.y] for o in origins]),
            np.stack(dir_stack),
            pad_box_packs(packs),
            60.0,
        )
        assert batched.shape == (4, n_rays)
        for e in range(4):
            assert np.array_equal(batched[e], serial[e])

    def test_pad_box_packs_pads_with_guaranteed_misses(self):
        packs = [np.zeros((0, 6)), np.array([[1.0, 2.0, 1.0, 0.0, 2.0, 1.0]])]
        packed = pad_box_packs(packs)
        assert packed.shape == (2, 1, 6)
        # The all-empty episode is padded with a box no ray can reach.
        ranges = batch_ray_hits_multi(
            np.zeros((2, 2)),
            np.tile(np.array([[1.0, 0.0]]), (2, 1, 1)),
            packed,
            50.0,
        )
        assert ranges[0, 0] == 50.0  # pure miss: clamped to max range


class TestReadFramesBatch:
    @pytest.mark.parametrize("with_lidar", [True, False])
    def test_bitwise_identical_to_serial_reads(self, with_lidar):
        episodes = _episodes(3, with_lidar=with_lidar)
        states = [_rng_state(world) for _, world, _ in episodes]
        serial = [
            suite.read_frame(world, ego, world.frame, world.rng)
            for suite, world, ego in episodes
        ]
        serial_states = [_rng_state(world) for _, world, _ in episodes]
        for (_, world, _), state in zip(episodes, states):
            world.rng.bit_generator.state = copy.deepcopy(state)
        batched = read_frames_batch(
            [(suite, world, ego, world.frame) for suite, world, ego in episodes]
        )
        for a, b in zip(serial, batched):
            assert a.frame == b.frame
            assert np.array_equal(a.image, b.image)
            assert a.gps == b.gps
            assert a.speed == b.speed
            assert a.heading == b.heading
            if with_lidar:
                assert np.array_equal(a.lidar, b.lidar)
            else:
                assert a.lidar is None and b.lidar is None
        # Same number of RNG draws in the same order — the next frame
        # would diverge otherwise even with identical outputs here.
        for (_, world, _), state in zip(episodes, serial_states):
            assert world.rng.bit_generator.state == state

    def test_mixed_suites_one_episode_groups(self):
        # A lone episode per renderer/scan group must take the serial
        # fast path and still match exactly.
        episodes = _episodes(1)
        suite, world, ego = episodes[0]
        state = _rng_state(world)
        serial = suite.read_frame(world, ego, world.frame, world.rng)
        world.rng.bit_generator.state = copy.deepcopy(state)
        [batched] = read_frames_batch([(suite, world, ego, world.frame)])
        assert np.array_equal(serial.image, batched.image)
        assert serial.gps == batched.gps
        assert np.array_equal(serial.lidar, batched.lidar)

    def test_empty_batch(self):
        assert read_frames_batch([]) == []


class TestRenderBatch:
    def test_render_batch_matches_render_bitwise(self):
        episodes = _episodes(3)
        renderer = episodes[0][0].camera.renderer
        assert all(s.camera.renderer is renderer for s, _, _ in episodes)
        states = [_rng_state(world) for _, world, _ in episodes]
        serial = [
            renderer.render(
                ego.transform, world.other_actors(ego.id), world.weather, world.rng
            )
            for _, world, ego in episodes
        ]
        for (_, world, _), state in zip(episodes, states):
            world.rng.bit_generator.state = copy.deepcopy(state)
        batched = renderer.render_batch(
            [
                (ego.transform, world.other_actors(ego.id), world.weather, world.rng)
                for _, world, ego in episodes
            ]
        )
        for a, b in zip(serial, batched):
            assert np.array_equal(a, b)
