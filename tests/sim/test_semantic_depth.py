"""Tests for the semantic-segmentation / depth camera outputs."""

import numpy as np
import pytest

from repro.sim.actors import Pedestrian, Vehicle
from repro.sim.geometry import Transform, Vec2
from repro.sim.render import CameraModel, Renderer, SemanticClass
from repro.sim.town import GridTownConfig, build_grid_town


@pytest.fixture(scope="module")
def town():
    return build_grid_town(GridTownConfig(rows=2, cols=3))


@pytest.fixture(scope="module")
def renderer(town):
    return Renderer(town, CameraModel(width=64, height=48))


@pytest.fixture
def ego_pose(town):
    wp = town.spawn_points()[0]
    return Transform(wp.position, wp.yaw)


class TestSemanticLayer:
    def test_shapes_and_dtypes(self, renderer, ego_pose):
        sem, depth = renderer.render_semantic_depth(ego_pose, [])
        assert sem.shape == (48, 64)
        assert sem.dtype == np.uint8
        assert depth.shape == (48, 64)
        assert depth.dtype == np.float32

    def test_sky_at_top(self, renderer, ego_pose):
        sem, depth = renderer.render_semantic_depth(ego_pose, [])
        # With buildings present some top pixels are BUILDING; the rest sky.
        top = sem[0]
        assert set(np.unique(top)) <= {SemanticClass.SKY, SemanticClass.BUILDING}
        assert np.isinf(depth[0][top == SemanticClass.SKY]).all()

    def test_road_ahead(self, renderer, ego_pose):
        sem, _ = renderer.render_semantic_depth(ego_pose, [])
        bottom_center = sem[-4:, 28:36]
        assert (bottom_center == SemanticClass.ROAD).mean() > 0.8

    def test_vehicle_labelled(self, renderer, ego_pose):
        blocker = Vehicle(Transform(ego_pose.to_world(Vec2(10.0, 0.0)), ego_pose.yaw))
        sem, depth = renderer.render_semantic_depth(ego_pose, [blocker])
        vehicle_pixels = sem == SemanticClass.VEHICLE
        assert vehicle_pixels.any()
        assert depth[vehicle_pixels].min() == pytest.approx(10.0, abs=1.0)

    def test_pedestrian_labelled(self, renderer, ego_pose, town):
        ped = Pedestrian(Transform(ego_pose.to_world(Vec2(8.0, 1.0)), 0.0), town)
        sem, _ = renderer.render_semantic_depth(ego_pose, [ped])
        assert (sem == SemanticClass.PEDESTRIAN).any()

    def test_depth_monotone_up_center_column(self, renderer, ego_pose):
        town = build_grid_town(GridTownConfig(rows=2, cols=3, with_buildings=False))
        clean = Renderer(town, CameraModel(width=64, height=48))
        _, depth = clean.render_semantic_depth(ego_pose, [])
        col = depth[:, 32]
        finite = col[np.isfinite(col)]
        # Ground depth decreases from horizon (top) to the bumper (bottom).
        assert np.all(np.diff(finite) < 0)

    def test_semantic_consistent_with_rgb_geometry(self, renderer, ego_pose):
        """The RGB road region and semantic ROAD region overlap heavily."""
        from repro.sim.render import SURFACE_COLORS
        from repro.sim.town import SurfaceType

        rgb = renderer.render(ego_pose, [])
        sem, _ = renderer.render_semantic_depth(ego_pose, [])
        road_color = np.array(SURFACE_COLORS[int(SurfaceType.ROAD)])
        rgbish = np.abs(rgb.astype(int) - road_color).sum(axis=2) < 60
        semantic_road = sem == SemanticClass.ROAD
        overlap = (rgbish & semantic_road).sum() / max(1, rgbish.sum())
        assert overlap > 0.7
