"""Property-based tests on channel delivery invariants (hypothesis).

The channel layer underpins every timing-fault experiment, so its
accounting must be exact: every packet sent is eventually delivered or
counted dropped, delivery order follows delivery frames, and transforms
cannot corrupt the conservation law.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.faults import OutputDelay, PacketLoss, PacketReorder, Trigger
from repro.sim.channel import Channel, ChannelTransform, FixedLatency, Packet


@st.composite
def send_schedule(draw):
    """A list of (send_frame, payload) with non-decreasing frames."""
    n = draw(st.integers(1, 40))
    gaps = draw(st.lists(st.integers(0, 3), min_size=n, max_size=n))
    frames = np.cumsum(gaps).tolist()
    return [(int(f), i) for i, f in enumerate(frames)]


class TestConservation:
    @given(send_schedule())
    @settings(max_examples=50)
    def test_plain_channel_delivers_everything_once(self, schedule):
        ch = Channel("c")
        for frame, payload in schedule:
            ch.send(Packet("k", frame, payload))
        delivered = [p.payload for p in ch.poll(10_000)]
        assert sorted(delivered) == [p for _, p in schedule]
        assert ch.stats.delivered == len(schedule)
        assert ch.stats.dropped == 0

    @given(send_schedule(), st.integers(0, 10))
    @settings(max_examples=50)
    def test_latency_preserves_count_and_order(self, schedule, latency):
        ch = Channel("c")
        ch.add_transform(FixedLatency(latency))
        for frame, payload in schedule:
            ch.send(Packet("k", frame, payload))
        delivered = [p.payload for p in ch.poll(10_000)]
        assert delivered == [p for _, p in schedule]  # uniform delay keeps order

    @given(send_schedule(), st.integers(1, 20), st.integers(0, 10_000))
    @settings(max_examples=50)
    def test_nothing_delivered_before_due(self, schedule, delay, poll_frame):
        ch = Channel("c")
        fault = OutputDelay(delay)
        fault.bind(np.random.default_rng(0))
        ch.add_transform(fault)
        for frame, payload in schedule:
            ch.send(Packet("k", frame, payload))
        for p in ch.poll(poll_frame):
            assert p.frame + delay <= poll_frame

    @given(send_schedule(), st.floats(0.0, 1.0))
    @settings(max_examples=50)
    def test_loss_conserves_sent(self, schedule, prob):
        ch = Channel("c")
        fault = PacketLoss(Trigger(probability=prob))
        fault.bind(np.random.default_rng(1))
        ch.add_transform(fault)
        for frame, payload in schedule:
            ch.send(Packet("k", frame, payload))
        delivered = ch.poll(10_000)
        assert len(delivered) + ch.stats.dropped == len(schedule)

    @given(send_schedule(), st.integers(1, 8))
    @settings(max_examples=50)
    def test_reorder_is_a_permutation(self, schedule, max_extra):
        ch = Channel("c")
        fault = PacketReorder(max_extra_frames=max_extra, trigger=Trigger(probability=0.7))
        fault.bind(np.random.default_rng(2))
        ch.add_transform(fault)
        for frame, payload in schedule:
            ch.send(Packet("k", frame, payload))
        delivered = [p.payload for p in ch.poll(10_000)]
        assert sorted(delivered) == [p for _, p in schedule]

    @given(send_schedule())
    @settings(max_examples=30)
    def test_poll_latest_never_returns_stale_after_fresh(self, schedule):
        """poll_latest is monotone in packet frame across polls."""
        ch = Channel("c")
        last_seen = -1
        for frame, payload in schedule:
            ch.send(Packet("k", frame, payload))
            pkt = ch.poll_latest(frame)
            if pkt is not None:
                assert pkt.frame >= last_seen
                last_seen = pkt.frame


class TestTransformComposition:
    @given(send_schedule(), st.integers(0, 5), st.integers(0, 5))
    @settings(max_examples=40)
    def test_two_latencies_add(self, schedule, l1, l2):
        ch = Channel("c")
        ch.add_transform(FixedLatency(l1))
        ch.add_transform(FixedLatency(l2))
        for frame, payload in schedule:
            ch.send(Packet("k", frame, payload))
        horizon = schedule[-1][0] + l1 + l2
        early = ch.poll(horizon - 1) if horizon > 0 else []
        late = ch.poll(horizon)
        assert len(early) + len(late) == len(schedule)

    def test_drop_then_delay_order_matters_for_stats(self):
        class DropEven(ChannelTransform):
            def on_send(self, packet, deliver_frame):
                if packet.payload % 2 == 0:
                    return None
                return [(packet, deliver_frame)]

        ch = Channel("c")
        ch.add_transform(DropEven())
        ch.add_transform(FixedLatency(2))
        for i in range(10):
            ch.send(Packet("k", i, i))
        delivered = [p.payload for p in ch.poll(10_000)]
        assert delivered == [1, 3, 5, 7, 9]
        assert ch.stats.dropped == 5
