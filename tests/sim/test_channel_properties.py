"""Property-based tests on channel delivery invariants (hypothesis).

The channel layer underpins every timing-fault experiment, so its
accounting must be exact: every packet sent is eventually delivered or
counted dropped, delivery order follows delivery frames, and transforms
cannot corrupt the conservation law.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.faults import OutputDelay, PacketLoss, PacketReorder, Trigger
from repro.sim.channel import Channel, ChannelTransform, FixedLatency, Packet


@st.composite
def send_schedule(draw):
    """A list of (send_frame, payload) with non-decreasing frames."""
    n = draw(st.integers(1, 40))
    gaps = draw(st.lists(st.integers(0, 3), min_size=n, max_size=n))
    frames = np.cumsum(gaps).tolist()
    return [(int(f), i) for i, f in enumerate(frames)]


class TestConservation:
    @given(send_schedule())
    @settings(max_examples=50)
    def test_plain_channel_delivers_everything_once(self, schedule):
        ch = Channel("c")
        for frame, payload in schedule:
            ch.send(Packet("k", frame, payload))
        delivered = [p.payload for p in ch.poll(10_000)]
        assert sorted(delivered) == [p for _, p in schedule]
        assert ch.stats.delivered == len(schedule)
        assert ch.stats.dropped == 0

    @given(send_schedule(), st.integers(0, 10))
    @settings(max_examples=50)
    def test_latency_preserves_count_and_order(self, schedule, latency):
        ch = Channel("c")
        ch.add_transform(FixedLatency(latency))
        for frame, payload in schedule:
            ch.send(Packet("k", frame, payload))
        delivered = [p.payload for p in ch.poll(10_000)]
        assert delivered == [p for _, p in schedule]  # uniform delay keeps order

    @given(send_schedule(), st.integers(1, 20), st.integers(0, 10_000))
    @settings(max_examples=50)
    def test_nothing_delivered_before_due(self, schedule, delay, poll_frame):
        ch = Channel("c")
        fault = OutputDelay(delay)
        fault.bind(np.random.default_rng(0))
        ch.add_transform(fault)
        for frame, payload in schedule:
            ch.send(Packet("k", frame, payload))
        for p in ch.poll(poll_frame):
            assert p.frame + delay <= poll_frame

    @given(send_schedule(), st.floats(0.0, 1.0))
    @settings(max_examples=50)
    def test_loss_conserves_sent(self, schedule, prob):
        ch = Channel("c")
        fault = PacketLoss(Trigger(probability=prob))
        fault.bind(np.random.default_rng(1))
        ch.add_transform(fault)
        for frame, payload in schedule:
            ch.send(Packet("k", frame, payload))
        delivered = ch.poll(10_000)
        assert len(delivered) + ch.stats.dropped == len(schedule)

    @given(send_schedule(), st.integers(1, 8))
    @settings(max_examples=50)
    def test_reorder_is_a_permutation(self, schedule, max_extra):
        ch = Channel("c")
        fault = PacketReorder(max_extra_frames=max_extra, trigger=Trigger(probability=0.7))
        fault.bind(np.random.default_rng(2))
        ch.add_transform(fault)
        for frame, payload in schedule:
            ch.send(Packet("k", frame, payload))
        delivered = [p.payload for p in ch.poll(10_000)]
        assert sorted(delivered) == [p for _, p in schedule]

    @given(send_schedule())
    @settings(max_examples=30)
    def test_poll_latest_never_returns_stale_after_fresh(self, schedule):
        """poll_latest is monotone in packet frame across polls."""
        ch = Channel("c")
        last_seen = -1
        for frame, payload in schedule:
            ch.send(Packet("k", frame, payload))
            pkt = ch.poll_latest(frame)
            if pkt is not None:
                assert pkt.frame >= last_seen
                last_seen = pkt.frame


class TestTransformComposition:
    @given(send_schedule(), st.integers(0, 5), st.integers(0, 5))
    @settings(max_examples=40)
    def test_two_latencies_add(self, schedule, l1, l2):
        ch = Channel("c")
        ch.add_transform(FixedLatency(l1))
        ch.add_transform(FixedLatency(l2))
        for frame, payload in schedule:
            ch.send(Packet("k", frame, payload))
        horizon = schedule[-1][0] + l1 + l2
        early = ch.poll(horizon - 1) if horizon > 0 else []
        late = ch.poll(horizon)
        assert len(early) + len(late) == len(schedule)

    def test_drop_then_delay_order_matters_for_stats(self):
        class DropEven(ChannelTransform):
            def on_send(self, packet, deliver_frame):
                if packet.payload % 2 == 0:
                    return None
                return [(packet, deliver_frame)]

        ch = Channel("c")
        ch.add_transform(DropEven())
        ch.add_transform(FixedLatency(2))
        for i in range(10):
            ch.send(Packet("k", i, i))
        delivered = [p.payload for p in ch.poll(10_000)]
        assert delivered == [1, 3, 5, 7, 9]
        assert ch.stats.dropped == 5


class _Duplicate(ChannelTransform):
    """Deliver the original plus one copy ``extra`` frames later."""

    def __init__(self, extra: int = 2):
        self.extra = extra

    def on_send(self, packet, deliver_frame):
        return [(packet, deliver_frame), (packet, deliver_frame + self.extra)]


class _DropEven(ChannelTransform):
    def on_send(self, packet, deliver_frame):
        if packet.payload % 2 == 0:
            return None
        return [(packet, deliver_frame)]


class TestClearResetsReplayState:
    def test_clear_resets_tiebreak_counter(self):
        """A cleared channel must reproduce a fresh channel's internal
        delivery schedule exactly — including the heap tiebreak values,
        which participate in ordering whenever two packets share a
        delivery frame (reordering faults, duplicates)."""
        ch = Channel("c")
        for i in range(5):
            ch.send(Packet("k", i, i))
        ch.poll(10_000)
        ch.clear()
        fresh = Channel("c")
        for channel in (ch, fresh):
            for i in range(3):
                channel.send(Packet("k", 0, i))  # same frame: tiebreak decides
        assert ch._heap == fresh._heap  # exact (frame, tiebreak, packet) tuples
        assert ch.stats.sent == fresh.stats.sent == 3

    def test_clear_resets_stats_heap_and_transforms(self):
        class Counting(ChannelTransform):
            def __init__(self):
                self.seen = 0

            def on_send(self, packet, deliver_frame):
                self.seen += 1
                return [(packet, deliver_frame)]

            def reset(self):
                self.seen = 0

        counting = Counting()
        ch = Channel("c")
        ch.add_transform(counting)
        for i in range(4):
            ch.send(Packet("k", i, i))
        assert ch.pending() == 4 and counting.seen == 4
        ch.clear()
        assert ch.pending() == 0
        assert counting.seen == 0
        assert (ch.stats.sent, ch.stats.delivered, ch.stats.dropped) == (0, 0, 0)


class TestDuplicationDropChains:
    def test_duplicate_then_drop_accounts_each_instance(self):
        """Drop sits downstream of duplication: each duplicate passes the
        drop filter independently, so both copies of an even payload
        count as drops."""
        ch = Channel("c")
        ch.add_transform(_Duplicate(extra=2))
        ch.add_transform(_DropEven())
        for i in range(6):
            ch.send(Packet("k", i, i))
        delivered = [p.payload for p in ch.poll(10_000)]
        assert sorted(delivered) == [1, 1, 3, 3, 5, 5]
        assert ch.stats.sent == 6
        assert ch.stats.dropped == 6  # both copies of payloads 0, 2, 4
        assert ch.stats.delivered == 6
        assert ch.stats.delayed == 3  # the +2 copy of each surviving payload

    def test_drop_then_duplicate_accounts_originals_only(self):
        """Swapping the chain changes the accounting: evens are dropped
        before duplication ever sees them."""
        ch = Channel("c")
        ch.add_transform(_DropEven())
        ch.add_transform(_Duplicate(extra=2))
        for i in range(6):
            ch.send(Packet("k", i, i))
        delivered = [p.payload for p in ch.poll(10_000)]
        assert sorted(delivered) == [1, 1, 3, 3, 5, 5]
        assert ch.stats.sent == 6
        assert ch.stats.dropped == 3  # one drop per even original
        assert ch.stats.delivered == 6
        assert ch.stats.delayed == 3

    def test_duplicates_same_frame_deliver_in_insertion_order(self):
        ch = Channel("c")
        ch.add_transform(_Duplicate(extra=0))  # copy lands on the same frame
        for i in range(3):
            ch.send(Packet("k", 0, i))
        assert [p.payload for p in ch.poll(0)] == [0, 0, 1, 1, 2, 2]


class TestDecoupledClockDelivery:
    """Client and server tick clocks are independently steppable (the
    jitter seam on :class:`repro.sim.server.SimulationServer`); the
    channel layer must keep exact accounting whatever skew the client
    clock runs at."""

    @given(send_schedule(), st.integers(-3, 3), st.integers(0, 4))
    @settings(max_examples=40)
    def test_conservation_under_skewed_polling(self, schedule, skew, latency):
        ch = Channel("sensor")
        ch.add_transform(FixedLatency(latency))
        got = []
        for frame, payload in schedule:
            ch.send(Packet("k", frame, payload))
            got.extend(p.payload for p in ch.poll(frame + skew))
        got.extend(p.payload for p in ch.poll(10_000))  # drain the tail
        assert sorted(got) == [p for _, p in schedule]
        assert ch.stats.delivered == ch.stats.sent == len(schedule)
        assert ch.stats.dropped == 0

    def test_lagging_clock_defers_but_never_loses(self):
        """A client clock running ``skew`` frames behind the server sees
        every packet ``skew`` polls late, in unchanged order."""
        ch = Channel("sensor")
        arrival = {}
        for frame in range(10):
            ch.send(Packet("k", frame, frame))
            for p in ch.poll(frame - 2):  # client two frames behind
                arrival[p.payload] = frame
        for p in ch.poll(10_000):
            arrival[p.payload] = 12
        assert list(arrival) == sorted(arrival)  # order preserved
        assert all(arrival[p] >= p + 2 for p in range(10))
        assert ch.stats.delivered == 10

    def test_leading_clock_is_lockstep_plus_nothing(self):
        """A clock running ahead cannot deliver packets that do not exist
        yet: same-frame sends still arrive exactly once."""
        ch = Channel("sensor")
        seen = []
        for frame in range(8):
            ch.send(Packet("k", frame, frame))
            seen.extend(p.payload for p in ch.poll(frame + 3))
        assert seen == list(range(8))
        assert ch.stats.delivered == ch.stats.sent == 8
