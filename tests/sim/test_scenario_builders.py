"""Unit tests for :mod:`repro.sim.scenario` and :mod:`repro.sim.builders`."""

import numpy as np
import pytest

from repro.sim.builders import SimulationBuilder
from repro.sim.geometry import Transform, Vec2
from repro.sim.render import CameraModel
from repro.sim.scenario import Mission, Scenario, generate_missions, make_scenarios
from repro.sim.town import GridTownConfig, build_grid_town


@pytest.fixture(scope="module")
def town():
    return build_grid_town(GridTownConfig(rows=3, cols=3))


class TestMission:
    def test_validation(self):
        with pytest.raises(ValueError):
            Mission(Transform(Vec2(0, 0), 0.0), Vec2(1, 1), time_limit_s=0.0)
        with pytest.raises(ValueError):
            Mission(Transform(Vec2(0, 0), 0.0), Vec2(1, 1), time_limit_s=10.0, success_radius=0)

    def test_straight_line_distance(self):
        m = Mission(Transform(Vec2(0, 0), 0.0), Vec2(3, 4), time_limit_s=10.0)
        assert m.straight_line_distance() == pytest.approx(5.0)


class TestGenerateMissions:
    def test_respects_distance_band(self, town):
        rng = np.random.default_rng(0)
        missions = generate_missions(town, 10, rng, min_distance=80, max_distance=200)
        for m in missions:
            manhattan = abs(m.start.position.x - m.goal.x) + abs(m.start.position.y - m.goal.y)
            assert 80 <= manhattan <= 200

    def test_deterministic_per_seed(self, town):
        a = generate_missions(town, 5, np.random.default_rng(7))
        b = generate_missions(town, 5, np.random.default_rng(7))
        assert [m.goal for m in a] == [m.goal for m in b]

    def test_invalid_band_rejected(self, town):
        with pytest.raises(ValueError):
            generate_missions(town, 1, np.random.default_rng(0), 200, 100)

    def test_impossible_band_raises(self, town):
        with pytest.raises(RuntimeError):
            generate_missions(
                town, 3, np.random.default_rng(0), min_distance=5000, max_distance=6000
            )

    def test_route_length_fn_sets_time_limits(self, town):
        def fake_route_length(start, goal):
            return 500.0

        missions = generate_missions(
            town, 3, np.random.default_rng(1), route_length_fn=fake_route_length
        )
        # Time limit from the 500 m "route": 500/5*1.8 + 15
        for m in missions:
            assert m.time_limit_s == pytest.approx(500.0 / 5.0 * 1.8 + 15.0)

    def test_route_length_fn_can_reject(self, town):
        calls = {"n": 0}

        def reject_every_other(start, goal):
            calls["n"] += 1
            return None if calls["n"] % 2 else 150.0

        missions = generate_missions(
            town, 4, np.random.default_rng(2), route_length_fn=reject_every_other
        )
        assert len(missions) == 4


class TestMakeScenarios:
    def test_reproducible_suite(self):
        a = make_scenarios(4, seed=3)
        b = make_scenarios(4, seed=3)
        assert [s.mission.goal for s in a] == [s.mission.goal for s in b]
        assert [s.seed for s in a] == [s.seed for s in b]

    def test_distinct_seeds_per_scenario(self):
        suite = make_scenarios(5, seed=1)
        assert len({s.seed for s in suite}) == 5

    def test_with_seed_copy(self):
        scn = make_scenarios(1, seed=0)[0]
        copy = scn.with_seed(99)
        assert copy.seed == 99
        assert copy.mission == scn.mission


class TestSimulationBuilder:
    def test_town_cached(self):
        builder = SimulationBuilder()
        cfg = GridTownConfig(rows=2, cols=3)
        assert builder.town_for(cfg) is builder.town_for(cfg)

    def test_renderer_cached(self):
        builder = SimulationBuilder()
        cfg = GridTownConfig(rows=2, cols=3)
        assert builder.renderer_for(cfg) is builder.renderer_for(cfg)

    def test_distinct_configs_distinct_towns(self):
        builder = SimulationBuilder()
        t1 = builder.town_for(GridTownConfig(rows=2, cols=3))
        t2 = builder.town_for(GridTownConfig(rows=3, cols=3))
        assert t1 is not t2

    def test_build_episode_spawns_everything(self):
        builder = SimulationBuilder(camera=CameraModel(width=32, height=24))
        scn = make_scenarios(1, seed=5, town_config=GridTownConfig(rows=2, cols=3),
                             n_npc_vehicles=2, n_pedestrians=2)[0]
        handles = builder.build_episode(scn)
        assert handles.world.ego is not None
        roles = [a.role for a in handles.world.actors]
        assert roles.count("npc_vehicle") <= 2
        bundle = handles.sensors.read_frame(
            handles.world, handles.world.ego, 0, handles.world.rng
        )
        assert bundle.image.shape == (24, 32, 3)

    def test_fresh_world_each_episode(self):
        builder = SimulationBuilder()
        scn = make_scenarios(1, seed=5, town_config=GridTownConfig(rows=2, cols=3))[0]
        w1 = builder.build_episode(scn).world
        w2 = builder.build_episode(scn).world
        assert w1 is not w2
        assert w1.town is w2.town  # but the town is shared

    def test_lidar_optional(self):
        scn = make_scenarios(1, seed=5, town_config=GridTownConfig(rows=2, cols=3))[0]
        without = SimulationBuilder(with_lidar=False).build_episode(scn)
        assert without.sensors.lidar is None
        with_l = SimulationBuilder(with_lidar=True).build_episode(scn)
        assert with_l.sensors.lidar is not None

    def test_episode_seeding_reproducible(self):
        builder = SimulationBuilder()
        scn = make_scenarios(
            1, seed=5, town_config=GridTownConfig(rows=2, cols=3), n_npc_vehicles=3
        )[0]
        w1 = builder.build_episode(scn).world
        w2 = builder.build_episode(scn).world
        pos1 = [(a.position.x, a.position.y) for a in w1.actors]
        pos2 = [(a.position.x, a.position.y) for a in w2.actors]
        assert pos1 == pos2


class TestSceneCache:
    def test_process_cache_shared_across_builders(self):
        from repro.sim.builders import SimulationBuilder, process_scene_cache

        cfg = GridTownConfig(rows=2, cols=3)
        a = SimulationBuilder()
        b = SimulationBuilder()
        assert a.scene_cache is b.scene_cache is process_scene_cache()
        assert a.town_for(cfg) is b.town_for(cfg)
        assert a.renderer_for(cfg) is b.renderer_for(cfg)

    def test_private_cache_isolates(self):
        from repro.sim.builders import SceneCache, SimulationBuilder

        cfg = GridTownConfig(rows=2, cols=3)
        private = SceneCache()
        a = SimulationBuilder(scene_cache=private)
        b = SimulationBuilder()
        assert a.town_for(cfg) is not b.town_for(cfg)
        assert a.town_for(cfg) is a.town_for(cfg)

    def test_camera_config_keys_renderers_separately(self):
        from repro.sim.builders import SceneCache, SimulationBuilder
        from repro.sim.render import CameraModel

        cfg = GridTownConfig(rows=2, cols=3)
        cache = SceneCache()
        small = SimulationBuilder(
            camera=CameraModel(width=24, height=16), scene_cache=cache
        )
        big = SimulationBuilder(
            camera=CameraModel(width=48, height=32), scene_cache=cache
        )
        assert small.renderer_for(cfg) is not big.renderer_for(cfg)
        # One town serves both renderers.
        assert small.town_for(cfg) is big.town_for(cfg)

    def test_lru_eviction_bounded(self):
        from repro.sim.builders import SceneCache

        cache = SceneCache(max_entries=2)
        configs = [GridTownConfig(rows=2, cols=c) for c in (3, 4, 5)]
        towns = [cache.town(c) for c in configs]
        stats = cache.stats()
        assert stats["towns"] == 2
        assert stats["misses"] == 3
        # Oldest evicted: rebuilding it is a miss producing a new object.
        assert cache.town(configs[0]) is not towns[0]

    def test_pickled_builder_drops_cache_but_rebuilds_equal_scenes(self):
        import pickle

        from repro.sim.builders import SceneCache, SimulationBuilder

        cfg = GridTownConfig(rows=2, cols=3)
        builder = SimulationBuilder(scene_cache=SceneCache())
        town = builder.town_for(cfg)
        clone = pickle.loads(pickle.dumps(builder))
        # The clone re-derives scene state (here: via the process cache).
        rebuilt = clone.town_for(cfg)
        assert rebuilt is not town
        assert rebuilt.name == town.name
        assert len(rebuilt.buildings) == len(town.buildings)

    def test_builder_pickle_stays_small_when_warm(self):
        import pickle

        from repro.sim.builders import SimulationBuilder

        builder = SimulationBuilder()
        builder.renderer_for(GridTownConfig(rows=2, cols=3))  # warm the cache
        # Rasterised textures are megabytes; the builder must not ship them.
        assert len(pickle.dumps(builder)) < 10_000
