"""Unit tests for :mod:`repro.sim.town`."""

import math

import numpy as np
import pytest

from repro.sim.geometry import Vec2
from repro.sim.town import (
    GridTownConfig,
    LaneRef,
    SurfaceType,
    build_grid_town,
)


@pytest.fixture(scope="module")
def town():
    return build_grid_town(GridTownConfig(rows=3, cols=3, block_size=80.0))


class TestGridTownConfig:
    def test_rejects_tiny_grid(self):
        with pytest.raises(ValueError):
            GridTownConfig(rows=1, cols=3)

    def test_rejects_single_block_town(self):
        # One block has a disconnected U-turn-free lane graph.
        with pytest.raises(ValueError, match="2x3"):
            GridTownConfig(rows=2, cols=2)

    def test_rejects_tiny_blocks(self):
        with pytest.raises(ValueError):
            GridTownConfig(block_size=10.0, lane_width=3.5)

    def test_config_hashable_for_caching(self):
        assert hash(GridTownConfig()) == hash(GridTownConfig())


class TestTopology:
    def test_counts(self, town):
        # 3x3 grid: 9 intersections, 2*3*2 = 12 roads, 24 lanes.
        assert len(town.intersections) == 9
        assert len(town.roads) == 12
        assert len(town.lanes) == 24

    def test_every_road_registered_at_both_ends(self, town):
        for road in town.roads.values():
            assert road.id in town.intersections[road.a].road_ids
            assert road.id in town.intersections[road.b].road_ids

    def test_corner_intersections_have_two_roads(self, town):
        corners = [0, 2, 6, 8]
        for c in corners:
            assert len(town.intersections[c].road_ids) == 2

    def test_center_intersection_has_four_roads(self, town):
        assert len(town.intersections[4].road_ids) == 4

    def test_other_end(self, town):
        road = town.roads[0]
        assert road.other_end(road.a) == road.b
        assert road.other_end(road.b) == road.a
        with pytest.raises(ValueError):
            road.other_end(9999)

    def test_route_edges_cover_all_lanes(self, town):
        edges = town.route_edges()
        assert len(edges) == len(town.lanes)
        refs = {e.lane_ref for e in edges}
        assert refs == set(town.lanes)

    def test_lane_endpoints_consistent(self, town):
        for lane in town.lanes.values():
            assert lane.start_intersection != lane.end_intersection
            road = lane.road
            assert lane.start_intersection in (road.a, road.b)


class TestLaneGeometry:
    def test_lanes_offset_right_of_travel(self, town):
        # For an eastbound lane the centreline must sit south of the road
        # centreline (right-hand traffic).
        road = next(r for r in town.roads.values() if abs(r.heading) < 1e-6)
        east = road.lane(+1)
        mid = east.centerline.point_at(east.length / 2)
        road_mid = road.centerline.point_at(road.length / 2)
        assert mid.y < road_mid.y

    def test_opposite_lanes_run_opposite_directions(self, town):
        road = town.roads[0]
        h1 = road.lane(+1).centerline.heading_at(1.0)
        h2 = road.lane(-1).centerline.heading_at(1.0)
        assert abs(abs(h1 - h2) - math.pi) < 1e-6

    def test_waypoint_next_advances(self, town):
        lane = town.roads[0].lane(+1)
        wp = lane.waypoint_at(0.0)
        wp2 = wp.next(5.0)
        assert wp2.station == pytest.approx(5.0)
        assert wp2.position.distance_to(wp.position) == pytest.approx(5.0, rel=1e-3)

    def test_waypoint_clamps_at_end(self, town):
        lane = town.roads[0].lane(+1)
        wp = lane.waypoint_at(1e9)
        assert wp.station == pytest.approx(lane.length)

    def test_lane_locate_on_centerline(self, town):
        lane = town.roads[0].lane(+1)
        p = lane.centerline.point_at(10.0)
        s, lat = lane.locate(p)
        assert s == pytest.approx(10.0, abs=0.2)
        assert lat == pytest.approx(0.0, abs=1e-6)


class TestQueries:
    def test_nearest_lane_matches_direction_hint(self, town):
        road = next(r for r in town.roads.values() if abs(r.heading) < 1e-6)
        center = road.centerline.point_at(road.length / 2)
        east, _, _ = town.nearest_lane(center, yaw_hint=0.0)
        west, _, _ = town.nearest_lane(center, yaw_hint=math.pi)
        assert east.ref.direction != west.ref.direction

    def test_classify_road_point(self, town):
        lane = town.roads[0].lane(+1)
        p = lane.centerline.point_at(5.0)
        cls = town.classify_points(np.array([[p.x, p.y]]))[0]
        assert cls == SurfaceType.ROAD

    def test_classify_offroad_point(self, town):
        xmin, ymin, _, _ = town.bounds
        cls = town.classify_points(np.array([[xmin - 50.0, ymin - 50.0]]))[0]
        assert cls == SurfaceType.OFFROAD

    def test_classify_curb_band(self, town):
        road = next(r for r in town.roads.values() if abs(r.heading) < 1e-6)
        mid = road.centerline.point_at(road.length / 2)
        curb_point = Vec2(mid.x, mid.y + road.half_width + town.sidewalk_width / 2)
        cls = town.classify_points(np.array([[curb_point.x, curb_point.y]]))[0]
        assert cls == SurfaceType.CURB

    def test_classify_intersection_core_is_road(self, town):
        inter = town.intersections[4]
        cls = town.classify_points(np.array([[inter.center.x, inter.center.y]]))[0]
        assert cls == SurfaceType.ROAD

    def test_is_on_road(self, town):
        inter = town.intersections[4]
        assert town.is_on_road(inter.center)
        assert not town.is_on_road(Vec2(-100.0, -100.0))

    def test_locate_reports_lateral_sign(self, town):
        road = next(r for r in town.roads.values() if abs(r.heading) < 1e-6)
        lane = road.lane(+1)
        base = lane.centerline.point_at(10.0)
        left = Vec2(base.x, base.y + 0.5)
        loc = town.locate(left, yaw_hint=0.0)
        assert loc.lateral == pytest.approx(0.5, abs=0.05)
        assert not loc.off_lane

    def test_off_lane_flag(self, town):
        road = next(r for r in town.roads.values() if abs(r.heading) < 1e-6)
        lane = road.lane(+1)
        base = lane.centerline.point_at(10.0)
        far = Vec2(base.x, base.y + lane.width)
        loc = town.locate(far, yaw_hint=0.0)
        assert loc.off_lane

    def test_classify_batch_shapes(self, town):
        pts = np.random.default_rng(0).uniform(-20, 180, size=(500, 2))
        out = town.classify_points(pts)
        assert out.shape == (500,)
        assert set(np.unique(out)) <= {0, 1, 2}


class TestConnectors:
    def test_connection_curve_endpoints(self, town):
        inter = town.intersections[4]
        roads = [town.roads[r] for r in inter.road_ids]
        incoming = roads[0].lane(+1 if roads[0].b == 4 else -1)
        outgoing = roads[1].lane(+1 if roads[1].a == 4 else -1)
        curve = town.connection_curve(incoming, outgoing)
        assert curve.points[0].distance_to(
            incoming.centerline.point_at(incoming.length)
        ) < 1e-6
        assert curve.points[-1].distance_to(outgoing.centerline.point_at(0.0)) < 1e-6

    def test_connector_stays_inside_junction(self, town):
        inter = town.intersections[4]
        margin = inter.half_size + 0.5
        roads = [town.roads[r] for r in inter.road_ids]
        for rin in roads:
            lane_in = rin.lane(+1 if rin.b == 4 else -1)
            for rout in roads:
                if rout.id == rin.id:
                    continue
                lane_out = rout.lane(+1 if rout.a == 4 else -1)
                curve = town.connection_curve(lane_in, lane_out)
                for p in curve.points:
                    assert abs(p.x - inter.center.x) <= margin
                    assert abs(p.y - inter.center.y) <= margin

    def test_turn_direction_classification(self, town):
        inter = town.intersections[4]
        # Find eastbound incoming and northbound outgoing: a left turn.
        incoming = outgoing_s = outgoing_l = outgoing_r = None
        for rid in inter.road_ids:
            road = town.roads[rid]
            for direction in (+1, -1):
                lane = road.lane(direction)
                if lane.end_intersection == 4:
                    h = lane.centerline.heading_at(lane.length)
                    if abs(h) < 0.01:
                        incoming = lane
                if lane.start_intersection == 4:
                    h = lane.centerline.heading_at(0.0)
                    if abs(h) < 0.01:
                        outgoing_s = lane
                    elif abs(h - math.pi / 2) < 0.01:
                        outgoing_l = lane
                    elif abs(h + math.pi / 2) < 0.01:
                        outgoing_r = lane
        assert incoming is not None
        assert town.turn_direction(incoming, outgoing_s) == "STRAIGHT"
        assert town.turn_direction(incoming, outgoing_l) == "LEFT"
        assert town.turn_direction(incoming, outgoing_r) == "RIGHT"


class TestSpawnsAndMarkings:
    def test_spawn_points_on_road(self, town):
        spawns = town.spawn_points()
        assert len(spawns) > 50
        pts = np.array([[wp.position.x, wp.position.y] for wp in spawns])
        classes = town.classify_points(pts)
        assert np.all(classes == SurfaceType.ROAD)

    def test_spawn_points_respect_margin(self, town):
        for wp in town.spawn_points(margin=8.0):
            assert 8.0 - 1e-6 <= wp.station <= wp.lane.length - 8.0 + 1e-6

    def test_markings_cover_all_roads(self, town):
        stripes = town.markings()
        # one centre line + two edge lines per road
        assert len(stripes) == 3 * len(town.roads)

    def test_buildings_present_and_off_road(self, town):
        assert town.buildings, "grid town should place block buildings"
        for b in town.buildings:
            cls = town.classify_points(
                np.array([[b.box.center.x, b.box.center.y]])
            )[0]
            assert cls == SurfaceType.OFFROAD

    def test_building_free_town(self):
        t = build_grid_town(GridTownConfig(rows=2, cols=3, with_buildings=False))
        assert t.buildings == []

    def test_iter_lanes_stable_order(self, town):
        refs = [lane.ref for lane in town.iter_lanes()]
        assert refs == sorted(refs)
        assert len(refs) == len(town.lanes)
