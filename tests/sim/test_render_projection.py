"""Golden-value tests for the camera projection math.

The renderer's forward projection (billboards) and inverse projection
(ground pass) must be exact inverses; these tests pin the geometry with
hand-computed cases so a regression in either pass cannot hide behind the
other.
"""

import math

import numpy as np
import pytest

from repro.sim.geometry import Transform, Vec2
from repro.sim.render import CameraModel, Renderer
from repro.sim.town import GridTownConfig, build_grid_town


@pytest.fixture(scope="module")
def renderer():
    town = build_grid_town(GridTownConfig(rows=2, cols=3, with_buildings=False))
    cam = CameraModel(width=64, height=48, fov_deg=90.0, mount_height=1.5,
                      pitch_deg=0.0, forward_offset=0.0)
    return Renderer(town, cam)


class TestForwardProjection:
    def test_point_on_axis_projects_to_center_column(self, renderer):
        u, v, depth = renderer._project(np.array([[10.0, 0.0, 1.5]]))
        cam = renderer.camera
        assert u[0] == pytest.approx((cam.width - 1) / 2.0)
        assert v[0] == pytest.approx((cam.height - 1) / 2.0)
        assert depth[0] == pytest.approx(10.0)

    def test_point_left_projects_left_of_center(self, renderer):
        # +y is left in the vehicle frame; image columns run right, so a
        # left-side point lands at a smaller column index.
        u, v, _ = renderer._project(np.array([[10.0, 3.0, 1.5]]))
        assert u[0] < (renderer.camera.width - 1) / 2.0

    def test_ground_point_projects_below_center(self, renderer):
        u, v, _ = renderer._project(np.array([[10.0, 0.0, 0.0]]))
        assert v[0] > (renderer.camera.height - 1) / 2.0

    def test_pinhole_row_formula(self, renderer):
        # v = cy + f * h / d for a ground point straight ahead, pitch 0.
        cam = renderer.camera
        d = 12.0
        u, v, _ = renderer._project(np.array([[d, 0.0, 0.0]]))
        expected = (cam.height - 1) / 2.0 + cam.focal_px * cam.mount_height / d
        assert v[0] == pytest.approx(expected, rel=1e-9)

    def test_behind_camera_negative_depth(self, renderer):
        _, _, depth = renderer._project(np.array([[-5.0, 0.0, 1.5]]))
        assert depth[0] < 0


class TestInverseConsistency:
    def test_ground_rays_roundtrip_through_projection(self, renderer):
        """Project the precomputed ground points back: pixel identity."""
        cam = renderer.camera
        mask = renderer._ground_mask
        rows, cols = np.where(mask)
        # Sample a handful of pixels across the image.
        idx = np.linspace(0, len(rows) - 1, 25).astype(int)
        for r, c in zip(rows[idx], cols[idx]):
            gx, gy = renderer._ground_local[r, c]
            u, v, depth = renderer._project(np.array([[gx, gy, 0.0]]))
            assert depth[0] > 0
            assert u[0] == pytest.approx(c, abs=0.01)
            assert v[0] == pytest.approx(r, abs=0.01)

    def test_ground_depth_increases_toward_horizon(self, renderer):
        mask = renderer._ground_mask
        depth = renderer._ground_depth
        center_col = renderer.camera.width // 2
        column_rows = np.where(mask[:, center_col])[0]
        depths = depth[column_rows, center_col]
        # Rows are ordered top to bottom: nearer rows (bottom) = smaller depth.
        assert np.all(np.diff(depths) < 0)


class TestPitchedCamera:
    def test_horizon_rises_when_pitched_down(self):
        town = build_grid_town(GridTownConfig(rows=2, cols=3, with_buildings=False))
        flat = Renderer(town, CameraModel(width=64, height=48, pitch_deg=0.0))
        pitched = Renderer(town, CameraModel(width=64, height=48, pitch_deg=-10.0))
        # The ground mask (pixels that hit ground) extends higher up the
        # image when the camera looks down.
        flat_top = np.where(flat._ground_mask.any(axis=1))[0].min()
        pitched_top = np.where(pitched._ground_mask.any(axis=1))[0].min()
        assert pitched_top < flat_top

    def test_render_matches_world_yaw(self):
        """Rotating the ego rotates the scene: a building ahead moves."""
        town = build_grid_town(GridTownConfig(rows=2, cols=3))
        renderer = Renderer(town, CameraModel(width=64, height=48))
        wp = town.spawn_points()[0]
        pose_a = Transform(wp.position, wp.yaw)
        pose_b = Transform(wp.position, wp.yaw + math.pi / 2)
        img_a = renderer.render(pose_a, [])
        img_b = renderer.render(pose_b, [])
        assert not np.array_equal(img_a, img_b)
