"""Unit tests for :mod:`repro.sim.violations`."""

import math

import pytest

from repro.sim.actors import Pedestrian, Vehicle
from repro.sim.geometry import Transform, Vec2
from repro.sim.town import GridTownConfig, build_grid_town
from repro.sim.violations import (
    ACCIDENT_TYPES,
    ViolationEvent,
    ViolationMonitor,
    ViolationType,
)
from repro.sim.world import World


@pytest.fixture(scope="module")
def town():
    return build_grid_town(GridTownConfig(rows=2, cols=3))


@pytest.fixture
def world(town):
    return World(town, seed=0)


def _lane_pose(town, station=20.0, lateral=0.0):
    lane = town.roads[0].lane(+1)
    base = lane.centerline.point_at(station)
    heading = lane.centerline.heading_at(station)
    normal = Vec2.from_heading(heading + math.pi / 2.0)
    return Transform(base + normal * lateral, heading)


class TestEventModel:
    def test_accident_classification(self):
        e = ViolationEvent(ViolationType.COLLISION_PEDESTRIAN, 0, (0, 0))
        assert e.is_accident
        e2 = ViolationEvent(ViolationType.LANE, 0, (0, 0))
        assert not e2.is_accident

    def test_accident_types_cover_all_collisions(self):
        collisions = {t for t in ViolationType if t.value.startswith("collision")}
        assert collisions == set(ACCIDENT_TYPES)


class TestLaneViolations:
    def test_centered_vehicle_clean(self, town, world):
        ego = world.spawn_ego(_lane_pose(town, lateral=0.0))
        mon = ViolationMonitor()
        for _ in range(20):
            world.tick()
            mon.step(world, ego, world.frame)
        assert mon.events == []

    def test_off_lane_starts_one_event(self, town, world):
        # 2.5 m left of the lane centre: over the centre line, still on road.
        ego = world.spawn_ego(_lane_pose(town, lateral=2.5))
        mon = ViolationMonitor()
        for _ in range(30):
            world.tick()
            mon.step(world, ego, world.frame)
        lane_events = [e for e in mon.events if e.type == ViolationType.LANE]
        assert len(lane_events) == 1, "continuous condition must be one event"

    def test_event_closes_when_back_in_lane(self, town, world):
        ego = world.spawn_ego(_lane_pose(town, lateral=2.5))
        mon = ViolationMonitor(clear_frames=3)
        for _ in range(5):
            world.tick()
            mon.step(world, ego, world.frame)
        ego.teleport(_lane_pose(town, lateral=0.0))
        for _ in range(10):
            world.tick()
            mon.step(world, ego, world.frame)
        event = next(e for e in mon.events if e.type == ViolationType.LANE)
        assert event.end_frame is not None

    def test_debounce_requires_clear_frames(self, town, world):
        ego = world.spawn_ego(_lane_pose(town, lateral=2.5))
        mon = ViolationMonitor(clear_frames=8)
        world.tick()
        mon.step(world, ego, world.frame)
        # Briefly back in lane for fewer than clear_frames...
        ego.teleport(_lane_pose(town, station=21.0, lateral=0.0))
        for _ in range(3):
            world.tick()
            mon.step(world, ego, world.frame)
        # ...then out again: still the same event.
        ego.teleport(_lane_pose(town, station=22.0, lateral=2.5))
        for _ in range(3):
            world.tick()
            mon.step(world, ego, world.frame)
        assert mon.count(ViolationType.LANE) == 1


class TestCurbViolations:
    def test_on_sidewalk(self, town, world):
        road = town.roads[0]
        off = road.half_width + town.sidewalk_width / 2.0
        ego = world.spawn_ego(_lane_pose(town, lateral=off + road.lane_width / 2.0))
        mon = ViolationMonitor()
        world.tick()
        events = mon.step(world, ego, world.frame)
        assert any(e.type == ViolationType.CURB for e in events)

    def test_inside_intersection_not_lane_violation(self, town, world):
        inter = town.intersections[0]
        ego = world.spawn_ego(Transform(inter.center, 0.0))
        mon = ViolationMonitor()
        for _ in range(10):
            world.tick()
            mon.step(world, ego, world.frame)
        assert mon.count(ViolationType.LANE) == 0
        assert mon.count(ViolationType.CURB) == 0


class TestCollisions:
    def test_vehicle_collision_once_per_contact(self, town, world):
        ego = world.spawn_ego(_lane_pose(town, station=20.0))
        other_pose = _lane_pose(town, station=23.0)
        world.add_actor(Vehicle(other_pose))
        mon = ViolationMonitor()
        for _ in range(10):
            world.tick()
            mon.step(world, ego, world.frame)
        assert mon.count(ViolationType.COLLISION_VEHICLE) == 1

    def test_pedestrian_collision_classified(self, town, world):
        ego = world.spawn_ego(_lane_pose(town, station=20.0))
        ped_pose = _lane_pose(town, station=21.5)
        world.add_actor(Pedestrian(ped_pose, town))
        mon = ViolationMonitor()
        world.tick()
        events = mon.step(world, ego, world.frame)
        assert any(e.type == ViolationType.COLLISION_PEDESTRIAN for e in events)

    def test_two_distinct_contacts_two_events(self, town, world):
        ego = world.spawn_ego(_lane_pose(town, station=20.0))
        world.add_actor(Vehicle(_lane_pose(town, station=23.0)))
        world.add_actor(Vehicle(_lane_pose(town, station=17.0)))
        mon = ViolationMonitor()
        world.tick()
        mon.step(world, ego, world.frame)
        assert mon.count(ViolationType.COLLISION_VEHICLE) == 2

    def test_building_collision_static(self, town, world):
        building = town.buildings[0]
        ego = world.spawn_ego(Transform(building.box.center, 0.0))
        mon = ViolationMonitor()
        world.tick()
        events = mon.step(world, ego, world.frame)
        assert any(e.type == ViolationType.COLLISION_STATIC for e in events)

    def test_contact_separation_closes_event(self, town, world):
        ego = world.spawn_ego(_lane_pose(town, station=20.0))
        other = Vehicle(_lane_pose(town, station=23.0))
        world.add_actor(other)
        mon = ViolationMonitor()
        world.tick()
        mon.step(world, ego, world.frame)
        other.teleport(_lane_pose(town, station=60.0))
        world.tick()
        mon.step(world, ego, world.frame)
        event = mon.events[0]
        assert event.end_frame is not None

    def test_recontact_counts_again(self, town, world):
        ego = world.spawn_ego(_lane_pose(town, station=20.0))
        other = Vehicle(_lane_pose(town, station=23.0))
        world.add_actor(other)
        mon = ViolationMonitor()
        world.tick()
        mon.step(world, ego, world.frame)
        other.teleport(_lane_pose(town, station=60.0))
        world.tick()
        mon.step(world, ego, world.frame)
        other.teleport(_lane_pose(town, station=23.0))
        world.tick()
        mon.step(world, ego, world.frame)
        assert mon.count(ViolationType.COLLISION_VEHICLE) == 2


class TestMonitorLifecycle:
    def test_reset_clears_state(self, town, world):
        ego = world.spawn_ego(_lane_pose(town, lateral=2.5))
        mon = ViolationMonitor()
        world.tick()
        mon.step(world, ego, world.frame)
        assert mon.events
        mon.reset()
        assert mon.events == []
        world.tick()
        assert len(mon.step(world, ego, world.frame)) == 1  # detects afresh

    def test_accidents_listing(self, town, world):
        ego = world.spawn_ego(_lane_pose(town, station=20.0, lateral=2.5))
        world.add_actor(Vehicle(_lane_pose(town, station=23.0, lateral=2.5)))
        mon = ViolationMonitor()
        world.tick()
        mon.step(world, ego, world.frame)
        accidents = mon.accidents()
        assert len(accidents) == 1
        assert accidents[0].type == ViolationType.COLLISION_VEHICLE
        assert mon.count() >= 2  # lane violation + collision
