"""Unit tests for :mod:`repro.sim.physics`."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.geometry import Transform, Vec2
from repro.sim.physics import BicycleModel, VehicleControl, VehicleSpec, VehicleState

DT = 1.0 / 15.0


@pytest.fixture
def model():
    return BicycleModel()


def drive(model, state, control, seconds):
    for _ in range(int(seconds / DT)):
        state = model.step(state, control, DT)
    return state


class TestControlSanitisation:
    def test_clamps_out_of_range(self):
        c = VehicleControl(steer=3.0, throttle=-1.0, brake=7.0).clamped()
        assert c.steer == 1.0
        assert c.throttle == 0.0
        assert c.brake == 1.0

    def test_non_finite_degrades_to_neutral(self):
        c = VehicleControl(steer=float("nan"), throttle=float("inf"), brake=float("nan")).clamped()
        assert c.steer == 0.0
        assert c.throttle == 0.0  # non-finite (incl. inf) -> neutral
        assert c.brake == 0.0

    def test_neg_inf_throttle(self):
        assert VehicleControl(throttle=float("-inf")).clamped().throttle == 0.0

    def test_preserves_flags(self):
        c = VehicleControl(reverse=True, hand_brake=True).clamped()
        assert c.reverse and c.hand_brake


class TestLongitudinal:
    def test_accelerates_from_rest(self, model):
        s = drive(model, VehicleState(0, 0, 0), VehicleControl(throttle=1.0), 3.0)
        assert s.speed > 5.0
        assert s.x > 5.0

    def test_braking_stops_without_reversing(self, model):
        s = VehicleState(0, 0, 0, speed=10.0)
        s = drive(model, s, VehicleControl(brake=1.0), 3.0)
        assert s.speed == 0.0

    def test_coasting_decays(self, model):
        s0 = VehicleState(0, 0, 0, speed=10.0)
        s = drive(model, s0, VehicleControl(), 5.0)
        assert 0.0 <= s.speed < 10.0

    def test_speed_capped(self, model):
        s = drive(model, VehicleState(0, 0, 0), VehicleControl(throttle=1.0), 60.0)
        assert s.speed <= model.spec.max_speed + 1e-9

    def test_reverse(self, model):
        s = drive(model, VehicleState(0, 0, 0), VehicleControl(throttle=0.5, reverse=True), 3.0)
        assert s.speed < 0.0
        assert s.x < 0.0
        assert s.speed >= -model.spec.max_reverse_speed

    def test_hand_brake_stops(self, model):
        s = VehicleState(0, 0, 0, speed=8.0)
        s = drive(model, s, VehicleControl(throttle=1.0, hand_brake=True), 3.0)
        assert s.speed == pytest.approx(0.0, abs=0.2)

    def test_brake_holds_at_standstill(self, model):
        s = VehicleState(0, 0, 0, 0.0)
        s = drive(model, s, VehicleControl(throttle=0.3, brake=1.0), 1.0)
        assert s.speed == pytest.approx(0.0, abs=1e-6)

    def test_dt_must_be_positive(self, model):
        with pytest.raises(ValueError):
            model.step(VehicleState(0, 0, 0), VehicleControl(), 0.0)


class TestLateral:
    def test_straight_line_keeps_heading(self, model):
        s = drive(model, VehicleState(0, 0, 0.5, 5.0), VehicleControl(throttle=0.3), 2.0)
        assert s.yaw == pytest.approx(0.5)

    def test_positive_steer_turns_left(self, model):
        s = drive(
            model, VehicleState(0, 0, 0, 5.0), VehicleControl(throttle=0.3, steer=0.5), 1.0
        )
        assert s.yaw > 0.1
        assert s.y > 0.0

    def test_negative_steer_turns_right(self, model):
        s = drive(
            model, VehicleState(0, 0, 0, 5.0), VehicleControl(throttle=0.3, steer=-0.5), 1.0
        )
        assert s.yaw < -0.1
        assert s.y < 0.0

    def test_turn_radius_matches_bicycle_formula(self, model):
        # Hold speed and steer; the turning radius must match L / tan(delta).
        spec = model.spec
        steer = 0.6
        delta = steer * spec.max_steer_angle
        expected_radius = spec.wheelbase / math.tan(delta)
        state = VehicleState(0, 0, 0, 5.0)
        # Run half a circle with constant speed (no throttle/drag: force speed).
        positions = []
        for _ in range(400):
            state = model.step(state, VehicleControl(steer=steer, throttle=0.25), DT)
            state = VehicleState(state.x, state.y, state.yaw, 5.0)
            positions.append((state.x, state.y))
        xs = [p[0] for p in positions]
        ys = [p[1] for p in positions]
        measured_radius = (max(ys) - min(ys)) / 2.0
        assert measured_radius == pytest.approx(expected_radius, rel=0.1)

    def test_no_yaw_change_at_standstill(self, model):
        s = drive(model, VehicleState(0, 0, 0.2, 0.0), VehicleControl(steer=1.0), 1.0)
        assert s.yaw == pytest.approx(0.2)

    @given(
        st.floats(-1, 1),
        st.floats(0, 1),
        st.floats(0, 1),
        st.floats(0, 25),
    )
    @settings(max_examples=60)
    def test_state_always_finite(self, steer, throttle, brake, speed):
        model = BicycleModel()
        s = VehicleState(0, 0, 0, speed)
        for _ in range(20):
            s = model.step(s, VehicleControl(steer, throttle, brake), DT)
        assert math.isfinite(s.x) and math.isfinite(s.y)
        assert math.isfinite(s.yaw) and math.isfinite(s.speed)
        assert -math.pi < s.yaw <= math.pi


class TestCorruptedControls:
    """Fault injection feeds raw bit-flipped floats into the integrator."""

    @pytest.mark.parametrize(
        "control",
        [
            VehicleControl(steer=float("nan")),
            VehicleControl(throttle=float("inf")),
            VehicleControl(brake=float("-inf")),
            VehicleControl(steer=1e30, throttle=-1e30, brake=float("nan")),
        ],
    )
    def test_survives_non_finite_commands(self, model, control):
        s = VehicleState(0, 0, 0, 10.0)
        for _ in range(30):
            s = model.step(s, control, DT)
        assert math.isfinite(s.x) and math.isfinite(s.speed)


class TestHelpers:
    def test_stopping_distance_increases_with_speed(self, model):
        assert model.stopping_distance(20.0) > model.stopping_distance(5.0)
        assert model.stopping_distance(0.0) == pytest.approx(0.0)

    def test_teleport(self, model):
        s = model.teleport(VehicleState(0, 0, 0, 5.0), Transform(Vec2(7, 8), 1.0), speed=2.0)
        assert (s.x, s.y, s.yaw, s.speed) == (7.0, 8.0, 1.0, 2.0)

    def test_state_accessors(self):
        s = VehicleState(1, 2, math.pi / 2, 3.0)
        assert s.position.distance_to(Vec2(1, 2)) < 1e-12
        v = s.velocity()
        assert v.x == pytest.approx(0.0, abs=1e-12)
        assert v.y == pytest.approx(3.0)

    def test_spec_half_extents(self):
        spec = VehicleSpec(length=4.0, width=2.0)
        assert spec.half_extents() == (2.0, 1.0)
