"""Golden-frame regression tests for the sensor hot path.

The vectorised renderer and LIDAR must be *bit-identical* to the scalar
reference implementation they replaced: same RNG draws, same paint order,
same pixels.  These tests render a fixed set of scenes — chosen to cover
every branch of the hot path (billboards, fog, rain streaks including
overlapping ones, night brightness, semantic/depth layers, LIDAR) — and
compare SHA-256 digests of the raw output buffers against baselines
captured from the pre-vectorisation renderer.

Regenerate the baselines (only after an *intentional* visual change) with:

    PYTHONPATH=src python tests/sim/test_golden_frames.py --regen
"""

from __future__ import annotations

import hashlib
import json
import math
from pathlib import Path

import numpy as np
import pytest

from repro.sim.actors import Pedestrian, Vehicle
from repro.sim.geometry import Transform, Vec2
from repro.sim.render import CameraModel, Renderer
from repro.sim.sensors import Lidar2D
from repro.sim.town import GridTownConfig, build_grid_town
from repro.sim.weather import get_preset
from repro.sim.world import World

BASELINE_PATH = Path(__file__).parent / "golden_frames.json"

#: Fixed scene configuration every golden frame derives from.
TOWN_CONFIG = GridTownConfig(rows=3, cols=3)
CAMERA = CameraModel()  # the default 96x64 hood camera


def _digest(arr: np.ndarray) -> str:
    return hashlib.sha256(arr.tobytes()).hexdigest()


def _scene():
    """Deterministic town + ego pose + actor set used by every frame."""
    town = build_grid_town(TOWN_CONFIG)
    wp = town.spawn_points()[0]
    ego_pose = Transform(wp.position, wp.yaw)
    actors = [
        # A car dead ahead, a turned car off to the left, a pedestrian on
        # the right — exercises near/far sorting and oblique billboards.
        Vehicle(Transform(ego_pose.to_world(Vec2(12.0, 0.0)), ego_pose.yaw)),
        Vehicle(
            Transform(
                ego_pose.to_world(Vec2(22.0, 4.0)), ego_pose.yaw + math.pi / 3.0
            )
        ),
        Pedestrian(Transform(ego_pose.to_world(Vec2(8.0, -3.0)), 0.0), town),
    ]
    return town, ego_pose, actors


def compute_frames() -> dict[str, str]:
    """Render every golden scene and return ``{name: sha256}``."""
    town, ego_pose, actors = _scene()
    renderer = Renderer(town, CAMERA)
    out: dict[str, str] = {}

    out["rgb_clear"] = _digest(renderer.render(ego_pose, actors))
    out["rgb_clear_no_actors"] = _digest(renderer.render(ego_pose, []))
    out["rgb_fog"] = _digest(renderer.render(ego_pose, actors, get_preset("FoggyNoon")))
    out["rgb_night"] = _digest(renderer.render(ego_pose, actors, get_preset("Night")))
    # Heavy rain draws ~43 streaks on a 96x64 frame, which reliably
    # includes *overlapping* streaks — the case a naive fancy-indexed
    # rain pass gets wrong (sequential double-darkening vs single write).
    out["rgb_rain"] = _digest(
        renderer.render(
            ego_pose, actors, get_preset("HardRainNoon"), np.random.default_rng(7)
        )
    )
    out["rgb_rain_alt_seed"] = _digest(
        renderer.render(
            ego_pose, actors, get_preset("HardRainNoon"), np.random.default_rng(1234)
        )
    )

    semantic, depth = renderer.render_semantic_depth(ego_pose, actors)
    out["semantic"] = _digest(semantic)
    out["depth"] = _digest(depth)

    # LIDAR sweep over the same scene (buildings + actors in range).
    world = World(town, seed=3)
    world.spawn_ego(Transform(ego_pose.position, ego_pose.yaw))
    for actor in actors:
        world.add_actor(actor)
    lidar = Lidar2D(n_rays=36, fov_deg=180.0, max_range=40.0)
    out["lidar"] = _digest(lidar.read(world, world.ego, np.random.default_rng(0)))
    return out


def load_baselines() -> dict[str, str]:
    return json.loads(BASELINE_PATH.read_text())


@pytest.fixture(scope="module")
def frames() -> dict[str, str]:
    return compute_frames()


@pytest.mark.parametrize(
    "name",
    [
        "rgb_clear",
        "rgb_clear_no_actors",
        "rgb_fog",
        "rgb_night",
        "rgb_rain",
        "rgb_rain_alt_seed",
        "semantic",
        "depth",
        "lidar",
    ],
)
def test_golden_frame_digest(frames, name):
    baselines = load_baselines()
    assert name in baselines, f"no baseline for {name!r}; regenerate with --regen"
    assert frames[name] == baselines[name], (
        f"{name} diverged from the pre-vectorisation renderer; if the "
        "change is intentional, regenerate tests/sim/golden_frames.json "
        "with: PYTHONPATH=src python tests/sim/test_golden_frames.py --regen"
    )


def test_baseline_file_has_no_strays(frames):
    """Every recorded baseline corresponds to a frame we still render."""
    assert set(load_baselines()) == set(frames)


if __name__ == "__main__":
    import sys

    if "--regen" not in sys.argv:
        sys.exit("refusing to overwrite baselines without --regen")
    digests = compute_frames()
    BASELINE_PATH.write_text(json.dumps(digests, indent=1, sort_keys=True) + "\n")
    print(f"wrote {len(digests)} baselines to {BASELINE_PATH}")
