"""Cross-module integration tests: the full AVFI pipeline end to end.

These tests exercise the same wiring the benchmarks use, at miniature
scale: real town, real renderer, real channels, real agents, real fault
models — just short missions and a tiny (untrained or quickly trained)
network where a learned policy is not the point.
"""

import numpy as np
import pytest

from repro.agent import (
    AutopilotAgent,
    autopilot_agent_factory,
    nn_agent_factory,
)
from repro.agent.ilcnn import ILCNN, ILCNNConfig
from repro.core import (
    Campaign,
    TraceReader,
    TraceWriter,
    compare_traces,
    metrics_by_injector,
    run_episode,
    standard_scenarios,
)
from repro.core.faults import (
    GaussianNoise,
    GPSNoiseFault,
    OutputDelay,
    PacketLoss,
    SaltAndPepper,
    SensorDelay,
    SolidOcclusion,
    Trigger,
    WeatherShiftFault,
    WeightNoise,
)
from repro.sim.builders import SimulationBuilder
from repro.sim.render import CameraModel
from repro.sim.town import GridTownConfig

TOWN = GridTownConfig(rows=2, cols=3)
TINY = ILCNNConfig(input_hw=(16, 24), conv_channels=(4, 6, 6), trunk_dim=16,
                   speed_dim=4, branch_hidden=8, dropout=0.0)


@pytest.fixture(scope="module")
def builder():
    return SimulationBuilder(camera=CameraModel(width=24, height=16), with_lidar=True)


@pytest.fixture(scope="module")
def scenarios():
    return standard_scenarios(
        2, seed=12, town_config=TOWN, min_distance=60, max_distance=160,
        n_npc_vehicles=1, n_pedestrians=1,
    )


class TestFullCampaignAllFaultKinds:
    def test_every_fault_class_in_one_campaign(self, builder, scenarios):
        """One campaign spanning all five fault classes must complete."""
        model = ILCNN(TINY)
        model.set_training(False)
        injectors = {
            "none": [],
            "data": [GaussianNoise(0.05), GPSNoiseFault(2.0)],
            "hw+timing": [OutputDelay(5), PacketLoss(Trigger(probability=0.1))],
            "ml": [WeightNoise(0.1)],
            "world": [WeatherShiftFault("FoggyNoon")],
        }
        campaign = Campaign(
            scenarios, nn_agent_factory(model), injectors, builder=builder
        )
        result = campaign.run()
        assert len(result.records) == campaign.total_runs()
        metrics = metrics_by_injector(result.records)
        assert set(metrics) == set(injectors)
        for record in result.records:
            assert record.frames > 0
            assert record.distance_km >= 0.0

    def test_sensor_delay_starves_agent(self, builder, scenarios):
        record = run_episode(
            builder,
            scenarios[0],
            autopilot_agent_factory(),
            faults=[SensorDelay(4)],
            injector_name="sensor-delay",
        )
        assert record.agent_frames_missed > 0

    def test_weather_fault_affects_outcome_determinism(self, builder, scenarios):
        """World faults participate in deterministic replay too."""
        kwargs = dict(
            faults=[WeatherShiftFault("HardRainNoon")],
            injector_name="weather",
            harness_seed=3,
        )
        a = run_episode(builder, scenarios[0], autopilot_agent_factory(), **kwargs)
        b = run_episode(builder, scenarios[0], autopilot_agent_factory(), **kwargs)
        assert a.frames == b.frames
        assert a.distance_km == b.distance_km


class TestGoldenRunTraces:
    def _trace_episode(self, builder, scenario, path, faults=(), seed=5):
        """Run one instrumented episode writing a trace."""
        from repro.core.injector import InjectionHarness
        from repro.sim.channel import Channel
        from repro.sim.client import AgentClient
        from repro.sim.server import SimulationServer

        handles = builder.build_episode(scenario)
        world = handles.world
        agent = AutopilotAgent(world, handles.town)
        agent.reset(scenario.mission)
        sensor_ch, control_ch = Channel("sensor"), Channel("control")
        server = SimulationServer(world, handles.sensors, sensor_ch, control_ch)
        client = AgentClient(agent, sensor_ch, control_ch)
        harness = InjectionHarness(list(faults), seed=seed)
        harness.attach(server, client)
        with TraceWriter(path, header={"scenario": scenario.name}) as tw:
            server.send_initial_frame()
            for _ in range(150):
                client.tick(world.frame)
                result = server.tick()
                harness.on_frame(world, world.frame)
                ego = world.ego
                tw.state(world.frame, ego.position.x, ego.position.y, ego.yaw, ego.speed())
                for event in result.new_violations:
                    tw.violation(event.start_frame, event.type.value)
        harness.detach()
        return TraceReader(path)

    def test_identical_seeds_identical_traces(self, builder, scenarios, tmp_path):
        a = self._trace_episode(builder, scenarios[0], tmp_path / "a.jsonl")
        b = self._trace_episode(builder, scenarios[0], tmp_path / "b.jsonl")
        assert compare_traces(a, b) is None

    def test_fault_is_the_only_divergence_source(self, builder, scenarios, tmp_path):
        """Golden vs. faulted runs diverge only after the fault window opens."""
        golden = self._trace_episode(builder, scenarios[0], tmp_path / "g.jsonl")
        faulted = self._trace_episode(
            builder,
            scenarios[0],
            tmp_path / "f.jsonl",
            faults=[SolidOcclusion(size_frac=0.6, trigger=Trigger(start_frame=40))],
        )
        divergence = compare_traces(golden, faulted)
        if divergence is not None:
            # The autopilot ignores the camera, so there may be no
            # divergence at all; if there is (sensor rng consumption), it
            # must not predate the injection.
            assert divergence.frame >= 40


class TestTrainedPolicySmoke:
    """A minimally trained policy must beat a random one on its own data."""

    def test_training_improves_action_prediction(self, builder):
        from repro.agent import CollectionConfig, TrainConfig, collect_imitation_data, train_ilcnn
        from repro.agent.ilcnn import preprocess_image
        from repro.agent.nn.losses import mse_loss

        scenario = standard_scenarios(
            1, seed=2, town_config=TOWN, min_distance=60, max_distance=140
        )[0]
        dataset = collect_imitation_data(
            [scenario], builder=builder,
            config=CollectionConfig(seed=0, max_frames_per_episode=200),
        )
        model, _ = train_ilcnn(
            dataset, TINY, TrainConfig(epochs=4, batch_size=32, seed=0)
        )
        random_model = ILCNN(TINY)
        random_model.set_training(False)

        idx = np.arange(0, len(dataset), 4)
        images = np.stack(
            [preprocess_image(dataset.images[i], TINY.input_hw) for i in idx]
        )
        speeds = dataset.speeds[idx]
        commands = dataset.commands[idx].astype(np.int64)
        actions = dataset.actions[idx]
        trained_loss, _ = mse_loss(model.forward(images, speeds, commands), actions)
        random_loss, _ = mse_loss(random_model.forward(images, speeds, commands), actions)
        assert trained_loss < random_loss * 0.7


class TestTaskTierEpisodes:
    """The expert completes each traffic-free task tier cleanly."""

    @pytest.mark.parametrize("task", ["straight", "one_turn"])
    def test_expert_completes_tier(self, builder, task):
        from repro.sim import make_task_scenarios

        scenario = make_task_scenarios(task, 1, seed=6, town_config=TOWN)[0]
        record = run_episode(builder, scenario, autopilot_agent_factory())
        assert record.success, f"expert failed {task}: {record.violations}"
        assert record.n_violations == 0


class TestCLI:
    def test_list_faults(self, capsys):
        from repro.cli import main

        assert main(["list-faults"]) == 0
        out = capsys.readouterr().out
        assert "gaussian" in out and "water-drop" in out

    def test_demo_runs_end_to_end(self, capsys):
        from repro.cli import main

        assert main(["demo", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "none" in out and "faulted" in out
        assert "MSR_%" in out

    def test_parser_rejects_unknown_command(self):
        from repro.cli import build_parser

        with pytest.raises(SystemExit):
            build_parser().parse_args(["warp-drive"])

    def test_parser_covers_all_subcommands(self):
        from repro.cli import build_parser

        parser = build_parser()
        for cmd in ("demo", "campaign", "sweep-delay", "train", "list-faults"):
            args = parser.parse_args([cmd] if cmd != "train" else ["train"])
            assert callable(args.func)


class TestPackageSurface:
    def test_version(self):
        import repro

        assert repro.__version__

    def test_public_exports_importable(self):
        from repro.core import __all__ as core_all
        import repro.core as core

        for name in core_all:
            assert hasattr(core, name), name

    def test_sim_exports_importable(self):
        from repro.sim import __all__ as sim_all
        import repro.sim as sim

        for name in sim_all:
            assert hasattr(sim, name), name

    def test_agent_exports_importable(self):
        from repro.agent import __all__ as agent_all
        import repro.agent as agent

        for name in agent_all:
            assert hasattr(agent, name), name
