"""Tests for imitation dataset collection and the training loop.

Kept deliberately small (tiny town, tiny network, few frames) so the suite
stays fast; full-scale training quality is exercised by the benchmarks.
"""

import numpy as np
import pytest

from repro.agent.dataset import CollectionConfig, DrivingDataset, collect_imitation_data
from repro.agent.ilcnn import ILCNNConfig
from repro.agent.training import TrainConfig, get_or_train_default_model, train_ilcnn
from repro.sim.builders import SimulationBuilder
from repro.sim.render import CameraModel
from repro.sim.scenario import make_scenarios
from repro.sim.town import GridTownConfig

TOWN_CFG = GridTownConfig(rows=2, cols=3, with_buildings=False)
CAMERA = CameraModel(width=24, height=16)
MODEL_CFG = ILCNNConfig(input_hw=(16, 24), conv_channels=(4, 6, 6), trunk_dim=16,
                        speed_dim=4, branch_hidden=8, dropout=0.0)


def _tiny_dataset(n=40, seed=0):
    gen = np.random.default_rng(seed)
    return DrivingDataset(
        images=gen.integers(0, 255, (n, 16, 24, 3), dtype=np.uint8),
        speeds=gen.uniform(0, 8, n).astype(np.float32),
        commands=gen.integers(0, 4, n).astype(np.int8),
        actions=gen.uniform(-1, 1, (n, 3)).astype(np.float32),
    )


class TestDrivingDataset:
    def test_length_validation(self):
        ds = _tiny_dataset()
        with pytest.raises(ValueError):
            DrivingDataset(ds.images, ds.speeds[:-1], ds.commands, ds.actions)

    def test_histogram(self):
        ds = _tiny_dataset()
        hist = ds.command_histogram()
        assert sum(hist.values()) == len(ds)

    def test_split_fractions(self):
        ds = _tiny_dataset(100)
        train, val = ds.split(0.2, np.random.default_rng(0))
        assert len(val) == 20
        assert len(train) == 80

    def test_split_validation(self):
        with pytest.raises(ValueError):
            _tiny_dataset().split(0.0, np.random.default_rng(0))

    def test_save_load_roundtrip(self, tmp_path):
        ds = _tiny_dataset()
        path = tmp_path / "ds.npz"
        ds.save(path)
        loaded = DrivingDataset.load(path)
        assert np.array_equal(ds.images, loaded.images)
        assert np.array_equal(ds.actions, loaded.actions)

    def test_concatenate(self):
        a, b = _tiny_dataset(10, 0), _tiny_dataset(15, 1)
        both = DrivingDataset.concatenate([a, b])
        assert len(both) == 25

    def test_concatenate_empty_rejected(self):
        with pytest.raises(ValueError):
            DrivingDataset.concatenate([])

    def test_subset(self):
        ds = _tiny_dataset(20)
        sub = ds.subset(np.array([0, 5, 7]))
        assert len(sub) == 3
        assert np.array_equal(sub.speeds, ds.speeds[[0, 5, 7]])


class TestCollection:
    @pytest.fixture(scope="class")
    def collected(self):
        builder = SimulationBuilder(camera=CAMERA, with_lidar=False)
        scenarios = make_scenarios(
            1, seed=3, town_config=TOWN_CFG, min_distance=60, max_distance=150
        )
        cfg = CollectionConfig(seed=0, max_frames_per_episode=120)
        return collect_imitation_data(scenarios, builder=builder, config=cfg)

    def test_produces_frames(self, collected):
        assert len(collected) > 30

    def test_image_geometry_matches_camera(self, collected):
        assert collected.images.shape[1:] == (16, 24, 3)

    def test_actions_within_actuation_ranges(self, collected):
        steer, throttle, brake = collected.actions.T
        assert np.all(np.abs(steer) <= 1.0)
        assert np.all((0.0 <= throttle) & (throttle <= 1.0))
        assert np.all((0.0 <= brake) & (brake <= 1.0))

    def test_commands_are_valid_branches(self, collected):
        assert set(np.unique(collected.commands)) <= {0, 1, 2, 3}

    def test_collection_deterministic(self):
        builder = SimulationBuilder(camera=CAMERA, with_lidar=False)
        scenarios = make_scenarios(
            1, seed=3, town_config=TOWN_CFG, min_distance=60, max_distance=150
        )
        cfg = CollectionConfig(seed=7, max_frames_per_episode=60)
        a = collect_imitation_data(scenarios, builder=builder, config=cfg)
        b = collect_imitation_data(scenarios, builder=builder, config=cfg)
        assert np.array_equal(a.actions, b.actions)
        assert np.array_equal(a.images, b.images)


class TestTraining:
    def test_loss_decreases_on_learnable_data(self):
        # Labels correlated with the mean image brightness: learnable signal.
        gen = np.random.default_rng(0)
        n = 120
        images = gen.integers(0, 255, (n, 16, 24, 3), dtype=np.uint8)
        brightness = images.mean(axis=(1, 2, 3)) / 255.0
        actions = np.stack(
            [brightness * 2 - 1, brightness, 1 - brightness], axis=1
        ).astype(np.float32)
        ds = DrivingDataset(
            images,
            gen.uniform(0, 8, n).astype(np.float32),
            gen.integers(0, 4, n).astype(np.int8),
            actions,
        )
        model, hist = train_ilcnn(
            ds, MODEL_CFG, TrainConfig(epochs=6, batch_size=16, lr=2e-3, seed=0)
        )
        assert hist.train_loss[-1] < hist.train_loss[0] * 0.5
        assert len(hist.val_loss) == 6

    def test_command_balancing_oversamples(self):
        gen = np.random.default_rng(1)
        n = 60
        commands = np.zeros(n, dtype=np.int8)
        commands[:5] = 1  # rare branch
        ds = DrivingDataset(
            gen.integers(0, 255, (n, 16, 24, 3), dtype=np.uint8),
            gen.uniform(0, 8, n).astype(np.float32),
            commands,
            gen.uniform(-1, 1, (n, 3)).astype(np.float32),
        )
        # Training must run and touch branch 1 despite its rarity.
        model, hist = train_ilcnn(
            ds, MODEL_CFG, TrainConfig(epochs=1, batch_size=16, seed=0)
        )
        assert len(hist.train_loss) == 1

    def test_history_best_val(self):
        from repro.agent.training import TrainingHistory

        h = TrainingHistory(train_loss=[1, 2], val_loss=[0.5, 0.2])
        assert h.best_val() == 0.2

    def test_default_model_cache_roundtrip(self, tmp_path):
        """get_or_train_default_model trains once, then loads from cache."""
        kwargs = dict(
            cache_dir=tmp_path,
            town_config=TOWN_CFG,
            n_scenarios=1,
            collection=CollectionConfig(seed=0, max_frames_per_episode=60),
            model_config=MODEL_CFG,
            train_config=TrainConfig(epochs=1, batch_size=16, seed=0),
            builder=SimulationBuilder(camera=CAMERA, with_lidar=False),
            verbose=False,
        )
        m1 = get_or_train_default_model(**kwargs)
        files = list(tmp_path.glob("ilcnn-*.npz"))
        assert len(files) == 1
        m2 = get_or_train_default_model(**kwargs)
        # Second call must load the same weights, not retrain.
        s1, s2 = m1.state_dict(), m2.state_dict()
        assert all(np.array_equal(s1[k], s2[k]) for k in s1)
