"""Fuzz tests: the NN agent must survive arbitrary sensor garbage.

Fault injection deliberately feeds the agent corrupted data — NaN GPS,
saturated images, absurd speeds.  Whatever arrives, ``step`` must return a
:class:`VehicleControl` with finite, in-range fields and never raise: an
agent that crashes on bad input would abort the campaign instead of
exhibiting the degraded driving the experiment measures.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.agent.agents import NNAgent
from repro.agent.ilcnn import ILCNN, ILCNNConfig
from repro.sim.physics import VehicleControl
from repro.sim.scenario import make_scenarios
from repro.sim.sensors import SensorFrame
from repro.sim.town import GridTownConfig, build_grid_town

TOWN_CFG = GridTownConfig(rows=2, cols=3)
TINY = ILCNNConfig(input_hw=(16, 24), conv_channels=(4, 6, 6), trunk_dim=16,
                   speed_dim=4, branch_hidden=8, dropout=0.0)

weird_floats = st.one_of(
    st.floats(allow_nan=True, allow_infinity=True, width=32),
    st.sampled_from([0.0, -0.0, 1e30, -1e30, float("nan"), float("inf")]),
)


@pytest.fixture(scope="module")
def agent():
    town = build_grid_town(TOWN_CFG)
    scenario = make_scenarios(
        1, seed=7, town_config=TOWN_CFG, min_distance=60, max_distance=160
    )[0]
    model = ILCNN(TINY)
    model.set_training(False)
    nn_agent = NNAgent(model, town)
    nn_agent.reset(scenario.mission)
    return nn_agent


def _assert_sane(control: VehicleControl) -> None:
    assert isinstance(control, VehicleControl)
    assert math.isfinite(control.steer) and -1.0 <= control.steer <= 1.0
    assert math.isfinite(control.throttle) and 0.0 <= control.throttle <= 1.0
    assert math.isfinite(control.brake) and 0.0 <= control.brake <= 1.0


class TestSensorGarbage:
    @given(
        gps_x=weird_floats,
        gps_y=weird_floats,
        speed=weird_floats,
        heading=weird_floats,
        image_seed=st.integers(0, 2**16),
    )
    @settings(max_examples=40, deadline=None)
    def test_step_survives_arbitrary_bundles(self, agent, gps_x, gps_y, speed, heading, image_seed):
        gen = np.random.default_rng(image_seed)
        frame = SensorFrame(
            frame=0,
            image=gen.integers(0, 256, (16, 24, 3), dtype=np.uint8),
            gps=(gps_x, gps_y),
            speed=speed,
            heading=heading,
        )
        _assert_sane(agent.step(frame))

    @pytest.mark.parametrize("fill", [0, 255])
    def test_saturated_images(self, agent, fill):
        frame = SensorFrame(
            frame=0,
            image=np.full((16, 24, 3), fill, dtype=np.uint8),
            gps=(40.0, -1.75),
            speed=5.0,
            heading=0.0,
        )
        _assert_sane(agent.step(frame))

    def test_gps_far_outside_map(self, agent):
        frame = SensorFrame(
            frame=0,
            image=np.zeros((16, 24, 3), dtype=np.uint8),
            gps=(1e7, -1e7),
            speed=5.0,
            heading=0.0,
        )
        _assert_sane(agent.step(frame))

    def test_negative_speed(self, agent):
        frame = SensorFrame(
            frame=0,
            image=np.zeros((16, 24, 3), dtype=np.uint8),
            gps=(40.0, -1.75),
            speed=-30.0,
            heading=0.0,
        )
        _assert_sane(agent.step(frame))
