"""Tests for the expert autopilot and the agent wrappers."""

import numpy as np
import pytest

from repro.agent.agents import AutopilotAgent, NNAgent, autopilot_agent_factory, nn_agent_factory
from repro.agent.autopilot import Expert, ExpertConfig
from repro.agent.ilcnn import ILCNN, ILCNNConfig
from repro.agent.planner import Command, RoutePlanner
from repro.sim.builders import SimulationBuilder
from repro.sim.geometry import Transform, Vec2
from repro.sim.physics import VehicleControl
from repro.sim.scenario import make_scenarios
from repro.sim.sensors import SensorFrame
from repro.sim.town import GridTownConfig
from repro.sim.violations import ViolationMonitor

TOWN_CFG = GridTownConfig(rows=3, cols=3)
TINY_MODEL_CFG = ILCNNConfig(input_hw=(16, 24), conv_channels=(4, 8, 8), trunk_dim=32,
                             speed_dim=8, branch_hidden=16, dropout=0.0)


@pytest.fixture(scope="module")
def builder():
    return SimulationBuilder(with_lidar=False)


def _scenario(seed=11, **kw):
    return make_scenarios(1, seed=seed, town_config=TOWN_CFG, **kw)[0]


class TestExpert:
    def test_requires_ego(self, builder):
        handles = builder.build_episode(_scenario())
        planner = RoutePlanner(handles.town)
        scn = _scenario()
        route = planner.plan(scn.mission.start.position, scn.mission.goal,
                             start_yaw=scn.mission.start.yaw)
        from repro.sim.world import World

        empty_world = World(handles.town)
        with pytest.raises(ValueError):
            Expert(empty_world, route)

    def test_completes_mission_without_violations(self, builder):
        scn = _scenario(seed=21)
        handles = builder.build_episode(scn)
        planner = RoutePlanner(handles.town)
        route = planner.plan(scn.mission.start.position, scn.mission.goal,
                             start_yaw=scn.mission.start.yaw)
        expert = Expert(handles.world, route)
        ego = handles.world.ego
        mon = ViolationMonitor()
        success = False
        for _ in range(int(scn.mission.time_limit_s * 15)):
            ego.apply_control(expert.control(handles.world.dt))
            handles.world.tick()
            mon.step(handles.world, ego, handles.world.frame)
            if ego.position.distance_to(scn.mission.goal) < scn.mission.success_radius:
                success = True
                break
        assert success, "expert must complete its mission"
        assert mon.events == [], [e.type for e in mon.events]

    def test_stops_for_blocking_vehicle(self, builder):
        scn = _scenario(seed=22)
        handles = builder.build_episode(scn)
        planner = RoutePlanner(handles.town)
        route = planner.plan(scn.mission.start.position, scn.mission.goal,
                             start_yaw=scn.mission.start.yaw)
        expert = Expert(handles.world, route)
        ego = handles.world.ego
        # Park a vehicle directly ahead on the route.
        from repro.sim.actors import Vehicle

        block_point = route.polyline.point_at(18.0)
        block_heading = route.polyline.heading_at(18.0)
        blocker = Vehicle(Transform(block_point, block_heading))
        handles.world.add_actor(blocker)
        for _ in range(15 * 10):
            ego.apply_control(expert.control(handles.world.dt))
            handles.world.tick()
        assert not ego.bounding_box().overlaps(blocker.bounding_box())
        assert ego.speed() < 0.5

    def test_current_command_matches_route(self, builder):
        scn = _scenario(seed=23)
        handles = builder.build_episode(scn)
        planner = RoutePlanner(handles.town)
        route = planner.plan(scn.mission.start.position, scn.mission.goal,
                             start_yaw=scn.mission.start.yaw)
        expert = Expert(handles.world, route)
        assert expert.current_command() == route.command_at(handles.world.ego.position)

    def test_weather_slows_cruise(self, builder):
        cfg = ExpertConfig(cruise_speed=8.0)
        scn_wet = _scenario(seed=24)
        handles = builder.build_episode(scn_wet)
        handles.world.set_weather("HardRainNoon")
        planner = RoutePlanner(handles.town)
        route = planner.plan(scn_wet.mission.start.position, scn_wet.mission.goal,
                             start_yaw=scn_wet.mission.start.yaw)
        expert = Expert(handles.world, route, cfg)
        target = expert._target_speed()
        assert target < 8.0


def _fake_frame(position, speed=5.0, heading=0.0, hw=(16, 24)):
    gen = np.random.default_rng(0)
    return SensorFrame(
        frame=0,
        image=gen.integers(0, 255, (hw[0], hw[1], 3), dtype=np.uint8),
        gps=(position.x, position.y),
        speed=speed,
        heading=heading,
    )


class TestNNAgent:
    @pytest.fixture(scope="class")
    def handles(self):
        return SimulationBuilder(with_lidar=False).build_episode(_scenario(seed=31))

    @pytest.fixture(scope="class")
    def agent(self, handles):
        model = ILCNN(TINY_MODEL_CFG)
        model.set_training(False)
        agent = NNAgent(model, handles.town)
        agent.reset(_scenario(seed=31).mission)
        return agent

    def test_step_before_reset_raises(self, handles):
        agent = NNAgent(ILCNN(TINY_MODEL_CFG), handles.town)
        with pytest.raises(RuntimeError):
            agent.step(_fake_frame(Vec2(0, 0)))

    def test_step_returns_sane_control(self, agent):
        mission = agent.mission
        control = agent.step(_fake_frame(mission.start.position, heading=mission.start.yaw))
        assert isinstance(control, VehicleControl)
        assert -1.0 <= control.steer <= 1.0
        assert 0.0 <= control.throttle <= 1.0
        assert 0.0 <= control.brake <= 1.0

    def test_no_simultaneous_pedals(self, agent):
        mission = agent.mission
        for seed in range(10):
            frame = _fake_frame(mission.start.position, heading=mission.start.yaw)
            control = agent.step(frame)
            assert not (control.throttle > 0 and control.brake > 0)

    def test_brakes_at_goal(self, agent):
        mission = agent.mission
        control = agent.step(_fake_frame(mission.goal))
        assert control.brake == 1.0

    def test_corrupt_gps_failsafe(self, agent):
        frame = _fake_frame(Vec2(float("nan"), 0.0))
        control = agent.step(frame)
        assert control.steer == 0.0
        assert control.brake > 0.0

    def test_replans_when_off_route(self, handles):
        model = ILCNN(TINY_MODEL_CFG)
        model.set_training(False)
        agent = NNAgent(model, handles.town, replan_tolerance=5.0)
        mission = _scenario(seed=31).mission
        agent.reset(mission)
        # Teleport the GPS far off the route but onto another road.
        far_lane = handles.town.roads[5].lane(+1)
        far_point = far_lane.centerline.point_at(far_lane.length / 2)
        if agent.route.off_route(far_point, 5.0):
            agent.step(_fake_frame(far_point, heading=0.0))
            assert agent.replans == 1


class TestFactories:
    def test_nn_factory_resets_agent(self):
        builder = SimulationBuilder(with_lidar=False)
        scn = _scenario(seed=41)
        handles = builder.build_episode(scn)
        model = ILCNN(TINY_MODEL_CFG)
        agent = nn_agent_factory(model)(handles, scn.mission)
        assert agent.route is not None
        assert agent.model is model

    def test_autopilot_factory(self):
        builder = SimulationBuilder(with_lidar=False)
        scn = _scenario(seed=42)
        handles = builder.build_episode(scn)
        agent = autopilot_agent_factory()(handles, scn.mission)
        control = agent.step(_fake_frame(scn.mission.start.position))
        assert isinstance(control, VehicleControl)

    def test_autopilot_step_before_reset(self):
        builder = SimulationBuilder(with_lidar=False)
        scn = _scenario(seed=43)
        handles = builder.build_episode(scn)
        agent = AutopilotAgent(handles.world, handles.town)
        with pytest.raises(RuntimeError):
            agent.step(_fake_frame(Vec2(0, 0)))
