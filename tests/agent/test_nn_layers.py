"""Unit tests for the numpy NN library: layers, gradients, optimisers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.agent.nn import (
    SGD,
    Adam,
    Conv2d,
    Dense,
    Dropout,
    ElmanRNN,
    Flatten,
    ReLU,
    Sequential,
    Tanh,
    col2im,
    conv_output_size,
    huber_loss,
    im2col,
    l1_loss,
    mse_loss,
)


def rng():
    return np.random.default_rng(0)


def numeric_grad(f, x, eps=1e-4):
    """Central-difference gradient of scalar f at x."""
    g = np.zeros_like(x, dtype=np.float64)
    it = np.nditer(x, flags=["multi_index"])
    while not it.finished:
        idx = it.multi_index
        orig = x[idx]
        x[idx] = orig + eps
        f_plus = f()
        x[idx] = orig - eps
        f_minus = f()
        x[idx] = orig
        g[idx] = (f_plus - f_minus) / (2 * eps)
        it.iternext()
    return g


class TestTensorLib:
    def test_conv_output_size(self):
        assert conv_output_size(32, 3, 1, 1) == 32
        assert conv_output_size(32, 3, 2, 1) == 16
        with pytest.raises(ValueError):
            conv_output_size(2, 5, 1, 0)

    def test_im2col_shape(self):
        x = rng().normal(size=(2, 3, 8, 10)).astype(np.float32)
        cols, oh, ow = im2col(x, 3, 3, stride=2, pad=1)
        assert (oh, ow) == (4, 5)
        assert cols.shape == (2 * 4 * 5, 3 * 9)

    def test_im2col_values_identity_kernel(self):
        x = np.arange(16, dtype=np.float32).reshape(1, 1, 4, 4)
        cols, oh, ow = im2col(x, 1, 1, stride=1, pad=0)
        assert np.array_equal(cols.ravel(), x.ravel())

    def test_col2im_is_adjoint_of_im2col(self):
        # <im2col(x), y> == <x, col2im(y)> for random x, y.
        gen = rng()
        x = gen.normal(size=(2, 3, 6, 7)).astype(np.float64)
        cols, oh, ow = im2col(x, 3, 3, stride=2, pad=1)
        y = gen.normal(size=cols.shape)
        lhs = float((cols * y).sum())
        back = col2im(y, x.shape, 3, 3, stride=2, pad=1)
        rhs = float((x * back).sum())
        assert lhs == pytest.approx(rhs, rel=1e-10)


class TestDense:
    def test_forward_shape_and_value(self):
        layer = Dense(3, 2, rng())
        layer.W.data[:] = np.eye(3, 2)
        layer.b.data[:] = [1.0, -1.0]
        out = layer(np.array([[1.0, 2.0, 3.0]], dtype=np.float32))
        assert out.shape == (1, 2)
        assert out[0, 0] == pytest.approx(2.0)
        assert out[0, 1] == pytest.approx(1.0)

    def test_rejects_wrong_width(self):
        with pytest.raises(ValueError):
            Dense(3, 2, rng()).forward(np.zeros((1, 4), dtype=np.float32))

    def test_gradients_match_numeric(self):
        gen = rng()
        layer = Dense(4, 3, gen)
        x = gen.normal(size=(5, 4)).astype(np.float64)
        target = gen.normal(size=(5, 3)).astype(np.float64)

        def loss():
            out = layer.forward(x.astype(np.float32)).astype(np.float64)
            return float(((out - target) ** 2).sum())

        out = layer.forward(x.astype(np.float32))
        grad_out = 2.0 * (out - target)
        layer.zero_grad()
        grad_x = layer.backward(grad_out.astype(np.float32))

        num_w = numeric_grad(loss, layer.W.data)
        assert np.allclose(layer.W.grad, num_w, atol=1e-2, rtol=1e-2)
        num_x = numeric_grad(loss, x)
        assert np.allclose(grad_x, num_x, atol=1e-2, rtol=1e-2)


class TestConv2d:
    def test_forward_shape(self):
        conv = Conv2d(3, 8, 3, stride=2, pad=1, rng=rng())
        out = conv(np.zeros((2, 3, 16, 20), dtype=np.float32))
        assert out.shape == (2, 8, 8, 10)

    def test_rejects_wrong_channels(self):
        conv = Conv2d(3, 8, 3, rng=rng())
        with pytest.raises(ValueError):
            conv.forward(np.zeros((1, 4, 8, 8), dtype=np.float32))

    def test_output_shape_helper(self):
        conv = Conv2d(3, 8, 5, stride=2, pad=2, rng=rng())
        assert conv.output_shape(32, 48) == (8, 16, 24)

    def test_known_convolution_value(self):
        conv = Conv2d(1, 1, 3, stride=1, pad=0, rng=rng())
        conv.W.data[:] = 1.0 / 9.0  # box filter
        conv.b.data[:] = 0.0
        x = np.ones((1, 1, 3, 3), dtype=np.float32)
        out = conv(x)
        assert out.shape == (1, 1, 1, 1)
        assert out[0, 0, 0, 0] == pytest.approx(1.0)

    def test_gradients_match_numeric(self):
        gen = rng()
        conv = Conv2d(2, 3, 3, stride=1, pad=1, rng=gen)
        x = gen.normal(size=(2, 2, 5, 5)).astype(np.float64)
        target = gen.normal(size=(2, 3, 5, 5))

        def loss():
            out = conv.forward(x.astype(np.float32)).astype(np.float64)
            return float(((out - target) ** 2).sum())

        out = conv.forward(x.astype(np.float32))
        conv.zero_grad()
        grad_x = conv.backward((2.0 * (out - target)).astype(np.float32))
        num_w = numeric_grad(loss, conv.W.data)
        assert np.allclose(conv.W.grad, num_w, atol=5e-2, rtol=5e-2)
        num_x = numeric_grad(loss, x)
        assert np.allclose(grad_x, num_x, atol=5e-2, rtol=5e-2)


class TestActivationsAndShape:
    def test_relu(self):
        layer = ReLU()
        out = layer(np.array([[-1.0, 2.0]], dtype=np.float32))
        assert np.array_equal(out, [[0.0, 2.0]])
        grad = layer.backward(np.array([[5.0, 5.0]], dtype=np.float32))
        assert np.array_equal(grad, [[0.0, 5.0]])

    def test_tanh_gradient(self):
        layer = Tanh()
        x = np.array([[0.5]], dtype=np.float32)
        out = layer(x)
        grad = layer.backward(np.ones_like(x))
        assert grad[0, 0] == pytest.approx(1.0 - np.tanh(0.5) ** 2, rel=1e-5)

    def test_flatten_roundtrip(self):
        layer = Flatten()
        x = np.zeros((2, 3, 4, 5), dtype=np.float32)
        out = layer(x)
        assert out.shape == (2, 60)
        back = layer.backward(out)
        assert back.shape == x.shape

    def test_dropout_train_vs_eval(self):
        layer = Dropout(0.5, rng=np.random.default_rng(1))
        x = np.ones((4, 100), dtype=np.float32)
        layer.set_training(True)
        out = layer(x)
        assert (out == 0).any()
        assert out.mean() == pytest.approx(1.0, abs=0.15)  # inverted scaling
        layer.set_training(False)
        assert np.array_equal(layer(x), x)

    def test_dropout_validation(self):
        with pytest.raises(ValueError):
            Dropout(1.0)

    def test_forward_hook_modifies_output(self):
        layer = Dense(2, 2, rng())

        def hook(module, out):
            return out * 0.0

        layer.forward_hooks.append(hook)
        out = layer(np.ones((1, 2), dtype=np.float32))
        assert np.array_equal(out, np.zeros((1, 2)))


class TestSequential:
    def test_chained_shapes(self):
        gen = rng()
        net = Sequential(
            Conv2d(3, 4, 3, stride=2, pad=1, rng=gen),
            ReLU(),
            Flatten(),
            Dense(4 * 4 * 4, 7, gen),
        )
        out = net(np.zeros((2, 3, 8, 8), dtype=np.float32))
        assert out.shape == (2, 7)

    def test_parameters_collected(self):
        gen = rng()
        net = Sequential(Dense(2, 3, gen), ReLU(), Dense(3, 1, gen))
        assert len(net.parameters()) == 4  # 2x (W, b)

    def test_named_parameters_stable(self):
        gen = rng()
        net = Sequential(Dense(2, 3, gen), ReLU(), Dense(3, 1, gen))
        names = [n for n, _ in net.named_parameters()]
        assert names == ["0.W", "0.b", "2.W", "2.b"]

    def test_nested_sequential_names(self):
        gen = rng()
        inner = Sequential(Dense(2, 2, gen))
        net = Sequential(inner, Dense(2, 1, gen))
        names = [n for n, _ in net.named_parameters()]
        assert names == ["0.0.W", "0.0.b", "1.W", "1.b"]

    def test_training_flag_cascades(self):
        net = Sequential(Dropout(0.5), Dropout(0.5))
        net.set_training(False)
        assert all(not m.training for m in net)

    def test_backward_through_chain(self):
        gen = rng()
        net = Sequential(Dense(3, 4, gen), ReLU(), Dense(4, 2, gen))
        x = gen.normal(size=(5, 3)).astype(np.float32)
        out = net(x)
        grad = net.backward(np.ones_like(out))
        assert grad.shape == x.shape


class TestLosses:
    def test_mse_zero_at_match(self):
        pred = np.ones((2, 3), dtype=np.float32)
        loss, grad = mse_loss(pred, pred.copy())
        assert loss == 0.0
        assert np.array_equal(grad, np.zeros_like(pred))

    def test_mse_gradient_direction(self):
        pred = np.array([[1.0]], dtype=np.float32)
        target = np.array([[0.0]], dtype=np.float32)
        loss, grad = mse_loss(pred, target)
        assert loss == pytest.approx(1.0)
        assert grad[0, 0] > 0

    def test_mse_weights_scale_loss(self):
        pred = np.array([[1.0, 1.0]], dtype=np.float32)
        target = np.zeros_like(pred)
        w = np.array([2.0, 0.0], dtype=np.float32)
        loss, grad = mse_loss(pred, target, w)
        assert loss == pytest.approx(1.0)  # (2*1 + 0*1) / 2
        assert grad[0, 1] == 0.0

    def test_mse_shape_mismatch(self):
        with pytest.raises(ValueError):
            mse_loss(np.zeros((1, 2)), np.zeros((2, 1)))

    def test_l1(self):
        loss, grad = l1_loss(np.array([[2.0]]), np.array([[0.0]]))
        assert loss == pytest.approx(2.0)
        assert grad[0, 0] == pytest.approx(1.0)

    def test_huber_quadratic_then_linear(self):
        small, g_small = huber_loss(np.array([[0.5]]), np.array([[0.0]]), delta=1.0)
        big, g_big = huber_loss(np.array([[5.0]]), np.array([[0.0]]), delta=1.0)
        assert small == pytest.approx(0.125)
        assert big == pytest.approx(4.5)
        assert g_big[0, 0] == pytest.approx(1.0)

    def test_huber_validation(self):
        with pytest.raises(ValueError):
            huber_loss(np.zeros((1,)), np.zeros((1,)), delta=0.0)

    @given(st.integers(1, 5), st.integers(1, 4))
    @settings(max_examples=20)
    def test_mse_numeric_gradient(self, n, d):
        gen = np.random.default_rng(n * 10 + d)
        pred = gen.normal(size=(n, d))
        target = gen.normal(size=(n, d))
        loss, grad = mse_loss(pred, target)
        eps = 1e-6
        i = (0, 0)
        pred2 = pred.copy()
        pred2[i] += eps
        loss2, _ = mse_loss(pred2, target)
        assert (loss2 - loss) / eps == pytest.approx(grad[i], rel=1e-3, abs=1e-6)


class TestOptimizers:
    def _quadratic_problem(self):
        gen = rng()
        layer = Dense(4, 1, gen)
        x = gen.normal(size=(64, 4)).astype(np.float32)
        w_true = np.array([[1.0], [-2.0], [0.5], [3.0]], dtype=np.float32)
        y = x @ w_true
        return layer, x, y

    @pytest.mark.parametrize("make_opt", [
        lambda p: SGD(p, lr=0.05),
        lambda p: SGD(p, lr=0.02, momentum=0.9),
        lambda p: Adam(p, lr=0.05),
    ])
    def test_converges_on_linear_regression(self, make_opt):
        layer, x, y = self._quadratic_problem()
        opt = make_opt(layer.parameters())
        for _ in range(300):
            pred = layer.forward(x)
            loss, grad = mse_loss(pred, y)
            opt.zero_grad()
            layer.backward(grad)
            opt.step()
        pred = layer.forward(x)
        final, _ = mse_loss(pred, y)
        assert final < 1e-3

    def test_validation(self):
        layer = Dense(2, 1, rng())
        with pytest.raises(ValueError):
            SGD(layer.parameters(), lr=0.0)
        with pytest.raises(ValueError):
            SGD(layer.parameters(), lr=0.1, momentum=1.0)
        with pytest.raises(ValueError):
            Adam([], lr=0.1)
        with pytest.raises(ValueError):
            Adam(layer.parameters(), lr=0.1, beta1=1.0)

    def test_zero_grad(self):
        layer = Dense(2, 1, rng())
        opt = SGD(layer.parameters(), lr=0.1)
        layer.forward(np.ones((1, 2), dtype=np.float32))
        layer.backward(np.ones((1, 1), dtype=np.float32))
        assert layer.W.grad.any()
        opt.zero_grad()
        assert not layer.W.grad.any()


class TestElmanRNN:
    def test_forward_shape(self):
        rnn = ElmanRNN(3, 5, rng())
        out = rnn(np.zeros((7, 2, 3), dtype=np.float32))
        assert out.shape == (7, 2, 5)

    def test_rejects_bad_shape(self):
        rnn = ElmanRNN(3, 5, rng())
        with pytest.raises(ValueError):
            rnn.forward(np.zeros((7, 2, 4), dtype=np.float32))

    def test_state_propagates(self):
        rnn = ElmanRNN(1, 4, rng())
        x = np.zeros((5, 1, 1), dtype=np.float32)
        x[0] = 1.0  # impulse at t=0
        out = rnn(x)
        # The impulse must still influence later steps (nonzero hidden state).
        assert np.abs(out[-1]).max() > 0.0

    def test_bptt_gradient_matches_numeric(self):
        gen = rng()
        rnn = ElmanRNN(2, 3, gen)
        x = gen.normal(size=(4, 2, 2)).astype(np.float64)
        target = gen.normal(size=(4, 2, 3))

        def loss():
            out = rnn.forward(x.astype(np.float32)).astype(np.float64)
            return float(((out - target) ** 2).sum())

        out = rnn.forward(x.astype(np.float32))
        rnn.zero_grad()
        rnn.backward((2.0 * (out - target)).astype(np.float32))
        num_wh = numeric_grad(loss, rnn.Wh.data)
        assert np.allclose(rnn.Wh.grad, num_wh, atol=5e-2, rtol=5e-2)

    def test_last_hidden(self):
        rnn = ElmanRNN(2, 3, rng())
        x = np.random.default_rng(5).normal(size=(6, 2, 2)).astype(np.float32)
        assert np.array_equal(rnn.last_hidden(x), rnn.forward(x)[-1])
