"""Unit tests for :mod:`repro.agent.planner`."""

import math

import numpy as np
import pytest

from repro.agent.planner import COMMAND_HORIZON, Command, PlanningError, Route, RoutePlanner
from repro.sim.geometry import Polyline, Vec2
from repro.sim.town import GridTownConfig, SurfaceType, build_grid_town


@pytest.fixture(scope="module")
def town():
    return build_grid_town(GridTownConfig(rows=3, cols=3))


@pytest.fixture(scope="module")
def planner(town):
    return RoutePlanner(town)


def _lane_point(town, road_id, direction, station):
    lane = town.roads[road_id].lane(direction)
    return lane.centerline.point_at(station), lane.centerline.heading_at(station)


class TestRoute:
    def _route(self):
        pts = [Vec2(0, 0), Vec2(10, 0), Vec2(20, 0)]
        return Route(Polyline(pts), [Command.FOLLOW, Command.LEFT, Command.LEFT])

    def test_command_count_must_match(self):
        with pytest.raises(ValueError):
            Route(Polyline([Vec2(0, 0), Vec2(1, 0)]), [Command.FOLLOW])

    def test_command_at_nearest_vertex(self):
        r = self._route()
        assert r.command_at(Vec2(2, 1)) == Command.FOLLOW
        assert r.command_at(Vec2(15, -1)) == Command.LEFT

    def test_target_point_ahead(self):
        r = self._route()
        t = r.target_point(Vec2(0, 0), 5.0)
        assert t.x == pytest.approx(5.0)

    def test_distance_remaining_monotone(self):
        r = self._route()
        assert r.distance_remaining(Vec2(0, 0)) > r.distance_remaining(Vec2(15, 0))

    def test_cross_track_error_sign(self):
        r = self._route()
        assert r.cross_track_error(Vec2(5, 2)) == pytest.approx(2.0)
        assert r.cross_track_error(Vec2(5, -2)) == pytest.approx(-2.0)

    def test_off_route(self):
        r = self._route()
        assert not r.off_route(Vec2(5, 3))
        assert r.off_route(Vec2(5, 20))


class TestPlannerSameLane:
    def test_trivial_forward_route(self, town, planner):
        start, yaw = _lane_point(town, 0, +1, 5.0)
        goal, _ = _lane_point(town, 0, +1, 40.0)
        route = planner.plan(start, goal, start_yaw=yaw)
        assert route.length == pytest.approx(35.0, abs=1.0)
        assert all(c == Command.FOLLOW for c in route.commands)

    def test_goal_behind_loops_around(self, town, planner):
        start, yaw = _lane_point(town, 0, +1, 40.0)
        goal, _ = _lane_point(town, 0, +1, 5.0)
        route = planner.plan(start, goal, start_yaw=yaw)
        # Must loop around a block: much longer than the 35 m separation.
        assert route.length > 100.0


class TestPlannerGraphRoutes:
    def test_multi_leg_route_reaches_goal(self, town, planner):
        start, yaw = _lane_point(town, 0, +1, 10.0)
        # Goal on a distant road.
        goal_lane = town.roads[10].lane(+1)
        goal = goal_lane.centerline.point_at(goal_lane.length / 2)
        route = planner.plan(start, goal, start_yaw=yaw)
        assert route.polyline.points[-1].distance_to(goal) < 3.0
        assert route.polyline.points[0].distance_to(start) < 3.0

    def test_no_uturn_transitions(self, town, planner):
        """Consecutive route headings never flip by ~180 degrees."""
        start, yaw = _lane_point(town, 0, +1, 10.0)
        for road_id in range(1, len(town.roads)):
            goal_lane = town.roads[road_id].lane(-1)
            goal = goal_lane.centerline.point_at(goal_lane.length / 2)
            route = planner.plan(start, goal, start_yaw=yaw)
            pts = route.polyline.points
            for a, b, c in zip(pts, pts[1:], pts[2:]):
                h1 = (b - a).heading()
                h2 = (c - b).heading()
                turn = abs(math.atan2(math.sin(h2 - h1), math.cos(h2 - h1)))
                assert turn < math.radians(120), (
                    f"kink of {math.degrees(turn):.0f} deg en route to road {road_id}"
                )

    def test_route_stays_on_pavement(self, town, planner):
        start, yaw = _lane_point(town, 0, +1, 10.0)
        goal_lane = town.roads[9].lane(+1)
        goal = goal_lane.centerline.point_at(10.0)
        route = planner.plan(start, goal, start_yaw=yaw)
        pts = np.array([[p.x, p.y] for p in route.polyline.points])
        classes = town.classify_points(pts)
        assert np.all(classes == SurfaceType.ROAD)

    def test_turn_commands_appear_before_junctions(self, town, planner):
        start, yaw = _lane_point(town, 0, +1, 10.0)
        goal_lane = town.roads[10].lane(+1)
        goal = goal_lane.centerline.point_at(goal_lane.length / 2)
        route = planner.plan(start, goal, start_yaw=yaw)
        commands = set(route.commands)
        assert commands - {Command.FOLLOW}, "route must cross a junction"

    def test_command_horizon_length(self, town, planner):
        """Turn labels start roughly COMMAND_HORIZON before the junction."""
        start, yaw = _lane_point(town, 0, +1, 10.0)
        goal_lane = town.roads[10].lane(+1)
        goal = goal_lane.centerline.point_at(goal_lane.length / 2)
        route = planner.plan(start, goal, start_yaw=yaw)
        pts = route.polyline.points
        cmds = route.commands
        # Measure the contiguous pre-junction stretch of the first turn label.
        first_turn = next(i for i, c in enumerate(cmds) if c != Command.FOLLOW)
        stretch = 0.0
        i = first_turn
        while i + 1 < len(cmds) and cmds[i + 1] == cmds[first_turn]:
            stretch += pts[i].distance_to(pts[i + 1])
            i += 1
        assert stretch >= COMMAND_HORIZON * 0.7

    def test_plan_is_deterministic(self, town, planner):
        start, yaw = _lane_point(town, 0, +1, 10.0)
        goal_lane = town.roads[7].lane(+1)
        goal = goal_lane.centerline.point_at(5.0)
        r1 = planner.plan(start, goal, start_yaw=yaw)
        r2 = planner.plan(start, goal, start_yaw=yaw)
        assert [(p.x, p.y) for p in r1.polyline.points] == [
            (p.x, p.y) for p in r2.polyline.points
        ]

    def test_all_lane_pairs_routable(self, town, planner):
        """A* must reach every lane from every other lane (strong connectivity)."""
        lanes = list(town.lanes.values())
        start_lane = lanes[0]
        start = start_lane.centerline.point_at(5.0)
        yaw = start_lane.centerline.heading_at(5.0)
        for goal_lane in lanes:
            goal = goal_lane.centerline.point_at(goal_lane.length / 2)
            route = planner.plan(start, goal, start_yaw=yaw)
            assert route.polyline.points[-1].distance_to(goal) < 3.0


class TestPlannerOnMinimalTown:
    def test_2x2_routes(self):
        town = build_grid_town(GridTownConfig(rows=2, cols=3))
        planner = RoutePlanner(town)
        lanes = list(town.lanes.values())
        start = lanes[0].centerline.point_at(5.0)
        yaw = lanes[0].centerline.heading_at(5.0)
        goal = lanes[-1].centerline.point_at(5.0)
        route = planner.plan(start, goal, start_yaw=yaw)
        assert route.length > 0
