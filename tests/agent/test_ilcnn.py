"""Unit tests for the conditional imitation-learning network."""

import numpy as np
import pytest

from repro.agent.ilcnn import ILCNN, ILCNNConfig, preprocess_image
from repro.agent.nn.losses import mse_loss
from repro.agent.nn.optim import Adam
from repro.agent.planner import Command

SMALL = ILCNNConfig(input_hw=(16, 24), conv_channels=(4, 8, 8), trunk_dim=32,
                    speed_dim=8, branch_hidden=16, dropout=0.0)


@pytest.fixture(scope="module")
def model():
    return ILCNN(SMALL)


def batch(n=6, seed=0, hw=(16, 24)):
    gen = np.random.default_rng(seed)
    images = gen.random((n, 3, *hw)).astype(np.float32)
    speeds = gen.uniform(0, 10, n).astype(np.float32)
    commands = gen.integers(0, 4, n)
    return images, speeds, commands


class TestPreprocess:
    def test_pools_and_scales(self):
        img = np.full((32, 48, 3), 255, dtype=np.uint8)
        x = preprocess_image(img, (16, 24))
        assert x.shape == (3, 16, 24)
        assert x.max() == pytest.approx(1.0)

    def test_mean_pooling_value(self):
        img = np.zeros((4, 4, 3), dtype=np.uint8)
        img[0::2, 0::2] = 255  # checkerboard quarters
        x = preprocess_image(img, (2, 2))
        assert np.allclose(x, 0.25, atol=1e-6)

    def test_rejects_non_integer_factor(self):
        with pytest.raises(ValueError):
            preprocess_image(np.zeros((30, 48, 3), dtype=np.uint8), (16, 24))

    def test_sanitises_non_finite(self):
        # A bit-flipped payload can surface as a float image with NaN/inf.
        img = np.zeros((16, 24, 3), dtype=np.float64)
        img[0, 0, 0] = np.nan
        img[1, 1, 1] = np.inf
        x = preprocess_image(img, (16, 24))
        assert np.isfinite(x).all()


class TestForward:
    def test_output_shape(self, model):
        images, speeds, commands = batch()
        out = model.forward(images, speeds, commands)
        assert out.shape == (6, 3)
        assert np.isfinite(out).all()

    def test_rejects_bad_command(self, model):
        images, speeds, _ = batch(2)
        with pytest.raises(ValueError):
            model.forward(images, speeds, np.array([0, 9]))

    def test_branch_selection_matters(self, model):
        images, speeds, _ = batch(1)
        outs = [
            model.forward(images, speeds, np.array([c]))[0] for c in range(4)
        ]
        # Different branches are differently initialised: outputs must differ.
        assert not all(np.allclose(outs[0], o) for o in outs[1:])

    def test_same_branch_deterministic(self, model):
        model.set_training(False)
        images, speeds, commands = batch()
        a = model.forward(images, speeds, commands)
        b = model.forward(images, speeds, commands)
        assert np.array_equal(a, b)

    def test_predict_one(self, model):
        img = np.random.default_rng(0).integers(0, 255, (16, 24, 3), dtype=np.uint8)
        out = model.predict_one(img, 5.0, Command.FOLLOW)
        assert out.shape == (3,)

    def test_speed_influences_output(self, model):
        images, _, _ = batch(1)
        slow = model.forward(images, np.array([0.0]), np.array([0]))
        fast = model.forward(images, np.array([10.0]), np.array([0]))
        assert not np.allclose(slow, fast)


class TestBackward:
    def test_backward_before_forward_raises(self):
        m = ILCNN(SMALL)
        with pytest.raises(RuntimeError):
            m.backward(np.zeros((1, 3), dtype=np.float32))

    def test_gradients_populate_used_branch_only(self):
        m = ILCNN(SMALL)
        images, speeds, _ = batch(4)
        commands = np.zeros(4, dtype=np.int64)  # all through branch 0
        out = m.forward(images, speeds, commands)
        m.zero_grad()
        m.backward(np.ones_like(out))
        b0_grads = sum(float(np.abs(p.grad).sum()) for p in m.branches[0].parameters())
        b1_grads = sum(float(np.abs(p.grad).sum()) for p in m.branches[1].parameters())
        assert b0_grads > 0.0
        assert b1_grads == 0.0

    def test_trunk_gets_gradient(self):
        m = ILCNN(SMALL)
        images, speeds, commands = batch(4)
        out = m.forward(images, speeds, commands)
        m.zero_grad()
        m.backward(np.ones_like(out))
        trunk_grad = sum(float(np.abs(p.grad).sum()) for p in m.trunk.parameters())
        speed_grad = sum(float(np.abs(p.grad).sum()) for p in m.speed_head.parameters())
        assert trunk_grad > 0.0
        assert speed_grad > 0.0

    def test_can_overfit_tiny_dataset(self):
        """End-to-end learning sanity: loss collapses on 8 samples."""
        m = ILCNN(SMALL)
        gen = np.random.default_rng(3)
        images = gen.random((8, 3, 16, 24)).astype(np.float32)
        speeds = gen.uniform(0, 10, 8).astype(np.float32)
        commands = gen.integers(0, 4, 8)
        targets = gen.uniform(-1, 1, (8, 3)).astype(np.float32)
        opt = Adam(m.parameters(), lr=3e-3)
        m.set_training(True)
        first = None
        for _ in range(150):
            out = m.forward(images, speeds, commands)
            loss, grad = mse_loss(out, targets)
            if first is None:
                first = loss
            opt.zero_grad()
            m.backward(grad)
            opt.step()
        assert loss < first * 0.05, f"no learning: {first} -> {loss}"


class TestParameterPlumbing:
    def test_named_parameters_cover_everything(self, model):
        named = model.named_parameters()
        assert sum(p.size for p in named.values()) == model.n_weights()
        assert any(name.startswith("trunk.") for name in named)
        assert any(name.startswith("branch3.") for name in named)

    def test_submodules_stable(self, model):
        blocks = model.submodules()
        assert list(blocks) == ["trunk", "speed_head", "join", "branch0", "branch1", "branch2", "branch3"]

    def test_state_dict_roundtrip(self, tmp_path):
        m1 = ILCNN(SMALL)
        path = tmp_path / "model.npz"
        m1.save(path)
        m2 = ILCNN.load(path, SMALL)
        images, speeds, commands = batch(3)
        m1.set_training(False)
        assert np.array_equal(
            m1.forward(images, speeds, commands), m2.forward(images, speeds, commands)
        )

    def test_load_rejects_wrong_architecture(self, tmp_path):
        m1 = ILCNN(SMALL)
        path = tmp_path / "model.npz"
        m1.save(path)
        other = ILCNNConfig(input_hw=(16, 24), conv_channels=(4, 8, 8), trunk_dim=64)
        with pytest.raises((KeyError, ValueError)):
            ILCNN.load(path, other)

    def test_state_dict_is_copy(self, model):
        state = model.state_dict()
        name = next(iter(state))
        state[name][...] = 1e9
        assert not np.any(model.named_parameters()[name].data >= 1e9)
