"""Figure 2 — Mission success rate per input fault injector.

Paper: "Fig. 2 shows the increase in variance of the mission success rate
with varying sensor fault models across multiple test scenarios."  The
x-axis lineup is NoInject, Gaussian, S&P, SolidOcc, TranspOcc, WaterDrop;
NoInject sits high, every camera-fault injector pulls the success rate
down and widens its spread.

This benchmark runs the full campaign (shared with fig. 3 via the session
cache), prints the MSR series, and asserts the qualitative shape: the
fault-free configuration's MSR is not beaten by the average of the faulted
ones.
"""

import pytest

from repro.core import Campaign, figure_header, format_table, metrics_by_injector
from repro.core.faults import make_input_fault

from .conftest import bench_agent_kind, bench_runs, emit, write_result

#: Paper x-axis order; "none" is the paper's NoInject bar.
INJECTOR_ORDER = ["none", "gaussian", "s&p", "solid-occ", "transp-occ", "water-drop"]


#: Injector intensities for the figure campaign.  The paper does not give
#: its parameters; these are set strong enough to matter through the
#: network's input downsampling (which averages away mild pixel noise) —
#: heavy sensor degradation, not near-imperceptible perturbation, is what
#: the figure studies.
INJECTOR_PARAMS: dict[str, dict] = {
    "gaussian": {"sigma": 0.25},
    "s&p": {"density": 0.25},
    "solid-occ": {"size_frac": 0.4},
    "transp-occ": {"size_frac": 0.5, "alpha": 0.7},
    "water-drop": {"n_drops": 9, "radius_frac": 0.16},
}


def build_injectors():
    injectors = {"none": []}
    for name in INJECTOR_ORDER[1:]:
        injectors[name] = [make_input_fault(name, **INJECTOR_PARAMS[name])]
    return injectors


def run_sensor_fault_campaign(builder, agent_factory, eval_scenarios, campaign_cache):
    """The fig. 2/3 campaign (executed once per session)."""
    if "sensor-faults" not in campaign_cache:
        campaign = Campaign(
            eval_scenarios,
            agent_factory,
            injectors=build_injectors(),
            builder=builder,
            base_seed=EVAL_CAMPAIGN_SEED,
        )
        campaign_cache["sensor-faults"] = campaign.run()
    return campaign_cache["sensor-faults"]


EVAL_CAMPAIGN_SEED = 2018  # DSN'18


@pytest.mark.benchmark(group="fig2")
def test_fig2_mission_success_rate(
    benchmark, builder, agent_factory, eval_scenarios, campaign_cache, capsys
):
    result = benchmark.pedantic(
        run_sensor_fault_campaign,
        args=(builder, agent_factory, eval_scenarios, campaign_cache),
        rounds=1,
        iterations=1,
    )
    metrics = metrics_by_injector(result.records)

    rows = [
        [name, metrics[name].n_runs, metrics[name].msr, metrics[name].total_km]
        for name in INJECTOR_ORDER
    ]
    text = "\n".join(
        [
            figure_header(
                "Figure 2",
                f"Mission success rate (%) per input fault injector "
                f"[agent={bench_agent_kind()}, runs/injector={bench_runs()}]",
            ),
            format_table(["injector", "runs", "MSR_%", "km"], rows),
        ]
    )
    write_result("fig2_mission_success.txt", text)
    emit(capsys, text)

    msr = {name: metrics[name].msr for name in INJECTOR_ORDER}
    faulted = [msr[name] for name in INJECTOR_ORDER[1:]]
    # Paper shape: NoInject at/above every faulted configuration on average,
    # and at least one camera fault visibly degrades the success rate.
    assert msr["none"] >= sum(faulted) / len(faulted), msr
    assert min(faulted) < msr["none"] + 1e-9, msr
