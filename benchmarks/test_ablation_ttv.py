"""Ext-C — Time-to-Traffic-Violation across fault classes.

TTV is defined in the paper's §II ("the time between a fault injection and
its manifestation as a traffic violation; higher values give the system
more time to detect and correct") but never plotted.  This extension
injects one representative fault per class at a fixed mid-mission frame
and compares TTV distributions: an actuator stuck-at should manifest in
seconds, while sensor noise takes longer to push the vehicle off course.
"""

import pytest

from repro.core import (
    Campaign,
    boxplot,
    figure_header,
    format_table,
    metrics_by_injector,
)
from repro.core.faults import (
    ControlStuckAt,
    GaussianNoise,
    OutputDelay,
    SolidOcclusion,
    Trigger,
)

from .conftest import bench_agent_kind, bench_runs, emit, write_result

INJECTION_FRAME = 75  # 5 s into the mission


@pytest.mark.benchmark(group="ext-c")
def test_ablation_time_to_violation(benchmark, builder, agent_factory, eval_scenarios, capsys):
    start = Trigger(start_frame=INJECTION_FRAME)
    injectors = {
        "data:gaussian": [GaussianNoise(sigma=0.25, trigger=start)],
        "data:solid-occ": [SolidOcclusion(size_frac=0.5, trigger=start)],
        "hw:stuck-steer": [ControlStuckAt("steer", 1.0, trigger=start)],
        "timing:delay-30": [OutputDelay(30, trigger=start)],
    }

    def run():
        return Campaign(
            eval_scenarios, agent_factory, injectors=injectors, builder=builder,
            base_seed=99,
        ).run()

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    metrics = metrics_by_injector(result.records)

    rows = []
    groups = {}
    for name, m in metrics.items():
        rows.append(
            [name, len(m.ttv_s), m.ttv_median_s if m.ttv_s else None, m.vpk, m.msr]
        )
        if m.ttv_s:
            groups[name] = m.ttv_s
    text_parts = [
        figure_header(
            "Ext-C",
            f"Time to Traffic Violation by fault class (injected at frame "
            f"{INJECTION_FRAME}) [agent={bench_agent_kind()}, runs/config={bench_runs()}]",
        ),
        format_table(["injector", "manifested", "TTV_median_s", "VPK", "MSR_%"], rows),
    ]
    if groups:
        text_parts += ["", boxplot(groups, title="TTV distribution (s):")]
    text = "\n".join(text_parts)
    write_result("ext_c_ttv.txt", text)
    emit(capsys, text)

    # Shape: the stuck actuator manifests fastest of the classes that
    # manifested at all.
    stuck = metrics["hw:stuck-steer"]
    assert stuck.ttv_s, "a steering stuck-at must manifest as violations"
    for name, m in metrics.items():
        if name != "hw:stuck-steer" and m.ttv_s:
            assert stuck.ttv_median_s <= m.ttv_median_s + 2.0, (name, m.ttv_median_s)
