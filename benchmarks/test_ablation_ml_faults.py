"""Ext-B — Machine-learning faults: weight noise and weight bit flips.

The paper's ML-fault class ("adding noise into the parameters of the
machine learning model ... modeled on real-world hardware failures") has
no figure; this extension sweeps the relative weight-noise magnitude and a
soft-error bit-flip count in the IL-CNN, reporting MSR/VPK.  Requires the
NN agent (skipped under AVFI_BENCH_AGENT=autopilot: there is no network to
corrupt).
"""

import pytest

from repro.core import Campaign, figure_header, format_table, metrics_by_injector
from repro.core.faults import ActivationFault, WeightBitFlip, WeightNoise

from .conftest import bench_agent_kind, bench_runs, emit, write_result

NOISE_LEVELS = [0.0, 0.1, 0.3, 0.6]


@pytest.mark.benchmark(group="ext-b")
@pytest.mark.filterwarnings("ignore:overflow encountered", "ignore:invalid value encountered")
def test_ablation_ml_faults(benchmark, builder, agent_factory, eval_scenarios, capsys):
    # Float32 overflow inside a forward pass is *expected* under heavy
    # weight corruption; the pipeline clamps the resulting garbage at the
    # control boundary, which is exactly what the experiment verifies.
    if bench_agent_kind() != "nn":
        pytest.skip("ML faults target the IL-CNN; run with AVFI_BENCH_AGENT=nn")

    injectors = {}
    for sigma in NOISE_LEVELS:
        name = f"wnoise-{sigma}"
        injectors[name] = [WeightNoise(sigma_rel=sigma)] if sigma > 0 else []
    injectors["bitflip-8"] = [WeightBitFlip(n_flips=8)]
    injectors["act-stuck"] = [ActivationFault(block="join", layer_index=0, n_units=16)]

    def run():
        return Campaign(
            eval_scenarios, agent_factory, injectors=injectors, builder=builder,
            base_seed=88,
        ).run()

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    metrics = metrics_by_injector(result.records)

    rows = [
        [name, m.msr, m.vpk, m.apk]
        for name, m in metrics.items()
    ]
    text = "\n".join(
        [
            figure_header(
                "Ext-B",
                f"ML faults in the IL-CNN: weight noise / bit flips / stuck "
                f"activations [runs/config={bench_runs()}]",
            ),
            format_table(["injector", "MSR_%", "VPK", "APK"], rows),
        ]
    )
    write_result("ext_b_ml_faults.txt", text)
    emit(capsys, text)

    clean = metrics["wnoise-0.0"]
    worst = metrics[f"wnoise-{NOISE_LEVELS[-1]}"]
    # Shape: strong parameter noise degrades the driving policy.
    assert worst.msr <= clean.msr
    assert worst.vpk >= clean.vpk
