"""Ext-D3 — multiplexed engine throughput gate.

The episode multiplexer round-robins a slot of live episodes at tick
granularity and batches their per-frame sensor work into ``(E, .)``
slabs (`repro.sim.sensors.read_frames_batch`).  This gate measures that
batched sensing phase on the canonical dense scene (9 block-interior
buildings, 8 NPC vehicles + 4 pedestrians, all in sensor range) against
the single-episode serial path, in one process on one core, and fails
if the batched path delivers less than :data:`MUX_SENSING_GATE` times
the serial per-core throughput.

End-to-end campaign throughput (serial vs ``backend="multiplexed"``) is
measured and recorded alongside for context but *not* gated: sensing is
roughly a third of an episode frame, so Amdahl bounds the whole-pipeline
gain well below the sensing-phase gain no matter how good the batching
is.  The end-to-end run doubles as a byte-identity check — the
multiplexed records must equal the serial records exactly.

Results land in ``benchmarks/results/BENCH_multiplex.json``.
"""

import copy
import json
import time

import numpy as np

from repro.agent import autopilot_agent_factory
from repro.core import ParallelCampaignRunner, standard_scenarios
from repro.sim.actors import Pedestrian, Vehicle
from repro.sim.builders import SimulationBuilder
from repro.sim.geometry import Transform, Vec2
from repro.sim.sensors import Camera, Lidar2D, SensorSuite, read_frames_batch
from repro.sim.world import World

from .sensor_bench import (
    BENCH_TOWN,
    DENSE_SPAWN_INDEX,
    N_NPC_VEHICLES,
    N_PEDESTRIANS,
    PEDESTRIAN_OFFSETS,
    RESULTS_DIR,
    VEHICLE_OFFSETS,
    machine_fingerprint,
)

MULTIPLEX_RESULT_PATH = RESULTS_DIR / "BENCH_multiplex.json"

#: Episodes multiplexed per slot in the sensing measurement.  Batching
#: gains grow with slot size (fixed NumPy dispatch overhead amortises
#: across episodes); 12 is a realistic large slot for a dense campaign.
MUX_SLOT = 12
#: Required batched-sensing speedup over single-episode serial, per core.
MUX_SENSING_GATE = 1.5
#: Interleaved timing trials; best-of cancels scheduler noise (serial and
#: batched samples alternate, so background load hits both paths alike).
MUX_TRIALS = 150

#: Weathers cycled across the slot: fog exercises the per-segment fog
#: gamma, rain exercises the per-episode rng draws.
SLOT_WEATHERS = ("ClearNoon", "HardRainNoon", "FoggyNoon")


def _dense_episode(builder: SimulationBuilder, seed: int, weather: str):
    """One live episode of the canonical dense sensor scene.

    Same placement as ``sensor_bench._dense_sensor_scene`` — ego at the
    interior spawn with the 12-actor traffic ring inside sensor range —
    but each episode owns its world/rng while all share one cached
    renderer, exactly as same-scene episodes do under the multiplexer.
    """
    town = builder.town_for(BENCH_TOWN)
    renderer = builder.renderer_for(BENCH_TOWN)
    wp = town.spawn_points()[DENSE_SPAWN_INDEX]
    world = World(town, weather=weather, seed=seed)
    ego = world.spawn_ego(Transform(wp.position, wp.yaw))
    for fx, fy, dyaw in VEHICLE_OFFSETS:
        pose = Transform(ego.transform.to_world(Vec2(fx, fy)), wp.yaw + dyaw)
        world.add_actor(Vehicle(pose))
    for fx, fy in PEDESTRIAN_OFFSETS:
        pose = Transform(ego.transform.to_world(Vec2(fx, fy)), 0.0)
        world.add_actor(Pedestrian(pose, town))
    suite = SensorSuite(Camera(renderer), lidar=Lidar2D(n_rays=19, fov_deg=120.0))
    return suite, world, ego


def _measure_sensing() -> dict:
    """Best-of interleaved serial vs batched slot-frame times (seconds)."""
    builder = SimulationBuilder(with_lidar=True)
    episodes = [
        _dense_episode(builder, seed=9 + i, weather=SLOT_WEATHERS[i % len(SLOT_WEATHERS)])
        for i in range(MUX_SLOT)
    ]
    states = [copy.deepcopy(w.rng.bit_generator.state) for _, w, _ in episodes]

    def reset():
        for (_, w, _), st in zip(episodes, states):
            w.rng.bit_generator.state = copy.deepcopy(st)

    def serial():
        return [s.read_frame(w, e, w.frame, w.rng) for s, w, e in episodes]

    def batched():
        return read_frames_batch([(s, w, e, w.frame) for s, w, e in episodes])

    # The gated claim is only meaningful if both paths produce the same
    # bytes — verify before timing.
    reset()
    serial_frames = serial()
    reset()
    batched_frames = batched()
    for a, b in zip(serial_frames, batched_frames):
        assert np.array_equal(a.image, b.image)
        assert a.gps == b.gps and a.speed == b.speed and a.heading == b.heading
        assert np.array_equal(a.lidar, b.lidar)

    best_serial = best_batched = float("inf")
    for _ in range(MUX_TRIALS):
        reset()
        start = time.perf_counter()
        serial()
        best_serial = min(best_serial, time.perf_counter() - start)
        reset()
        start = time.perf_counter()
        batched()
        best_batched = min(best_batched, time.perf_counter() - start)
    return {
        "episodes_per_slot": MUX_SLOT,
        "serial_ms_per_slot_frame": best_serial * 1e3,
        "batched_ms_per_slot_frame": best_batched * 1e3,
        "serial_frames_per_s": MUX_SLOT / best_serial,
        "batched_frames_per_s": MUX_SLOT / best_batched,
        "speedup": best_serial / best_batched,
        "trials": MUX_TRIALS,
        "gate": MUX_SENSING_GATE,
    }


def _measure_pipeline() -> dict:
    """End-to-end dense campaign: serial vs in-process multiplexed."""
    scenarios = standard_scenarios(
        6,
        seed=11,
        town_config=BENCH_TOWN,
        n_npc_vehicles=N_NPC_VEHICLES,
        n_pedestrians=N_PEDESTRIANS,
        min_distance=60.0,
        max_distance=140.0,
    )
    builder = SimulationBuilder(with_lidar=True)
    builder.renderer_for(BENCH_TOWN)  # warm the shared scene cache

    def run(executor: str, slot: int):
        runner = ParallelCampaignRunner(
            scenarios,
            autopilot_agent_factory(),
            {"none": []},
            builder=builder,
            executor=executor,
            episodes_per_slot=slot,
        )
        start = time.perf_counter()
        result = runner.run()
        return time.perf_counter() - start, result.records

    mux_s, mux_records = run("multiplexed", len(scenarios))
    serial_s, serial_records = run("serial", 1)
    assert [r.to_dict() for r in serial_records] == [
        r.to_dict() for r in mux_records
    ], "multiplexed campaign must reproduce the serial records exactly"
    n = len(serial_records)
    return {
        "episodes": n,
        "serial_episodes_per_s": n / serial_s,
        "multiplexed_episodes_per_s": n / mux_s,
        "speedup": serial_s / mux_s,
        "gated": False,
    }


def test_multiplexed_throughput_gate(capsys):
    """Measure, persist, and gate the multiplexed sensing speedup."""
    from .conftest import emit

    sensing = _measure_sensing()
    pipeline = _measure_pipeline()
    payload = {
        "machine": machine_fingerprint(),
        "scene": {
            "town": f"{BENCH_TOWN.rows}x{BENCH_TOWN.cols}",
            "buildings": (BENCH_TOWN.rows - 1) * (BENCH_TOWN.cols - 1),
            "npc_vehicles": N_NPC_VEHICLES,
            "pedestrians": N_PEDESTRIANS,
        },
        "sensing": sensing,
        "pipeline": pipeline,
    }
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    MULTIPLEX_RESULT_PATH.write_text(
        json.dumps(payload, indent=1, sort_keys=True) + "\n"
    )
    emit(
        capsys,
        "\n".join(
            [
                f"Ext-D3  multiplexed engine throughput (slot of {MUX_SLOT})",
                "  batched sensing : "
                f"{sensing['serial_ms_per_slot_frame']:6.2f} ms serial vs "
                f"{sensing['batched_ms_per_slot_frame']:6.2f} ms batched "
                f"per slot-frame  ({sensing['speedup']:4.2f}x, "
                f"gate >= {MUX_SENSING_GATE}x)",
                "  end-to-end      : "
                f"{pipeline['serial_episodes_per_s']:5.2f} eps/s serial vs "
                f"{pipeline['multiplexed_episodes_per_s']:5.2f} eps/s "
                f"multiplexed  ({pipeline['speedup']:4.2f}x, recorded only)",
                f"  written to {MULTIPLEX_RESULT_PATH}",
            ]
        ),
    )
    assert sensing["speedup"] >= MUX_SENSING_GATE, (
        f"batched sensing must be >= {MUX_SENSING_GATE}x single-episode "
        f"serial per core on the dense scene, got {sensing['speedup']:.2f}x"
    )
