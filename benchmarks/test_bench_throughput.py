"""Ext-D — Simulator and pipeline throughput.

Fault-injection campaigns need thousands of simulated kilometres, so the
paper's approach lives or dies on simulator throughput.  These micro
benchmarks measure the hot paths with pytest-benchmark's full statistics:

* world tick with NPC traffic (physics + behaviours),
* camera render,
* IL-CNN single-frame inference,
* one full server/client pipeline step (render + agent + channels +
  violations).
"""

import json
import os
import time

import numpy as np
import pytest

from repro.agent.ilcnn import ILCNN, ILCNNConfig
from repro.core import (
    ParallelCampaignRunner,
    available_cpus,
    run_episode,
    standard_scenarios,
)
from repro.sim.builders import SimulationBuilder
from repro.sim.channel import Channel
from repro.sim.client import AgentClient
from repro.sim.physics import VehicleControl
from repro.sim.server import SimulationServer
from repro.sim.town import GridTownConfig

TOWN = GridTownConfig(rows=3, cols=3)


@pytest.fixture(scope="module")
def handles():
    builder = SimulationBuilder(with_lidar=False)
    scenario = standard_scenarios(
        1, seed=5, town_config=TOWN, n_npc_vehicles=4, n_pedestrians=4
    )[0]
    return builder.build_episode(scenario)


@pytest.mark.benchmark(group="ext-d-throughput")
def test_world_tick_throughput(benchmark, handles):
    world = handles.world
    world.ego.apply_control(VehicleControl(throttle=0.3))
    benchmark(world.tick)


@pytest.mark.benchmark(group="ext-d-throughput")
def test_camera_render_throughput(benchmark, handles):
    world = handles.world
    camera = handles.sensors.camera
    rng = np.random.default_rng(0)
    benchmark(camera.read, world, world.ego, rng)


@pytest.mark.benchmark(group="ext-d-throughput")
def test_lidar_read_throughput(benchmark):
    """LIDAR sweep on the dense scene (every actor inside max range)."""
    from .sensor_bench import _dense_sensor_scene

    from repro.sim.sensors import Lidar2D

    world, ego, _ = _dense_sensor_scene()
    lidar = Lidar2D(n_rays=19, fov_deg=120.0)
    rng = np.random.default_rng(0)
    benchmark(lidar.read, world, ego, rng)


@pytest.mark.benchmark(group="ext-d-throughput")
def test_semantic_render_throughput(benchmark):
    """Semantic/depth ground-truth render on the dense scene."""
    from .sensor_bench import _dense_sensor_scene

    world, ego, renderer = _dense_sensor_scene()
    others = world.other_actors(ego.id)
    benchmark(renderer.render_semantic_depth, ego.transform, others)


@pytest.mark.benchmark(group="ext-d-throughput")
def test_ilcnn_inference_throughput(benchmark):
    model = ILCNN(ILCNNConfig())
    model.set_training(False)
    rng = np.random.default_rng(0)
    image = rng.integers(0, 255, (64, 96, 3), dtype=np.uint8)
    benchmark(model.predict_one, image, 5.0, 0)


@pytest.mark.benchmark(group="ext-d-throughput")
def test_full_pipeline_step_throughput(benchmark, handles):
    world = handles.world

    class _Still:
        def reset(self, mission):
            pass

        def step(self, frame):
            return VehicleControl(brake=1.0)

    sensor_ch, control_ch = Channel("sensor"), Channel("control")
    server = SimulationServer(world, handles.sensors, sensor_ch, control_ch)
    client = AgentClient(_Still(), sensor_ch, control_ch)
    server.send_initial_frame()

    def step():
        client.tick(world.frame)
        server.tick()

    benchmark(step)


@pytest.mark.benchmark(group="ext-d-throughput")
def test_episode_throughput(benchmark):
    """Whole-episode wall time for a short autopilot mission."""
    from repro.agent import autopilot_agent_factory

    builder = SimulationBuilder(with_lidar=False)
    scenario = standard_scenarios(
        1, seed=6, town_config=TOWN, min_distance=80, max_distance=160
    )[0]

    record = benchmark.pedantic(
        run_episode,
        args=(builder, scenario, autopilot_agent_factory()),
        rounds=1,
        iterations=1,
    )
    assert record.success


def _physical_cpus() -> int:
    """Physical core count (SMT siblings share one core's throughput)."""
    try:
        pairs = set()
        phys = core = None
        for line in open("/proc/cpuinfo").read().splitlines():
            if line.startswith("physical id"):
                phys = line.split(":", 1)[1].strip()
            elif line.startswith("core id"):
                core = line.split(":", 1)[1].strip()
            elif not line.strip():
                if phys is not None and core is not None:
                    pairs.add((phys, core))
                phys = core = None
        if pairs:
            return len(pairs)
    except OSError:
        pass
    # Topology unknown (non-Linux): assume SMT pairs so the hard >=2x
    # assertion only fires on machines we're confident about.
    return max(1, available_cpus() // 2)


def test_parallel_campaign_throughput(capsys):
    """Ext-D2 — campaign episode throughput: serial vs 4-worker pool.

    Runs the same 8-episode autopilot campaign through the serial and the
    process executor and reports episodes/s.  On a ≥4-core machine the
    parallel path must deliver ≥2× the serial throughput (the runner's
    headline claim); on fewer cores only the result is recorded, since a
    process pool cannot beat serial without spare cores.
    """
    from .conftest import emit, write_result

    from repro.agent import autopilot_agent_factory
    from repro.core import metrics_by_injector
    from repro.core.faults import OutputDelay

    scenarios = standard_scenarios(
        4, seed=11, town_config=TOWN, min_distance=80, max_distance=200
    )
    injectors = {"none": [], "delay": [OutputDelay(10)]}

    def run(workers: int, executor: str) -> tuple[float, list]:
        runner = ParallelCampaignRunner(
            scenarios,
            autopilot_agent_factory(),
            injectors,
            builder=SimulationBuilder(with_lidar=False),
            workers=workers,
            executor=executor,
        )
        start = time.perf_counter()
        result = runner.run()
        return time.perf_counter() - start, result.records

    serial_s, serial_records = run(1, "serial")
    parallel_s, parallel_records = run(4, "process")

    n = len(serial_records)
    serial_eps = n / serial_s
    parallel_eps = n / parallel_s
    speedup = parallel_eps / serial_eps
    lines = [
        "Ext-D2  campaign episode throughput (autopilot, 8 episodes)",
        f"  serial   : {serial_eps:6.2f} episodes/s  ({serial_s:.2f} s)",
        f"  4 workers: {parallel_eps:6.2f} episodes/s  ({parallel_s:.2f} s)",
        f"  speedup  : {speedup:4.2f}x  on {available_cpus()} available cores",
    ]
    text = "\n".join(lines)
    write_result("ext_d2_parallel_throughput.txt", text)
    emit(capsys, text)

    assert [r.to_dict() for r in serial_records] == [
        r.to_dict() for r in parallel_records
    ], "parallel campaign must reproduce the serial records exactly"
    assert metrics_by_injector(serial_records) == metrics_by_injector(parallel_records)
    # Gate on cores that can truly run concurrently: cgroup/affinity
    # limits AND physical cores (SMT siblings don't double throughput).
    if min(available_cpus(), _physical_cpus()) >= 4:
        assert speedup >= 2.0, f"expected >=2x episode throughput, got {speedup:.2f}x"


#: Required speedups of the vectorised sensor hot paths over the recorded
#: PRE-vectorisation scalar baseline (PR 2 acceptance criteria; the
#: semantic camera has no acceptance multiple but is gated conservatively
#: below its measured ~3.5x so regressions in render_semantic_depth fail).
SENSOR_GATES = {
    "pipeline_step": 3.0,
    "camera_render": 4.0,
    "lidar_read": 4.0,
    "semantic_render": 2.5,
}
#: Against a baseline recaptured from *current* code, only parity (with
#: 15% scheduler-noise tolerance) is required — a plain regression gate.
SENSOR_PARITY = 0.85
#: Outer measurement trials; best-of counters scheduler noise on busy CI.
SENSOR_TRIALS = 3


def test_sensor_pipeline_gate(capsys):
    """Vectorised sensor pipeline: measure, persist, and gate regressions.

    Re-measures every sensor hot path with the shared harness, writes the
    machine-readable ``benchmarks/results/BENCH_sensor_pipeline.json``
    (ops/s per path plus speedups over the recorded baseline), and — when
    the recorded baseline was captured on this machine — fails if any path
    regresses below its acceptance multiple: pipeline step >= 3x, camera
    render and LIDAR read >= 4x the scalar implementation.
    """
    from .conftest import emit
    from .sensor_bench import (
        RESULT_PATH,
        RESULTS_DIR,
        SCALAR_REFERENCE,
        load_baseline,
        machine_fingerprint,
        measure_sensor_pipeline,
    )

    best: dict[str, float] = {}
    for _ in range(SENSOR_TRIALS):
        for key, value in measure_sensor_pipeline().items():
            best[key] = max(best.get(key, 0.0), value)

    baseline = load_baseline()
    payload = {
        "machine": machine_fingerprint(),
        "ops_per_second": best,
        "trials": SENSOR_TRIALS,
    }
    lines = ["Sensor pipeline throughput (best of %d trials)" % SENSOR_TRIALS]
    comparable = baseline is not None and baseline.get("machine") == payload["machine"]
    if baseline is not None:
        payload["baseline_ops_per_second"] = baseline["ops_per_second"]
        payload["baseline_machine"] = baseline.get("machine")
        payload["comparable"] = comparable
        payload["speedup_vs_baseline"] = {
            key: best[key] / baseline["ops_per_second"][key]
            for key in best
            if key in baseline["ops_per_second"]
        }
        for key, value in sorted(best.items()):
            speedup = payload["speedup_vs_baseline"].get(key)
            extra = f"  ({speedup:4.2f}x vs baseline)" if speedup else ""
            lines.append(f"  {key:16s} {value:9.1f} ops/s{extra}")
    else:
        lines.extend(f"  {k:16s} {v:9.1f} ops/s" for k, v in sorted(best.items()))

    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    RESULT_PATH.write_text(json.dumps(payload, indent=1, sort_keys=True) + "\n")
    lines.append(f"  written to {RESULT_PATH}")
    emit(capsys, "\n".join(lines))

    if not comparable:
        pytest.skip(
            "no comparable baseline for this machine; wrote measurements only "
            "(record a parity baseline with: "
            "python benchmarks/sensor_bench.py --capture-baseline)"
        )
    # The committed baseline measures the pre-vectorisation scalar code and
    # carries the acceptance multiples; a baseline recaptured from current
    # code only gates parity (no regression).
    scalar = baseline.get("reference", SCALAR_REFERENCE) == SCALAR_REFERENCE
    gates = SENSOR_GATES if scalar else {k: SENSOR_PARITY for k in SENSOR_GATES}
    for key, required in gates.items():
        speedup = payload["speedup_vs_baseline"].get(key)
        assert speedup is not None, (
            f"baseline is missing {key!r}; recapture it with "
            "python benchmarks/sensor_bench.py --capture-baseline"
        )
        assert speedup >= required, (
            f"{key} regressed: {speedup:.2f}x vs required {required:.2f}x "
            f"over the recorded baseline ({baseline.get('reference', 'unknown')})"
        )
