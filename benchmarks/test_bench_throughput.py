"""Ext-D — Simulator and pipeline throughput.

Fault-injection campaigns need thousands of simulated kilometres, so the
paper's approach lives or dies on simulator throughput.  These micro
benchmarks measure the hot paths with pytest-benchmark's full statistics:

* world tick with NPC traffic (physics + behaviours),
* camera render,
* IL-CNN single-frame inference,
* one full server/client pipeline step (render + agent + channels +
  violations).
"""

import numpy as np
import pytest

from repro.agent.ilcnn import ILCNN, ILCNNConfig
from repro.core import run_episode, standard_scenarios
from repro.sim.builders import SimulationBuilder
from repro.sim.channel import Channel
from repro.sim.client import AgentClient
from repro.sim.physics import VehicleControl
from repro.sim.server import SimulationServer
from repro.sim.town import GridTownConfig

TOWN = GridTownConfig(rows=3, cols=3)


@pytest.fixture(scope="module")
def handles():
    builder = SimulationBuilder(with_lidar=False)
    scenario = standard_scenarios(
        1, seed=5, town_config=TOWN, n_npc_vehicles=4, n_pedestrians=4
    )[0]
    return builder.build_episode(scenario)


@pytest.mark.benchmark(group="ext-d-throughput")
def test_world_tick_throughput(benchmark, handles):
    world = handles.world
    world.ego.apply_control(VehicleControl(throttle=0.3))
    benchmark(world.tick)


@pytest.mark.benchmark(group="ext-d-throughput")
def test_camera_render_throughput(benchmark, handles):
    world = handles.world
    camera = handles.sensors.camera
    rng = np.random.default_rng(0)
    benchmark(camera.read, world, world.ego, rng)


@pytest.mark.benchmark(group="ext-d-throughput")
def test_ilcnn_inference_throughput(benchmark):
    model = ILCNN(ILCNNConfig())
    model.set_training(False)
    rng = np.random.default_rng(0)
    image = rng.integers(0, 255, (64, 96, 3), dtype=np.uint8)
    benchmark(model.predict_one, image, 5.0, 0)


@pytest.mark.benchmark(group="ext-d-throughput")
def test_full_pipeline_step_throughput(benchmark, handles):
    world = handles.world

    class _Still:
        def reset(self, mission):
            pass

        def step(self, frame):
            return VehicleControl(brake=1.0)

    sensor_ch, control_ch = Channel("sensor"), Channel("control")
    server = SimulationServer(world, handles.sensors, sensor_ch, control_ch)
    client = AgentClient(_Still(), sensor_ch, control_ch)
    server.send_initial_frame()

    def step():
        client.tick(world.frame)
        server.tick()

    benchmark(step)


@pytest.mark.benchmark(group="ext-d-throughput")
def test_episode_throughput(benchmark):
    """Whole-episode wall time for a short autopilot mission."""
    from repro.agent import autopilot_agent_factory

    builder = SimulationBuilder(with_lidar=False)
    scenario = standard_scenarios(
        1, seed=6, town_config=TOWN, min_distance=80, max_distance=160
    )[0]

    record = benchmark.pedantic(
        run_episode,
        args=(builder, scenario, autopilot_agent_factory()),
        rounds=1,
        iterations=1,
    )
    assert record.success
