"""Figure 3 — Traffic violations per km per input fault injector.

Paper: "Fig. 3 shows a similar increase in variability of traffic
violations per km driven across a range of sensor fault injectors" (log
scale; NoInject pinned near zero).  The benchmark reuses the fig. 2
campaign (same records — the paper plots two metrics of one experiment),
prints per-run VPK distributions as boxplots plus the pooled VPK, and
asserts the shape: camera faults raise VPK above the fault-free baseline.
"""

import pytest

from repro.core import boxplot, figure_header, format_table, metrics_by_injector
from repro.core.analysis import compare_to_baseline

from .conftest import bench_agent_kind, bench_runs, emit, write_result
from .test_fig2_mission_success import INJECTOR_ORDER, run_sensor_fault_campaign


@pytest.mark.benchmark(group="fig3")
def test_fig3_violations_per_km(
    benchmark, builder, agent_factory, eval_scenarios, campaign_cache, capsys
):
    result = benchmark.pedantic(
        run_sensor_fault_campaign,
        args=(builder, agent_factory, eval_scenarios, campaign_cache),
        rounds=1,
        iterations=1,
    )
    metrics = metrics_by_injector(result.records)

    rows = [
        [
            name,
            metrics[name].vpk,
            metrics[name].apk,
            metrics[name].total_violations,
            metrics[name].total_km,
        ]
        for name in INJECTOR_ORDER
    ]
    groups = {name: metrics[name].vpk_per_run for name in INJECTOR_ORDER}
    effects = compare_to_baseline(groups, baseline="none")
    effect_rows = [
        [name, e["median_shift"], e["mean_ratio_vs_baseline"], e["p_value"]]
        for name, e in effects.items()
    ]
    text = "\n".join(
        [
            figure_header(
                "Figure 3",
                f"Total violations / km per input fault injector "
                f"[agent={bench_agent_kind()}, runs/injector={bench_runs()}]",
            ),
            format_table(["injector", "VPK", "APK", "violations", "km"], rows),
            "",
            boxplot(groups, title="Per-run VPK distribution (paper plots this spread):"),
            "",
            format_table(
                ["injector", "median_shift", "mean_ratio", "p(MWU)"],
                effect_rows,
                title="Effect vs. NoInject baseline:",
            ),
        ]
    )
    write_result("fig3_violations_per_km.txt", text)
    emit(capsys, text)

    vpk = {name: metrics[name].vpk for name in INJECTOR_ORDER}
    faulted = [vpk[name] for name in INJECTOR_ORDER[1:]]
    # Paper shape: baseline VPK near the bottom; faults raise the average.
    # Only meaningful for the camera-driven agent — the autopilot mode is a
    # negative control that (correctly) ignores camera corruption.
    if bench_agent_kind() == "nn":
        assert sum(faulted) / len(faulted) >= vpk["none"], vpk
        assert max(faulted) > vpk["none"], vpk
