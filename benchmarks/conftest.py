"""Shared fixtures for the figure-reproduction benchmarks.

Knobs (environment variables):

* ``AVFI_BENCH_RUNS`` — scenarios per injector configuration (default 8).
  Smaller is faster but noisier; the paper's qualitative shapes survive
  down to ~4.
* ``AVFI_BENCH_AGENT`` — ``nn`` (default; the paper's IL-CNN agent, trained
  and cached on first use) or ``autopilot`` (the privileged expert, for a
  fast infrastructure check).

The first ``nn`` benchmark session collects an imitation dataset and trains
the agent (~6 min on a laptop CPU); the checkpoint is cached under
``benchmarks/_artifacts/`` and reused afterwards.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.agent import autopilot_agent_factory, get_or_train_default_model, nn_agent_factory
from repro.core import standard_scenarios
from repro.sim.builders import SimulationBuilder

ARTIFACTS = Path(__file__).parent / "_artifacts"
RESULTS = Path(__file__).parent / "results"


def pytest_collection_modifyitems(items):
    """Mark every benchmark as ``slow``.

    Figure reproductions run minutes of simulation (the ``nn`` agent
    trains on first use), so the default ``-q`` tier-1 run deselects them;
    run with ``-m slow`` (or ``-m ""``) to execute.
    """
    for item in items:
        if Path(item.fspath).parent == Path(__file__).parent:
            item.add_marker(pytest.mark.slow)

#: Scenario suite seed for evaluation campaigns.  Distinct from the
#: training-data seed (100) so benchmark missions are unseen by the agent.
EVAL_SEED = 777


def bench_runs() -> int:
    return int(os.environ.get("AVFI_BENCH_RUNS", "8"))


def bench_agent_kind() -> str:
    kind = os.environ.get("AVFI_BENCH_AGENT", "nn")
    if kind not in ("nn", "autopilot"):
        raise ValueError(f"AVFI_BENCH_AGENT must be nn|autopilot, got {kind!r}")
    return kind


@pytest.fixture(scope="session")
def builder():
    return SimulationBuilder(with_lidar=False)


@pytest.fixture(scope="session")
def agent_factory(builder):
    if bench_agent_kind() == "autopilot":
        return autopilot_agent_factory()
    model = get_or_train_default_model(cache_dir=ARTIFACTS, builder=SimulationBuilder())
    return nn_agent_factory(model)


@pytest.fixture(scope="session")
def eval_scenarios():
    return standard_scenarios(
        bench_runs(), seed=EVAL_SEED, n_npc_vehicles=2, n_pedestrians=2
    )


@pytest.fixture(scope="session")
def campaign_cache():
    """Cross-benchmark cache so fig. 2 and fig. 3 share one campaign run."""
    return {}


def write_result(name: str, text: str) -> Path:
    """Persist a figure's text output under benchmarks/results/."""
    RESULTS.mkdir(parents=True, exist_ok=True)
    path = RESULTS / name
    path.write_text(text + "\n")
    return path


def emit(capsys, text: str) -> None:
    """Print bench output past pytest's capture so it lands in the log."""
    with capsys.disabled():
        print("\n" + text)
