"""Figure 4 — Violations per km vs. ADA→actuation output delay.

Paper: "Fig. 4 shows a significant increase in the number of traffic
violations per km with the introduction of delays between the generation
of output from the agent's neural network and its actuation in the world
model...  Our simulation environment is configured to run at 15 frames per
second; hence, a delay of 30 frames corresponds to an overall delay of a
mere 2 s between decision and actuation."

The benchmark sweeps k ∈ {0, 5, 10, 20, 30} frames of control-channel
delay with the paper's replay semantics, prints the VPK series, and
asserts the monotone-increase shape between the extremes.
"""

import pytest

from repro.core import Campaign, boxplot, figure_header, format_table, metrics_by_injector
from repro.core.faults import OutputDelay

from .conftest import bench_agent_kind, bench_runs, emit, write_result

DELAYS = [0, 5, 10, 20, 30]
FPS = 15.0


def _injector_name(delay: int) -> str:
    return f"delay-{delay}"


@pytest.mark.benchmark(group="fig4")
def test_fig4_output_delay_sweep(benchmark, builder, agent_factory, eval_scenarios, capsys):
    injectors = {
        _injector_name(k): ([OutputDelay(k)] if k else []) for k in DELAYS
    }

    def run():
        campaign = Campaign(
            eval_scenarios, agent_factory, injectors=injectors, builder=builder,
            base_seed=418,
        )
        return campaign.run()

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    metrics = metrics_by_injector(result.records)

    rows = []
    for k in DELAYS:
        m = metrics[_injector_name(k)]
        ttv = m.ttv_median_s if m.ttv_s else None
        rows.append([k, k / FPS, m.vpk, m.apk, m.msr, ttv])
    groups = {f"{k:>2} frames": metrics[_injector_name(k)].vpk_per_run for k in DELAYS}
    text = "\n".join(
        [
            figure_header(
                "Figure 4",
                f"Violations / km vs. injected output delay (15 FPS; 30 frames = 2 s) "
                f"[agent={bench_agent_kind()}, runs/delay={bench_runs()}]",
            ),
            format_table(
                ["delay_frames", "delay_s", "VPK", "APK", "MSR_%", "TTV_median_s"], rows
            ),
            "",
            boxplot(groups, title="Per-run VPK distribution by delay:"),
        ]
    )
    write_result("fig4_output_delay.txt", text)
    emit(capsys, text)

    vpk = [metrics[_injector_name(k)].vpk for k in DELAYS]
    # Paper shape: significant increase with delay — a strong end-to-end
    # rise always, plus (for the paper's IL-CNN configuration) a rise into
    # a sustained plateau: the curve saturates once the car is effectively
    # uncontrolled, so the tail is only required to stay near the peak,
    # not to keep strictly climbing.
    assert vpk[-1] > max(vpk[0] * 3.0, vpk[0] + 2.0), vpk
    if bench_agent_kind() == "nn":
        mid = vpk[len(DELAYS) // 2]
        assert mid > vpk[0], vpk
        assert vpk[-1] >= 0.8 * mid, vpk
