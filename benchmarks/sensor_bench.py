"""Shared measurement harness for the sensor hot-path benchmarks.

One module owns the scene configuration and the timing loop so that the
pre-PR baseline capture and the regression gate measure *exactly* the same
thing.  The scene is deliberately billboard-heavy (a 4x4 town has nine
block-interior buildings; eight NPC vehicles plus four pedestrians ride on
top), matching the acceptance scene of the vectorisation work: >= 8
buildings and >= 8 actors in front of the sensors.

Run directly to (re)capture the machine baseline::

    PYTHONPATH=src python benchmarks/sensor_bench.py --capture-baseline

which overwrites ``benchmarks/BENCH_sensor_pipeline_baseline.json`` with a
measurement of the *current* implementation (tagged as such, so the gate
requires parity rather than the vectorisation multiples).  The slow-tier
gate (``benchmarks/test_bench_throughput.py``) re-measures, writes
``benchmarks/results/BENCH_sensor_pipeline.json`` and fails on regression.
"""

from __future__ import annotations

import json
import platform
import time
from pathlib import Path

import numpy as np

from repro.core import standard_scenarios
from repro.sim.actors import Pedestrian, Vehicle
from repro.sim.builders import SimulationBuilder
from repro.sim.channel import Channel
from repro.sim.client import AgentClient
from repro.sim.geometry import Transform, Vec2
from repro.sim.physics import VehicleControl
from repro.sim.sensors import Lidar2D
from repro.sim.server import SimulationServer
from repro.sim.town import GridTownConfig
from repro.sim.world import World

RESULTS_DIR = Path(__file__).parent / "results"
#: The committed reference measurement (outside the gitignored results/
#: directory): captured from the PRE-vectorisation scalar implementation,
#: so the acceptance multiples (3x pipeline, 4x camera/LIDAR) are
#: meaningful.  Baselines recaptured with --capture-baseline measure the
#: *current* code and are marked as such — the regression gate then only
#: requires parity, not the vectorisation multiples.
BASELINE_PATH = Path(__file__).parent / "BENCH_sensor_pipeline_baseline.json"
RESULT_PATH = RESULTS_DIR / "BENCH_sensor_pipeline.json"

#: ``reference`` value of the committed scalar-implementation baseline.
SCALAR_REFERENCE = "pre-vectorisation-scalar"
#: ``reference`` value written by --capture-baseline runs of current code.
CURRENT_REFERENCE = "current-implementation"

#: 4x4 intersections -> 9 block-interior buildings.
BENCH_TOWN = GridTownConfig(rows=4, cols=4)
N_NPC_VEHICLES = 8
N_PEDESTRIANS = 4


def _cpu_model() -> str:
    """The CPU model string (``platform.processor()`` is empty on Linux)."""
    try:
        with open("/proc/cpuinfo") as fh:
            for line in fh:
                if line.startswith("model name"):
                    return line.split(":", 1)[1].strip()
    except OSError:
        pass
    return platform.processor() or "unknown"


def machine_fingerprint() -> str:
    """Machine identity: speedup gates only fire on the capture host."""
    return f"{platform.machine()}/{_cpu_model()}/cpus={len(_affinity())}"


def _affinity() -> set[int]:
    import os

    try:
        return os.sched_getaffinity(0)
    except AttributeError:  # non-Linux
        return set(range(os.cpu_count() or 1))


def ops_per_second(fn, *, target_s: float = 0.25, repeats: int = 5) -> float:
    """Best-of-``repeats`` throughput of ``fn()`` in calls per second."""
    # Calibrate the inner iteration count to ~target_s per repeat.
    fn()  # warm caches / lazy state outside the timed region
    start = time.perf_counter()
    fn()
    once = max(time.perf_counter() - start, 1e-7)
    number = max(1, int(target_s / once))
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        for _ in range(number):
            fn()
        best = min(best, (time.perf_counter() - start) / number)
    return 1.0 / best


def _bench_scene():
    builder = SimulationBuilder(with_lidar=True)
    scenario = standard_scenarios(
        1,
        seed=5,
        town_config=BENCH_TOWN,
        n_npc_vehicles=N_NPC_VEHICLES,
        n_pedestrians=N_PEDESTRIANS,
    )[0]
    handles = builder.build_episode(scenario)
    handles.world.set_weather("ClearNoon")
    return handles


#: Ego-frame actor placement of the dense sensor scene: 8 vehicles and 4
#: pedestrians, all inside the LIDAR's 40 m range and the camera frustum —
#: the hot case fault-injection campaigns actually render (traffic around
#: the ego), not an empty road.
VEHICLE_OFFSETS = [
    (12.0, 0.0, 0.0),
    (20.0, 2.5, 0.3),
    (28.0, -2.0, 0.0),
    (35.0, 1.0, -0.4),
    (8.0, -3.2, 0.0),
    (16.0, 3.2, 0.2),
    (24.0, 0.5, 0.0),
    (31.0, -3.0, 0.1),
]
PEDESTRIAN_OFFSETS = [(6.0, -5.0), (10.0, 5.0), (14.0, -4.5), (18.0, 4.2)]


#: Spawn-point index of the dense scene's ego: an interior pose whose
#: whole ground view lies inside the rasterised town texture.
DENSE_SPAWN_INDEX = 160


def _dense_sensor_scene():
    """Deterministic ego + traffic ring with every actor in sensor range."""
    builder = SimulationBuilder(with_lidar=True)
    town = builder.town_for(BENCH_TOWN)
    renderer = builder.renderer_for(BENCH_TOWN)
    wp = town.spawn_points()[DENSE_SPAWN_INDEX]
    world = World(town, weather="ClearNoon", seed=9)
    ego = world.spawn_ego(Transform(wp.position, wp.yaw))
    for fx, fy, dyaw in VEHICLE_OFFSETS:
        pose = Transform(ego.transform.to_world(Vec2(fx, fy)), wp.yaw + dyaw)
        world.add_actor(Vehicle(pose))
    for fx, fy in PEDESTRIAN_OFFSETS:
        pose = Transform(ego.transform.to_world(Vec2(fx, fy)), 0.0)
        world.add_actor(Pedestrian(pose, town))
    return world, ego, renderer


def measure_sensor_pipeline() -> dict[str, float]:
    """Ops/s for every sensor hot path on the canonical bench scenes."""
    world, ego, renderer = _dense_sensor_scene()
    others = [a for a in world.actors if a.id != ego.id and a.alive]
    rng = np.random.default_rng(0)
    lidar = Lidar2D(n_rays=19, fov_deg=120.0)

    out = {
        "camera_render": ops_per_second(
            lambda: renderer.render(ego.transform, others, world.weather, rng)
        ),
        "semantic_render": ops_per_second(
            lambda: renderer.render_semantic_depth(ego.transform, others)
        ),
        "lidar_read": ops_per_second(lambda: lidar.read(world, ego, rng)),
    }

    # Full server/client pipeline step on a fresh episode (render + sensor
    # bundle + channels + agent + physics + violation monitor).
    handles = _bench_scene()
    world = handles.world

    class _Still:
        def reset(self, mission):
            pass

        def step(self, frame):
            return VehicleControl(brake=1.0)

    sensor_ch, control_ch = Channel("sensor"), Channel("control")
    server = SimulationServer(world, handles.sensors, sensor_ch, control_ch)
    client = AgentClient(_Still(), sensor_ch, control_ch)
    server.send_initial_frame()

    def step():
        client.tick(world.frame)
        server.tick()

    out["pipeline_step"] = ops_per_second(step)
    return out


def measurement_payload(reference: str = CURRENT_REFERENCE) -> dict:
    return {
        "machine": machine_fingerprint(),
        "reference": reference,
        "scene": {
            "town": f"{BENCH_TOWN.rows}x{BENCH_TOWN.cols}",
            "buildings": (BENCH_TOWN.rows - 1) * (BENCH_TOWN.cols - 1),
            "npc_vehicles": N_NPC_VEHICLES,
            "pedestrians": N_PEDESTRIANS,
        },
        "ops_per_second": measure_sensor_pipeline(),
    }


def load_baseline() -> dict | None:
    if not BASELINE_PATH.exists():
        return None
    return json.loads(BASELINE_PATH.read_text())


if __name__ == "__main__":
    import sys

    if "--capture-baseline" not in sys.argv:
        sys.exit("usage: python benchmarks/sensor_bench.py --capture-baseline")
    payload = measurement_payload()
    BASELINE_PATH.write_text(json.dumps(payload, indent=1, sort_keys=True) + "\n")
    print(json.dumps(payload, indent=1, sort_keys=True))
    print(f"baseline written to {BASELINE_PATH}")
