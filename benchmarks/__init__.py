"""Figure-reproduction and throughput benchmarks.

A real package so pytest imports benchmark modules as
``benchmarks.test_*`` and their ``from .conftest import …`` relative
imports resolve (the bare-directory layout broke tier-1 collection).
"""
