"""Ext-A — Hardware faults: resilience vs. control-command corruption rate.

The paper's hardware-fault class ("AVFI can intercept and corrupt a control
command from the IL-CNN and then forward it to the server") has no figure;
this extension experiment sweeps the per-frame probability of a single-bit
flip in the control command and reports MSR/VPK/APK, plus a stuck-at
steering fault as the worst-case reference.
"""

import pytest

from repro.core import Campaign, figure_header, format_table, metrics_by_injector
from repro.core.faults import ControlBitFlip, ControlStuckAt, Trigger

from .conftest import bench_agent_kind, bench_runs, emit, write_result

FLIP_PROBS = [0.0, 0.02, 0.1, 0.3]


@pytest.mark.benchmark(group="ext-a")
def test_ablation_hardware_faults(benchmark, builder, agent_factory, eval_scenarios, capsys):
    injectors = {}
    for p in FLIP_PROBS:
        name = f"bitflip-p{p}"
        injectors[name] = (
            [ControlBitFlip(trigger=Trigger(probability=p))] if p > 0 else []
        )
    injectors["stuck-steer"] = [
        ControlStuckAt("steer", 1.0, trigger=Trigger(start_frame=75))
    ]

    def run():
        return Campaign(
            eval_scenarios, agent_factory, injectors=injectors, builder=builder,
            base_seed=77,
        ).run()

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    metrics = metrics_by_injector(result.records)

    rows = [
        [name, m.msr, m.vpk, m.apk, m.ttv_median_s if m.ttv_s else None]
        for name, m in metrics.items()
    ]
    text = "\n".join(
        [
            figure_header(
                "Ext-A",
                f"Hardware faults: control-command bit flips "
                f"[agent={bench_agent_kind()}, runs/config={bench_runs()}]",
            ),
            format_table(["injector", "MSR_%", "VPK", "APK", "TTV_median_s"], rows),
        ]
    )
    write_result("ext_a_hardware_faults.txt", text)
    emit(capsys, text)

    # Shape: heavy corruption is worse than none; stuck-at steering is fatal.
    clean = metrics["bitflip-p0.0"]
    heavy = metrics["bitflip-p0.3"]
    stuck = metrics["stuck-steer"]
    assert heavy.vpk >= clean.vpk
    assert stuck.msr <= clean.msr
    assert stuck.vpk > clean.vpk
