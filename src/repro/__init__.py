"""AVFI: Fault Injection for Autonomous Vehicles — DSN 2018 reproduction.

The package mirrors the paper's architecture (fig. 1):

* :mod:`repro.sim` — the world simulator (CARLA/Unreal substitute): towns,
  physics, actors, sensors, rendering, client/server channels, violations;
* :mod:`repro.agent` — the Autonomous Driving Agent: a numpy NN library,
  route planner, expert autopilot and the conditional imitation-learning
  CNN of Codevilla et al.;
* :mod:`repro.core` — AVFI itself: fault models (data / hardware / timing /
  ML), fault localisation, the injection harness, campaign runner and the
  resilience metrics MSR, VPK, APK and TTV.

Quickstart::

    from repro.core import Campaign, standard_scenarios, metrics_by_injector
    from repro.core.faults import GaussianNoise
    from repro.agent import get_or_train_default_model, nn_agent_factory

    scenarios = standard_scenarios(5, seed=1)
    model = get_or_train_default_model()
    campaign = Campaign(
        scenarios,
        nn_agent_factory(model),
        injectors={"none": [], "gaussian": [GaussianNoise(sigma=0.1)]},
    )
    for name, m in metrics_by_injector(campaign.run().records).items():
        print(name, m.summary_row())
"""

from . import agent, core, sim

__version__ = "1.0.0"

__all__ = ["agent", "core", "sim", "__version__"]
