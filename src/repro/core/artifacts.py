"""Content-addressed artifact store: ship NN agent weights once per worker.

The queue layer moves the campaign context as one pickle, and for an NN
agent that pickle *contains the full model* — every publish, every
context reload, every worker attach re-ships megabytes of weights that
never change within a campaign.  This module is the warm-start half the
ROADMAP called for:

* :class:`ArtifactStore` — a flat content-addressed blob store
  (``root/<sha[:2]>/<sha>``).  Writes are atomic (temp + rename) and
  idempotent: the same key is only ever the same bytes, so concurrent
  puts of one artifact are harmless.  Both broker flavours expose it —
  ``FilesystemBroker.artifact_put/get/has`` on the shared directory, the
  same three ops over TCP frames — so whatever queue a worker already
  talks to is also its artifact source.
* :class:`ArtifactNNAgentFactory` — a picklable stand-in for
  :class:`~repro.agent.agents.NNAgentFactory` that carries only the
  weight digest and a broker location.  Workers fetch the ``.npz`` blob
  **once per process** (a module-level cache keyed by digest; repeated
  unpickles, context reloads and multiplexed slots all reuse it) and
  build the identical model.

The content address is
:func:`~repro.agent.agents.model_weight_digest` — the *same* SHA-1 that
:meth:`~repro.agent.agents.NNAgentFactory.config_signature` embeds in
every checkpoint fingerprint.  One key for shipping and fingerprinting
means an artifact-warm-started campaign is byte-identical to one whose
context carried the weights inline: same signature string, same episode
fingerprints, same records.
"""

from __future__ import annotations

import os
import re
import tempfile
import threading
from pathlib import Path

__all__ = [
    "ArtifactStore",
    "ArtifactNNAgentFactory",
    "internalize_nn_factory",
    "local_artifact_cache_dir",
]

_SHA_RE = re.compile(r"^[0-9a-f]{8,64}$")


def _check_sha(sha: str) -> str:
    """Content addresses double as path components (and travel over the
    wire) — reject anything that is not a plain hex digest before it can
    become ``../`` traversal on a server."""
    if not isinstance(sha, str) or not _SHA_RE.fullmatch(sha):
        raise ValueError(f"invalid artifact digest {sha!r} (want 8-64 hex chars)")
    return sha


class ArtifactStore:
    """A directory of immutable blobs keyed by hex digest.

    ``put`` is idempotent — content addressing means a key names exactly
    one byte string forever, so an existing file short-circuits the
    write and two machines racing to put the same artifact cannot
    conflict (both rename identical bytes into place).
    """

    def __init__(self, root: str | Path):
        self.root = Path(root)

    def path(self, sha: str) -> Path:
        sha = _check_sha(sha)
        return self.root / sha[:2] / sha

    def has(self, sha: str) -> bool:
        return self.path(sha).exists()

    def put(self, blob: bytes, sha: str) -> str:
        path = self.path(sha)
        if path.exists():
            return sha
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_name(f".{path.name}.{os.getpid()}.{threading.get_ident()}.tmp")
        tmp.write_bytes(blob)
        os.replace(tmp, path)
        return sha

    def get(self, sha: str) -> bytes | None:
        try:
            return self.path(sha).read_bytes()
        except FileNotFoundError:
            return None


def local_artifact_cache_dir() -> Path:
    """Where a worker machine caches fetched artifacts across processes
    (override with ``REPRO_ARTIFACT_CACHE``).  Per-user under the temp
    dir by default so shared hosts don't fight over file ownership."""
    override = os.environ.get("REPRO_ARTIFACT_CACHE")
    if override:
        return Path(override)
    try:
        uid = os.getuid()
    except AttributeError:  # non-POSIX
        uid = 0
    return Path(tempfile.gettempdir()) / f"repro-artifacts-{uid}"


#: Process-local models by (weight digest, config): the "once per
#: worker" in warm start.  Unpickling the factory for every context
#: reload (or slot) must not re-fetch or re-deserialise megabytes of
#: weights.  The config rides in the key because the same weights can
#: be loaded under different architectures — two factories sharing a
#: digest must not silently share whichever config loaded first.
_MODEL_CACHE: dict[tuple[str, str], object] = {}
_MODEL_CACHE_LOCK = threading.Lock()


def _cache_key(sha: str, config) -> tuple[str, str]:
    # ILCNNConfig is a frozen dataclass, so repr is a stable identity;
    # None (default config) keys separately, which at worst costs one
    # redundant load.
    return (sha, repr(config))


def _fetch_model(sha: str, source: str, config=None):
    """The digest's model, from (in order): the process cache, the local
    on-disk cache, the broker at ``source``.  ``config`` is the
    :class:`~repro.agent.ilcnn.ILCNNConfig` the weights were trained
    under — the ``.npz`` holds only arrays, so architecture must travel
    with the factory (``None`` = default config)."""
    key = _cache_key(sha, config)
    with _MODEL_CACHE_LOCK:
        model = _MODEL_CACHE.get(key)
    if model is not None:
        return model

    # Deferred: keep core importable without agent.
    from ..agent.agents import model_weight_digest
    from ..agent.ilcnn import ILCNN

    cache = ArtifactStore(local_artifact_cache_dir())
    path = cache.path(sha)
    if not path.exists():
        from .netqueue import make_broker

        broker = make_broker(source)
        blob = broker.artifact_get(sha)
        if blob is None:
            raise RuntimeError(
                f"artifact {sha} not found at broker {source!r} — was the "
                f"campaign published with internalize_nn_factory?"
            )
        cache.put(blob, sha)
    model = ILCNN.load(path, config)
    model.set_training(False)
    # The store cannot check the content address itself (the sha digests
    # the *loaded weights*, not the blob), so the worker must: a wrong
    # blob under a known digest would otherwise run different weights
    # while every fingerprint still claims the right ones.
    loaded = model_weight_digest(model)
    if loaded != sha:
        path.unlink(missing_ok=True)  # evict: never trust this file again
        raise RuntimeError(
            f"artifact {sha} from {source!r} loaded with weight digest "
            f"{loaded} — store corrupted or poisoned; cached copy evicted"
        )
    with _MODEL_CACHE_LOCK:
        _MODEL_CACHE.setdefault(key, model)
    return model


class ArtifactNNAgentFactory:
    """An NN agent factory whose weights live in an artifact store.

    Pickles at a few hundred bytes (digest + broker location + replan
    tolerance) instead of the full model; the model materialises lazily
    on first agent build, via the per-process cache.  The
    ``config_signature`` is *identical* to the eager factory's for the
    same weights — fingerprints must not depend on how weights travel.
    """

    def __init__(self, sha: str, source: str, replan_tolerance: float = 10.0,
                 config=None):
        self.sha = _check_sha(sha)
        self.source = str(source)
        self.replan_tolerance = replan_tolerance
        #: :class:`~repro.agent.ilcnn.ILCNNConfig` (or ``None`` for the
        #: default) — the ``.npz`` artifact holds only weight arrays, so
        #: the architecture rides with the factory.
        self.config = config

    @property
    def model(self):
        return _fetch_model(self.sha, self.source, self.config)

    def __call__(self, handles, mission):
        from ..agent.agents import NNAgentFactory

        return NNAgentFactory(self.model, self.replan_tolerance)(handles, mission)

    def config_signature(self) -> str:
        from ..agent.agents import nn_config_signature

        return nn_config_signature(self.sha, self.replan_tolerance)

    def __repr__(self) -> str:
        return (
            f"ArtifactNNAgentFactory(sha={self.sha[:12]!r}, "
            f"source={self.source!r})"
        )


def internalize_nn_factory(factory, broker, source: str):
    """Swap an eager NN factory for an artifact-backed one, uploading the
    weights to ``broker`` (keyed by their
    :func:`~repro.agent.agents.model_weight_digest`) if not already
    present.  Non-NN factories pass through unchanged, so callers can
    apply this unconditionally before publishing a campaign.

    ``source`` is the broker location *as workers will reach it* — the
    string they can hand to :func:`~repro.core.netqueue.make_broker`
    (``tcp://host:port``, or the shared queue directory).
    """
    from ..agent.agents import NNAgentFactory, model_weight_digest

    if isinstance(factory, ArtifactNNAgentFactory):
        return factory
    if not isinstance(factory, NNAgentFactory):
        return factory
    sha = model_weight_digest(factory.model)
    if not broker.artifact_has(sha):
        # save_state appends .npz when the suffix is missing, so spell it
        # out and read the bytes back for the store.
        with tempfile.TemporaryDirectory(prefix="repro-artifact-") as tmp:
            path = Path(tmp) / f"{sha}.npz"
            factory.model.save(path)
            blob = path.read_bytes()
        broker.artifact_put(sha, blob)
    config = getattr(factory.model, "config", None)
    replica = ArtifactNNAgentFactory(
        sha, source, factory.replan_tolerance, config=config
    )
    # Seed the local process cache: the coordinator already holds the
    # loaded model, no reason for *it* to round-trip through the store.
    with _MODEL_CACHE_LOCK:
        _MODEL_CACHE.setdefault(_cache_key(sha, config), factory.model)
    return replica
