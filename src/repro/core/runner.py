"""Parallel campaign execution: scheduling episodes across worker processes.

The paper's headline experiments are (scenario × injector × seed) sweeps of
*independent* episodes, which makes them embarrassingly parallel — as long
as three invariants survive the distribution:

* **determinism** — every episode's outcome is a pure function of
  ``(scenario, injector faults, harness seed)``; the paired-design seed
  formula (:func:`episode_seed`) is computed up front so results never
  depend on which worker ran what, or in which order;
* **ordering** — records are collected back into the canonical grid order
  (injector-major, scenario-minor), so aggregate metrics and summary rows
  are byte-identical to a serial run;
* **resumability** — each finished episode is appended to a JSONL
  checkpoint (the same format :class:`~repro.core.experiment.Study` uses),
  so an interrupted overnight sweep restarts where it stopped and never
  executes an episode twice.

Beside the JSONL checkpoint the runner can stream a **parquet sink**
(``parquet_path=``, :class:`~repro.core.sink.ParquetSink`): the JSONL
file stays the durability layer (atomic appends, resume identity), the
parquet copy is the analytics artifact for million-episode aggregation.
When pyarrow is missing the runner degrades to JSONL-only with a
warning rather than failing the campaign.

The execution strategy is pluggable: :class:`SerialExecutor` runs tasks
in-process (tests, debugging, ``workers<=1``), :class:`ProcessExecutor`
fans chunks of tasks out to a :class:`~concurrent.futures.ProcessPoolExecutor`,
and :class:`~repro.core.queue.QueueExecutor` shards the grid across
*machines* through a shared broker directory (``executor="queue"`` /
``queue_dir=``).  All feed the same top-level, picklable
:func:`execute_task` → :func:`~repro.core.campaign.run_episode` path, so
the serial run is the ground truth every distributed run must reproduce
exactly.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import pickle
import time
import traceback
from concurrent.futures import CancelledError, ProcessPoolExecutor, as_completed
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Iterable, Iterator, Sequence

from ..sim.builders import SimulationBuilder
from ..sim.scenario import Scenario
from .campaign import (
    CampaignResult,
    RunRecord,
    component_signature,
    episode_fingerprint,
    run_episode,
)
from .faults.base import FaultModel
from .outcomes import (
    EpisodeFailure,
    EpisodeOutcome,
    FaultTolerancePolicy,
    reap_process,
)

__all__ = [
    "EpisodeTask",
    "EpisodeTimeout",
    "CampaignContext",
    "available_cpus",
    "execute_task",
    "attempt_task",
    "episode_seed",
    "SerialExecutor",
    "ProcessExecutor",
    "make_executor",
    "append_jsonl_line",
    "repair_jsonl_tail",
    "record_identity",
    "load_checkpoint_records",
    "load_checkpoint_rows",
    "ParallelCampaignRunner",
]


def repair_jsonl_tail(path: str | Path) -> int:
    """Physically drop a torn final line (a hard kill / full disk left a
    partial record); returns the number of bytes removed.

    :func:`load_checkpoint_records` already *ignores* a trailing
    fragment, but ignoring is not enough once anyone appends again: the
    next record would be glued onto the fragment with no newline between
    them, turning one recoverable tear into an unparseable interior line
    that poisons every later resume.  Truncating back to the last
    complete line before appending resumes makes the silent in-memory
    drop physical.  Safe to run while atomic appenders
    (:func:`append_jsonl_line`) are live: their single-write lines never
    leave the file transiently newline-less, appenders hold a shared
    ``flock`` for the write's duration (so the exclusive lock here waits
    out any in-flight append rather than mistaking its partial
    visibility for a tear), and concurrent *repairers* re-read the file
    under the exclusive lock, so a stale pre-repair read can never
    truncate away a record appended in between.
    """
    path = Path(path)
    try:
        fh = open(path, "rb+")
    except FileNotFoundError:
        return 0
    with fh:
        try:
            import fcntl

            fcntl.flock(fh.fileno(), fcntl.LOCK_EX)
        except (ImportError, OSError):
            pass  # no flock (non-POSIX / odd mount): best-effort repair
        # Scan backwards in chunks for the last newline — a fragment is
        # at most one record, so this is O(tail), not O(checkpoint),
        # which matters because every worker attach runs it under the
        # exclusive lock that stalls all appenders.
        size = fh.seek(0, os.SEEK_END)
        if size == 0:
            return 0
        chunk = 65536
        pos = size
        last_newline = -1
        while pos > 0 and last_newline < 0:
            start = max(0, pos - chunk)
            fh.seek(start)
            buf = fh.read(pos - start)
            if pos == size and buf.endswith(b"\n"):
                return 0  # clean tail, nothing to repair
            index = buf.rfind(b"\n")
            if index >= 0:
                last_newline = start + index
            pos = start
        new_size = last_newline + 1 if last_newline >= 0 else 0
        fh.truncate(new_size)
        os.fsync(fh.fileno())
    return size - new_size


def append_jsonl_line(path: str | Path, obj: dict) -> None:
    """Durably append ``obj`` as one JSONL line — atomic w.r.t. concurrent
    appenders and hard kills.

    The whole encoded line goes down in a *single* ``os.write`` on an
    ``O_APPEND`` descriptor: POSIX appends each write at the current end
    of file, so two processes (or machines, on a well-behaved shared
    filesystem) appending to the same checkpoint can never interleave
    partial lines — exactly the multi-writer case the queue backend
    creates.  A buffered ``fh.write`` gives neither guarantee: the stdio
    buffer may flush mid-line at any boundary, so a kill can tear a
    record in half and a concurrent appender can land between the halves,
    turning a resumable checkpoint into a permanently corrupt one.

    ``fsync`` before close makes the record durable: once the runner has
    reported an episode complete, a power cut must not un-complete it.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    line = (json.dumps(obj) + "\n").encode()
    fd = os.open(path, os.O_WRONLY | os.O_APPEND | os.O_CREAT, 0o644)
    try:
        try:
            import fcntl

            # Shared lock, paired with repair_jsonl_tail's exclusive one:
            # a tail repair can never run while any append is in flight,
            # so a partially visible write (NFS attribute caching) cannot
            # be mistaken for a torn tail and truncated away.
            fcntl.flock(fd, fcntl.LOCK_SH)
        except (ImportError, OSError):
            pass  # no flock on this platform/mount: appends stay atomic
        written = os.write(fd, line)
        if written != len(line):
            # A short write (ENOSPC racing quota enforcement, RLIMIT_FSIZE)
            # already tore the line on disk; finishing it is the only way
            # to keep the file parseable for everyone else.  If the
            # remainder cannot be written either, cut our own fragment
            # back off before failing loudly — leaving it would hand the
            # next appender a tail to glue onto, and no other participant
            # runs a repair mid-campaign.
            try:
                while written < len(line):
                    more = os.write(fd, line[written:])
                    if more <= 0:
                        raise OSError(
                            f"short checkpoint append to {path}: "
                            f"{written}/{len(line)} bytes written"
                        )
                    written += more
            except OSError:
                os.close(fd)
                fd = -1
                repair_jsonl_tail(path)  # waits out concurrent appends (flock)
                raise
        os.fsync(fd)
    finally:
        if fd >= 0:
            os.close(fd)


def record_identity(record) -> tuple[str, str, int, str]:
    """A record's checkpoint identity — the counterpart of
    :meth:`EpisodeTask.identity` on the result side."""
    return (record.injector, record.scenario, record.seed, record.config_fingerprint)


def load_checkpoint_rows(
    path: str | Path | None,
) -> tuple[list[RunRecord], list[EpisodeFailure]]:
    """Parse a JSONL checkpoint into ``(records, failures)``.

    A hard kill (or full disk) can truncate the final append mid-line;
    that trailing fragment is dropped silently — the episode simply
    re-runs on resume.  A malformed line anywhere *else* means real
    corruption and raises.  Rows carrying an ``outcome`` key are
    :class:`~repro.core.outcomes.EpisodeFailure` journal entries
    (quarantined episodes live beside normal records in the same file).
    A line that parses as JSON but builds neither (a row appended by a
    different repro version into a shared queue checkpoint) is skipped,
    not fatal — it could never match a grid identity anyway, matching
    :meth:`~repro.core.queue.FilesystemBroker.read_results`.
    """
    if path is None:
        return [], []
    path = Path(path)
    if not path.exists():
        return [], []
    lines = [line for line in path.read_text().splitlines() if line.strip()]
    records: list[RunRecord] = []
    failures: list[EpisodeFailure] = []
    for lineno, line in enumerate(lines):
        try:
            row = json.loads(line)
        except json.JSONDecodeError:
            if lineno == len(lines) - 1:
                break  # truncated final write; resume re-runs this episode
            raise ValueError(
                f"corrupt checkpoint {path}: unparseable JSON on line {lineno + 1}"
            )
        try:
            if isinstance(row, dict) and "outcome" in row:
                failures.append(EpisodeFailure.from_dict(row))
            else:
                records.append(RunRecord(**row))
        except TypeError:
            continue  # foreign schema: journal noise, never a grid match
    return records, failures


def load_checkpoint_records(path: str | Path | None) -> list[RunRecord]:
    """The ``ok``-records half of :func:`load_checkpoint_rows` (the
    historical reader; failure rows are simply not returned)."""
    return load_checkpoint_rows(path)[0]


def available_cpus() -> int:
    """CPUs this process may actually use (cgroup/affinity aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


def episode_seed(base_seed: int, injector_index: int, scenario_index: int) -> int:
    """The paired-design seed for one (injector, scenario) cell.

    Shared by the serial :class:`~repro.core.campaign.Campaign`, the
    resumable :class:`~repro.core.experiment.Study` and the parallel
    runner, so all three execute the *same* episode set for the same
    configuration.
    """
    return base_seed * 1_000_003 + injector_index * 10_007 + scenario_index


@dataclass(frozen=True)
class EpisodeTask:
    """One schedulable unit of campaign work.

    ``index`` is the episode's position in the canonical grid
    (injector-major, scenario-minor); results are re-ordered by it after
    parallel execution.
    """

    index: int
    injector: str
    scenario: Scenario
    seed: int
    #: :func:`~repro.core.campaign.episode_fingerprint` of the scenario
    #: and this injector's fault configuration.
    fingerprint: str = ""

    def identity(self) -> tuple[str, str, int, str]:
        """The checkpoint identity.

        ``(injector, scenario name, seed, config fingerprint)`` — the
        fingerprint keeps a checkpoint written for a *different*
        configuration (other scenario suite, retuned fault parameters)
        from matching.
        """
        return (self.injector, self.scenario.name, self.seed, self.fingerprint)


@dataclass
class CampaignContext:
    """Everything a worker needs to execute any task of one campaign.

    Shipped to each worker process once (pool initializer), so per-task
    payloads stay small.  Must be picklable: the builder, the agent
    factory and every fault model travel to the workers by value — each
    worker therefore mutates only its own copies (model-weight faults
    included), which is what keeps parallel episodes independent.

    Heavy scene state (towns, rasterised textures) deliberately does
    *not* travel: builders pickle without their
    :class:`~repro.sim.builders.SceneCache`, and each worker re-derives
    scenes into its process-local cache.  ``warm_configs`` lists the town
    configurations the campaign will touch so the pool initializer can
    pre-build them once per worker, before the first timed episode —
    and the cache keeps them warm across campaigns in the same pool.
    """

    builder: SimulationBuilder
    agent_factory: Callable
    injectors: dict[str, tuple[FaultModel, ...]]
    #: Town configs to pre-build in each worker (deduplicated, grid order).
    warm_configs: tuple = ()
    #: Fault-tolerance policy every executor honours for this campaign
    #: (``None`` means :class:`~repro.core.outcomes.FaultTolerancePolicy`
    #: defaults: one attempt, no timeout, abort on first failure).
    policy: FaultTolerancePolicy | None = None
    #: Live episodes per multiplexed slot (see
    #: :mod:`repro.core.multiplex`); ``1`` means no multiplexing.  Rides
    #: in the context so process-pool and queue workers drain whole
    #: multiplexed slots without extra plumbing.
    episodes_per_slot: int = 1


def context_policy(context: CampaignContext) -> FaultTolerancePolicy:
    """The context's effective policy (``getattr`` so contexts pickled by
    older versions, which lack the field entirely, keep working)."""
    return getattr(context, "policy", None) or FaultTolerancePolicy()


def execute_task(context: CampaignContext, task: EpisodeTask) -> RunRecord:
    """Run one episode task.  Top-level and pure: both executors call this."""
    return run_episode(
        context.builder,
        task.scenario,
        context.agent_factory,
        faults=context.injectors[task.injector],
        injector_name=task.injector,
        harness_seed=task.seed,
        # The task's fingerprint IS the record's identity: passing it
        # through keeps them equal by construction.
        config_fingerprint=task.fingerprint or None,
    )


# ----------------------------------------------------------------------
# Fault-tolerant execution: attempts, timeouts, sandboxes
# ----------------------------------------------------------------------


class EpisodeTimeout(RuntimeError):
    """An episode attempt exceeded the policy's wall-clock timeout."""


def _sandbox_entry(conn, context: CampaignContext, task: EpisodeTask) -> None:
    """Sandbox child: run one episode, ship the outcome up the pipe."""
    try:
        record = execute_task(context, task)
    except BaseException as exc:  # noqa: BLE001 - the pipe is the only exit
        tb_text = traceback.format_exc()
        try:
            pickle.dumps(exc)
        except Exception:
            # An unpicklable exception must still cross the pipe; the
            # wrapper keeps class name + message, the traceback text
            # carries the rest.
            exc = RuntimeError(f"{type(exc).__name__}: {exc}")
        try:
            conn.send(("error", exc, tb_text))
        except Exception:  # pragma: no cover - parent already gone
            pass
    else:
        conn.send(("ok", record, ""))
    finally:
        conn.close()


def _run_sandboxed(
    context: CampaignContext, task: EpisodeTask, timeout_s: float
) -> tuple[str, object, str]:
    """Run one attempt in a disposable child process with a wall-clock cap.

    The child is forked fresh per attempt (sharing the parent's warmed
    scene cache copy-on-write) so a hung episode can be *killed* — the
    one thing an in-process timeout cannot do against C-level or
    ``time.sleep`` hangs — without taking the worker down with it.
    Returns ``("ok", record, "")``, ``("error", exc, traceback_text)`` or
    ``("timeout", None, "")``.
    """
    ctx = multiprocessing.get_context()
    parent_conn, child_conn = ctx.Pipe(duplex=False)
    proc = ctx.Process(
        target=_sandbox_entry, args=(child_conn, context, task), daemon=False
    )
    proc.start()
    child_conn.close()
    try:
        if not parent_conn.poll(timeout_s):
            return ("timeout", None, "")
        try:
            return parent_conn.recv()
        except EOFError:
            # The child died without reporting (segfault, OOM kill): a
            # real failure, not a timeout.
            exc = RuntimeError(
                f"episode sandbox died without a result (exit code {proc.exitcode})"
            )
            return ("error", exc, "")
    finally:
        parent_conn.close()
        reap_process(proc, log=lambda msg: print(f"[sandbox] {msg}", flush=True))


def attempt_task(
    context: CampaignContext,
    task: EpisodeTask,
    policy: FaultTolerancePolicy | None = None,
) -> RunRecord | EpisodeFailure:
    """Run one episode under the fault-tolerance policy.

    Returns the :class:`~repro.core.campaign.RunRecord` on success or an
    :class:`~repro.core.outcomes.EpisodeFailure` once every attempt is
    exhausted — never raises for episode-level errors (infrastructure
    errors and ``KeyboardInterrupt`` still propagate).  Every attempt
    replays the task's own seed against freshly-``reset()`` fault state
    (the harness attach contract), so a successful retry is byte-identical
    to a first-try success.  With ``timeout_s`` set each attempt runs in
    a killable sandbox child; otherwise inline.
    """
    policy = policy if policy is not None else context_policy(context)
    wall_s = 0.0
    failure: EpisodeFailure | None = None
    for attempt in range(1, policy.max_attempts + 1):
        if attempt > 1:
            delay = policy.backoff_for(task.seed, attempt - 1)
            if delay > 0:
                time.sleep(delay)
        start = time.monotonic()
        if policy.timeout_s is None:
            try:
                result = ("ok", execute_task(context, task), "")
            except Exception as exc:  # episode-level failure, not a crash
                result = ("error", exc, traceback.format_exc())
        else:
            result = _run_sandboxed(context, task, policy.timeout_s)
        wall_s += time.monotonic() - start
        status, payload, tb_text = result
        if status == "ok":
            return payload
        if status == "timeout":
            exc = EpisodeTimeout(
                f"episode exceeded the {policy.timeout_s:g}s wall-clock timeout"
            )
            outcome = EpisodeOutcome.TIMED_OUT
        else:
            exc = payload
            outcome = EpisodeOutcome.FAILED
        failure = EpisodeFailure.from_exception(
            task,
            exc,
            attempts=attempt,
            wall_time_s=wall_s,
            traceback_text=tb_text,
            outcome=outcome,
        )
    assert failure is not None
    return failure


class _FailureBudget:
    """Campaign-level quarantine budget shared by all executors.

    ``admit`` answers "may this terminal failure be quarantined so the
    campaign continues?" — ``None`` means unlimited, ``0`` (the default)
    means the first failure aborts, matching historical behaviour.
    """

    def __init__(self, budget: int | None):
        self.budget = budget
        self.used = 0

    def admit(self, failure: EpisodeFailure) -> bool:
        if self.budget is not None and self.used >= self.budget:
            return False
        self.used += 1
        return True


# ----------------------------------------------------------------------
# Executors
# ----------------------------------------------------------------------

#: Per-process campaign context, set once by the pool initializer.
_WORKER_CONTEXT: CampaignContext | None = None


def _init_worker(context: CampaignContext) -> None:
    global _WORKER_CONTEXT
    _WORKER_CONTEXT = context
    # Warm this worker's scene cache up front: town building and texture
    # rasterisation happen once per process here instead of lazily inside
    # the first scheduled episode.  Warming more configs than the cache
    # holds would evict the early ones again, so cap at the cache size
    # (the first configs run first in grid order).
    limit = context.builder.scene_cache.max_entries
    for config in context.warm_configs[:limit]:
        context.builder.renderer_for(config)


def _run_task_chunk(
    tasks: Sequence[EpisodeTask],
) -> list[tuple[int, RunRecord | EpisodeFailure]]:
    """Worker-side entry point: execute a chunk against the process context.

    Failures come back as values, not raises — the coordinator applies
    the campaign-level budget (workers cannot see each other's failures).
    The carried exception object is pickle-tested here because the whole
    chunk result must cross the pool's result pipe.
    """
    assert _WORKER_CONTEXT is not None, "worker pool not initialised"
    out: list[tuple[int, RunRecord | EpisodeFailure]] = []
    for task in tasks:
        result = attempt_task(_WORKER_CONTEXT, task)
        if isinstance(result, EpisodeFailure) and result.exception is not None:
            try:
                pickle.dumps(result.exception)
            except Exception:
                result.exception = RuntimeError(f"{result.error_type}: {result.error}")
        out.append((task.index, result))
    return out


class SerialExecutor:
    """In-process execution — deterministic, no pickling, no subprocesses.

    The reference implementation parallel executors are checked against,
    and the right choice for ``workers<=1``, debugging and unit tests.
    """

    name = "serial"

    def run(
        self, context: CampaignContext, tasks: Sequence[EpisodeTask]
    ) -> Iterator[tuple[EpisodeTask, RunRecord | EpisodeFailure]]:
        """Yield ``(task, outcome)`` as episodes complete (here: grid order).

        Terminal failures within the policy's budget are yielded as
        quarantined :class:`~repro.core.outcomes.EpisodeFailure` rows;
        one over budget aborts with the original exception (after every
        earlier episode has been yielded — completed work survives).
        """
        policy = context_policy(context)
        if policy.timeout_s is not None:
            # Sandbox children fork from this process: warm the scene
            # cache here once so every attempt inherits built scenes
            # copy-on-write instead of rebuilding them per child.
            limit = context.builder.scene_cache.max_entries
            for config in context.warm_configs[:limit]:
                context.builder.renderer_for(config)
        budget = _FailureBudget(policy.failure_budget)
        for task in tasks:
            result = attempt_task(context, task, policy)
            if isinstance(result, EpisodeFailure):
                if not budget.admit(result):
                    result.raise_error()
                result.outcome = EpisodeOutcome.QUARANTINED
            yield task, result


class ProcessExecutor:
    """Process-pool execution with chunked scheduling.

    The default chunk is a single episode: episodes run for seconds, so
    per-task IPC is negligible, the pool load-balances perfectly, and
    every completed episode reaches the checkpoint before the next
    starts.  For sweeps of very short episodes a larger ``chunksize``
    amortises scheduling overhead — at the cost of checkpoint
    granularity, since a chunk's records only travel back (and get
    checkpointed) when the whole chunk finishes.

    Results stream back in completion order; the runner re-orders them.
    """

    name = "process"

    def __init__(self, workers: int | None = None, chunksize: int | None = None):
        self.workers = max(1, workers if workers is not None else available_cpus())
        self.chunksize = chunksize

    def _chunks(
        self, tasks: Sequence[EpisodeTask], default: int = 1
    ) -> list[list[EpisodeTask]]:
        size = max(1, self.chunksize or default)
        return [list(tasks[i : i + size]) for i in range(0, len(tasks), size)]

    def run(
        self, context: CampaignContext, tasks: Sequence[EpisodeTask]
    ) -> Iterator[tuple[EpisodeTask, RunRecord | EpisodeFailure]]:
        """Yield ``(task, outcome)`` as episodes complete (arbitrary order).

        Workers retry/time-out episodes locally (:func:`attempt_task`)
        and return terminal failures as values; the campaign-level
        failure budget is applied *here*, on the coordinator, because
        workers cannot see each other's failures.  When the budget is
        exceeded (or a worker chunk raises an infrastructure error) the
        queued chunks are cancelled but every already-finished episode is
        still yielded — so the runner checkpoints all completed work —
        and the abort re-raises after the drain.
        """
        tasks = list(tasks)
        if not tasks:
            return
        by_index = {task.index: task for task in tasks}
        policy = context_policy(context)
        budget = _FailureBudget(policy.failure_budget)
        # A context asking for episode multiplexing makes each worker
        # drain its chunk as one multiplexed slot; the chunk then
        # defaults to the slot size so slots actually fill.
        from .multiplex import _run_mux_chunk, multiplex_slot_size

        slot = multiplex_slot_size(context)
        chunk_fn = _run_mux_chunk if slot > 1 else _run_task_chunk
        pool = ProcessPoolExecutor(
            max_workers=self.workers, initializer=_init_worker, initargs=(context,)
        )
        try:
            futures = [
                pool.submit(chunk_fn, chunk)
                for chunk in self._chunks(tasks, default=slot)
            ]
            error: BaseException | None = None

            def abort(exc: BaseException) -> None:
                nonlocal error
                if error is None:
                    error = exc
                    for other in futures:
                        other.cancel()

            for future in as_completed(futures):
                try:
                    chunk_results = future.result()
                except CancelledError:
                    continue
                except Exception as exc:
                    abort(exc)
                    continue
                for index, result in chunk_results:
                    if isinstance(result, EpisodeFailure):
                        if error is not None:
                            # Already aborting: leave the failure
                            # uncheckpointed so it re-runs on resume.
                            continue
                        if not budget.admit(result):
                            try:
                                result.raise_error()
                            except BaseException as exc:
                                abort(exc)
                            continue
                        result.outcome = EpisodeOutcome.QUARANTINED
                    yield by_index[index], result
            if error is not None:
                raise error
        finally:
            # On abnormal exit (worker exception, consumer error, closed
            # generator) queued chunks must not keep burning compute whose
            # results nobody will collect; a no-op on normal completion.
            pool.shutdown(wait=True, cancel_futures=True)


def make_executor(
    executor: str | SerialExecutor | ProcessExecutor | None = None,
    workers: int | None = None,
    chunksize: int | None = None,
    queue_dir: str | Path | None = None,
    lease_s: float | None = None,
    poll_s: float | None = None,
    stall_timeout: float | None = None,
    episodes_per_slot: int | None = None,
):
    """Resolve an executor spec (``"serial"``/``"process"``/``"queue"``/
    ``"multiplexed"``/instance/None).

    With no explicit spec the other arguments decide: a ``queue_dir``
    selects the distributed queue backend, ``workers`` of
    ``None``/``0``/``1`` stays serial, anything larger gets a process
    pool.  Asking for serial execution *and* multiple workers is a
    contradiction and raises rather than silently dropping the workers.
    An executor instance is authoritative (its own worker count wins).

    ``"multiplexed"`` runs one in-process multiplexed slot
    (:class:`~repro.core.multiplex.MultiplexedExecutor`) of
    ``episodes_per_slot`` live episodes.  The knob also composes with
    the other backends through the campaign context
    (:attr:`CampaignContext.episodes_per_slot`): process-pool and queue
    workers drain whole multiplexed slots when it is above 1.

    For ``"queue"``, ``workers`` is the number of *local* drain
    processes to spawn alongside the coordinator — defaulting to 1 so a
    bare ``queue_dir`` makes progress on its own; an explicit ``0``
    coordinates only and blocks until workers attach from other machines
    via ``avfi worker``.  ``lease_s``, ``poll_s`` and ``stall_timeout``
    configure the :class:`~repro.core.queue.QueueExecutor`.
    """
    if workers is not None and workers < 0:
        raise ValueError(f"workers must be >= 0 (got {workers})")
    parallel_requested = workers is not None and workers > 1
    if executor is None:
        if queue_dir is not None:
            executor = "queue"
        elif parallel_requested:
            executor = "process"
        elif episodes_per_slot is not None and episodes_per_slot > 1:
            # A bare slot-size request multiplexes in this process; with
            # workers/queue above it rides the context into each worker.
            executor = "multiplexed"
        else:
            executor = "serial"
    if queue_dir is not None:
        spec = executor if isinstance(executor, str) else getattr(executor, "name", None)
        if spec != "queue":
            raise ValueError(
                f"queue_dir={str(queue_dir)!r} conflicts with "
                f"executor={executor!r}; use executor='queue' or drop queue_dir"
            )
    if isinstance(executor, SerialExecutor) or executor == "serial":
        if parallel_requested:
            raise ValueError(
                f"executor='serial' conflicts with workers={workers}; "
                "drop one of the two"
            )
        return executor if isinstance(executor, SerialExecutor) else SerialExecutor()
    if not isinstance(executor, str):
        return executor
    if executor == "process":
        return ProcessExecutor(workers=workers, chunksize=chunksize)
    if executor == "multiplexed":
        from .multiplex import MultiplexedExecutor  # deferred: imports us

        if parallel_requested:
            raise ValueError(
                f"executor='multiplexed' conflicts with workers={workers}; "
                "multiplexing is single-process (combine it with the "
                "process or queue backend for multi-worker slots)"
            )
        return MultiplexedExecutor(episodes_per_slot=episodes_per_slot)
    if executor == "queue":
        from .queue import QueueExecutor  # deferred: queue imports us

        if queue_dir is None:
            raise ValueError(
                "executor='queue' needs queue_dir (the shared broker directory)"
            )
        options = {}
        if lease_s is not None:
            options["lease_s"] = lease_s
        if poll_s is not None:
            options["poll_s"] = poll_s
        if stall_timeout is not None:
            options["stall_timeout"] = stall_timeout
        # workers=None must not silently mean "coordinate only and block
        # until someone attaches" — default to one local drain process;
        # coordinate-only needs an explicit workers=0.
        return QueueExecutor(queue_dir, workers=1 if workers is None else workers, **options)
    raise ValueError(
        f"unknown executor {executor!r} (expected 'serial', 'process', "
        f"'queue' or 'multiplexed')"
    )


# ----------------------------------------------------------------------
# Runner
# ----------------------------------------------------------------------


class ParallelCampaignRunner:
    """Executes a full (injector × scenario) grid on a pluggable executor.

    Construction mirrors :class:`~repro.core.campaign.Campaign`; execution
    adds worker parallelism, incremental JSONL checkpointing and resume.
    The hard invariant: for the same configuration, :meth:`run` returns a
    :class:`~repro.core.campaign.CampaignResult` identical to the serial
    path's, whatever the executor or worker count.
    """

    def __init__(
        self,
        scenarios: Sequence[Scenario],
        agent_factory: Callable,
        injectors: dict[str, Sequence[FaultModel]],
        builder: SimulationBuilder | None = None,
        base_seed: int = 0,
        workers: int | None = None,
        executor: str | SerialExecutor | ProcessExecutor | None = None,
        chunksize: int | None = None,
        queue_dir: str | Path | None = None,
        lease_s: float | None = None,
        checkpoint_path: str | Path | None = None,
        parquet_path: str | Path | None = None,
        resume_records: Sequence[RunRecord] | None = None,
        resume_failures: Sequence[EpisodeFailure] | None = None,
        policy: FaultTolerancePolicy | None = None,
        spec: dict | None = None,
        verbose: bool = False,
        label: str = "runner",
        on_record: Callable[[EpisodeTask, RunRecord], None] | None = None,
        episodes_per_slot: int | None = None,
    ):
        if not scenarios:
            raise ValueError("campaign needs at least one scenario")
        if not injectors:
            raise ValueError("campaign needs at least one injector (use {'none': []})")
        if episodes_per_slot is not None and episodes_per_slot < 1:
            raise ValueError(
                f"episodes_per_slot must be >= 1 (got {episodes_per_slot})"
            )
        self.scenarios = list(scenarios)
        self.agent_factory = agent_factory
        self.injectors = dict(injectors)
        self.builder = builder or SimulationBuilder()
        self.base_seed = base_seed
        #: Live episodes per multiplexed slot; carried into the campaign
        #: context so every backend's workers see it.
        self.episodes_per_slot = episodes_per_slot
        self.executor = make_executor(
            executor,
            workers=workers,
            chunksize=chunksize,
            queue_dir=queue_dir,
            lease_s=lease_s,
            episodes_per_slot=episodes_per_slot,
        )
        self.checkpoint_path = Path(checkpoint_path) if checkpoint_path else None
        # A queue executor's broker owns the shared results checkpoint:
        # adopt it (so resume reads what workers wrote) and skip the
        # runner's own appends for it (workers already append each record
        # durably — a second append would just duplicate every line).
        executor_checkpoint = getattr(self.executor, "checkpoint_path", None)
        if executor_checkpoint is not None and self.checkpoint_path is None:
            self.checkpoint_path = Path(executor_checkpoint)
        # Resolve both sides: the same file spelled differently (relative
        # vs absolute, symlinked mount) must still count as owned, or the
        # runner would re-append every record the workers already wrote.
        self._executor_owns_checkpoint = (
            executor_checkpoint is not None
            and self.checkpoint_path is not None
            and self.checkpoint_path.resolve() == Path(executor_checkpoint).resolve()
        )
        # The parquet sink is always coordinator-side, even under the
        # queue backend: workers append JSONL durably, and this runner
        # mirrors completed grid records into the columnar copy.
        self.parquet_path = Path(parquet_path) if parquet_path else None
        self.verbose = verbose
        self.label = label
        self.on_record = on_record
        #: Serialised campaign spec (``CampaignSpec.to_dict()``) when the
        #: campaign came from one; published into queue brokers so the
        #: full campaign definition travels as a portable JSON artifact
        #: next to the pickled context.
        self.spec = spec
        # A torn final line must come off *before* anything appends again
        # (see repair_jsonl_tail) — this runner, or queue workers sharing
        # the broker checkpoint.
        if self.checkpoint_path is not None:
            repair_jsonl_tail(self.checkpoint_path)
        #: Fault-tolerance policy for this campaign (``None`` = defaults:
        #: one attempt, no timeout, abort on first failure).
        self.policy = policy
        # Explicit resume_records are authoritative (the caller already
        # loaded or owns them); otherwise read the checkpoint file.  With
        # neither, an executor may still hold completed work we cannot
        # see as a file — a queue executor on a *remote* (TCP) broker
        # keeps its checkpoint server-side — so ask it (resume_rows) to
        # keep resume semantics identical to the shared-directory case.
        if resume_records is not None:
            self._checkpoint_records: list[RunRecord] = list(resume_records)
            self._checkpoint_failures: list[EpisodeFailure] = (
                list(resume_failures) if resume_failures is not None else []
            )
        elif self.checkpoint_path is None and hasattr(self.executor, "resume_rows"):
            self._checkpoint_records, self._checkpoint_failures = (
                self.executor.resume_rows()
            )
        else:
            self._checkpoint_records, self._checkpoint_failures = load_checkpoint_rows(
                self.checkpoint_path
            )
        self._new_records: dict[int, RunRecord] = {}
        self._new_failures: dict[int, EpisodeFailure] = {}
        self._tasks: list[EpisodeTask] | None = None

    # -- planning ------------------------------------------------------

    def tasks(self) -> list[EpisodeTask]:
        """The full episode grid in canonical (injector, scenario) order.

        Computed once per runner (fingerprinting deep-copies fault models,
        and pending()/grid_records() call this several times per run).
        The fingerprint covers the agent factory and builder signatures
        (computed once per grid — the NN agent's hashes model weights),
        so a checkpoint written under a different agent or builder never
        satisfies this grid.
        """
        if self._tasks is None:
            component_key = (
                component_signature(self.agent_factory),
                component_signature(self.builder),
            )
            out: list[EpisodeTask] = []
            for inj_idx, (injector, faults) in enumerate(self.injectors.items()):
                for scn_idx, scenario in enumerate(self.scenarios):
                    out.append(
                        EpisodeTask(
                            index=len(out),
                            injector=injector,
                            scenario=scenario,
                            seed=episode_seed(self.base_seed, inj_idx, scn_idx),
                            fingerprint=episode_fingerprint(
                                scenario, faults, component_key=component_key
                            ),
                        )
                    )
            self._tasks = out
        return list(self._tasks)

    def total_runs(self) -> int:
        """Number of episodes in the full grid."""
        return len(self.scenarios) * len(self.injectors)

    @staticmethod
    def _record_identity(record: RunRecord) -> tuple[str, str, int, str]:
        return record_identity(record)

    def completed(self) -> set[tuple[str, str, int, str]]:
        """Identities already present in the checkpoint (or finished).

        Quarantined episodes count as completed: the whole point of
        quarantine is that resume never re-burns compute on a poison
        task.  Re-running one means deleting its row (or using a fresh
        checkpoint).
        """
        done = {self._record_identity(r) for r in self._checkpoint_records}
        done.update(self._record_identity(r) for r in self._new_records.values())
        done.update(self._record_identity(f) for f in self._checkpoint_failures)
        done.update(self._record_identity(f) for f in self._new_failures.values())
        return done

    def pending(self) -> list[EpisodeTask]:
        """Grid tasks not yet completed, in canonical order."""
        done = self.completed()
        return [task for task in self.tasks() if task.identity() not in done]

    # -- checkpointing -------------------------------------------------

    def _append_checkpoint(self, row: RunRecord | EpisodeFailure) -> None:
        if self.checkpoint_path is None or self._executor_owns_checkpoint:
            return
        append_jsonl_line(self.checkpoint_path, row.to_dict())

    def _open_parquet_sink(self):
        """Open the streaming parquet sink, seeded with resumed records.

        Parquet files cannot be re-opened for append, so each run writes
        the sink fresh: already-completed grid records go in first, then
        every new record streams in as it finishes.  A crash costs only
        the parquet copy — the next run rewrites it from the JSONL
        checkpoint.  Returns ``None`` (JSONL-only, with a warning) when
        pyarrow is not installed: a missing analytics dependency must
        not kill a campaign.
        """
        if self.parquet_path is None:
            return None
        from .sink import HAVE_PYARROW, ParquetSink

        if not HAVE_PYARROW:
            import warnings

            warnings.warn(
                f"parquet sink {self.parquet_path} requested but pyarrow is "
                f"not installed; continuing with the JSONL checkpoint only "
                f"(install the 'parquet' extra to enable columnar output)",
                RuntimeWarning,
                stacklevel=3,
            )
            return None
        sink = ParquetSink(self.parquet_path)
        sink.extend(self.grid_records())
        sink.extend(self.grid_failures())
        return sink

    # -- execution -----------------------------------------------------

    def context(self) -> CampaignContext:
        """The picklable per-campaign worker context."""
        # Deduplicate town configs in scenario order (deterministic) so
        # every worker pre-warms exactly the scenes this grid will touch.
        warm = dict.fromkeys(scenario.town_config for scenario in self.scenarios)
        return CampaignContext(
            builder=self.builder,
            agent_factory=self.agent_factory,
            injectors={name: tuple(faults) for name, faults in self.injectors.items()},
            warm_configs=tuple(warm),
            policy=self.policy,
            episodes_per_slot=self.episodes_per_slot or 1,
        )

    def run(self) -> CampaignResult:
        """Execute every pending episode; return the full grid, in order.

        Episodes stream into the checkpoint as they complete (completion
        order), but the returned result is always canonical grid order —
        resumed and fresh runs, serial and parallel executors, all yield
        the same record sequence.
        """
        pending = self.pending()
        context = self.context()
        if self.spec is not None and hasattr(self.executor, "publish_spec"):
            # Queue brokers archive the campaign's declarative spec next
            # to the pickled context, so any attached machine can read
            # what campaign it is serving (and future brokers can
            # reconstruct the context from it instead of the pickle).
            self.executor.publish_spec(self.spec)
        sink = self._open_parquet_sink()
        try:
            for task, result in self.executor.run(context, pending):
                if isinstance(result, EpisodeFailure):
                    self._new_failures[task.index] = result
                    self._append_checkpoint(result)
                    if sink is not None:
                        sink.append(result)
                    if self.verbose:
                        print(
                            f"[{self.label}] {result.injector:>12} "
                            f"{result.scenario:>8} QUAR {result.error_type} "
                            f"after {result.attempts} attempt(s)"
                        )
                    continue
                record = result
                self._new_records[task.index] = record
                self._append_checkpoint(record)
                if sink is not None:
                    sink.append(record)
                if self.verbose:
                    status = "ok " if record.success else "FAIL"
                    print(
                        f"[{self.label}] {record.injector:>12} {record.scenario:>8} "
                        f"{status} {record.distance_km * 1000:6.0f} m  "
                        f"{record.n_violations} violations"
                    )
                if self.on_record is not None:
                    self.on_record(task, record)
        finally:
            if sink is not None:
                sink.close()
        return CampaignResult(self.grid_records(), failures=self.grid_failures())

    def grid_records(self) -> list[RunRecord]:
        """One record per completed grid task, resumed or fresh, in grid order.

        Checkpoint rows that match no grid identity (a different suite,
        or rows written before fingerprinting) are excluded — they are
        journal history, not results of *this* campaign.
        """
        by_identity: dict[tuple, RunRecord] = {}
        for record in self._checkpoint_records:
            by_identity.setdefault(self._record_identity(record), record)
        out = []
        for task in self.tasks():
            record = self._new_records.get(task.index) or by_identity.get(task.identity())
            if record is not None:
                out.append(record)
        return out

    def grid_failures(self) -> list[EpisodeFailure]:
        """Quarantined episodes of *this* grid, in grid order.

        An identity that also has a real record (quarantined in an old
        run, then re-run to success after its row was cleared) is not a
        failure any more and is excluded.
        """
        recorded = {self._record_identity(r) for r in self._checkpoint_records}
        recorded.update(self._record_identity(r) for r in self._new_records.values())
        by_identity: dict[tuple, EpisodeFailure] = {}
        for failure in self._checkpoint_failures:
            by_identity.setdefault(self._record_identity(failure), failure)
        out = []
        for task in self.tasks():
            failure = self._new_failures.get(task.index) or by_identity.get(
                task.identity()
            )
            if failure is not None and task.identity() not in recorded:
                out.append(failure)
        return out

    def new_records(self) -> list[RunRecord]:
        """Records executed by this runner (not resumed), in grid order."""
        return [self._new_records[i] for i in sorted(self._new_records)]

    def new_failures(self) -> list[EpisodeFailure]:
        """Failures quarantined by this runner (not resumed), in grid order."""
        return [self._new_failures[i] for i in sorted(self._new_failures)]
