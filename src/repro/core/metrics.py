"""Resilience metrics: MSR, VPK, APK and TTV (paper §II).

* **Mission Success Rate (MSR)** — percentage of runs that completed their
  navigation mission within the time limit.  Higher is more resilient.
* **Traffic Violations per KM (VPK)** — violation events per kilometre
  driven in the campaign.  Lower is more resilient.
* **Accidents per KM (APK)** — collision events per kilometre driven.
* **Time to Traffic Violation (TTV)** — time between a fault injection and
  its manifestation as a violation.  Higher means more time for detection
  and recovery.

The aggregate VPK/APK are computed over pooled distance (total events /
total km), while the per-run lists feed the distribution plots of figs.
3-4 (the paper shows boxplots, i.e. run-level spread).

**Empty-slice convention** (defined once, applied by every aggregate):
a slice with *no completed runs* — a fault class in a freshly resumed or
partially drained queue campaign, an injector filtered down to nothing —
has **NaN** for MSR/VPK/APK.  Absence of data is not "0 % success" or
"0 violations"; NaN keeps empty slices visibly undefined in tables and
propagates honestly through downstream arithmetic, while counts
(``n_runs``, ``total_km``, ``total_violations``…) are legitimately 0.
Distinct from this is the *zero-distance* case: completed runs in which
the car never moved keep VPK/APK of 0.0 (the run happened and produced
no per-km events), matching the per-run properties on
:class:`~repro.core.campaign.RunRecord`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np

from .campaign import RunRecord

__all__ = [
    "ResilienceMetrics",
    "compute_metrics",
    "metrics_by_injector",
    "mission_success_rate",
    "violations_per_km",
    "accidents_per_km",
    "time_to_violation",
]


def mission_success_rate(records: Sequence[RunRecord]) -> float:
    """MSR in percent over a set of runs; NaN for an empty slice."""
    if not records:
        return float("nan")
    return 100.0 * sum(r.success for r in records) / len(records)


def violations_per_km(records: Sequence[RunRecord]) -> float:
    """Pooled VPK: total violations over total kilometres.

    NaN for an empty slice; 0.0 when runs exist but covered no distance.
    """
    if not records:
        return float("nan")
    total_km = sum(r.distance_km for r in records)
    if total_km <= 0.0:
        return 0.0
    return sum(r.n_violations for r in records) / total_km


def accidents_per_km(records: Sequence[RunRecord]) -> float:
    """Pooled APK: total accidents over total kilometres.

    NaN for an empty slice; 0.0 when runs exist but covered no distance.
    """
    if not records:
        return float("nan")
    total_km = sum(r.distance_km for r in records)
    if total_km <= 0.0:
        return 0.0
    return sum(r.n_accidents for r in records) / total_km


def time_to_violation(records: Sequence[RunRecord]) -> list[float]:
    """TTV samples (seconds), one per run where a fault manifested."""
    out = []
    for r in records:
        ttv = r.time_to_violation_s()
        if ttv is not None:
            out.append(ttv)
    return out


@dataclass
class ResilienceMetrics:
    """The paper's metric set for one group of runs."""

    n_runs: int
    msr: float
    vpk: float
    apk: float
    ttv_s: list[float] = field(default_factory=list)
    vpk_per_run: list[float] = field(default_factory=list)
    apk_per_run: list[float] = field(default_factory=list)
    success_flags: list[bool] = field(default_factory=list)
    total_km: float = 0.0
    total_violations: int = 0
    total_accidents: int = 0
    violations_by_type: dict[str, int] = field(default_factory=dict)

    @property
    def ttv_median_s(self) -> float:
        """Median TTV, ``nan`` when no fault manifested."""
        return float(np.median(self.ttv_s)) if self.ttv_s else float("nan")

    def summary_row(self) -> dict:
        """Flat dict for tables."""
        return {
            "runs": self.n_runs,
            "MSR_%": round(self.msr, 1),
            "VPK": round(self.vpk, 2),
            "APK": round(self.apk, 2),
            "TTV_median_s": round(self.ttv_median_s, 2) if self.ttv_s else None,
            "km": round(self.total_km, 2),
        }


def compute_metrics(records: Sequence[RunRecord]) -> ResilienceMetrics:
    """Aggregate one group of runs into :class:`ResilienceMetrics`.

    An empty group is valid (see the module's empty-slice convention):
    rates come back NaN, counts 0 — so summarising a partially drained
    or freshly resumed campaign never raises.
    """
    by_type: dict[str, int] = {}
    for r in records:
        for v in r.violations:
            by_type[v["type"]] = by_type.get(v["type"], 0) + 1
    return ResilienceMetrics(
        n_runs=len(records),
        msr=mission_success_rate(records),
        vpk=violations_per_km(records),
        apk=accidents_per_km(records),
        ttv_s=time_to_violation(records),
        vpk_per_run=[r.violations_per_km for r in records],
        apk_per_run=[r.accidents_per_km for r in records],
        success_flags=[r.success for r in records],
        total_km=sum(r.distance_km for r in records),
        total_violations=sum(r.n_violations for r in records),
        total_accidents=sum(r.n_accidents for r in records),
        violations_by_type=by_type,
    )


def metrics_by_injector(records: Iterable[RunRecord]) -> dict[str, ResilienceMetrics]:
    """Group records by injector and aggregate each group."""
    groups: dict[str, list[RunRecord]] = {}
    for record in records:
        groups.setdefault(record.injector, []).append(record)
    return {name: compute_metrics(rs) for name, rs in groups.items()}
