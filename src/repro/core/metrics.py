"""Resilience metrics: MSR, VPK, APK and TTV (paper §II).

* **Mission Success Rate (MSR)** — percentage of runs that completed their
  navigation mission within the time limit.  Higher is more resilient.
* **Traffic Violations per KM (VPK)** — violation events per kilometre
  driven in the campaign.  Lower is more resilient.
* **Accidents per KM (APK)** — collision events per kilometre driven.
* **Time to Traffic Violation (TTV)** — time between a fault injection and
  its manifestation as a violation.  Higher means more time for detection
  and recovery.

The aggregate VPK/APK are computed over pooled distance (total events /
total km), while the per-run lists feed the distribution plots of figs.
3-4 (the paper shows boxplots, i.e. run-level spread).

**Empty-slice convention** (defined once, applied by every aggregate):
a slice with *no completed runs* — a fault class in a freshly resumed or
partially drained queue campaign, an injector filtered down to nothing —
has **NaN** for MSR/VPK/APK.  Absence of data is not "0 % success" or
"0 violations"; NaN keeps empty slices visibly undefined in tables and
propagates honestly through downstream arithmetic, while counts
(``n_runs``, ``total_km``, ``total_violations``…) are legitimately 0.
Distinct from this is the *zero-distance* case: completed runs in which
the car never moved keep VPK/APK of 0.0 (the run happened and produced
no per-km events), matching the per-run properties on
:class:`~repro.core.campaign.RunRecord`.

**Streaming aggregation:** :class:`MetricsAccumulator` folds records one
at a time into per-group aggregates (scalars plus per-run floats — never
the records themselves, whose violation/fault payloads dominate memory),
so million-episode checkpoints aggregate in one pass over a record
*iterator* (:func:`~repro.core.sink.iter_records`).  The batch helpers
:func:`compute_metrics` / :func:`metrics_by_injector` are thin wrappers
over the same accumulator, so streamed and in-memory aggregation are
equal by construction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np

from .campaign import RunRecord
from .outcomes import EpisodeFailure

__all__ = [
    "ResilienceMetrics",
    "MetricsAccumulator",
    "compute_metrics",
    "metrics_by_injector",
    "mission_success_rate",
    "violations_per_km",
    "accidents_per_km",
    "time_to_violation",
]


def mission_success_rate(records: Sequence[RunRecord]) -> float:
    """MSR in percent over a set of runs; NaN for an empty slice."""
    if not records:
        return float("nan")
    return 100.0 * sum(r.success for r in records) / len(records)


def violations_per_km(records: Sequence[RunRecord]) -> float:
    """Pooled VPK: total violations over total kilometres.

    NaN for an empty slice; 0.0 when runs exist but covered no distance.
    """
    if not records:
        return float("nan")
    total_km = sum(r.distance_km for r in records)
    if total_km <= 0.0:
        return 0.0
    return sum(r.n_violations for r in records) / total_km


def accidents_per_km(records: Sequence[RunRecord]) -> float:
    """Pooled APK: total accidents over total kilometres.

    NaN for an empty slice; 0.0 when runs exist but covered no distance.
    """
    if not records:
        return float("nan")
    total_km = sum(r.distance_km for r in records)
    if total_km <= 0.0:
        return 0.0
    return sum(r.n_accidents for r in records) / total_km


def time_to_violation(records: Sequence[RunRecord]) -> list[float]:
    """TTV samples (seconds), one per run where a fault manifested."""
    out = []
    for r in records:
        ttv = r.time_to_violation_s()
        if ttv is not None:
            out.append(ttv)
    return out


@dataclass
class ResilienceMetrics:
    """The paper's metric set for one group of runs."""

    n_runs: int
    msr: float
    vpk: float
    apk: float
    ttv_s: list[float] = field(default_factory=list)
    vpk_per_run: list[float] = field(default_factory=list)
    apk_per_run: list[float] = field(default_factory=list)
    success_flags: list[bool] = field(default_factory=list)
    total_km: float = 0.0
    total_violations: int = 0
    total_accidents: int = 0
    violations_by_type: dict[str, int] = field(default_factory=dict)
    #: The group's fault-set composition (fault names in attach order),
    #: taken from the first record that carries fault descriptions.
    #: ``()`` for the fault-free baseline and for records written before
    #: fault descriptions existed.  Compound groups (two or more names)
    #: are what :func:`~repro.core.analysis.interaction_effects` pairs
    #: against their single-fault marginals.
    fault_names: tuple[str, ...] = ()
    #: Episodes that never produced data, counted by outcome
    #: (``"failed"``/``"timed_out"``/``"quarantined"``).  Failures are
    #: *never* folded into MSR/VPK/APK — a crashed harness episode is
    #: not a failed mission — but they must stay visible, so reports can
    #: show "48 runs, 2 quarantined" instead of silently shrinking n.
    failure_counts: dict[str, int] = field(default_factory=dict)

    @property
    def n_failures(self) -> int:
        """Total episodes lost to harness failures (all outcomes)."""
        return sum(self.failure_counts.values())

    @property
    def ttv_median_s(self) -> float:
        """Median TTV, ``nan`` when no fault manifested."""
        return float(np.median(self.ttv_s)) if self.ttv_s else float("nan")

    def summary_row(self) -> dict:
        """Flat dict for tables."""
        return {
            "runs": self.n_runs,
            "MSR_%": round(self.msr, 1),
            "VPK": round(self.vpk, 2),
            "APK": round(self.apk, 2),
            "TTV_median_s": round(self.ttv_median_s, 2) if self.ttv_s else None,
            "km": round(self.total_km, 2),
        }


class MetricsAccumulator:
    """Streaming aggregation of one group of runs.

    Folds records in one at a time, keeping only scalar aggregates and
    per-run floats — memory stays O(runs) small floats rather than
    O(runs × violations) record payloads, which is what lets a single
    pass over a million-episode parquet/JSONL checkpoint compute the
    full metric set.  :meth:`result` yields the identical
    :class:`ResilienceMetrics` the batch path produces (same fold order,
    same float arithmetic).
    """

    def __init__(self) -> None:
        self.n_runs = 0
        self.n_success = 0
        self.total_km = 0.0
        self.total_violations = 0
        self.total_accidents = 0
        self.ttv_s: list[float] = []
        self.vpk_per_run: list[float] = []
        self.apk_per_run: list[float] = []
        self.success_flags: list[bool] = []
        self.violations_by_type: dict[str, int] = {}
        self.fault_names: tuple[str, ...] = ()
        self.failure_counts: dict[str, int] = {}

    def add(self, record: RunRecord) -> None:
        """Fold one completed run into the aggregates.

        :class:`~repro.core.outcomes.EpisodeFailure` rows (as streamed
        by ``iter_records`` from a checkpoint that saw crashes or
        quarantines) are dispatched to :meth:`add_failure` — counted,
        never folded into the mission metrics.
        """
        if isinstance(record, EpisodeFailure):
            self.add_failure(record)
            return
        self.n_runs += 1
        self.n_success += bool(record.success)
        self.total_km += record.distance_km
        self.total_violations += record.n_violations
        self.total_accidents += record.n_accidents
        ttv = record.time_to_violation_s()
        if ttv is not None:
            self.ttv_s.append(ttv)
        self.vpk_per_run.append(record.violations_per_km)
        self.apk_per_run.append(record.accidents_per_km)
        self.success_flags.append(record.success)
        for v in record.violations:
            self.violations_by_type[v["type"]] = (
                self.violations_by_type.get(v["type"], 0) + 1
            )
        if not self.fault_names and record.faults:
            self.fault_names = tuple(
                f.get("name", "?") for f in record.faults
            )

    def add_failure(self, failure: EpisodeFailure) -> None:
        """Count one harness failure by outcome (no metric impact)."""
        self.failure_counts[failure.outcome] = (
            self.failure_counts.get(failure.outcome, 0) + 1
        )

    def result(self) -> ResilienceMetrics:
        """The aggregated metrics (empty-slice convention applies)."""
        if self.n_runs == 0:
            msr = vpk = apk = float("nan")
        else:
            msr = 100.0 * self.n_success / self.n_runs
            vpk = (
                self.total_violations / self.total_km if self.total_km > 0.0 else 0.0
            )
            apk = (
                self.total_accidents / self.total_km if self.total_km > 0.0 else 0.0
            )
        return ResilienceMetrics(
            n_runs=self.n_runs,
            msr=msr,
            vpk=vpk,
            apk=apk,
            ttv_s=list(self.ttv_s),
            vpk_per_run=list(self.vpk_per_run),
            apk_per_run=list(self.apk_per_run),
            success_flags=list(self.success_flags),
            total_km=self.total_km,
            total_violations=self.total_violations,
            total_accidents=self.total_accidents,
            violations_by_type=dict(self.violations_by_type),
            fault_names=self.fault_names,
            failure_counts=dict(self.failure_counts),
        )


def compute_metrics(records: Iterable[RunRecord]) -> ResilienceMetrics:
    """Aggregate one group of runs into :class:`ResilienceMetrics`.

    Accepts any iterable — a list, or a streaming record iterator from
    :func:`~repro.core.sink.iter_records` — and folds it through a
    :class:`MetricsAccumulator` in one pass, never materialising the
    record set.  An empty group is valid (see the module's empty-slice
    convention): rates come back NaN, counts 0 — so summarising a
    partially drained or freshly resumed campaign never raises.
    """
    acc = MetricsAccumulator()
    for record in records:
        acc.add(record)
    return acc.result()


def metrics_by_injector(records: Iterable[RunRecord]) -> dict[str, ResilienceMetrics]:
    """Group records by injector and aggregate each group.

    Single-pass and streaming-safe: grouping keeps one
    :class:`MetricsAccumulator` per injector (first-seen order), not the
    records themselves, so this is the right entry point for
    arbitrarily large checkpoint iterators.  Mixed iterables are fine:
    :class:`~repro.core.outcomes.EpisodeFailure` rows group under their
    injector and surface as ``failure_counts``, never as runs.
    """
    groups: dict[str, MetricsAccumulator] = {}
    for record in records:
        groups.setdefault(record.injector, MetricsAccumulator()).add(record)
    return {name: acc.result() for name, acc in groups.items()}
