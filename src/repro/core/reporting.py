"""Text rendering of campaign results: tables, bars and boxplots.

The benchmark harness prints the same rows/series the paper's figures
show; these helpers keep that output readable in a terminal and in
captured bench logs.  Nothing here depends on matplotlib — figures are
ASCII on purpose (the environment is headless).
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence

from .analysis import summarize

__all__ = [
    "format_table",
    "bar_chart",
    "boxplot",
    "figure_header",
    "interaction_table",
    "quarantine_table",
]


def format_table(headers: Sequence[str], rows: Sequence[Sequence], title: str = "") -> str:
    """Render an aligned ASCII table."""
    if not rows:
        raise ValueError("table needs at least one row")
    cells = [[_fmt(c) for c in row] for row in rows]
    widths = [
        max(len(headers[i]), max(len(row[i]) for row in cells))
        for i in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(value) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        if math.isnan(value):
            return "nan"
        return f"{value:.2f}"
    return str(value)


def bar_chart(
    values: Mapping[str, float], width: int = 40, title: str = "", unit: str = ""
) -> str:
    """Horizontal ASCII bar chart (one bar per key, linear scale)."""
    if not values:
        raise ValueError("bar chart needs at least one value")
    vmax = max(max(values.values()), 1e-9)
    label_w = max(len(k) for k in values)
    lines = [title] if title else []
    for name, value in values.items():
        n = int(round(width * value / vmax))
        lines.append(f"{name.rjust(label_w)} | {'#' * n}{' ' * (width - n)} {value:.2f}{unit}")
    return "\n".join(lines)


def boxplot(
    groups: Mapping[str, Sequence[float]], width: int = 50, title: str = ""
) -> str:
    """ASCII boxplots, one row per group, on a shared linear axis.

    ``-`` spans min..max, ``=`` spans the interquartile range, ``|`` marks
    the median.  Mirrors the figure style of the paper (distribution of
    per-run values per injector).
    """
    if not groups:
        raise ValueError("boxplot needs at least one group")
    summaries = {}
    for name, values in groups.items():
        if len(values) == 0:
            continue
        summaries[name] = summarize(values)
    if not summaries:
        raise ValueError("all groups are empty")
    lo = min(s.minimum for s in summaries.values())
    hi = max(s.maximum for s in summaries.values())
    span = max(hi - lo, 1e-9)

    def col(x: float) -> int:
        return int(round((x - lo) / span * (width - 1)))

    label_w = max(len(k) for k in summaries)
    lines = [title] if title else []
    for name, s in summaries.items():
        row = [" "] * width
        for i in range(col(s.minimum), col(s.maximum) + 1):
            row[i] = "-"
        for i in range(col(s.q1), col(s.q3) + 1):
            row[i] = "="
        row[col(s.median)] = "|"
        lines.append(
            f"{name.rjust(label_w)} [{''.join(row)}] "
            f"med={s.median:.2f} iqr=({s.q1:.2f},{s.q3:.2f}) n={s.n}"
        )
    lines.append(f"{' ' * label_w}  {lo:<10.2f}{' ' * max(0, width - 22)}{hi:>10.2f}")
    return "\n".join(lines)


def interaction_table(interactions: Mapping[str, dict], title: str = "") -> str:
    """Render :func:`~repro.core.analysis.interaction_effects` output.

    One row per compound injector: its components, the MSR/VPK deltas
    against the worst single-fault marginal (negative ΔMSR / positive
    ΔVPK = the combination hurts beyond either fault alone), and the
    smallest Mann-Whitney p across its per-marginal comparisons.  NaNs
    (missing marginals, empty slices) render as ``nan`` like every other
    table.  Returns a placeholder line when there are no compound
    injectors, so report pipelines needn't special-case single-fault
    campaigns.
    """
    if not interactions:
        return "(no compound injectors — interaction effects need >= 2 faults)"
    rows = []
    for name, effect in interactions.items():
        p_values = [p for p in effect["p_vs_marginals"].values() if p == p]
        rows.append(
            [
                name,
                "+".join(effect["components"]),
                effect["msr_delta_vs_worst"],
                effect["vpk_delta_vs_worst"],
                min(p_values) if p_values else float("nan"),
            ]
        )
    return format_table(
        ["compound", "components", "dMSR_vs_worst", "dVPK_vs_worst", "min_p"],
        rows,
        title=title,
    )


def quarantine_table(failures, title: str = "quarantined episodes") -> str:
    """Render a campaign's failure list
    (:class:`~repro.core.outcomes.EpisodeFailure` rows) as a table.

    One row per failed/quarantined episode: its grid identity, the
    outcome, the error that killed it, how many attempts were spent and
    the wall time burned.  Returns a placeholder line when the list is
    empty, so report pipelines can print it unconditionally.
    """
    failures = list(failures)
    if not failures:
        return "(no quarantined episodes — every grid cell produced a record)"
    rows = []
    for f in failures:
        rows.append(
            [
                f.injector,
                f.scenario,
                f.seed,
                f.outcome,
                f"{f.error_type}: {f.error}" if f.error_type else f.error,
                f.attempts,
                f.wall_time_s,
            ]
        )
    return format_table(
        ["injector", "scenario", "seed", "outcome", "error", "attempts", "wall_s"],
        rows,
        title=title,
    )


def figure_header(figure_id: str, caption: str) -> str:
    """Banner used by the benchmark harness before each reproduction."""
    bar = "=" * 72
    return f"{bar}\n{figure_id}: {caption}\n{bar}"
