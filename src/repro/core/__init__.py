"""AVFI core: the paper's contribution — fault injection for AVs."""

from . import faults
from .analysis import (
    DistributionSummary,
    wilson_interval,
    bootstrap_ci,
    compare_to_baseline,
    mann_whitney_u,
    summarize,
)
from .campaign import (
    Campaign,
    CampaignResult,
    RunRecord,
    episode_fingerprint,
    run_episode,
    standard_scenarios,
)
from .experiment import Study, summary_frame, sweep
from .injector import InjectionHarness
from .localizer import (
    BitSite,
    ChannelSite,
    FaultLocalizer,
    NeuronSite,
    PixelRegionSite,
    WeightSite,
)
from .metrics import (
    ResilienceMetrics,
    accidents_per_km,
    compute_metrics,
    metrics_by_injector,
    mission_success_rate,
    time_to_violation,
    violations_per_km,
)
from .reporting import bar_chart, boxplot, figure_header, format_table
from .runner import (
    CampaignContext,
    EpisodeTask,
    ParallelCampaignRunner,
    ProcessExecutor,
    SerialExecutor,
    available_cpus,
    episode_seed,
    execute_task,
    make_executor,
)
from .trace import TraceDivergence, TraceReader, TraceWriter, compare_traces

__all__ = [
    "faults",
    "DistributionSummary",
    "bootstrap_ci",
    "compare_to_baseline",
    "mann_whitney_u",
    "wilson_interval",
    "summarize",
    "Campaign",
    "CampaignResult",
    "RunRecord",
    "episode_fingerprint",
    "run_episode",
    "standard_scenarios",
    "InjectionHarness",
    "Study",
    "summary_frame",
    "sweep",
    "BitSite",
    "ChannelSite",
    "FaultLocalizer",
    "NeuronSite",
    "PixelRegionSite",
    "WeightSite",
    "ResilienceMetrics",
    "accidents_per_km",
    "compute_metrics",
    "metrics_by_injector",
    "mission_success_rate",
    "time_to_violation",
    "violations_per_km",
    "bar_chart",
    "boxplot",
    "figure_header",
    "format_table",
    "CampaignContext",
    "EpisodeTask",
    "ParallelCampaignRunner",
    "ProcessExecutor",
    "SerialExecutor",
    "available_cpus",
    "episode_seed",
    "execute_task",
    "make_executor",
    "TraceDivergence",
    "TraceReader",
    "TraceWriter",
    "compare_traces",
]
