"""Network-backed campaign queue: the filesystem broker served over TCP.

:class:`~repro.core.queue.FilesystemBroker` scales campaigns across
machines only as far as a shared mount does — the paper's
"fault injection as a service" framing needs workers that attach over
the *network*.  This module adds exactly that, without inventing a
second queue implementation:

* :class:`BrokerServer` — a stdlib :mod:`socketserver` TCP server
  wrapping one ``FilesystemBroker`` state directory.  Every request is a
  single length-prefixed JSON frame (4-byte big-endian length + UTF-8
  JSON body; binary payloads travel base64-encoded inside the JSON);
  every response is one frame back.  The server only ever moves opaque
  blobs between the broker's directories via the blob-level primitives
  (:meth:`~repro.core.queue.FilesystemBroker.publish_blobs`,
  :meth:`~repro.core.queue.FilesystemBroker.claim_blob`, …) — it never
  unpickles anything a client sent.
* :class:`TcpBroker` — the client, implementing the same
  :class:`~repro.core.queue.Broker` surface the filesystem broker
  exposes, so :class:`~repro.core.queue.QueueExecutor`,
  :func:`~repro.core.queue.run_worker` (``avfi worker``) and
  ``avfi queue-status`` work unchanged against ``tcp://host:port``.
* :func:`make_broker` — URL dispatch: a ``tcp://host:port`` string
  selects a :class:`TcpBroker`, anything else is a filesystem path.

Semantics are inherited, not re-implemented: claims stay atomic renames
*on the server*, leases/heartbeats/requeues/quarantine run the exact
code the conformance suite pins for the filesystem broker, and the
results checkpoint stays the server's ``results.jsonl``.  One semantic
actually improves: every lease and worker heartbeat is stamped with the
*server's* clock at receipt, so worker clock skew cannot fake (or hide)
an expiry.

Delivery is at-least-once by design — a retried frame whose original
did execute (response lost to the network) can claim twice or append a
duplicate row, and the grid fold's identity dedupe absorbs it, exactly
as it absorbs a lease that expired after its worker finished.  The
:class:`~repro.core.chaos.NetworkChaos` wrapper exists to prove that
under deliberately hostile transport the folded campaign is still
byte-identical to a serial run.

Security: the protocol is unauthenticated and coordinators/workers
exchange pickles *through* the server (the server itself never loads
them).  Run broker endpoints on trusted networks only — the same trust
boundary a shared NFS queue directory already implies.
"""

from __future__ import annotations

import base64
import json
import os
import pickle
import re
import socket
import socketserver
import struct
import threading
import time
import traceback
from pathlib import Path
from typing import Sequence
from urllib.parse import urlsplit

from .campaign import RunRecord
from .outcomes import EpisodeFailure
from .queue import Claim, FilesystemBroker
from .runner import CampaignContext, EpisodeTask

__all__ = [
    "BrokerError",
    "BrokerServer",
    "FrameError",
    "TcpBroker",
    "is_broker_url",
    "make_broker",
]

#: Wire protocol version, exchanged via the ``ping`` op.
PROTOCOL_VERSION = 1

#: Hard ceiling on one frame (a campaign context with NN weights is the
#: largest legitimate payload); anything bigger is a corrupt length
#: prefix and must not become a multi-gigabyte allocation.
MAX_FRAME_BYTES = 512 * 1024 * 1024

_HEADER = struct.Struct(">I")


class FrameError(ConnectionError):
    """A frame could not be read: torn mid-transfer, or an implausible
    length prefix (stream desync / corruption)."""


class BrokerError(RuntimeError):
    """The server executed the request and reported a failure — a real
    application error, never retried (unlike transport errors)."""


#: The exact shape :meth:`FilesystemBroker._task_filename` mints.
_TASK_NAME_RE = re.compile(r"^\d{5}_[0-9a-f]{12}\.task$")
_WORKER_ID_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._:-]{0,127}$")


def _check_task_name(name) -> str:
    """Wire-supplied task names become path components under the broker
    root (``tasks/<name>``, ``claimed/<name>``, ``leases/<stem>.json``,
    ``failed/<name>.error.json``) — accept only names the broker itself
    mints (:meth:`FilesystemBroker._task_filename`), so a hostile frame
    cannot smuggle ``../`` traversal into a server-side write or unlink,
    the same guard :func:`~repro.core.artifacts._check_sha` applies to
    artifact digests."""
    if not isinstance(name, str) or not _TASK_NAME_RE.fullmatch(name):
        raise BrokerError(
            f"invalid task name {name!r} (want NNNNN_<12 hex chars>.task)"
        )
    return name


def _check_worker_id(worker_id) -> str:
    """Worker ids name liveness files (``workers/<id>.json``) — same
    path-component exposure as task names, same server-side rejection."""
    if not isinstance(worker_id, str) or not _WORKER_ID_RE.fullmatch(worker_id):
        raise BrokerError(f"invalid worker id {worker_id!r}")
    return worker_id


def encode_frame(obj: dict) -> bytes:
    body = json.dumps(obj).encode()
    if len(body) > MAX_FRAME_BYTES:
        raise FrameError(f"frame of {len(body)} bytes exceeds {MAX_FRAME_BYTES}")
    return _HEADER.pack(len(body)) + body


def send_frame(sock: socket.socket, obj: dict) -> None:
    sock.sendall(encode_frame(obj))


def _recv_exact(sock: socket.socket, n: int) -> bytes | None:
    """Exactly ``n`` bytes, ``None`` on clean EOF *before* the first
    byte, :class:`FrameError` on EOF mid-way (a torn frame)."""
    buf = b""
    while len(buf) < n:
        chunk = sock.recv(min(n - len(buf), 1 << 20))
        if not chunk:
            if not buf:
                return None
            raise FrameError(f"connection closed mid-frame ({len(buf)}/{n} bytes)")
        buf += chunk
    return buf


def recv_frame(sock: socket.socket) -> dict | None:
    """One length-prefixed JSON frame, or ``None`` on clean EOF."""
    header = _recv_exact(sock, _HEADER.size)
    if header is None:
        return None
    (length,) = _HEADER.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise FrameError(f"frame length {length} exceeds {MAX_FRAME_BYTES}")
    body = _recv_exact(sock, length)
    if body is None:
        raise FrameError("connection closed between frame header and body")
    try:
        return json.loads(body)
    except ValueError as exc:  # JSONDecodeError, or invalid UTF-8
        raise FrameError(f"frame body is not valid JSON: {exc}") from exc


def _b64(blob: bytes) -> str:
    return base64.b64encode(blob).decode("ascii")


def _unb64(text: str) -> bytes:
    return base64.b64decode(text.encode("ascii"))


# ----------------------------------------------------------------------
# URL dispatch
# ----------------------------------------------------------------------


def is_broker_url(spec) -> bool:
    """True when ``spec`` names a broker endpoint rather than a
    directory (any ``scheme://`` string)."""
    return isinstance(spec, str) and "://" in spec


def parse_tcp_url(url: str) -> tuple[str, int]:
    """``"tcp://host:port"`` → ``(host, port)``; raises ``ValueError``
    on any other scheme or a missing port."""
    parts = urlsplit(url)
    if parts.scheme != "tcp":
        raise ValueError(
            f"unsupported broker URL {url!r} (only tcp://host:port is supported)"
        )
    if not parts.hostname or parts.port is None:
        raise ValueError(f"broker URL {url!r} needs both a host and a port")
    return parts.hostname, parts.port


def make_broker(
    spec: str | Path,
    lease_s: float = 60.0,
    timeout_s: float = 30.0,
):
    """Resolve a queue location to a broker: ``tcp://host:port`` gets a
    :class:`TcpBroker`, anything else is a
    :class:`~repro.core.queue.FilesystemBroker` directory.  This is the
    single dispatch point behind ``--queue-dir`` everywhere
    (:class:`~repro.core.queue.QueueExecutor`, ``avfi worker``,
    ``avfi queue-status``)."""
    if is_broker_url(spec):
        host, port = parse_tcp_url(str(spec))
        return TcpBroker(host, port, lease_s=lease_s, timeout_s=timeout_s)
    return FilesystemBroker(spec, lease_s=lease_s)


# ----------------------------------------------------------------------
# Server
# ----------------------------------------------------------------------


class _BrokerRequestHandler(socketserver.BaseRequestHandler):
    """One connection: a loop of request frame → response frame.  A torn
    frame or transport error drops the connection; the client retries on
    a fresh one (at-least-once)."""

    def handle(self) -> None:
        sock = self.request
        try:
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        except OSError:
            pass
        while True:
            try:
                frame = recv_frame(sock)
            except (FrameError, OSError):
                return  # torn/corrupt frame: the request never happened
            if frame is None:
                return  # clean EOF
            try:
                result = self.server.dispatch(frame)
                response = {"ok": True, "result": result}
            except Exception as exc:  # noqa: BLE001 — relayed to the client
                response = {
                    "ok": False,
                    "error": str(exc) or repr(exc),
                    "error_type": type(exc).__name__,
                }
            try:
                send_frame(sock, response)
            except OSError:
                return


class BrokerServer(socketserver.ThreadingTCPServer):
    """A :class:`~repro.core.queue.FilesystemBroker` served over TCP.

    The state directory is authoritative and durable — stop the server,
    restart it on the same ``root``, and every pending task, lease,
    parked failure and checkpoint row is still there (workers reconnect
    and carry on).  Concurrency needs no extra locking: request threads
    call the same atomic file operations that already make the broker
    safe for concurrent *processes*.

    Usage::

        server = BrokerServer(state_dir, port=0).start()
        print(server.address)        # tcp://127.0.0.1:<port>
        ...
        server.stop()
    """

    allow_reuse_address = True
    daemon_threads = True

    def __init__(
        self,
        root: str | Path,
        host: str = "127.0.0.1",
        port: int = 0,
        lease_s: float = 60.0,
    ):
        self.broker = FilesystemBroker(root, lease_s=lease_s)
        self.broker.ensure_layout()
        self.broker.repair_results()
        self._serve_thread: threading.Thread | None = None
        super().__init__((host, port), _BrokerRequestHandler)

    @property
    def address(self) -> str:
        host, port = self.server_address[:2]
        return f"tcp://{host}:{port}"

    def start(self) -> "BrokerServer":
        """Serve on a daemon thread; returns ``self`` for chaining."""
        self._serve_thread = threading.Thread(
            target=self.serve_forever,
            kwargs={"poll_interval": 0.1},
            name=f"broker-server-{self.server_address[1]}",
            daemon=True,
        )
        self._serve_thread.start()
        return self

    def stop(self) -> None:
        self.shutdown()
        self.server_close()
        if self._serve_thread is not None:
            self._serve_thread.join(timeout=5.0)
            self._serve_thread = None

    # -- dispatch ------------------------------------------------------

    def dispatch(self, frame: dict) -> object:
        op = frame.get("op")
        handler = self._OPS.get(op)
        if handler is None:
            raise BrokerError(f"unknown broker op {op!r}")
        return handler(self, frame.get("args") or {})

    def _op_ping(self, args: dict) -> dict:
        return {
            "protocol": PROTOCOL_VERSION,
            "pid": os.getpid(),
            "host": socket.gethostname(),
        }

    def _op_publish(self, args: dict) -> None:
        named = [
            (_check_task_name(name), _unb64(blob)) for name, blob in args["tasks"]
        ]
        self.broker.publish_blobs(
            _unb64(args["context"]), named, spec=args.get("spec")
        )

    def _op_context(self, args: dict) -> str | None:
        blob = self.broker.context_blob()
        return None if blob is None else _b64(blob)

    def _op_claim(self, args: dict) -> dict | None:
        claimed = self.broker.claim_blob(
            _check_worker_id(args["worker_id"]), args.get("lease_s")
        )
        if claimed is None:
            return None
        name, blob, lease_s = claimed
        return {"name": name, "task": _b64(blob), "lease_s": lease_s}

    def _op_heartbeat(self, args: dict) -> None:
        # Server-stamped: the lease's heartbeat_at is written with this
        # machine's clock, so worker skew cannot fake or hide an expiry.
        self.broker._write_lease(
            _check_task_name(args["name"]),
            args["worker_id"],
            float(args["lease_s"]),
        )

    def _op_release(self, args: dict) -> bool:
        return self.broker.release_raw(_check_task_name(args["name"]))

    def _op_fail(self, args: dict) -> None:
        self.broker.fail_raw(
            _check_task_name(args["name"]),
            args.get("worker_id", "?"),
            error=args.get("error", ""),
            traceback_text=args.get("traceback", ""),
            failure=args.get("failure"),
        )

    def _op_requeue_expired(self, args: dict) -> list[str]:
        return self.broker.requeue_expired()

    def _op_requeue_failed(self, args: dict) -> list[str]:
        return self.broker.requeue_failed()

    def _op_quarantine(self, args: dict) -> None:
        self.broker.quarantine(_check_task_name(args["name"]))

    def _op_append_row(self, args: dict) -> None:
        self.broker.append_row(args["row"])

    def _op_read_results(self, args: dict) -> dict:
        offset, records = self.broker.read_results(int(args.get("offset", 0)))
        return {"offset": offset, "rows": [r.to_dict() for r in records]}

    def _op_checkpoint_rows(self, args: dict) -> dict:
        records, failures = self.broker.checkpoint_rows()
        return {
            "records": [r.to_dict() for r in records],
            "failures": [f.to_dict() for f in failures],
        }

    def _op_repair_results(self, args: dict) -> int:
        return self.broker.repair_results()

    def _op_failures(self, args: dict) -> list[dict]:
        return self.broker.failures()

    def _op_manifest(self, args: dict) -> dict | None:
        return self.broker.manifest()

    def _op_status(self, args: dict) -> dict:
        return self.broker.status()

    def _op_heartbeat_worker(self, args: dict) -> None:
        self.broker.heartbeat_worker(
            _check_worker_id(args["worker_id"]),
            int(args.get("done", 0)),
            host=args.get("host"),
            pid=args.get("pid"),
        )

    def _op_workers(self, args: dict) -> list[dict]:
        return self.broker.workers()

    def _op_is_idle(self, args: dict) -> bool:
        return self.broker.is_idle()

    def _op_live_leases(self, args: dict) -> int:
        return self.broker.live_leases()

    def _op_claimed_names(self, args: dict) -> list[str]:
        return self.broker.claimed_names()

    def _op_artifact_put(self, args: dict) -> str:
        return self.broker.artifact_put(args["sha"], _unb64(args["blob"]))

    def _op_artifact_get(self, args: dict) -> str | None:
        blob = self.broker.artifact_get(args["sha"])
        return None if blob is None else _b64(blob)

    def _op_artifact_has(self, args: dict) -> bool:
        return self.broker.artifact_has(args["sha"])

    _OPS = {
        "ping": _op_ping,
        "publish": _op_publish,
        "context": _op_context,
        "claim": _op_claim,
        "heartbeat": _op_heartbeat,
        "release": _op_release,
        "fail": _op_fail,
        "requeue_expired": _op_requeue_expired,
        "requeue_failed": _op_requeue_failed,
        "quarantine": _op_quarantine,
        "append_row": _op_append_row,
        "read_results": _op_read_results,
        "checkpoint_rows": _op_checkpoint_rows,
        "repair_results": _op_repair_results,
        "failures": _op_failures,
        "manifest": _op_manifest,
        "status": _op_status,
        "heartbeat_worker": _op_heartbeat_worker,
        "workers": _op_workers,
        "is_idle": _op_is_idle,
        "live_leases": _op_live_leases,
        "claimed_names": _op_claimed_names,
        "artifact_put": _op_artifact_put,
        "artifact_get": _op_artifact_get,
        "artifact_has": _op_artifact_has,
    }


# ----------------------------------------------------------------------
# Client
# ----------------------------------------------------------------------


class TcpBroker:
    """The network client side of the :class:`~repro.core.queue.Broker`
    protocol: every method is one request/response frame against a
    :class:`BrokerServer`.

    Transport errors (dropped connection, torn frame, timeout) reconnect
    and retry with exponential backoff — delivery is at-least-once, and
    every operation tolerates re-execution: a duplicate claim expires
    back, a duplicate append dedupes at the grid fold, a duplicate
    release reports the claim already gone.  Application errors the
    server reports (:class:`BrokerError`) are never retried.

    One connection is held per broker instance, serialised by a lock —
    the lease-keeper thread and the drain loop share it safely.  The
    instance pickles (for ``fork``-spawned local drain workers) by
    dropping the socket; the child reconnects on first use.

    ``chaos`` accepts a seeded
    :class:`~repro.core.chaos.NetworkChaos` whose injected drops,
    partial frames, delays and reconnect storms travel the *same* error
    paths as real network faults.
    """

    def __init__(
        self,
        host: str,
        port: int,
        lease_s: float = 60.0,
        timeout_s: float = 30.0,
        retries: int = 10,
        retry_backoff_s: float = 0.05,
        chaos=None,
    ):
        self.host = host
        self.port = int(port)
        self.lease_s = float(lease_s)
        self.timeout_s = float(timeout_s)
        self.retries = int(retries)
        self.retry_backoff_s = float(retry_backoff_s)
        self.chaos = chaos
        self._sock: socket.socket | None = None
        self._lock = threading.Lock()

    @property
    def address(self) -> str:
        return f"tcp://{self.host}:{self.port}"

    def __repr__(self) -> str:
        return f"TcpBroker({self.address!r}, lease_s={self.lease_s})"

    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        state["_sock"] = None
        state["_lock"] = None
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._sock = None
        self._lock = threading.Lock()

    # -- transport -----------------------------------------------------

    def _connect(self) -> socket.socket:
        sock = socket.create_connection(
            (self.host, self.port), timeout=self.timeout_s
        )
        sock.settimeout(self.timeout_s)
        try:
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        except OSError:
            pass
        return sock

    def _drop_connection(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def close(self) -> None:
        with self._lock:
            self._drop_connection()

    def ping(self) -> dict:
        return self._call("ping")

    def _call(self, op: str, args: dict | None = None):
        frame = encode_frame({"op": op, "args": args or {}})
        with self._lock:
            last_error: Exception | None = None
            for attempt in range(self.retries + 1):
                if attempt:
                    # Deterministic backoff, capped at the timeout: a
                    # reconnect storm against a briefly-unreachable
                    # server must not busy-spin.
                    time.sleep(
                        min(self.retry_backoff_s * (2 ** (attempt - 1)), 2.0)
                    )
                chaos = self.chaos.plan() if self.chaos is not None else None
                try:
                    if self._sock is None:
                        self._sock = self._connect()
                    if chaos is not None:
                        self._inject_pre_send(chaos, frame)
                    self._sock.sendall(frame)
                    if chaos is not None and chaos.get("drop_after"):
                        # The request reached the server; losing the
                        # response forces a duplicate execution on retry
                        # — the at-least-once case.
                        self._drop_connection()
                        raise FrameError("chaos: connection dropped before response")
                    response = recv_frame(self._sock)
                    if response is None:
                        raise FrameError("server closed the connection")
                except (OSError, FrameError) as exc:
                    last_error = exc
                    self._drop_connection()
                    continue
                if chaos is not None and chaos.get("reconnect"):
                    self._drop_connection()  # next call reconnects (storm)
                if not response.get("ok"):
                    raise BrokerError(
                        f"broker op {op!r} failed on {self.address}: "
                        f"{response.get('error_type', 'Error')}: "
                        f"{response.get('error', '')}"
                    )
                return response.get("result")
        raise ConnectionError(
            f"broker {self.address} unreachable after {self.retries + 1} "
            f"attempts: {last_error!r}"
        )

    def _inject_pre_send(self, chaos: dict, frame: bytes) -> None:
        if chaos.get("delay_s"):
            time.sleep(chaos["delay_s"])
        if chaos.get("drop_before"):
            self._drop_connection()
            raise FrameError("chaos: connection dropped before send")
        if chaos.get("partial_frame"):
            # Half a frame, then a hangup: the server must discard the
            # torn request without executing it.
            try:
                self._sock.sendall(frame[: max(1, len(frame) // 2)])
            finally:
                self._drop_connection()
            raise FrameError("chaos: partial frame sent")

    # -- Broker protocol: coordinator side -----------------------------

    def publish(
        self,
        context: CampaignContext,
        tasks: Sequence[EpisodeTask],
        spec: dict | None = None,
    ) -> None:
        named = [
            [FilesystemBroker._task_filename(task), _b64(pickle.dumps(task))]
            for task in tasks
        ]
        self._call(
            "publish",
            {"context": _b64(pickle.dumps(context)), "tasks": named, "spec": spec},
        )

    def manifest(self) -> dict | None:
        return self._call("manifest")

    def status(self) -> dict:
        return self._call("status")

    def failures(self) -> list[dict]:
        return self._call("failures")

    def requeue_expired(self) -> list[str]:
        return self._call("requeue_expired")

    def requeue_failed(self) -> list[str]:
        return self._call("requeue_failed")

    # Backwards-compatible alias, mirroring FilesystemBroker.
    recover_failed = requeue_failed

    def quarantine(self, name: str) -> None:
        self._call("quarantine", {"name": name})

    def live_leases(self) -> int:
        return self._call("live_leases")

    def is_idle(self) -> bool:
        return self._call("is_idle")

    def claimed_names(self) -> list[str]:
        return self._call("claimed_names")

    def workers(self) -> list[dict]:
        return self._call("workers")

    # -- Broker protocol: worker side ----------------------------------

    def ensure_layout(self) -> None:
        """The server laid out its state directory at startup."""

    def repair_results(self) -> int:
        return self._call("repair_results")

    def context_blob(self) -> bytes | None:
        blob = self._call("context")
        return None if blob is None else _unb64(blob)

    def load_context(self, timeout_s: float = 0.0) -> CampaignContext | None:
        deadline = time.monotonic() + timeout_s
        while True:
            blob = self.context_blob()
            if blob is not None:
                return pickle.loads(blob)
            if time.monotonic() >= deadline:
                return None
            time.sleep(0.1)

    def claim(self, worker_id: str, lease_s: float | None = None) -> Claim | None:
        result = self._call("claim", {"worker_id": worker_id, "lease_s": lease_s})
        if result is None:
            return None
        return Claim(
            name=result["name"],
            task=pickle.loads(_unb64(result["task"])),
            worker_id=worker_id,
            lease_s=float(result["lease_s"]),
        )

    def heartbeat(self, claim: Claim) -> None:
        self._call(
            "heartbeat",
            {
                "name": claim.name,
                "worker_id": claim.worker_id,
                "lease_s": claim.lease_s,
            },
        )

    def release(self, claim: Claim) -> bool:
        return bool(self._call("release", {"name": claim.name}))

    def fail(
        self,
        claim: Claim,
        error: BaseException | None = None,
        failure: EpisodeFailure | None = None,
    ) -> None:
        if error is None and failure is not None:
            error = failure.exception
        tb_text = failure.traceback_text if failure is not None else ""
        self._call(
            "fail",
            {
                "name": claim.name,
                "worker_id": claim.worker_id,
                "error": repr(error) if error is not None else (
                    failure.error if failure is not None else ""
                ),
                # Rendered worker-side: the exception context lives here,
                # not on the server.
                "traceback": tb_text or traceback.format_exc(),
                "failure": failure.to_dict() if failure is not None else None,
            },
        )

    def heartbeat_worker(self, worker_id: str, done: int) -> None:
        self._call(
            "heartbeat_worker",
            {
                "worker_id": worker_id,
                "done": int(done),
                "host": socket.gethostname(),
                "pid": os.getpid(),
            },
        )

    # -- results -------------------------------------------------------

    def append_result(self, record: RunRecord) -> None:
        self._call("append_row", {"row": record.to_dict()})

    def append_failure(self, failure: EpisodeFailure) -> None:
        self._call("append_row", {"row": failure.to_dict()})

    def read_results(self, offset: int) -> tuple[int, list[RunRecord]]:
        result = self._call("read_results", {"offset": int(offset)})
        records = []
        for row in result["rows"]:
            try:
                records.append(RunRecord(**row))
            except TypeError:
                continue  # foreign schema from a different server build
        return int(result["offset"]), records

    def checkpoint_rows(self) -> tuple[list[RunRecord], list[EpisodeFailure]]:
        result = self._call("checkpoint_rows")
        records = []
        for row in result["records"]:
            try:
                records.append(RunRecord(**row))
            except TypeError:
                continue
        failures = []
        for row in result["failures"]:
            try:
                failures.append(EpisodeFailure.from_dict(row))
            except (TypeError, KeyError, ValueError):
                continue
        return records, failures

    def result_identities(self) -> set[tuple[str, str, int, str]]:
        """Settled identities — records and quarantine rows alike,
        mirroring :meth:`FilesystemBroker.result_identities`."""
        from .runner import record_identity

        records, failures = self.checkpoint_rows()
        return {record_identity(r) for r in records} | {
            record_identity(f) for f in failures
        }

    # -- artifacts -----------------------------------------------------

    def artifact_put(self, sha: str, blob: bytes) -> str:
        return self._call("artifact_put", {"sha": sha, "blob": _b64(blob)})

    def artifact_get(self, sha: str) -> bytes | None:
        blob = self._call("artifact_get", {"sha": sha})
        return None if blob is None else _unb64(blob)

    def artifact_has(self, sha: str) -> bool:
        return bool(self._call("artifact_has", {"sha": sha}))
