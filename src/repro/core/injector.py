"""The injection harness: wiring fault models into a live episode.

Fig. 1 shows four hook points around the ADA — Input FI, NN FI, Output FI
and Timing FI.  :class:`InjectionHarness` owns a set of fault models and
attaches each to its seam:

* :class:`~repro.core.faults.base.SensorFault` → the agent client's
  ``input_filters`` (between sensor channel and agent);
* :class:`~repro.core.faults.base.ControlFault` → the client's
  ``output_filters`` (between agent and control channel);
* :class:`~repro.core.faults.base.TimingFault` → a transform on the named
  channel;
* :class:`~repro.core.faults.base.ModelFault` → installed into the
  IL-CNN's weights/hooks;
* :class:`~repro.core.faults.base.WorldFault` → stepped by the episode
  runner once per frame.

``detach`` undoes everything (restoring model weights exactly), so shared
objects — the trained model above all — survive across episodes.  Every
fault receives a child RNG spawned from the harness seed, making the whole
campaign reproducible from scalar seeds.

Compound (multi-fault) episodes are first-class: the harness attaches the
whole ordered fault set, filters compose in declaration order at each hook
point, and each fault's child RNG derives from its *position* in the set —
so a two-fault episode replays bit-for-bit, and the same fault paired with
different partners draws an unrelated stream.  A fault instance may appear
at most once per set; sharing one instance across campaigns is fine, but a
duplicate within one set is rejected at construction.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..agent.ilcnn import ILCNN
from ..sim.client import AgentClient
from ..sim.server import SimulationServer
from ..sim.world import World
from .faults.base import (
    ControlFault,
    FaultModel,
    ModelFault,
    SensorFault,
    TimingFault,
    WorldFault,
)

__all__ = ["InjectionHarness"]


class InjectionHarness:
    """Attaches fault models to one episode's components."""

    def __init__(self, faults: Sequence[FaultModel], seed: int = 0):
        seen: dict[int, FaultModel] = {}
        for position, fault in enumerate(faults):
            if not isinstance(fault, FaultModel):
                raise TypeError(
                    f"unknown fault kind: {type(fault).__name__} (expected a FaultModel)"
                )
            if id(fault) in seen:
                raise ValueError(
                    f"fault {fault.name!r} appears twice in the fault set "
                    f"(position {position}); each fault needs its own instance — "
                    f"a shared instance would double-attach its hooks and share "
                    f"per-episode state (use copy.deepcopy for a second copy)"
                )
            seen[id(fault)] = fault
        self.faults = list(faults)
        self.seed = seed
        self._attached = False
        self._client: AgentClient | None = None
        self._server: SimulationServer | None = None
        self._model: ILCNN | None = None
        self._installed_model_faults: list[ModelFault] = []
        self._input_filters: list = []
        self._output_filters: list = []
        self._channel_transforms: list[tuple[object, TimingFault]] = []
        self._world_faults: list[WorldFault] = []

    # ------------------------------------------------------------------
    def attach(
        self,
        server: SimulationServer,
        client: AgentClient,
        model: ILCNN | None = None,
    ) -> None:
        """Bind every fault model to its hook point for one episode."""
        if self._attached:
            raise RuntimeError("harness already attached; detach first")
        self._server = server
        self._client = client
        self._model = model
        rng_root = np.random.default_rng(self.seed)

        try:
            for fault in self.faults:
                fault.reset()
                fault.bind(np.random.default_rng(rng_root.integers(2**63)))
                if isinstance(fault, SensorFault):
                    input_filter = _SensorFilter(fault)
                    client.input_filters.append(input_filter)
                    self._input_filters.append(input_filter)
                elif isinstance(fault, ControlFault):
                    output_filter = fault.apply
                    client.output_filters.append(output_filter)
                    self._output_filters.append(output_filter)
                elif isinstance(fault, TimingFault):
                    channel = (
                        server.control_channel
                        if fault.channel == "control"
                        else server.sensor_channel
                    )
                    channel.add_transform(fault)
                    self._channel_transforms.append((channel, fault))
                elif isinstance(fault, ModelFault):
                    if model is None:
                        raise ValueError(
                            f"{fault.name} targets the NN but the agent has no model "
                            "(is this the autopilot baseline?)"
                        )
                    fault.install(model, frame=fault.trigger.start_frame)
                    self._installed_model_faults.append(fault)
                elif isinstance(fault, WorldFault):
                    self._world_faults.append(fault)
                else:
                    raise TypeError(f"unknown fault kind: {type(fault).__name__}")
        except BaseException:
            # A later fault failing to attach (a ModelFault without a
            # model, a fault subclass raising in install) must not leak
            # the hooks earlier faults already planted on the *shared*
            # client/server/model — detach() would no-op because
            # _attached was never set, and the next episode would run
            # with this episode's filters still installed.
            self._unwind()
            raise
        self._attached = True

    def on_frame(self, world: World, frame: int) -> None:
        """Advance per-frame fault machinery (world faults)."""
        for fault in self._world_faults:
            fault.step(world, frame)

    def detach(self) -> None:
        """Remove every hook and restore shared state (model weights)."""
        if not self._attached:
            return
        self._unwind()
        self._attached = False

    def _unwind(self) -> None:
        """Remove whatever hooks are currently planted (full or partial).

        Shared between :meth:`detach` and :meth:`attach`'s failure path:
        only hooks recorded in the tracking lists are removed, so a
        partially failed attach unwinds exactly the state it created.
        """
        assert self._client is not None and self._server is not None
        for input_filter in self._input_filters:
            self._client.input_filters.remove(input_filter)
        for output_filter in self._output_filters:
            self._client.output_filters.remove(output_filter)
        for channel, transform in self._channel_transforms:
            channel.remove_transform(transform)
        for fault in self._installed_model_faults:
            assert self._model is not None
            fault.remove(self._model)
        self._input_filters.clear()
        self._output_filters.clear()
        self._channel_transforms.clear()
        self._installed_model_faults.clear()
        self._world_faults.clear()

    # ------------------------------------------------------------------
    def injection_frames(self) -> list[int]:
        """All frames at which any fault actually fired, sorted."""
        frames: set[int] = set()
        for fault in self.faults:
            frames.update(fault.log.frames)
        return sorted(frames)

    def first_injection_frame(self) -> int | None:
        """Earliest activation across all faults, or ``None``."""
        frames = self.injection_frames()
        return frames[0] if frames else None

    def describe(self) -> list[dict]:
        """Descriptions of every fault (for run records)."""
        return [fault.describe() for fault in self.faults]


class _SensorFilter:
    """Adapter: SensorFault → AgentClient input-filter callable."""

    def __init__(self, fault: SensorFault):
        self.fault = fault

    def __call__(self, bundle):
        return self.fault.apply(bundle, bundle.frame)
