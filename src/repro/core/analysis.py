"""Statistical analysis of campaign results.

The paper promises "methods for statistical analysis of traffic
violations"; this module provides the standard toolkit campaigns need:

* :func:`bootstrap_ci` — nonparametric confidence intervals for any
  statistic of per-run values (MSR, VPK, ...);
* :func:`summarize` — five-number summaries feeding the boxplot figures;
* :func:`mann_whitney_u` — rank test for "does injector X raise VPK over
  the baseline?" (exact scipy implementation when available, normal
  approximation otherwise so the library works without scipy);
* :func:`compare_to_baseline` — per-injector effect summary against the
  fault-free group;
* :func:`interaction_effects` — compound-fault interaction metrics:
  MSR/VPK deltas of each multi-fault injector against its single-fault
  marginals, with a Mann-Whitney test per (compound, marginal) pair.

Empty groups follow the metrics module's empty-slice convention: a group
with no completed runs (partially drained queue campaign, freshly resumed
checkpoint) yields NaN effect summaries instead of raising or reporting a
fake ``inf`` — absence of data stays visibly undefined.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Mapping, Sequence

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids a hard import
    from .metrics import ResilienceMetrics

__all__ = [
    "bootstrap_ci",
    "summarize",
    "DistributionSummary",
    "mann_whitney_u",
    "compare_to_baseline",
    "interaction_effects",
    "wilson_interval",
]


def wilson_interval(
    successes: int, n: int, confidence: float = 0.95
) -> tuple[float, float]:
    """Wilson score interval for a binomial proportion (MSR error bars).

    Returns ``(low, high)`` as fractions in [0, 1].  Preferred over the
    normal approximation for the small per-injector run counts of a
    fault-injection campaign.
    """
    if n <= 0:
        raise ValueError("n must be positive")
    if not 0 <= successes <= n:
        raise ValueError("successes must be within [0, n]")
    if not 0.0 < confidence < 1.0:
        raise ValueError("confidence must be in (0, 1)")
    # Two-sided z for the requested confidence via the inverse error function.
    alpha = 1.0 - confidence
    z = math.sqrt(2.0) * _erfinv(1.0 - alpha)
    p = successes / n
    denom = 1.0 + z * z / n
    center = (p + z * z / (2 * n)) / denom
    half = z * math.sqrt(p * (1 - p) / n + z * z / (4 * n * n)) / denom
    return max(0.0, center - half), min(1.0, center + half)


def _erfinv(y: float) -> float:
    """Inverse error function (Winitzki's approximation, ~1e-3 accurate)."""
    a = 0.147
    sign = 1.0 if y >= 0 else -1.0
    ln_term = math.log(1.0 - y * y)
    first = 2.0 / (math.pi * a) + ln_term / 2.0
    return sign * math.sqrt(math.sqrt(first * first - ln_term / a) - first)


@dataclass(frozen=True)
class DistributionSummary:
    """Five-number summary plus mean of one sample."""

    n: int
    minimum: float
    q1: float
    median: float
    q3: float
    maximum: float
    mean: float

    def iqr(self) -> float:
        """Interquartile range."""
        return self.q3 - self.q1


def summarize(values: Sequence[float]) -> DistributionSummary:
    """Five-number summary of ``values``."""
    arr = np.asarray(list(values), dtype=np.float64)
    if arr.size == 0:
        raise ValueError("cannot summarise an empty sample")
    q1, med, q3 = np.percentile(arr, [25, 50, 75])
    return DistributionSummary(
        n=int(arr.size),
        minimum=float(arr.min()),
        q1=float(q1),
        median=float(med),
        q3=float(q3),
        maximum=float(arr.max()),
        mean=float(arr.mean()),
    )


def bootstrap_ci(
    values: Sequence[float],
    statistic: Callable[[np.ndarray], float] = np.mean,
    confidence: float = 0.95,
    n_boot: int = 2000,
    seed: int = 0,
) -> tuple[float, float]:
    """Percentile-bootstrap confidence interval for ``statistic``."""
    arr = np.asarray(list(values), dtype=np.float64)
    if arr.size == 0:
        raise ValueError("cannot bootstrap an empty sample")
    if not 0.0 < confidence < 1.0:
        raise ValueError("confidence must be in (0, 1)")
    rng = np.random.default_rng(seed)
    stats = np.empty(n_boot)
    for i in range(n_boot):
        stats[i] = statistic(arr[rng.integers(0, arr.size, arr.size)])
    alpha = (1.0 - confidence) / 2.0
    lo, hi = np.percentile(stats, [100 * alpha, 100 * (1 - alpha)])
    return float(lo), float(hi)


def mann_whitney_u(
    sample_a: Sequence[float], sample_b: Sequence[float]
) -> tuple[float, float]:
    """Two-sided Mann-Whitney U test; returns ``(U, p_value)``.

    Uses scipy when present; otherwise the normal approximation with tie
    correction (adequate for campaign-sized samples, n >= ~8).
    """
    a = np.asarray(list(sample_a), dtype=np.float64)
    b = np.asarray(list(sample_b), dtype=np.float64)
    if a.size == 0 or b.size == 0:
        raise ValueError("both samples must be non-empty")
    try:
        from scipy import stats as scipy_stats

        result = scipy_stats.mannwhitneyu(a, b, alternative="two-sided")
        return float(result.statistic), float(result.pvalue)
    except ImportError:  # pragma: no cover - scipy present in dev env
        pass

    combined = np.concatenate([a, b])
    order = combined.argsort()
    ranks = np.empty_like(combined)
    # Average ranks for ties.
    sorted_vals = combined[order]
    i = 0
    while i < len(sorted_vals):
        j = i
        while j + 1 < len(sorted_vals) and sorted_vals[j + 1] == sorted_vals[i]:
            j += 1
        ranks[order[i : j + 1]] = (i + j) / 2.0 + 1.0
        i = j + 1
    r_a = ranks[: a.size].sum()
    u_a = r_a - a.size * (a.size + 1) / 2.0
    n1, n2 = a.size, b.size
    mean_u = n1 * n2 / 2.0
    # Tie correction for the variance.
    _, counts = np.unique(combined, return_counts=True)
    tie_term = ((counts**3 - counts).sum()) / ((n1 + n2) * (n1 + n2 - 1))
    var_u = n1 * n2 / 12.0 * ((n1 + n2 + 1) - tie_term)
    if var_u <= 0:
        return float(u_a), 1.0
    z = (u_a - mean_u) / math.sqrt(var_u)
    p = 2.0 * (1.0 - 0.5 * (1.0 + math.erf(abs(z) / math.sqrt(2.0))))
    return float(u_a), float(min(1.0, p))


def compare_to_baseline(
    groups: dict[str, Sequence[float]], baseline: str = "none"
) -> dict[str, dict]:
    """Effect of each group vs. the baseline on a per-run statistic.

    ``groups`` maps injector name to per-run values (e.g. VPK).  Returns,
    per non-baseline group: median shift, mean ratio and the Mann-Whitney
    p-value against the baseline.

    Empty or NaN-mean groups NaN-propagate rather than crash or lie: an
    empty group (either side) gets NaN for all three summaries, and a
    NaN or non-positive baseline mean yields a NaN mean ratio — never
    ``inf``, which would mis-render a partially drained campaign as an
    infinite effect.
    """
    if baseline not in groups:
        raise KeyError(f"baseline group {baseline!r} missing from groups")
    base = np.asarray(list(groups[baseline]), dtype=np.float64)
    base_median = float(np.median(base)) if base.size else float("nan")
    base_mean = float(base.mean()) if base.size else float("nan")
    out: dict[str, dict] = {}
    for name, values in groups.items():
        if name == baseline:
            continue
        arr = np.asarray(list(values), dtype=np.float64)
        if arr.size == 0 or base.size == 0:
            out[name] = {
                "median_shift": float("nan"),
                "mean_ratio_vs_baseline": float("nan"),
                "p_value": float("nan"),
            }
            continue
        _, p = mann_whitney_u(arr, base)
        # NaN base_mean fails the > 0 comparison, so NaN falls through to
        # NaN (not inf) along with genuinely zero/negative means.
        ratio = float(arr.mean() / base_mean) if base_mean > 0 else float("nan")
        out[name] = {
            "median_shift": float(np.median(arr) - base_median),
            "mean_ratio_vs_baseline": ratio,
            "p_value": p,
        }
    return out


def interaction_effects(
    metrics: Mapping[str, "ResilienceMetrics"], baseline: str = "none"
) -> dict[str, dict]:
    """Compound-fault interaction metrics against single-fault marginals.

    ``metrics`` maps injector name to its aggregated
    :class:`~repro.core.metrics.ResilienceMetrics` (whose ``fault_names``
    carries the injector's fault-set composition).  For every *compound*
    injector (two or more faults), the single-fault injectors matching its
    components are its **marginals**; the paper's interaction question is
    whether the combination degrades the vehicle beyond the worst of them.

    Returns, per compound injector:

    * ``components`` — the ordered fault names of the compound set;
    * ``marginals`` — component fault name → its marginal injector name
      (``None`` when no single-fault injector covers that component);
    * ``msr_delta_vs_worst`` — compound MSR minus the *worst* (lowest)
      marginal MSR: negative means the pair hurts beyond either fault
      alone (super-additive);
    * ``vpk_delta_vs_worst`` — compound pooled VPK minus the *worst*
      (highest) marginal VPK: positive means extra violations beyond
      either fault alone;
    * ``p_vs_marginals`` — component fault name → two-sided Mann-Whitney
      p-value of the compound's per-run VPK against that marginal's.

    Marginals with no completed runs (or missing entirely) NaN-propagate,
    matching :func:`compare_to_baseline` and the metrics empty-slice
    convention.  The ``baseline`` group is never treated as a compound.
    """
    # Single-fault injectors indexed by their one fault's name; first
    # definition wins (insertion order), matching grid construction.
    marginal_by_fault: dict[str, str] = {}
    for name, m in metrics.items():
        if name != baseline and len(m.fault_names) == 1:
            marginal_by_fault.setdefault(m.fault_names[0], name)

    def _pair_p(compound: "ResilienceMetrics", marginal: "ResilienceMetrics") -> float:
        if not compound.vpk_per_run or not marginal.vpk_per_run:
            return float("nan")
        _, p = mann_whitney_u(compound.vpk_per_run, marginal.vpk_per_run)
        return p

    out: dict[str, dict] = {}
    for name, m in metrics.items():
        if name == baseline or len(m.fault_names) < 2:
            continue
        marginal_names = {
            fault: marginal_by_fault.get(fault) for fault in m.fault_names
        }
        marginal_metrics = [
            metrics[mname] for mname in marginal_names.values() if mname is not None
        ]
        if len(marginal_metrics) == len(m.fault_names) and marginal_metrics:
            worst_msr = min(mm.msr for mm in marginal_metrics)
            worst_vpk = max(mm.vpk for mm in marginal_metrics)
        else:
            # A component without a single-fault marginal leaves the
            # "worst marginal" undefined; NaN keeps that visible.
            worst_msr = worst_vpk = float("nan")
        out[name] = {
            "components": list(m.fault_names),
            "marginals": marginal_names,
            "msr_delta_vs_worst": float(m.msr - worst_msr),
            "vpk_delta_vs_worst": float(m.vpk - worst_vpk),
            "p_vs_marginals": {
                fault: (
                    _pair_p(m, metrics[mname]) if mname is not None else float("nan")
                )
                for fault, mname in marginal_names.items()
            },
        }
    return out
