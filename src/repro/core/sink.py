"""Columnar result sinks and streaming record iteration.

The JSONL checkpoint is the campaign's *durability* layer — atomic
appends, torn-tail repair, multi-writer safe — but analytics over 10^6+
episodes wants a *columnar* layout: scanning one metric across a million
rows should not mean parsing a million JSON objects.  This module adds
that second layer without touching durability:

* :class:`ParquetSink` — a streaming parquet writer fed one
  :class:`~repro.core.campaign.RunRecord` at a time (row-group batches,
  bounded memory), written *beside* the JSONL checkpoint by the campaign
  runner;
* :func:`iter_jsonl_records` / :func:`iter_parquet_records` /
  :func:`iter_records` — streaming record iterators over either format,
  yielding one record at a time so aggregation
  (:class:`~repro.core.metrics.MetricsAccumulator`) never materialises
  the record set.

``pyarrow`` is an **optional** dependency (the ``parquet`` extra).  When
it is absent every parquet entry point fails with a readable
:class:`ParquetUnavailable` message, and callers that can degrade (the
runner's ``parquet_path``) fall back to JSONL-only with a warning —
campaigns never die over a missing analytics dependency.

Nested payloads (violation events, fault descriptions) are stored as
JSON-encoded string columns: the hot analytical columns (injector,
success, distance, counts) stay native and scannable, while the
long-tail detail round-trips exactly.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, Iterator

from .campaign import RunRecord
from .outcomes import EpisodeFailure, EpisodeOutcome

__all__ = [
    "HAVE_PYARROW",
    "ParquetUnavailable",
    "ParquetSink",
    "record_to_row",
    "row_to_record",
    "iter_jsonl_records",
    "iter_parquet_records",
    "iter_records",
    "write_parquet",
]

try:  # pyarrow is optional (the `parquet` extra)
    import pyarrow as _pa
    import pyarrow.parquet as _pq

    HAVE_PYARROW = True
except ImportError:  # pragma: no cover - exercised where pyarrow is absent
    _pa = None
    _pq = None
    HAVE_PYARROW = False


class ParquetUnavailable(RuntimeError):
    """A parquet entry point was used without pyarrow installed."""

    def __init__(self, what: str):
        super().__init__(
            f"{what} needs pyarrow, which is not installed; "
            f"install the optional extra (pip install pyarrow) or use the "
            f"JSONL checkpoint directly"
        )


#: Column order of the parquet schema; scalars first (the scannable
#: analytical columns), JSON-encoded nested payloads last.
_SCALAR_FIELDS = (
    "scenario",
    "injector",
    "seed",
    "success",
    "frames",
    "duration_s",
    "distance_km",
    "time_limit_s",
    "agent_frames_missed",
    "config_fingerprint",
)
_JSON_FIELDS = ("violations", "injection_frames", "faults")
#: Failure-only columns (null on every normal-record row).  ``outcome``
#: is the discriminator: ``"ok"`` for records, a failure outcome
#: otherwise — mirroring the JSONL convention where only failure rows
#: carry an ``outcome`` key at all.
_FAILURE_FIELDS = (
    "outcome",
    "error_type",
    "error",
    "traceback_digest",
    "attempts",
    "wall_time_s",
)


def _schema():
    return _pa.schema(
        [
            ("scenario", _pa.string()),
            ("injector", _pa.string()),
            ("seed", _pa.int64()),
            ("success", _pa.bool_()),
            ("frames", _pa.int64()),
            ("duration_s", _pa.float64()),
            ("distance_km", _pa.float64()),
            ("time_limit_s", _pa.float64()),
            ("agent_frames_missed", _pa.int64()),
            ("config_fingerprint", _pa.string()),
            ("violations", _pa.string()),
            ("injection_frames", _pa.string()),
            ("faults", _pa.string()),
            ("outcome", _pa.string()),
            ("error_type", _pa.string()),
            ("error", _pa.string()),
            ("traceback_digest", _pa.string()),
            ("attempts", _pa.int64()),
            ("wall_time_s", _pa.float64()),
        ]
    )


def record_to_row(record: RunRecord | EpisodeFailure) -> dict:
    """Flatten one record *or failure* to a parquet row.

    Records get nested payloads JSON-encoded, ``outcome="ok"`` and null
    failure columns; failures get their identity + failure columns and
    null everything record-specific.
    """
    if isinstance(record, EpisodeFailure):
        row = dict.fromkeys(_SCALAR_FIELDS + _JSON_FIELDS + _FAILURE_FIELDS)
        row.update(record.to_dict())
        return row
    row = record.to_dict()
    for field in _JSON_FIELDS:
        row[field] = json.dumps(row[field])
    for field in _FAILURE_FIELDS:
        row[field] = None
    row["outcome"] = EpisodeOutcome.OK
    return row


def row_to_record(row: dict) -> RunRecord | EpisodeFailure:
    """Rebuild a :class:`RunRecord` or
    :class:`~repro.core.outcomes.EpisodeFailure` from a parquet row —
    the exact inverse of :func:`record_to_row` (dataclass equality
    holds).  Rows from pre-outcome files (no ``outcome`` column) are
    plain records."""
    outcome = row.get("outcome")
    if outcome is not None and outcome != EpisodeOutcome.OK:
        return EpisodeFailure.from_dict({k: v for k, v in row.items() if v is not None})
    data = {k: v for k, v in row.items() if k not in _FAILURE_FIELDS}
    for field in _JSON_FIELDS:
        data[field] = json.loads(data[field])
    return RunRecord(**data)


class ParquetSink:
    """Streaming parquet writer for campaign records.

    Records buffer into row groups of ``batch_size`` and flush as arrow
    record batches, so memory stays bounded however long the campaign
    runs.  The file is valid only after :meth:`close` (parquet footers
    are written last) — this sink is the *analytics* artifact; the JSONL
    checkpoint remains the durability layer, and a crash mid-campaign
    costs only the parquet copy, which the next run rewrites from the
    checkpoint.

    Usable as a context manager; :meth:`close` is idempotent.
    """

    def __init__(self, path: str | Path, batch_size: int = 1024):
        if not HAVE_PYARROW:
            raise ParquetUnavailable("ParquetSink")
        if batch_size < 1:
            raise ValueError("batch_size must be at least 1")
        self.path = Path(path)
        self.batch_size = batch_size
        self.rows_written = 0
        self._buffer: list[dict] = []
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._writer = _pq.ParquetWriter(str(self.path), _schema())

    def append(self, record: RunRecord | EpisodeFailure) -> None:
        """Buffer one record or failure; flushes when the batch fills."""
        self._buffer.append(record_to_row(record))
        if len(self._buffer) >= self.batch_size:
            self.flush()

    def extend(self, records: Iterable[RunRecord | EpisodeFailure]) -> None:
        """Append many records (still batch-buffered, never all at once)."""
        for record in records:
            self.append(record)

    def flush(self) -> None:
        """Write the buffered rows as one row group."""
        if not self._buffer or self._writer is None:
            return
        columns = {
            name: [row[name] for row in self._buffer]
            for name in _SCALAR_FIELDS + _JSON_FIELDS + _FAILURE_FIELDS
        }
        self._writer.write_table(_pa.table(columns, schema=_schema()))
        self.rows_written += len(self._buffer)
        self._buffer.clear()

    def close(self) -> None:
        """Flush the tail batch and finalise the parquet footer."""
        if self._writer is None:
            return
        self.flush()
        self._writer.close()
        self._writer = None

    def __enter__(self) -> "ParquetSink":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def write_parquet(
    path: str | Path, records: Iterable[RunRecord], batch_size: int = 1024
) -> int:
    """Stream ``records`` into a parquet file; returns the row count."""
    with ParquetSink(path, batch_size=batch_size) as sink:
        sink.extend(records)
        sink.flush()
        return sink.rows_written


def iter_jsonl_records(path: str | Path) -> Iterator[RunRecord]:
    """Stream records out of a JSONL checkpoint, one line at a time.

    The streaming counterpart of
    :func:`~repro.core.runner.load_checkpoint_records`, with the same
    tolerance rules: a torn *final* line is dropped silently (hard-kill
    tail), a malformed interior line raises (real corruption), and a
    line that parses but is not a record schema is skipped (foreign rows
    in a shared queue checkpoint).  Failure rows (the ones carrying an
    ``outcome`` key) stream through as
    :class:`~repro.core.outcomes.EpisodeFailure` objects, so downstream
    accumulators can count them.  Never holds more than one line.
    """
    path = Path(path)
    if not path.exists():
        return
    pending: tuple[int, str] | None = None  # (lineno, line) lookahead
    with open(path, "r") as fh:
        for lineno, raw in enumerate(fh, start=1):
            line = raw.strip()
            if not line:
                continue
            if pending is not None:
                yield from _parse_jsonl_line(*pending, final=False)
            pending = (lineno, line)
    if pending is not None:
        yield from _parse_jsonl_line(*pending, final=True)


def _parse_jsonl_line(
    lineno: int, line: str, final: bool
) -> Iterator[RunRecord | EpisodeFailure]:
    try:
        data = json.loads(line)
    except json.JSONDecodeError:
        if final:
            return  # truncated final write; the episode re-runs on resume
        raise ValueError(
            f"corrupt checkpoint: unparseable JSON on line {lineno}"
        ) from None
    try:
        if isinstance(data, dict) and "outcome" in data:
            # Failure rows (and only failure rows) carry an outcome key.
            yield EpisodeFailure.from_dict(data)
        else:
            yield RunRecord(**data)
    except TypeError:
        return  # foreign schema: journal noise, never a grid match


def iter_parquet_records(
    path: str | Path, batch_size: int = 4096
) -> Iterator[RunRecord]:
    """Stream records out of a :class:`ParquetSink` file batch-wise.

    Reads one row-group-sized arrow batch at a time, so a
    million-episode file iterates in bounded memory.
    """
    if not HAVE_PYARROW:
        raise ParquetUnavailable("iter_parquet_records")
    with _pq.ParquetFile(str(path)) as pf:
        for batch in pf.iter_batches(batch_size=batch_size):
            for row in batch.to_pylist():
                yield row_to_record(row)


def iter_records(path: str | Path, fmt: str = "auto") -> Iterator[RunRecord]:
    """Stream records from a checkpoint of either format.

    ``fmt`` is ``"jsonl"``, ``"parquet"`` or ``"auto"`` (dispatch on the
    ``.parquet`` suffix).
    """
    path = Path(path)
    if fmt == "auto":
        fmt = "parquet" if path.suffix == ".parquet" else "jsonl"
    if fmt == "parquet":
        return iter_parquet_records(path)
    if fmt == "jsonl":
        return iter_jsonl_records(path)
    raise ValueError(f"unknown checkpoint format {fmt!r} (jsonl/parquet/auto)")
