"""Episode-multiplexed execution: many live episodes in one process.

Campaign episodes are independent, but each one spends most of its frame
budget in the same vectorised sensing kernels (ground-pass gather,
billboard projection, LIDAR ray casting) on small per-episode arrays.
The :class:`EpisodeMultiplexer` exploits that: it keeps up to
``episodes_per_slot`` :class:`~repro.core.campaign.EpisodeDriver` state
machines live at once, round-robins them at *tick* granularity, and runs
the sensing phase of all live episodes through one cross-episode batched
dispatch (:func:`~repro.sim.sensors.read_frames_batch`) — per-frame numpy
fixed costs amortise across episodes while everything order-sensitive
(per-episode RNG streams, paint order, channel delivery) stays exactly
the serial computation.

The hard invariant, inherited from the rest of the execution stack:
multiplexed output is **byte-identical** to the serial path.  That holds
because (a) every episode owns its world RNG and the drivers interleave
whole phases, never draws; (b) the batched kernels are elementwise
bit-identical to their per-episode counterparts; and (c) anything that
*cannot* be safely interleaved falls back to the canonical serial
:func:`~repro.core.runner.attempt_task` path:

- tasks whose fault set contains a
  :class:`~repro.core.faults.base.ModelFault` (they mutate agent model
  weights in place, and agent factories may share one model across
  episodes — concurrent live episodes would cross-contaminate);
- any run under a wall-clock ``timeout_s`` policy (tick-interleaved
  episodes cannot be individually sandboxed);
- any episode whose driver raises mid-flight (the partial run is
  discarded and the task re-runs from scratch serially, preserving retry
  accounting).

:class:`MultiplexedExecutor` wraps the multiplexer in the executor
protocol (same budget/quarantine semantics as
:class:`~repro.core.runner.SerialExecutor`), and
:func:`_run_mux_chunk` is the process-pool worker entry point that lets
``backend="process"`` and the queue workers drain whole multiplexed
slots.
"""

from __future__ import annotations

import copy
import pickle
from typing import Iterator, Sequence

from ..sim.sensors import read_frames_batch
from .campaign import EpisodeDriver, RunRecord
from .faults.base import ModelFault
from .outcomes import EpisodeFailure, EpisodeOutcome, FaultTolerancePolicy
from .runner import (
    CampaignContext,
    EpisodeTask,
    _FailureBudget,
    attempt_task,
    context_policy,
)

__all__ = [
    "DEFAULT_EPISODES_PER_SLOT",
    "EpisodeMultiplexer",
    "MultiplexedExecutor",
    "multiplex_slot_size",
]

#: Slot size when the multiplexed backend is selected without an explicit
#: ``episodes_per_slot``: enough episodes to amortise per-frame numpy
#: dispatch without inflating peak memory (each live episode holds a full
#: world + agent).
DEFAULT_EPISODES_PER_SLOT = 4


def multiplex_slot_size(context: CampaignContext) -> int:
    """The context's live-episode slot size (``getattr`` so contexts
    pickled by older versions, which lack the field, keep working)."""
    return max(1, int(getattr(context, "episodes_per_slot", 1) or 1))


class EpisodeMultiplexer:
    """Round-robins up to E live episode drivers at tick granularity.

    ``run`` yields ``(task, RunRecord | EpisodeFailure)`` pairs as
    episodes finish (completion order; the campaign runner re-orders).
    Construction is cheap — all state lives per :meth:`run` call.
    """

    def __init__(
        self,
        context: CampaignContext,
        episodes_per_slot: int | None = None,
        policy: FaultTolerancePolicy | None = None,
    ):
        self.context = context
        self.episodes_per_slot = (
            episodes_per_slot
            if episodes_per_slot is not None
            else multiplex_slot_size(context)
        )
        if self.episodes_per_slot < 1:
            raise ValueError(
                f"episodes_per_slot must be >= 1 (got {self.episodes_per_slot})"
            )
        self.policy = policy if policy is not None else context_policy(context)

    # -- task routing ---------------------------------------------------
    def _multiplexable(self, task: EpisodeTask) -> bool:
        # ModelFaults mutate the agent's model in place, and agent
        # factories (the NN one) may share a single model across all the
        # episodes they build — two live episodes flipping bits in the
        # same weight tensors would cross-contaminate.  Serial execution
        # is safe because the harness restores/resets between episodes.
        return not any(
            isinstance(fault, ModelFault)
            for fault in self.context.injectors[task.injector]
        )

    def _drive_serial(self, task: EpisodeTask) -> RunRecord | EpisodeFailure:
        """The canonical single-episode path (retries, accounting)."""
        return attempt_task(self.context, task, self.policy)

    def _make_driver(self, task: EpisodeTask) -> EpisodeDriver:
        # The context's injector table shares fault objects across tasks;
        # the serial path runs them one episode at a time, so sharing is
        # safe there — live *concurrent* episodes each need private
        # copies (they already pickle for the process executor, so the
        # deepcopy is always possible).  The harness resets fault state
        # on attach, so a copy behaves exactly like the shared original.
        faults = copy.deepcopy(self.context.injectors[task.injector])
        return EpisodeDriver(
            self.context.builder,
            task.scenario,
            self.context.agent_factory,
            faults=faults,
            injector_name=task.injector,
            harness_seed=task.seed,
            config_fingerprint=task.fingerprint or None,
        )

    # -- execution ------------------------------------------------------
    def run(
        self, tasks: Sequence[EpisodeTask]
    ) -> Iterator[tuple[EpisodeTask, RunRecord | EpisodeFailure]]:
        """Execute ``tasks``, yielding outcomes as episodes finish."""
        pending = list(tasks)
        if self.episodes_per_slot <= 1 or self.policy.timeout_s is not None:
            # A one-episode slot is just the serial loop; and a per-episode
            # wall-clock sandbox cannot be enforced at tick granularity,
            # so a timeout policy always takes the sandboxed serial path.
            for task in pending:
                yield task, self._drive_serial(task)
            return
        pending.reverse()  # pop() consumes in the given order
        live: list[tuple[EpisodeTask, EpisodeDriver]] = []
        open_drivers: set[EpisodeDriver] = set()

        def close_driver(driver: EpisodeDriver) -> None:
            open_drivers.discard(driver)
            driver.close()

        try:
            while pending or live:
                # Refill the slot from the pending queue.
                while len(live) < self.episodes_per_slot and pending:
                    task = pending.pop()
                    if not self._multiplexable(task):
                        yield task, self._drive_serial(task)
                        continue
                    driver = self._make_driver(task)
                    open_drivers.add(driver)
                    try:
                        driver.setup()
                        driver.start()
                    except Exception:
                        # Discard the partial episode; the serial path
                        # owns retries and failure accounting.
                        close_driver(driver)
                        yield task, self._drive_serial(task)
                        continue
                    live.append((task, driver))
                if not live:
                    continue  # everything left routed serially

                # Retire finished episodes before stepping the rest.
                active: list[tuple[EpisodeTask, EpisodeDriver]] = []
                for task, driver in live:
                    if driver.begin_frame():
                        active.append((task, driver))
                        continue
                    try:
                        record = driver.finalize()
                        close_driver(driver)
                        yield task, record
                    except Exception:
                        close_driver(driver)
                        yield task, self._drive_serial(task)

                # One multiplexed tick: whole phases interleave, so each
                # episode's RNG draw order matches the serial loop.
                broken: list[tuple[EpisodeTask, EpisodeDriver]] = []
                stepped: list[tuple[EpisodeTask, EpisodeDriver]] = []
                for task, driver in active:
                    try:
                        driver.step_client()
                        driver.step_world()
                        stepped.append((task, driver))
                    except Exception:
                        broken.append((task, driver))
                bundles = []
                if stepped:
                    try:
                        bundles = read_frames_batch(
                            [
                                (d.handles.sensors, d.world, d.ego, d.world.frame)
                                for _, d in stepped
                            ]
                        )
                    except Exception:
                        # A batched-sensing crash may have consumed some
                        # episodes' RNG draws already; re-sensing would
                        # diverge from serial, so every involved episode
                        # restarts from scratch on the serial path.
                        broken.extend(stepped)
                        stepped = []
                live = []
                for (task, driver), bundle in zip(stepped, bundles):
                    try:
                        driver.complete_frame(bundle)
                        live.append((task, driver))
                    except Exception:
                        broken.append((task, driver))
                for task, driver in broken:
                    close_driver(driver)
                    yield task, self._drive_serial(task)
        finally:
            # Consumer bailed early (budget abort, closed generator):
            # harnesses must detach and trace files must close.
            for driver in list(open_drivers):
                driver.close()


class MultiplexedExecutor:
    """Executor protocol wrapper: one multiplexed slot in this process.

    Budget/quarantine semantics mirror
    :class:`~repro.core.runner.SerialExecutor`: terminal failures within
    the policy's budget are yielded quarantined, one over budget aborts
    with the original error after all earlier outcomes were yielded.
    """

    name = "multiplexed"

    def __init__(self, episodes_per_slot: int | None = None):
        if episodes_per_slot is not None and episodes_per_slot < 1:
            raise ValueError(
                f"episodes_per_slot must be >= 1 (got {episodes_per_slot})"
            )
        self.episodes_per_slot = episodes_per_slot

    def run(
        self, context: CampaignContext, tasks: Sequence[EpisodeTask]
    ) -> Iterator[tuple[EpisodeTask, RunRecord | EpisodeFailure]]:
        """Yield ``(task, outcome)`` as episodes finish."""
        policy = context_policy(context)
        if policy.timeout_s is not None:
            # Sandbox children fork from this process (serial fallback
            # path): warm the scene cache once, like SerialExecutor.
            limit = context.builder.scene_cache.max_entries
            for config in context.warm_configs[:limit]:
                context.builder.renderer_for(config)
        budget = _FailureBudget(policy.failure_budget)
        # Explicit executor knob wins; then the context's; a bare
        # "multiplexed" backend still actually multiplexes.
        slot = self.episodes_per_slot
        if slot is None:
            slot = multiplex_slot_size(context)
            if slot <= 1:
                slot = DEFAULT_EPISODES_PER_SLOT
        mux = EpisodeMultiplexer(context, episodes_per_slot=slot, policy=policy)
        for task, result in mux.run(tasks):
            if isinstance(result, EpisodeFailure):
                if not budget.admit(result):
                    result.raise_error()
                result.outcome = EpisodeOutcome.QUARANTINED
            yield task, result


def _run_mux_chunk(
    tasks: Sequence[EpisodeTask],
) -> list[tuple[int, RunRecord | EpisodeFailure]]:
    """Process-pool worker entry: drain one chunk as a multiplexed slot.

    The multiplexed counterpart of
    :func:`~repro.core.runner._run_task_chunk` — failures come back as
    values for the coordinator's budget, carried exceptions are
    pickle-tested before crossing the result pipe.
    """
    from . import runner

    context = runner._WORKER_CONTEXT
    assert context is not None, "worker pool not initialised"
    out: list[tuple[int, RunRecord | EpisodeFailure]] = []
    for task, result in EpisodeMultiplexer(context).run(tasks):
        if isinstance(result, EpisodeFailure) and result.exception is not None:
            try:
                pickle.dumps(result.exception)
            except Exception:
                result.exception = RuntimeError(f"{result.error_type}: {result.error}")
        out.append((task.index, result))
    return out
