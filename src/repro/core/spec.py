"""Declarative campaign specs: experiments as portable JSON artifacts.

AVFI's promise is *configuration-driven* fault injection, but the
programmatic API makes every campaign a Python program: injectors are
hand-built dicts of fault objects, agents are arbitrary callables, and a
campaign only exists inside the process that constructed it.  This module
turns an experiment definition into **data**:

* :class:`CampaignSpec` — the complete definition of a campaign
  (scenario suite, agent, injectors, builder, execution options),
  round-trippable to/from JSON via :meth:`CampaignSpec.to_dict` /
  :meth:`CampaignSpec.from_dict` and :func:`load_spec` /
  :func:`save_spec`, with schema-version checking and validation errors
  that name the JSON path they refer to;
* :class:`ScenarioSuiteSpec` — a generator configuration (the
  :func:`~repro.core.campaign.standard_scenarios` parameters), an
  explicit scenario list, or a **grammar** — a seeded scenario
  *distribution* (:mod:`repro.core.scenariogen`) expanded
  deterministically at build time;
* :class:`AgentSpec` — a name from the agent registry
  (:data:`~repro.agent.agents.AGENT_REGISTRY`) plus builder params;
* :class:`ExecutionSpec` — workers/backend/queue/checkpoint/parquet
  options, each overridable from the ``avfi run`` command line;
* :class:`CompoundInjectorSpec` — a *generator* entry in the injector
  table: instead of one literal fault list, it declares pools of faults
  and expands (cartesian product, or a seeded sample of it) into many
  compound injectors, one per combination —
  :meth:`CampaignSpec.expanded_injectors` is the single place the
  expansion happens, so ``Campaign.from_spec`` / ``Study.from_spec`` and
  ``avfi`` all see the identical concrete grid.

Fault models serialise through the universal fault registry
(:meth:`~repro.core.faults.base.FaultModel.to_config` /
:meth:`~repro.core.faults.base.FaultModel.from_config`), so every
registered fault — data, hardware, timing, ML, world — can appear in a
spec file.  ``Campaign.from_spec`` / ``Study.from_spec`` rebuild the
exact programmatic objects, and because checkpoint fingerprints derive
from the *built* components (:func:`~repro.core.campaign.component_signature`),
a spec-driven run and its hand-written equivalent produce byte-identical
records — suites can be generated, sharded across the work queue,
archived and replayed without touching Python.
"""

from __future__ import annotations

import copy
import hashlib
import itertools
import json
import random
from dataclasses import dataclass, field
from pathlib import Path
from typing import Sequence

from ..sim.builders import SimulationBuilder
from ..sim.scenario import Scenario, town_config_to_dict
from ..sim.town import GridTownConfig
from .campaign import standard_scenarios
from .faults.base import FaultModel
from .outcomes import FaultTolerancePolicy
from .scenariogen import GrammarError, ScenarioGrammar

__all__ = [
    "SPEC_SCHEMA_VERSION",
    "SpecError",
    "ScenarioSuiteSpec",
    "AgentSpec",
    "ExecutionSpec",
    "CompoundInjectorSpec",
    "CampaignSpec",
    "load_spec",
    "parse_spec",
    "save_spec",
]

#: Version stamped into every emitted spec.  Bump on breaking format
#: changes; :meth:`CampaignSpec.from_dict` rejects specs from the future
#: with a readable error instead of misparsing them.
SPEC_SCHEMA_VERSION = 1


class SpecError(ValueError):
    """A campaign spec failed validation.

    The message always names the JSON path (``spec.injectors['delay'][0]``
    …), so a typo in a 200-line spec file points at its own line instead
    of a traceback deep inside campaign construction.
    """

    def __init__(self, path: str, message: str):
        self.path = path
        self.message = message
        super().__init__(f"invalid campaign spec at {path}: {message}")


def _expect_object(data, path: str) -> dict:
    if not isinstance(data, dict):
        raise SpecError(path, f"expected an object, got {type(data).__name__}")
    return data


def _reject_unknown(data: dict, allowed: set[str], path: str) -> None:
    unknown = set(data) - allowed
    if unknown:
        raise SpecError(
            path,
            f"unknown keys {sorted(unknown)} (allowed: {sorted(allowed)})",
        )


@dataclass
class ScenarioSuiteSpec:
    """The scenario suite, as data.

    Three forms:

    * **generate** (the default): the
      :func:`~repro.core.campaign.standard_scenarios` parameters —
      planner-accurate time limits, reproducible from the suite seed;
    * **explicit**: a literal scenario list (``scenarios`` non-``None``),
      for suites produced by external tooling or replayed from another
      spec;
    * **grammar**: a seeded scenario *distribution*
      (:class:`~repro.core.scenariogen.ScenarioGrammar`) — distribution
      nodes over weather, traffic, town geometry and junction conflicts,
      expanded deterministically at build time (same spec + seed, same
      concrete suite, in any process).
    """

    n: int = 4
    seed: int = 0
    weather: str = "ClearNoon"
    n_npc_vehicles: int = 0
    n_pedestrians: int = 0
    min_distance: float = 100.0
    max_distance: float = 400.0
    town: GridTownConfig = field(default_factory=GridTownConfig)
    #: Explicit suite; overrides the generator parameters when set.
    scenarios: list[Scenario] | None = None
    #: Generative grammar; overrides the generator parameters when set.
    grammar: ScenarioGrammar | None = None

    def build(self) -> list[Scenario]:
        """Materialise the suite (deterministic for a given spec)."""
        if self.scenarios is not None:
            return list(self.scenarios)
        if self.grammar is not None:
            try:
                return self.grammar.expand(path="spec.scenarios.grammar")
            except GrammarError as exc:
                raise SpecError(exc.path, exc.message) from None
        return standard_scenarios(
            self.n,
            seed=self.seed,
            town_config=self.town,
            weather=self.weather,
            n_npc_vehicles=self.n_npc_vehicles,
            n_pedestrians=self.n_pedestrians,
            min_distance=self.min_distance,
            max_distance=self.max_distance,
        )

    def to_dict(self) -> dict:
        """JSON form (one of ``generate``/``explicit``/``grammar``)."""
        if self.scenarios is not None:
            return {"explicit": [s.to_dict() for s in self.scenarios]}
        if self.grammar is not None:
            return {"grammar": self.grammar.to_dict()}
        # Numeric fields are coerced to their canonical JSON type (60 and
        # 60.0 compare equal but serialise differently), so equal suites
        # always emit identical JSON and CampaignSpec.hash() is stable.
        return {
            "generate": {
                "n": int(self.n),
                "seed": int(self.seed),
                "weather": str(self.weather),
                "n_npc_vehicles": int(self.n_npc_vehicles),
                "n_pedestrians": int(self.n_pedestrians),
                "min_distance": float(self.min_distance),
                "max_distance": float(self.max_distance),
                "town": town_config_to_dict(self.town),
            }
        }

    @classmethod
    def from_dict(cls, data, path: str = "spec.scenarios") -> "ScenarioSuiteSpec":
        """Parse and validate a suite spec."""
        data = _expect_object(data, path)
        _reject_unknown(data, {"generate", "explicit", "grammar"}, path)
        present = [k for k in ("generate", "explicit", "grammar") if k in data]
        if len(present) != 1:
            raise SpecError(
                path, "needs exactly one of 'generate', 'explicit' or 'grammar'"
            )
        if "grammar" in data:
            try:
                grammar = ScenarioGrammar.from_dict(
                    data["grammar"], f"{path}.grammar"
                )
            except GrammarError as exc:
                raise SpecError(exc.path, exc.message) from None
            return cls(grammar=grammar)
        if "explicit" in data:
            rows = data["explicit"]
            if not isinstance(rows, list) or not rows:
                raise SpecError(
                    f"{path}.explicit", "expected a non-empty array of scenarios"
                )
            scenarios = []
            for i, row in enumerate(rows):
                try:
                    scenarios.append(Scenario.from_dict(row))
                except (TypeError, ValueError) as exc:
                    raise SpecError(f"{path}.explicit[{i}]", str(exc)) from None
            return cls(scenarios=scenarios)
        gen = _expect_object(data["generate"], f"{path}.generate")
        _reject_unknown(
            gen,
            {
                "n",
                "seed",
                "weather",
                "n_npc_vehicles",
                "n_pedestrians",
                "min_distance",
                "max_distance",
                "town",
            },
            f"{path}.generate",
        )
        town_data = gen.get("town")
        if town_data is not None:
            town_data = _expect_object(town_data, f"{path}.generate.town")
            try:
                town = GridTownConfig(**town_data)
            except (TypeError, ValueError) as exc:
                raise SpecError(f"{path}.generate.town", str(exc)) from None
        else:
            town = GridTownConfig()
        try:
            return cls(
                n=int(gen.get("n", 4)),
                seed=int(gen.get("seed", 0)),
                weather=str(gen.get("weather", "ClearNoon")),
                n_npc_vehicles=int(gen.get("n_npc_vehicles", 0)),
                n_pedestrians=int(gen.get("n_pedestrians", 0)),
                min_distance=float(gen.get("min_distance", 100.0)),
                max_distance=float(gen.get("max_distance", 400.0)),
                town=town,
            )
        except (TypeError, ValueError) as exc:
            raise SpecError(f"{path}.generate", str(exc)) from None


@dataclass
class AgentSpec:
    """A named agent from the registry, plus its builder params."""

    name: str = "autopilot"
    params: dict = field(default_factory=dict)

    def build(self):
        """Resolve through :func:`repro.agent.agents.make_agent_factory`."""
        from ..agent.agents import make_agent_factory  # deferred: heavy

        try:
            return make_agent_factory(self.name, **self.params)
        except KeyError as exc:
            raise SpecError("spec.agent.name", str(exc.args[0])) from None
        except TypeError as exc:
            raise SpecError(
                "spec.agent.params", f"bad params for agent {self.name!r}: {exc}"
            ) from None

    def to_dict(self) -> dict:
        """JSON-serialisable form."""
        return {"name": self.name, "params": dict(self.params)}

    @classmethod
    def from_dict(cls, data, path: str = "spec.agent") -> "AgentSpec":
        """Parse and validate (agent name checked against the registry)."""
        from ..agent.agents import AGENT_REGISTRY  # deferred: heavy

        data = _expect_object(data, path)
        _reject_unknown(data, {"name", "params"}, path)
        name = data.get("name")
        if not isinstance(name, str) or not name:
            raise SpecError(f"{path}.name", "expected a non-empty agent name")
        if name not in AGENT_REGISTRY:
            known = ", ".join(sorted(AGENT_REGISTRY))
            raise SpecError(
                f"{path}.name", f"unknown agent {name!r}; registered agents: {known}"
            )
        params = data.get("params")
        if params is None:
            params = {}
        params = _expect_object(params, f"{path}.params")
        return cls(name=name, params=dict(params))


@dataclass
class ExecutionSpec:
    """How to execute the campaign — every field CLI-overridable."""

    base_seed: int = 0
    workers: int | None = None
    backend: str | None = None
    queue_dir: str | None = None
    lease_s: float | None = None
    checkpoint: str | None = None
    #: Optional parquet sink written beside the JSONL checkpoint
    #: (requires the ``parquet`` extra; degrades to JSONL-only).
    parquet: str | None = None
    #: Live episodes per multiplexed slot (``backend="multiplexed"``, or
    #: process/queue workers each draining a slot).  ``None`` = backend
    #: default; 1 = classic one-episode-at-a-time execution.
    episodes_per_slot: int | None = None
    #: Retry/timeout/quarantine policy all executors honour (``None`` =
    #: defaults: one attempt, no timeout, abort on first failure).
    fault_tolerance: FaultTolerancePolicy | None = None

    _BACKENDS = (None, "serial", "process", "queue", "multiplexed")

    def __post_init__(self) -> None:
        if self.backend not in self._BACKENDS:
            raise SpecError(
                "spec.execution.backend",
                f"unknown backend {self.backend!r} "
                f"(expected one of 'serial', 'process', 'queue', 'multiplexed')",
            )
        if self.workers is not None and self.workers < 0:
            raise SpecError("spec.execution.workers", "must be >= 0")
        if self.lease_s is not None and not self.lease_s > 0:
            raise SpecError("spec.execution.lease_s", "must be > 0")
        if self.episodes_per_slot is not None and self.episodes_per_slot < 1:
            raise SpecError("spec.execution.episodes_per_slot", "must be >= 1")

    def to_dict(self) -> dict:
        """JSON-serialisable form."""
        return {
            "base_seed": int(self.base_seed),
            "workers": int(self.workers) if self.workers is not None else None,
            "backend": self.backend,
            "queue_dir": str(self.queue_dir) if self.queue_dir is not None else None,
            "lease_s": float(self.lease_s) if self.lease_s is not None else None,
            "checkpoint": str(self.checkpoint) if self.checkpoint is not None else None,
            "parquet": str(self.parquet) if self.parquet is not None else None,
            "episodes_per_slot": (
                int(self.episodes_per_slot)
                if self.episodes_per_slot is not None
                else None
            ),
            "fault_tolerance": (
                self.fault_tolerance.to_dict()
                if self.fault_tolerance is not None
                else None
            ),
        }

    @classmethod
    def from_dict(cls, data, path: str = "spec.execution") -> "ExecutionSpec":
        """Parse and validate."""
        data = _expect_object(data, path)
        _reject_unknown(
            data,
            {
                "base_seed",
                "workers",
                "backend",
                "queue_dir",
                "lease_s",
                "checkpoint",
                "parquet",
                "episodes_per_slot",
                "fault_tolerance",
            },
            path,
        )

        # Strict types, matching Trigger.from_dict: "workers": "2" or
        # 2.9 must fail at load time, not run with silently coerced
        # execution settings.
        def integer(key, default):
            value = data.get(key, default)
            if value is not None and (
                not isinstance(value, int) or isinstance(value, bool)
            ):
                raise SpecError(f"{path}.{key}", f"must be an integer, got {value!r}")
            return value

        def number(key):
            value = data.get(key)
            if value is not None and (
                not isinstance(value, (int, float)) or isinstance(value, bool)
            ):
                raise SpecError(f"{path}.{key}", f"must be a number, got {value!r}")
            return float(value) if value is not None else None

        def string(key):
            value = data.get(key)
            if value is not None and not isinstance(value, str):
                raise SpecError(f"{path}.{key}", f"must be a string, got {value!r}")
            return value

        fault_tolerance = data.get("fault_tolerance")
        if fault_tolerance is not None:
            try:
                fault_tolerance = FaultTolerancePolicy.from_dict(fault_tolerance)
            except (TypeError, ValueError) as exc:
                raise SpecError(f"{path}.fault_tolerance", str(exc))
        return cls(
            base_seed=integer("base_seed", 0),
            workers=integer("workers", None),
            backend=string("backend"),
            queue_dir=string("queue_dir"),
            lease_s=number("lease_s"),
            checkpoint=string("checkpoint"),
            parquet=string("parquet"),
            episodes_per_slot=integer("episodes_per_slot", None),
            fault_tolerance=fault_tolerance,
        )


@dataclass
class CompoundInjectorSpec:
    """A generator entry in the injector table: compound faults as data.

    Where a plain injector entry is one literal fault list, a compound
    entry declares **pools** of candidate faults and expands into one
    compound injector per combination (one fault drawn from each pool):

    * ``mode="cartesian"`` — every combination in the cartesian product
      of the pools, in pool order (the full pairing grid over the
      registered catalog fits in one three-line spec entry);
    * ``mode="sample"`` — a seeded, order-stable sample of ``n_samples``
      distinct combinations from that product, for when the full product
      (24 faults squared and up) is more grid than the compute budget.

    Expanded names are ``<entry>:<fault>+<fault>...`` — the entry name
    plus the combination's fault names joined with ``+`` — so records
    and metrics tables self-describe their fault-set composition.
    Combinations that would pair a pool fault with *itself* (the same
    object appearing in overlapping pools) are skipped; every emitted
    fault list holds deep copies, so each expanded injector owns
    independent fault state (a requirement of
    :class:`~repro.core.injector.InjectionHarness`, which rejects shared
    instances).
    """

    pools: list[list[FaultModel]] = field(default_factory=list)
    mode: str = "cartesian"
    n_samples: int | None = None
    seed: int = 0

    _MODES = ("cartesian", "sample")

    def __post_init__(self) -> None:
        if self.mode not in self._MODES:
            raise SpecError(
                "spec.injectors[...].compound.mode",
                f"unknown mode {self.mode!r} (expected 'cartesian' or 'sample')",
            )
        if not self.pools or any(not pool for pool in self.pools):
            raise SpecError(
                "spec.injectors[...].compound.pools",
                "needs at least one non-empty pool of faults",
            )
        if self.mode == "sample":
            if self.n_samples is None or self.n_samples < 1:
                raise SpecError(
                    "spec.injectors[...].compound.n_samples",
                    "sample mode needs n_samples >= 1",
                )

    def combinations(self) -> list[tuple[FaultModel, ...]]:
        """The concrete combination list (pool order; self-pairs skipped).

        In sample mode the subset is drawn without replacement by a
        dedicated :class:`random.Random` seeded from ``seed``, so the
        same spec always expands to the same grid on every machine —
        the paired-design guarantee extends to sampled compound grids.
        """
        combos = [
            combo
            for combo in itertools.product(*self.pools)
            if len({id(f) for f in combo}) == len(combo)
        ]
        if self.mode == "sample":
            if self.n_samples >= len(combos):
                return combos
            picks = sorted(
                random.Random(self.seed).sample(range(len(combos)), self.n_samples)
            )
            return [combos[i] for i in picks]
        return combos

    def expand(self, entry_name: str) -> list[tuple[str, list[FaultModel]]]:
        """``(injector_name, fault_list)`` pairs, deep-copied per combo."""
        out = []
        for combo in self.combinations():
            name = f"{entry_name}:" + "+".join(f.name for f in combo)
            out.append((name, [copy.deepcopy(f) for f in combo]))
        return out

    def to_dict(self) -> dict:
        """JSON form: ``{"compound": {...}}`` (vs a plain fault array)."""
        body = {
            "mode": self.mode,
            "pools": [[f.to_config() for f in pool] for pool in self.pools],
            "seed": int(self.seed),
        }
        if self.n_samples is not None:
            body["n_samples"] = int(self.n_samples)
        return {"compound": body}

    @classmethod
    def from_dict(cls, data, path: str) -> "CompoundInjectorSpec":
        """Parse and validate one compound entry."""
        data = _expect_object(data, path)
        _reject_unknown(data, {"compound"}, path)
        if "compound" not in data:
            raise SpecError(path, "expected a 'compound' object")
        body = _expect_object(data["compound"], f"{path}.compound")
        _reject_unknown(
            body, {"mode", "pools", "n_samples", "seed"}, f"{path}.compound"
        )
        mode = body.get("mode", "cartesian")
        if not isinstance(mode, str):
            raise SpecError(f"{path}.compound.mode", f"must be a string, got {mode!r}")
        pools_data = body.get("pools")
        if not isinstance(pools_data, list) or not pools_data:
            raise SpecError(
                f"{path}.compound.pools", "expected a non-empty array of fault pools"
            )
        pools: list[list[FaultModel]] = []
        for i, pool_data in enumerate(pools_data):
            if not isinstance(pool_data, list) or not pool_data:
                raise SpecError(
                    f"{path}.compound.pools[{i}]",
                    "expected a non-empty array of fault configs",
                )
            pool = []
            for j, config in enumerate(pool_data):
                try:
                    pool.append(FaultModel.from_config(config))
                except (KeyError, TypeError, ValueError) as exc:
                    message = exc.args[0] if exc.args else str(exc)
                    raise SpecError(
                        f"{path}.compound.pools[{i}][{j}]", str(message)
                    ) from None
            pools.append(pool)
        n_samples = body.get("n_samples")
        if n_samples is not None and (
            not isinstance(n_samples, int) or isinstance(n_samples, bool)
        ):
            raise SpecError(
                f"{path}.compound.n_samples",
                f"must be an integer, got {n_samples!r}",
            )
        seed = body.get("seed", 0)
        if not isinstance(seed, int) or isinstance(seed, bool):
            raise SpecError(
                f"{path}.compound.seed", f"must be an integer, got {seed!r}"
            )
        try:
            return cls(pools=pools, mode=mode, n_samples=n_samples, seed=seed)
        except SpecError as exc:
            # Re-anchor the generic __post_init__ path at this entry.
            raise SpecError(f"{path}.compound", exc.message) from None


@dataclass
class CampaignSpec:
    """The complete, serialisable definition of a campaign.

    Holds *live* fault models and a live builder (constructed eagerly by
    :meth:`from_dict`, so a broken spec fails at load time with a path
    into the JSON, not mid-campaign); :meth:`to_dict` serialises them
    back through their config round-trips.  Build runnable objects with
    :meth:`~repro.core.campaign.Campaign.from_spec` /
    :meth:`~repro.core.experiment.Study.from_spec`.
    """

    scenarios: ScenarioSuiteSpec = field(default_factory=ScenarioSuiteSpec)
    agent: AgentSpec = field(default_factory=AgentSpec)
    #: Injector table: each entry is either a literal fault list or a
    #: :class:`CompoundInjectorSpec` generator that expands into many.
    injectors: dict[str, list[FaultModel] | CompoundInjectorSpec] = field(
        default_factory=lambda: {"none": []}
    )
    builder: SimulationBuilder | None = None
    execution: ExecutionSpec = field(default_factory=ExecutionSpec)
    name: str = "campaign"

    def __post_init__(self) -> None:
        if not self.injectors:
            raise SpecError(
                "spec.injectors", "needs at least one injector (use {'none': []})"
            )

    def build_builder(self) -> SimulationBuilder:
        """The simulation builder (spec's own, or the default)."""
        return self.builder if self.builder is not None else SimulationBuilder()

    def expanded_injectors(self) -> dict[str, list[FaultModel]]:
        """The concrete injector grid, compound entries expanded.

        Literal entries pass through under their own names; each
        :class:`CompoundInjectorSpec` entry contributes one injector per
        combination, named ``<entry>:<fault>+<fault>``.  Name collisions
        (two combinations whose fault names coincide, or an expanded
        name matching a literal entry) are disambiguated with a ``#n``
        suffix in expansion order, so the grid size always equals the
        declared combination count.  This is the *single* expansion
        point — ``Campaign.from_spec``, ``Study.from_spec`` and the CLI
        all call it, so every consumer sees the identical grid in the
        identical order (checkpoint identity depends on that ordering).
        """
        out: dict[str, list[FaultModel]] = {}

        def place(name: str, faults: list[FaultModel]) -> None:
            if name in out:
                n = 2
                while f"{name}#{n}" in out:
                    n += 1
                name = f"{name}#{n}"
            out[name] = faults

        for entry_name, entry in self.injectors.items():
            if isinstance(entry, CompoundInjectorSpec):
                for name, faults in entry.expand(entry_name):
                    place(name, faults)
            else:
                place(entry_name, list(entry))
        return out

    def to_dict(self) -> dict:
        """The JSON form — stable under ``from_dict(to_dict())``."""
        return {
            "schema_version": SPEC_SCHEMA_VERSION,
            "name": self.name,
            "scenarios": self.scenarios.to_dict(),
            "agent": self.agent.to_dict(),
            "injectors": {
                name: (
                    entry.to_dict()
                    if isinstance(entry, CompoundInjectorSpec)
                    else [fault.to_config() for fault in entry]
                )
                for name, entry in self.injectors.items()
            },
            "builder": self.builder.to_config() if self.builder is not None else None,
            "execution": self.execution.to_dict(),
        }

    @classmethod
    def from_dict(cls, data) -> "CampaignSpec":
        """Parse and validate a spec (schema version first)."""
        data = _expect_object(data, "spec")
        version = data.get("schema_version")
        if version is None:
            raise SpecError(
                "spec.schema_version",
                f"missing (this repro writes version {SPEC_SCHEMA_VERSION})",
            )
        if not isinstance(version, int) or version < 1:
            raise SpecError(
                "spec.schema_version", f"expected a positive integer, got {version!r}"
            )
        if version > SPEC_SCHEMA_VERSION:
            raise SpecError(
                "spec.schema_version",
                f"spec is version {version} but this repro only understands "
                f"<= {SPEC_SCHEMA_VERSION}; upgrade repro or re-emit the spec",
            )
        _reject_unknown(
            data,
            {
                "schema_version",
                "name",
                "scenarios",
                "agent",
                "injectors",
                "builder",
                "execution",
            },
            "spec",
        )
        injectors_data = data.get("injectors")
        if injectors_data is None:
            raise SpecError("spec.injectors", "missing")
        injectors_data = _expect_object(injectors_data, "spec.injectors")
        if not injectors_data:
            raise SpecError(
                "spec.injectors", "needs at least one injector (use {'none': []})"
            )
        injectors: dict[str, list[FaultModel] | CompoundInjectorSpec] = {}
        for inj_name, fault_configs in injectors_data.items():
            entry_path = f"spec.injectors[{inj_name!r}]"
            if isinstance(fault_configs, dict):
                injectors[inj_name] = CompoundInjectorSpec.from_dict(
                    fault_configs, entry_path
                )
                continue
            if not isinstance(fault_configs, list):
                raise SpecError(
                    entry_path,
                    f"expected an array of fault configs or a compound "
                    f"object, got {type(fault_configs).__name__}",
                )
            faults = []
            for i, config in enumerate(fault_configs):
                try:
                    faults.append(FaultModel.from_config(config))
                except (KeyError, TypeError, ValueError) as exc:
                    message = exc.args[0] if exc.args else str(exc)
                    raise SpecError(f"{entry_path}[{i}]", str(message)) from None
            injectors[inj_name] = faults
        builder_data = data.get("builder")
        if builder_data is not None:
            try:
                builder = SimulationBuilder.from_config(builder_data)
            except (TypeError, ValueError) as exc:
                raise SpecError("spec.builder", str(exc)) from None
        else:
            builder = None
        scenarios_data = data.get("scenarios")
        scenarios = (
            ScenarioSuiteSpec.from_dict(scenarios_data)
            if scenarios_data is not None
            else ScenarioSuiteSpec()
        )
        agent_data = data.get("agent")
        agent = AgentSpec.from_dict(agent_data) if agent_data is not None else AgentSpec()
        execution_data = data.get("execution")
        execution = (
            ExecutionSpec.from_dict(execution_data)
            if execution_data is not None
            else ExecutionSpec()
        )
        name = data.get("name", "campaign")
        if not isinstance(name, str) or not name:
            raise SpecError("spec.name", "expected a non-empty string")
        return cls(
            scenarios=scenarios,
            agent=agent,
            injectors=injectors,
            builder=builder,
            execution=execution,
            name=name,
        )

    def hash(self) -> str:
        """Stable content hash of the full spec (archival, manifests).

        Canonical-JSON (sorted keys) SHA-1 — equal for equal specs across
        processes and machines.  Checkpoint identity does *not* use this
        directly: episode fingerprints derive from the built components
        (see :func:`~repro.core.campaign.episode_fingerprint`), which is
        what keeps spec-driven and programmatic runs byte-identical.
        """
        canonical = json.dumps(self.to_dict(), sort_keys=True)
        return hashlib.sha1(canonical.encode()).hexdigest()[:12]


def load_spec(path: str | Path) -> CampaignSpec:
    """Read and validate a spec file written by :func:`save_spec`."""
    path = Path(path)
    try:
        text = path.read_text()
    except FileNotFoundError:
        raise SpecError(str(path), "no such spec file") from None
    except IsADirectoryError:
        raise SpecError(str(path), "is a directory, not a spec file") from None
    return parse_spec(text, source=str(path))


def parse_spec(text: str, source: str = "<spec>") -> CampaignSpec:
    """Parse spec JSON text (shared by :func:`load_spec` and stdin)."""
    try:
        data = json.loads(text)
    except json.JSONDecodeError as exc:
        raise SpecError(source, f"not valid JSON: {exc}") from None
    return CampaignSpec.from_dict(data)


def save_spec(spec: CampaignSpec, path: str | Path) -> None:
    """Write ``spec`` as readable, diff-friendly JSON."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(spec.to_dict(), indent=2) + "\n")
