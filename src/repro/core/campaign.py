"""Fault-injection campaigns: running (scenario × injector) sweeps.

A *campaign* evaluates one agent across a suite of missions under a set of
named fault injectors (always including a fault-free baseline, as the
paper's "NoInject" bars do).  Each episode is an independent, seeded,
replayable run through the full server/client stack; results are collected
as :class:`RunRecord` rows that the metrics module aggregates into the
paper's resilience metrics.

Experiment design note: every injector configuration sees the *same*
scenario suite (paired design), so differences in MSR/VPK are attributable
to the injector, not to workload luck.
"""

from __future__ import annotations

import copy
import hashlib
import json
import math
import types
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Callable, Sequence

from ..agent.planner import PlanningError, RoutePlanner
from ..sim.builders import SimulationBuilder
from ..sim.channel import Channel
from ..sim.client import AgentClient
from ..sim.scenario import Scenario, make_scenarios
from ..sim.server import SimulationServer
from ..sim.town import GridTownConfig, ProceduralTownConfig, build_town
from ..sim.violations import ViolationEvent
from .faults.base import FaultModel
from .injector import InjectionHarness

__all__ = [
    "RunRecord",
    "CampaignResult",
    "Campaign",
    "EpisodeDriver",
    "component_signature",
    "episode_fingerprint",
    "run_episode",
    "standard_scenarios",
]


def component_signature(obj) -> str:
    """A stable, process-portable identity for an agent factory or builder.

    Components that implement ``config_signature()`` (both shipped agent
    factories, :class:`~repro.sim.builders.SimulationBuilder`) report
    their full configuration — swapping the IL-CNN's weights or the
    camera resolution changes the signature.  Anything else (ad-hoc
    callables, test doubles) falls back to its qualified name, which
    still distinguishes *kinds* of component deterministically across
    processes — never ``id()``/``repr()`` of a bare instance, which
    would differ per process and re-run everything.
    """
    if obj is None:
        return "<none>"
    signature = getattr(obj, "config_signature", None)
    if callable(signature):
        return str(signature())
    if isinstance(obj, types.FunctionType):
        return f"function:{obj.__module__}.{obj.__qualname__}"
    return f"{type(obj).__module__}.{type(obj).__qualname__}"


def episode_fingerprint(
    scenario: Scenario,
    faults: Sequence[FaultModel] = (),
    agent_factory=None,
    builder=None,
    *,
    component_key: tuple | None = None,
) -> str:
    """A short stable hash of what defines an episode's configuration.

    Scenario *names* are just ``scn-0..n`` and episode seeds derive from
    grid indices, so two different suites (other seed, town, distances…)
    — or the same injector name with retuned fault parameters — produce
    colliding ``(injector, name, seed)`` identities.  Checkpoint rows
    carry this fingerprint over the scenario **and** the fault
    configuration (each fault's parameter ``describe()`` plus trigger),
    so resuming against a checkpoint from a different configuration
    re-runs episodes instead of silently returning stale records.

    ``agent_factory`` and ``builder`` fold :func:`component_signature`
    into the hash — the campaign runner always passes them, so resuming
    a checkpoint after switching the agent (autopilot → IL-CNN, retuned
    expert, retrained weights) or the builder (camera, sensors) re-runs
    episodes instead of silently matching.  ``component_key`` lets the
    runner pass the two signatures precomputed once per grid instead of
    re-deriving them per task (the NN signature hashes model weights).

    Each fault is described through a *reset clone*, so per-episode state
    (a :class:`~repro.core.faults.ml_faults.WeightBitFlip`'s drawn
    ``sites``, say) never leaks into the hash — the fingerprint is the
    same whether computed before, during or after a campaign.
    """

    def fault_config(fault: FaultModel):
        probe = copy.deepcopy(fault)
        probe.reset()
        return (sorted(probe.describe().items()), repr(getattr(probe, "trigger", None)))

    if component_key is None:
        component_key = (
            component_signature(agent_factory) if agent_factory is not None else None,
            component_signature(builder) if builder is not None else None,
        )
    key_parts = (
        scenario.mission,
        scenario.town_config,
        scenario.weather,
        scenario.n_npc_vehicles,
        scenario.n_pedestrians,
        scenario.seed,
        [fault_config(fault) for fault in faults],
        tuple(component_key),
    )
    # Scripted NPCs fold in only when present, so fingerprints of plain
    # scenarios are unchanged (existing checkpoints stay resumable).
    if scenario.npcs:
        key_parts = key_parts + (scenario.npcs,)
    return hashlib.sha1(repr(key_parts).encode()).hexdigest()[:12]


@dataclass
class RunRecord:
    """Outcome of one fault-injection episode."""

    scenario: str
    injector: str
    seed: int
    success: bool
    frames: int
    duration_s: float
    distance_km: float
    time_limit_s: float
    violations: list[dict] = field(default_factory=list)
    injection_frames: list[int] = field(default_factory=list)
    faults: list[dict] = field(default_factory=list)
    agent_frames_missed: int = 0
    #: Configuration fingerprint (:func:`episode_fingerprint`); "" in
    #: records written before the field existed — those never match a
    #: live grid, so resume safely re-runs (and excludes) them.
    config_fingerprint: str = ""

    @property
    def n_violations(self) -> int:
        """Total violation events in the run."""
        return len(self.violations)

    @property
    def fault_names(self) -> tuple[str, ...]:
        """The episode's fault-set identity: fault names in attach order.

        ``()`` for fault-free baseline runs.  Compound episodes carry
        every component, so analytics can match a compound injector to
        its single-fault marginals without parsing injector names.
        """
        return tuple(f.get("name", "?") for f in self.faults)

    @property
    def n_accidents(self) -> int:
        """Violations that count as accidents (collisions)."""
        return sum(1 for v in self.violations if v["is_accident"])

    @property
    def violations_per_km(self) -> float:
        """Per-run VPK (0 when the car never moved)."""
        if self.distance_km <= 0.0:
            return 0.0
        return self.n_violations / self.distance_km

    @property
    def accidents_per_km(self) -> float:
        """Per-run APK."""
        if self.distance_km <= 0.0:
            return 0.0
        return self.n_accidents / self.distance_km

    def time_to_violation_s(self) -> float | None:
        """Time from first injection to the first violation after it.

        ``None`` when no fault fired or no violation followed one — the
        paper's TTV is only defined for manifested faults.
        """
        if not self.injection_frames or not self.violations:
            return None
        first_injection = self.injection_frames[0]
        after = [v["frame"] for v in self.violations if v["frame"] >= first_injection]
        if not after:
            return None
        fps = self.frames / self.duration_s if self.duration_s > 0 else 15.0
        return (min(after) - first_injection) / fps

    def to_dict(self) -> dict:
        """JSON-serialisable form."""
        return asdict(self)


def _violation_to_dict(event: ViolationEvent, fps: float) -> dict:
    return {
        "type": event.type.value,
        "frame": event.start_frame,
        "time_s": event.start_frame / fps,
        "is_accident": event.is_accident,
        "position": list(event.position),
    }


class EpisodeDriver:
    """One episode as an explicit, externally-steppable state machine.

    The monolithic ``run_episode`` loop factored into phases so an
    :class:`~repro.core.multiplex.EpisodeMultiplexer` can interleave many
    live episodes at tick granularity and batch their sensing:

    - :meth:`setup` — build world/agent/channels/harness/tracer
      (``"new"`` → ``"running"``);
    - :meth:`start` — ship the frame-0 sensor bundle;
    - :meth:`advance` — one full client/server frame (itself composed of
      :meth:`begin_frame` / :meth:`step_client` / :meth:`step_world` /
      :meth:`sense` / :meth:`complete_frame`, each callable directly);
    - :meth:`finalize` — collect harness output into the
      :class:`RunRecord` (``"running"`` → ``"finalized"``);
    - :meth:`close` — detach the harness and close the tracer
      (idempotent, always safe).

    :meth:`run` composes them with exactly ``run_episode``'s historical
    control flow and exception semantics (setup errors propagate before
    the harness attaches; loop errors still detach and close the trace),
    so ``run_episode`` is now a thin wrapper over this class.

    ``client_clock_skew`` decouples the client's polling clock from the
    server's frame counter: the client polls the sensor channel at
    ``world.frame + client_clock_skew``.  The default ``0`` is the
    historical lockstep loop (bit-identical); a negative skew makes the
    client see stale frames — the clock-jitter seam the channel layer's
    delivery model keys on.
    """

    def __init__(
        self,
        builder: SimulationBuilder,
        scenario: Scenario,
        agent_factory: Callable,
        faults: Sequence[FaultModel] = (),
        injector_name: str = "none",
        harness_seed: int = 0,
        trace_path: str | Path | None = None,
        config_fingerprint: str | None = None,
        client_clock_skew: int = 0,
    ):
        self.builder = builder
        self.scenario = scenario
        self.agent_factory = agent_factory
        self.faults = faults
        self.injector_name = injector_name
        self.harness_seed = harness_seed
        self.trace_path = trace_path
        self.config_fingerprint = config_fingerprint
        self.client_clock_skew = client_clock_skew
        self.state = "new"
        self.success = False
        self._frames_done = 0
        self._new_violations: list[ViolationEvent] = []

    # -- lifecycle ------------------------------------------------------
    def setup(self) -> "EpisodeDriver":
        """Build the episode stack; mirrors ``run_episode``'s preamble.

        Exceptions propagate without detaching (the harness only needs a
        :meth:`close` once ``attach`` has run — callers that need safety
        across partially-constructed drivers use :meth:`close`, which is
        a no-op before attach).
        """
        from .trace import TraceWriter  # local import: tracing is optional

        assert self.state == "new", f"setup() in state {self.state!r}"
        if self.config_fingerprint is None:
            self.config_fingerprint = episode_fingerprint(self.scenario, self.faults)
        self.handles = builder_handles = self.builder.build_episode(self.scenario)
        self.world = builder_handles.world
        ego = self.world.ego
        assert ego is not None
        self.ego = ego
        self.agent = self.agent_factory(builder_handles, self.scenario.mission)

        self.sensor_channel = Channel("sensor")
        self.control_channel = Channel("control")
        self.server = SimulationServer(
            self.world, builder_handles.sensors, self.sensor_channel, self.control_channel
        )
        self.client = AgentClient(self.agent, self.sensor_channel, self.control_channel)

        self.harness = InjectionHarness(self.faults, seed=self.harness_seed)
        self._attached = False
        self.harness.attach(
            self.server, self.client, model=getattr(self.agent, "model", None)
        )
        self._attached = True

        self.mission = self.scenario.mission
        self.max_frames = int(math.ceil(self.mission.time_limit_s * self.world.fps))
        self.tracer = (
            TraceWriter(
                self.trace_path,
                header={
                    "scenario": self.scenario.name,
                    "injector": self.injector_name,
                    "seed": self.harness_seed,
                },
            )
            if self.trace_path is not None
            else None
        )
        self.state = "running"
        return self

    def start(self) -> None:
        """Ship the frame-0 sensor bundle so the agent has input."""
        self.server.send_initial_frame()

    # -- per-frame phases ----------------------------------------------
    def begin_frame(self) -> bool:
        """Whether another frame should run (the loop guard)."""
        return (
            self.state == "running"
            and not self.success
            and self._frames_done < self.max_frames
        )

    def step_client(self) -> None:
        """Client phase: act on the freshest due sensor bundle.

        Polls at the client's own clock (``world.frame`` plus the skew) —
        with skew 0 this is the historical lockstep ``client.tick``.
        """
        self.client.tick(self.world.frame + self.client_clock_skew)

    def step_world(self) -> None:
        """Server phases 1-3: apply control, tick physics, monitor."""
        self.server.apply_pending_control()
        _, self._new_violations = self.server.advance_world()

    def sense(self):
        """Server phase 4a: read the sensor bundle (batchable)."""
        return self.server.read_bundle()

    def complete_frame(self, bundle) -> None:
        """Publish ``bundle``, run the harness, trace, check success."""
        self.server.publish_bundle(bundle)
        self.harness.on_frame(self.world, self.world.frame)
        if self.tracer is not None:
            ego = self.ego
            self.tracer.state(
                self.world.frame, ego.position.x, ego.position.y, ego.yaw, ego.speed()
            )
            for event in self._new_violations:
                self.tracer.violation(event.start_frame, event.type.value)
        if self.ego.position.distance_to(self.mission.goal) < self.mission.success_radius:
            self.success = True
        self._frames_done += 1

    def advance(self) -> bool:
        """Run one full frame; ``False`` once the episode is over."""
        if not self.begin_frame():
            return False
        self.step_client()
        self.step_world()
        self.complete_frame(self.sense())
        return True

    # -- teardown -------------------------------------------------------
    def finalize(self) -> RunRecord:
        """Collect harness output and build the :class:`RunRecord`."""
        assert self.state == "running", f"finalize() in state {self.state!r}"
        injection_frames = self.harness.injection_frames()
        fault_descriptions = self.harness.describe()
        if self.tracer is not None:
            for frame in injection_frames:
                self.tracer.injection(frame, self.injector_name)
        record = RunRecord(
            scenario=self.scenario.name,
            injector=self.injector_name,
            seed=self.harness_seed,
            success=self.success,
            frames=self.world.frame,
            duration_s=self.world.time_s,
            distance_km=self.ego.odometer_m / 1000.0,
            time_limit_s=self.mission.time_limit_s,
            violations=[
                _violation_to_dict(e, self.world.fps)
                for e in self.server.monitor.events
            ],
            injection_frames=injection_frames,
            faults=fault_descriptions,
            agent_frames_missed=self.client.frames_missed,
            config_fingerprint=self.config_fingerprint,
        )
        self.state = "finalized"
        return record

    def close(self) -> None:
        """Detach the harness and close the tracer.  Idempotent."""
        if self.state == "closed":
            return
        if getattr(self, "_attached", False):
            self.harness.detach()
        tracer = getattr(self, "tracer", None)
        if tracer is not None:
            tracer.close(footer={"success": self.success})
            self.tracer = None
        self.state = "closed"

    def run(self) -> RunRecord:
        """``setup`` + frame loop + ``finalize``, with the historical
        exception semantics of ``run_episode``."""
        self.setup()
        try:
            self.start()
            while self.advance():
                pass
            return self.finalize()
        finally:
            self.close()


def run_episode(
    builder: SimulationBuilder,
    scenario: Scenario,
    agent_factory: Callable,
    faults: Sequence[FaultModel] = (),
    injector_name: str = "none",
    harness_seed: int = 0,
    trace_path: str | Path | None = None,
    config_fingerprint: str | None = None,
) -> RunRecord:
    """Run one episode under the given fault set and record the outcome.

    The loop is the paper's synchronous client/server cycle: the client
    acts on the freshest sensor bundle, the server applies the freshest
    due control (holding the previous one when timing faults starve it).
    With ``trace_path`` given, a JSONL trace (per-frame ego state plus
    violation/injection events) is written for offline analysis and
    replay comparison (:mod:`repro.core.trace`).

    Implemented as :meth:`EpisodeDriver.run`; use the driver directly to
    step an episode externally (the multiplexer does).
    """
    return EpisodeDriver(
        builder,
        scenario,
        agent_factory,
        faults=faults,
        injector_name=injector_name,
        harness_seed=harness_seed,
        trace_path=trace_path,
        config_fingerprint=config_fingerprint,
    ).run()


@dataclass
class CampaignResult:
    """All run records of a campaign, with grouping helpers.

    ``failures`` is the campaign's quarantine list: episodes the
    executors gave up on within the fault-tolerance budget
    (:class:`~repro.core.outcomes.EpisodeFailure`, grid order).  They are
    never mixed into ``records`` — a quarantined episode is missing data,
    not a mission result.
    """

    records: list[RunRecord] = field(default_factory=list)
    failures: list = field(default_factory=list)

    def by_injector(self) -> dict[str, list[RunRecord]]:
        """Records grouped by injector name, insertion-ordered."""
        groups: dict[str, list[RunRecord]] = {}
        for record in self.records:
            groups.setdefault(record.injector, []).append(record)
        return groups

    def injectors(self) -> list[str]:
        """Injector names in first-seen order."""
        return list(self.by_injector())

    def filter(self, injector: str) -> list[RunRecord]:
        """Records of one injector."""
        return [r for r in self.records if r.injector == injector]

    def quarantined(self) -> list[tuple[str, str, int]]:
        """The quarantine list as ``(injector, scenario, seed)`` triples."""
        return [(f.injector, f.scenario, f.seed) for f in self.failures]

    def save(self, path: str | Path) -> None:
        """Write records (and quarantine rows, if any) as JSON."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        rows = [r.to_dict() for r in self.records]
        rows += [f.to_dict() for f in self.failures]
        path.write_text(json.dumps(rows, indent=1))

    @classmethod
    def load(cls, path: str | Path) -> "CampaignResult":
        """Read records written by :meth:`save` (failure rows — the ones
        carrying an ``outcome`` key — rebuild into the quarantine list)."""
        from .outcomes import EpisodeFailure  # deferred: tiny leaf module

        rows = json.loads(Path(path).read_text())
        records, failures = [], []
        for row in rows:
            if isinstance(row, dict) and "outcome" in row:
                failures.append(EpisodeFailure.from_dict(row))
            else:
                records.append(RunRecord(**row))
        return cls(records, failures=failures)


class Campaign:
    """A full (injector × scenario) fault-injection sweep.

    ``workers`` selects parallel execution: the default (``None``/``1``)
    runs episodes serially in-process, anything larger fans episodes out
    to a process pool via
    :class:`~repro.core.runner.ParallelCampaignRunner`.  All paths share
    the per-episode seed formula and return identical results.

    ``backend="queue"`` (with a shared ``queue_dir``) shards the grid
    across machines instead: this process coordinates through a
    :class:`~repro.core.queue.QueueExecutor` (spawning ``workers`` local
    drain processes), any machine can attach more workers with
    ``avfi worker --queue-dir``, and the broker's ``results.jsonl``
    checkpoint makes the campaign resumable — re-running the same
    campaign against the same ``queue_dir`` executes only what's missing.

    ``backend`` (a name: ``"serial"``/``"process"``/``"queue"``) and
    ``executor`` (a ready-made executor instance) are distinct: a
    backend is resolved into an executor at :meth:`run` time, an
    instance is used as-is and its own configuration wins.  Passing both
    is a contradiction and raises.

    A ``checkpoint_path`` makes the campaign resumable exactly like a
    :class:`~repro.core.experiment.Study`: completed episodes append to
    the JSONL file as they finish, and a re-run executes only what's
    missing.
    """

    def __init__(
        self,
        scenarios: Sequence[Scenario],
        agent_factory: Callable,
        injectors: dict[str, Sequence[FaultModel]],
        builder: SimulationBuilder | None = None,
        base_seed: int = 0,
        verbose: bool = False,
        workers: int | None = None,
        executor=None,
        backend: str | None = None,
        queue_dir: str | Path | None = None,
        lease_s: float | None = None,
        checkpoint_path: str | Path | None = None,
        parquet_path: str | Path | None = None,
        fault_tolerance=None,
        episodes_per_slot: int | None = None,
    ):
        if not scenarios:
            raise ValueError("campaign needs at least one scenario")
        if not injectors:
            raise ValueError("campaign needs at least one injector (use {'none': []})")
        if backend is not None and executor is not None:
            raise ValueError("pass either backend= or executor=, not both")
        if backend is not None and not isinstance(backend, str):
            raise TypeError(
                f"backend must be an executor name string, got "
                f"{type(backend).__name__} (pass instances via executor=)"
            )
        self.scenarios = list(scenarios)
        self.agent_factory = agent_factory
        self.injectors = dict(injectors)
        self.builder = builder or SimulationBuilder()
        self.base_seed = base_seed
        self.verbose = verbose
        self.workers = workers
        #: Executor *instance* (authoritative when set) — kept separate
        #: from the ``backend`` *name* so spec-driven construction can
        #: plumb either unambiguously.
        self.executor = executor
        self.backend = backend
        self.queue_dir = queue_dir
        self.lease_s = lease_s
        self.checkpoint_path = checkpoint_path
        #: Optional parquet analytics sink written beside the JSONL
        #: checkpoint (see :class:`~repro.core.sink.ParquetSink`);
        #: degrades to JSONL-only when pyarrow is absent.
        self.parquet_path = parquet_path
        #: :class:`~repro.core.outcomes.FaultTolerancePolicy` every
        #: executor honours (``None`` = defaults: one attempt, no
        #: timeout, abort on the first failure — historical behaviour).
        self.fault_tolerance = fault_tolerance
        if episodes_per_slot is not None and episodes_per_slot < 1:
            raise ValueError(
                f"episodes_per_slot must be >= 1 (got {episodes_per_slot})"
            )
        #: Live episodes per multiplexed slot: with
        #: ``backend="multiplexed"`` this is the slot size of the single
        #: in-process multiplexer; with process/queue backends each
        #: worker drains slots of this size.  ``None``/1 = one episode
        #: at a time (serial semantics).  Output is byte-identical
        #: either way.
        self.episodes_per_slot = episodes_per_slot
        #: The :class:`~repro.core.spec.CampaignSpec` this campaign was
        #: built from (set by :meth:`from_spec`); published alongside the
        #: queue broker's context so workers can see the full campaign
        #: definition as a portable artifact.
        self.spec = None

    @classmethod
    def from_spec(
        cls,
        spec,
        *,
        workers: int | None = None,
        queue_dir: str | Path | None = None,
        lease_s: float | None = None,
        checkpoint_path: str | Path | None = None,
        parquet_path: str | Path | None = None,
        fault_tolerance=None,
        episodes_per_slot: int | None = None,
        verbose: bool = False,
    ) -> "Campaign":
        """Build a campaign from a :class:`~repro.core.spec.CampaignSpec`.

        The keyword arguments override the spec's execution options (the
        ``avfi run`` CLI flags); everything else — scenario suite, agent,
        injectors, builder, base seed — comes from the spec.  The
        injector table goes through
        :meth:`~repro.core.spec.CampaignSpec.expanded_injectors`, so
        compound entries arrive as their concrete expanded grid (the
        expansion already deep-copies); literal entries are deep-copied
        here so building two campaigns from one spec never shares
        mutable fault state.
        """
        execution = spec.execution
        queue_dir = queue_dir if queue_dir is not None else execution.queue_dir
        backend = execution.backend
        if queue_dir is not None:
            # A queue directory — from the spec or the override — always
            # selects the queue backend, even when the spec pinned
            # another one: the same archived spec must shard across
            # machines when handed a --queue-dir.
            backend = "queue"
        elif backend == "queue":
            raise ValueError(
                "spec asks for the queue backend but no queue_dir is set "
                "(spec.execution.queue_dir or the queue_dir= override)"
            )
        campaign = cls(
            spec.scenarios.build(),
            spec.agent.build(),
            {
                name: [copy.deepcopy(fault) for fault in faults]
                for name, faults in spec.expanded_injectors().items()
            },
            builder=spec.build_builder(),
            base_seed=execution.base_seed,
            verbose=verbose,
            workers=workers if workers is not None else execution.workers,
            backend=backend,
            queue_dir=queue_dir,
            lease_s=lease_s if lease_s is not None else execution.lease_s,
            checkpoint_path=(
                checkpoint_path if checkpoint_path is not None else execution.checkpoint
            ),
            parquet_path=(
                parquet_path if parquet_path is not None else execution.parquet
            ),
            fault_tolerance=(
                fault_tolerance
                if fault_tolerance is not None
                else execution.fault_tolerance
            ),
            episodes_per_slot=(
                episodes_per_slot
                if episodes_per_slot is not None
                else execution.episodes_per_slot
            ),
        )
        campaign.spec = spec
        return campaign

    def total_runs(self) -> int:
        """Number of episodes the campaign will execute."""
        return len(self.scenarios) * len(self.injectors)

    def runner(self, workers: int | None = None):
        """Build the :class:`~repro.core.runner.ParallelCampaignRunner`
        this campaign would execute, without running it.

        :meth:`run` is ``runner().run()``; the campaign service
        (:mod:`repro.core.service`) holds the runner directly so it can
        publish the grid, watch per-episode progress, and drive the run
        from its own thread.
        """
        from .runner import ParallelCampaignRunner  # deferred: runner imports us

        return ParallelCampaignRunner(
            self.scenarios,
            self.agent_factory,
            self.injectors,
            builder=self.builder,
            base_seed=self.base_seed,
            workers=workers if workers is not None else self.workers,
            executor=self.executor if self.executor is not None else self.backend,
            queue_dir=self.queue_dir,
            lease_s=self.lease_s,
            checkpoint_path=self.checkpoint_path,
            parquet_path=self.parquet_path,
            policy=self.fault_tolerance,
            episodes_per_slot=self.episodes_per_slot,
            spec=self.spec.to_dict() if self.spec is not None else None,
            verbose=self.verbose,
            label="campaign",
        )

    def run(self, workers: int | None = None) -> CampaignResult:
        """Execute every (injector, scenario) episode.

        ``workers`` overrides the constructor setting for this run.
        """
        return self.runner(workers).run()


def standard_scenarios(
    n: int,
    seed: int = 0,
    town_config: GridTownConfig | ProceduralTownConfig | None = None,
    weather: str = "ClearNoon",
    n_npc_vehicles: int = 0,
    n_pedestrians: int = 0,
    min_distance: float = 100.0,
    max_distance: float = 400.0,
) -> list[Scenario]:
    """Scenario suite with *planner-accurate* mission time limits.

    Wires the route planner into mission generation so time limits reflect
    true route lengths and unroutable start/goal pairs are rejected — the
    variant campaign code should normally use.
    """
    cfg = town_config or GridTownConfig()
    town = build_town(cfg)
    planner = RoutePlanner(town)

    def route_length(start, goal):
        try:
            return planner.plan(start.position, goal, start_yaw=start.yaw).length
        except PlanningError:
            return None

    return make_scenarios(
        n,
        seed=seed,
        town_config=cfg,
        weather=weather,
        n_npc_vehicles=n_npc_vehicles,
        n_pedestrians=n_pedestrians,
        min_distance=min_distance,
        max_distance=max_distance,
        route_length_fn=route_length,
    )
