"""Generative scenario grammar: Scenic-style scenario *distributions* as data.

The declarative spec layer (:mod:`repro.core.spec`) can enumerate fixed
suites or replay explicit lists; this module makes the suite itself a
**seeded distribution**, in the spirit of Scenic (Fremont et al., PLDI
2019): every scenario parameter — weather, traffic counts, distance bands,
town geometry — may be a *distribution node* instead of a literal, and the
whole grammar expands deterministically into a concrete
:class:`~repro.sim.scenario.Scenario` list.

Four pieces:

* **Distribution nodes** — ``{"uniform": [lo, hi]}``, ``{"choice": [...]}``,
  ``{"normal": {"mean": .., "std": .., "low": .., "high": ..}}`` and
  ``{"range": {"start": .., "stop": .., "step": ..}}`` JSON forms, parsed
  by :func:`parse_node` and resolved against a seeded
  :class:`numpy.random.Generator`;
* **Seed tree** — :meth:`ScenarioGrammar.expand` spawns one
  :class:`numpy.random.SeedSequence` child per scenario from the grammar
  seed, so the same spec + seed always expands to the byte-identical
  suite in any process, and inserting a scenario never reshuffles the
  others' draws;
* **Procedural towns** — the grammar's ``town`` entry samples
  :class:`~repro.sim.town.GridTownConfig` or
  :class:`~repro.sim.town.ProceduralTownConfig` fields per scenario, so a
  suite can sweep road networks, not just missions;
* **Maneuver-conflict sampling** — :class:`ConflictGrammar` picks a
  junction, routes the ego straight through it and a scripted NPC onto a
  crossing turn (left, by default) with a reactive
  :class:`~repro.sim.actors.BehaviorSpec` (``run_junction`` interrupt),
  concentrating generated suites on the interaction cases fault campaigns
  care about.

Expanded suites are plain ``Scenario`` lists, so they compose with every
execution backend and with compound faults; checkpoint fingerprints cover
the sampled towns and scripted NPCs (see
:func:`~repro.core.campaign.episode_fingerprint`).

This module deliberately does **not** import :mod:`repro.core.spec` (spec
imports us); validation errors are raised as :class:`GrammarError` with
the same path-anchored shape, and the spec layer re-wraps them.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from ..sim.actors import BEHAVIOR_NAMES, BehaviorSpec
from ..sim.geometry import Transform
from ..sim.scenario import (
    NOMINAL_SPEED,
    Mission,
    NPCSpec,
    Scenario,
    generate_missions,
)
from ..sim.town import GridTownConfig, Lane, ProceduralTownConfig, Town
from ..sim.weather import PRESETS

__all__ = [
    "GrammarError",
    "Distribution",
    "Uniform",
    "Choice",
    "Normal",
    "Range",
    "parse_node",
    "node_to_json",
    "resolve_float",
    "resolve_int",
    "resolve_str",
    "resolve_bool",
    "TownGrammar",
    "ConflictGrammar",
    "ScenarioGrammar",
    "enumerate_conflicts",
]


class GrammarError(ValueError):
    """A scenario grammar failed validation or expansion.

    Mirrors :class:`repro.core.spec.SpecError`'s ``(path, message)``
    shape so the spec layer can re-anchor grammar errors in the JSON
    document without importing us circularly.
    """

    def __init__(self, path: str, message: str):
        self.path = path
        self.message = message
        super().__init__(f"invalid scenario grammar at {path}: {message}")


# ----------------------------------------------------------------------
# Distribution nodes
# ----------------------------------------------------------------------
class Distribution:
    """Base class of all sampled nodes.  Literals are *not* distributions."""

    def sample_float(self, rng: np.random.Generator) -> float:
        raise NotImplementedError

    def sample_int(self, rng: np.random.Generator) -> int:
        raise NotImplementedError

    def sample_value(self, rng: np.random.Generator):
        """The raw sampled value (choice nodes can hold any scalar)."""
        return self.sample_float(rng)

    def to_json(self) -> dict:
        raise NotImplementedError


@dataclass(frozen=True)
class Uniform(Distribution):
    """``{"uniform": [lo, hi]}`` — continuous on floats, inclusive on ints.

    In an integer position (NPC counts, say) the node draws uniformly
    from the *inclusive* integer interval ``[lo, hi]`` — ``[0, 3]`` gives
    each of 0..3 equal probability — rather than rounding a continuous
    draw (which would halve the endpoint probabilities).
    """

    low: float
    high: float

    def sample_float(self, rng: np.random.Generator) -> float:
        return float(rng.uniform(self.low, self.high))

    def sample_int(self, rng: np.random.Generator) -> int:
        return int(rng.integers(int(self.low), int(self.high) + 1))

    def to_json(self) -> dict:
        return {"uniform": [self.low, self.high]}


@dataclass(frozen=True)
class Choice(Distribution):
    """``{"choice": [a, b, ...]}`` — uniform over an explicit option list."""

    options: tuple

    def sample_value(self, rng: np.random.Generator):
        return self.options[int(rng.integers(len(self.options)))]

    def sample_float(self, rng: np.random.Generator) -> float:
        return float(self.sample_value(rng))

    def sample_int(self, rng: np.random.Generator) -> int:
        return int(self.sample_value(rng))

    def to_json(self) -> dict:
        return {"choice": list(self.options)}


@dataclass(frozen=True)
class Normal(Distribution):
    """``{"normal": {"mean", "std", "low", "high"}}`` — optionally clamped."""

    mean: float
    std: float
    low: float | None = None
    high: float | None = None

    def sample_float(self, rng: np.random.Generator) -> float:
        value = float(rng.normal(self.mean, self.std))
        if self.low is not None:
            value = max(value, self.low)
        if self.high is not None:
            value = min(value, self.high)
        return value

    def sample_int(self, rng: np.random.Generator) -> int:
        return int(round(self.sample_float(rng)))

    def to_json(self) -> dict:
        body = {"mean": self.mean, "std": self.std}
        if self.low is not None:
            body["low"] = self.low
        if self.high is not None:
            body["high"] = self.high
        return {"normal": body}


@dataclass(frozen=True)
class Range(Distribution):
    """``{"range": {"start", "stop", "step"}}`` — uniform over a lattice.

    Values are ``start, start + step, ...`` strictly below ``stop``
    (Python ``range`` semantics, extended to floats).
    """

    start: float
    stop: float
    step: float = 1.0

    def values(self) -> list[float]:
        count = int(math.ceil((self.stop - self.start) / self.step - 1e-9))
        return [self.start + k * self.step for k in range(count)]

    def sample_value(self, rng: np.random.Generator):
        values = self.values()
        return values[int(rng.integers(len(values)))]

    def sample_float(self, rng: np.random.Generator) -> float:
        return float(self.sample_value(rng))

    def sample_int(self, rng: np.random.Generator) -> int:
        return int(round(self.sample_float(rng)))

    def to_json(self) -> dict:
        body = {"start": self.start, "stop": self.stop}
        if self.step != 1.0 or isinstance(self.step, float):
            body["step"] = self.step
        return {"range": body}


_NODE_KEYS = ("uniform", "choice", "normal", "range")


def _expect_number(value, path: str) -> float:
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        raise GrammarError(path, f"expected a number, got {value!r}")
    return value


def parse_node(data, path: str):
    """Parse a JSON value into a literal or a :class:`Distribution`.

    Objects must be exactly one of the four node forms; anything else
    (numbers, strings, booleans) passes through as a literal, to be
    validated by the typed resolver at sampling time.
    """
    if not isinstance(data, dict):
        return data
    keys = [k for k in data if k in _NODE_KEYS]
    if len(keys) != 1 or len(data) != 1:
        raise GrammarError(
            path,
            f"a distribution node needs exactly one of "
            f"{list(_NODE_KEYS)}, got keys {sorted(data)}",
        )
    kind = keys[0]
    body = data[kind]
    if kind == "uniform":
        if not isinstance(body, list) or len(body) != 2:
            raise GrammarError(f"{path}.uniform", "expected [low, high]")
        low = _expect_number(body[0], f"{path}.uniform[0]")
        high = _expect_number(body[1], f"{path}.uniform[1]")
        if low > high:
            raise GrammarError(f"{path}.uniform", f"low {low!r} exceeds high {high!r}")
        return Uniform(low, high)
    if kind == "choice":
        if not isinstance(body, list) or not body:
            raise GrammarError(f"{path}.choice", "expected a non-empty array of options")
        for i, option in enumerate(body):
            if isinstance(option, (dict, list)):
                raise GrammarError(
                    f"{path}.choice[{i}]", "options must be scalars, not nested nodes"
                )
        return Choice(tuple(body))
    if kind == "normal":
        if not isinstance(body, dict):
            raise GrammarError(f"{path}.normal", "expected an object with mean/std")
        unknown = set(body) - {"mean", "std", "low", "high"}
        if unknown:
            raise GrammarError(f"{path}.normal", f"unknown keys {sorted(unknown)}")
        if "mean" not in body or "std" not in body:
            raise GrammarError(f"{path}.normal", "needs 'mean' and 'std'")
        mean = _expect_number(body["mean"], f"{path}.normal.mean")
        std = _expect_number(body["std"], f"{path}.normal.std")
        if std < 0:
            raise GrammarError(f"{path}.normal.std", "must be >= 0")
        low = body.get("low")
        high = body.get("high")
        if low is not None:
            low = _expect_number(low, f"{path}.normal.low")
        if high is not None:
            high = _expect_number(high, f"{path}.normal.high")
        if low is not None and high is not None and low > high:
            raise GrammarError(f"{path}.normal", f"low {low!r} exceeds high {high!r}")
        return Normal(mean, std, low, high)
    # range
    if not isinstance(body, dict):
        raise GrammarError(f"{path}.range", "expected an object with start/stop")
    unknown = set(body) - {"start", "stop", "step"}
    if unknown:
        raise GrammarError(f"{path}.range", f"unknown keys {sorted(unknown)}")
    if "start" not in body or "stop" not in body:
        raise GrammarError(f"{path}.range", "needs 'start' and 'stop'")
    start = _expect_number(body["start"], f"{path}.range.start")
    stop = _expect_number(body["stop"], f"{path}.range.stop")
    step = body.get("step", 1)
    step = _expect_number(step, f"{path}.range.step")
    if step <= 0:
        raise GrammarError(f"{path}.range.step", "must be > 0")
    node = Range(start, stop, step)
    if not node.values():
        raise GrammarError(f"{path}.range", "produces no values (stop <= start)")
    return node


def node_to_json(node):
    """Serialise a literal-or-node back to its JSON form."""
    return node.to_json() if isinstance(node, Distribution) else node


def resolve_float(node, rng: np.random.Generator, path: str = "value") -> float:
    """Sample (or pass through) a float-valued node."""
    if isinstance(node, Distribution):
        return node.sample_float(rng)
    return float(_expect_number(node, path))


def resolve_int(node, rng: np.random.Generator, path: str = "value") -> int:
    """Sample (or pass through) an int-valued node."""
    if isinstance(node, Distribution):
        return node.sample_int(rng)
    if not isinstance(node, int) or isinstance(node, bool):
        raise GrammarError(path, f"expected an integer, got {node!r}")
    return node


def resolve_str(node, rng: np.random.Generator, path: str = "value") -> str:
    """Sample (or pass through) a string-valued node (choice only)."""
    if isinstance(node, Choice):
        value = node.sample_value(rng)
    elif isinstance(node, Distribution):
        raise GrammarError(path, "string positions only support 'choice' nodes")
    else:
        value = node
    if not isinstance(value, str):
        raise GrammarError(path, f"expected a string, got {value!r}")
    return value


def resolve_bool(node, rng: np.random.Generator, path: str = "value") -> bool:
    """Sample (or pass through) a bool-valued node (choice only)."""
    if isinstance(node, Choice):
        value = node.sample_value(rng)
    elif isinstance(node, Distribution):
        raise GrammarError(path, "boolean positions only support 'choice' nodes")
    else:
        value = node
    if not isinstance(value, bool):
        raise GrammarError(path, f"expected a boolean, got {value!r}")
    return value


# ----------------------------------------------------------------------
# Town grammar
# ----------------------------------------------------------------------
#: Per-field resolvers of the two town kinds; iteration order is the
#: *sampling* order, so every spec draws town fields identically.
_GRID_FIELDS = {
    "rows": resolve_int,
    "cols": resolve_int,
    "block_size": resolve_float,
    "lane_width": resolve_float,
    "sidewalk_width": resolve_float,
    "with_buildings": resolve_bool,
    "building_height": resolve_float,
    "name": resolve_str,
}
_PROCEDURAL_FIELDS = {
    "rows": resolve_int,
    "cols": resolve_int,
    "block_size": resolve_float,
    "lane_width": resolve_float,
    "sidewalk_width": resolve_float,
    "road_density": resolve_float,
    "building_density": resolve_float,
    "building_height": resolve_float,
    "seed": resolve_int,
    "name": resolve_str,
}


@dataclass
class TownGrammar:
    """The grammar's town entry: a town *kind* plus sampled fields.

    JSON form is ``{"grid": {...}}`` or ``{"procedural": {...}}``, where
    any field of the corresponding config may be a literal or a
    distribution node.  A procedural town with no explicit ``seed`` draws
    one per scenario, so every expanded scenario gets its own road
    network.
    """

    kind: str = "grid"
    fields: dict = field(default_factory=dict)

    def sample(self, rng: np.random.Generator, path: str = "town"):
        """A concrete town config sampled from this grammar."""
        resolvers = _GRID_FIELDS if self.kind == "grid" else _PROCEDURAL_FIELDS
        values = {}
        for name, resolver in resolvers.items():
            if name in self.fields:
                values[name] = resolver(self.fields[name], rng, f"{path}.{self.kind}.{name}")
        if self.kind == "procedural" and "seed" not in values:
            values["seed"] = int(rng.integers(2**31))
        try:
            if self.kind == "grid":
                return GridTownConfig(**values)
            return ProceduralTownConfig(**values)
        except (TypeError, ValueError) as exc:
            raise GrammarError(f"{path}.{self.kind}", str(exc)) from None

    def to_dict(self) -> dict:
        """JSON form, re-emitting nodes exactly as parsed."""
        return {self.kind: {name: node_to_json(v) for name, v in self.fields.items()}}

    @classmethod
    def from_dict(cls, data, path: str = "town") -> "TownGrammar":
        """Parse and validate a town grammar entry."""
        if not isinstance(data, dict):
            raise GrammarError(path, f"expected an object, got {type(data).__name__}")
        kinds = [k for k in data if k in ("grid", "procedural")]
        if len(kinds) != 1 or len(data) != 1:
            raise GrammarError(
                path, f"needs exactly one of 'grid' or 'procedural', got keys {sorted(data)}"
            )
        kind = kinds[0]
        body = data[kind]
        if not isinstance(body, dict):
            raise GrammarError(
                f"{path}.{kind}", f"expected an object, got {type(body).__name__}"
            )
        allowed = _GRID_FIELDS if kind == "grid" else _PROCEDURAL_FIELDS
        unknown = set(body) - set(allowed)
        if unknown:
            raise GrammarError(
                f"{path}.{kind}",
                f"unknown keys {sorted(unknown)} (allowed: {sorted(allowed)})",
            )
        fields = {
            name: parse_node(value, f"{path}.{kind}.{name}")
            for name, value in body.items()
        }
        return cls(kind=kind, fields=fields)


# ----------------------------------------------------------------------
# Maneuver-conflict sampling
# ----------------------------------------------------------------------
def _curve_points(town: Town, incoming: Lane, outgoing: Lane) -> np.ndarray:
    curve = town.connection_curve(incoming, outgoing)
    return np.array([[p.x, p.y] for p in curve.points])


def _curves_conflict(a: np.ndarray, b: np.ndarray, threshold: float) -> bool:
    """Whether two junction connector curves pass within ``threshold``."""
    d2 = ((a[:, None, :] - b[None, :, :]) ** 2).sum(axis=2)
    return bool(d2.min() <= threshold * threshold)


def enumerate_conflicts(town: Town, npc_turn: str = "LEFT") -> list[tuple[Lane, Lane, Lane, Lane]]:
    """All ``(ego_in, ego_out, npc_in, npc_out)`` junction conflicts.

    The ego goes STRAIGHT through a junction; the NPC approaches the same
    junction on a different road and takes an ``npc_turn`` manoeuvre
    whose connector curve passes within half a lane width of the ego's —
    the straight-vs-left (by default) crossing case.  Enumeration order
    is deterministic (sorted junctions, stable lane order), so a seeded
    pick from the list is reproducible everywhere.
    """
    incoming: dict[int, list[Lane]] = {}
    for lane in town.iter_lanes():
        incoming.setdefault(lane.end_intersection, []).append(lane)
    threshold = 0.5 * town.lane_width
    out: list[tuple[Lane, Lane, Lane, Lane]] = []
    for junction_id in sorted(incoming):
        lanes_in = incoming[junction_id]
        for ego_in in lanes_in:
            for ego_out in town.lane_successors(ego_in):
                if town.turn_direction(ego_in, ego_out) != "STRAIGHT":
                    continue
                ego_pts = _curve_points(town, ego_in, ego_out)
                for npc_in in lanes_in:
                    if npc_in.road.id == ego_in.road.id:
                        continue
                    for npc_out in town.lane_successors(npc_in):
                        if npc_out.ref == ego_out.ref:
                            continue
                        if town.turn_direction(npc_in, npc_out) != npc_turn:
                            continue
                        npc_pts = _curve_points(town, npc_in, npc_out)
                        if _curves_conflict(ego_pts, npc_pts, threshold):
                            out.append((ego_in, ego_out, npc_in, npc_out))
    return out


@dataclass
class ConflictGrammar:
    """Maneuver-conflict sampling parameters (all literal-or-node).

    Expansion picks one junction conflict from
    :func:`enumerate_conflicts`, starts the ego ``ego_approach_m`` metres
    before the junction with a goal ``ego_exit_m`` past it, and places a
    scripted NPC ``npc_approach_m`` up its own approach lane with a
    reactive behavior (``run_junction`` by default) whose forced ``turn``
    routes it across the ego's path.
    """

    ego_approach_m: object = field(default_factory=lambda: Uniform(30.0, 50.0))
    ego_exit_m: object = field(default_factory=lambda: Uniform(25.0, 45.0))
    npc_approach_m: object = field(default_factory=lambda: Uniform(18.0, 36.0))
    npc_speed: object = field(default_factory=lambda: Uniform(5.0, 8.0))
    behavior: str = "run_junction"
    turn: str = "LEFT"
    trigger_distance: object = 30.0
    duration_s: object = 5.0
    speed_scale: object = 1.0
    lateral_m: object = 1.8

    _FIELDS = (
        "ego_approach_m",
        "ego_exit_m",
        "npc_approach_m",
        "npc_speed",
        "behavior",
        "turn",
        "trigger_distance",
        "duration_s",
        "speed_scale",
        "lateral_m",
    )

    def sample(
        self,
        town: Town,
        rng: np.random.Generator,
        time_factor: float,
        path: str = "conflict",
    ) -> tuple[Mission, tuple[NPCSpec, ...]]:
        """One sampled junction-conflict mission + its scripted NPC."""
        candidates = enumerate_conflicts(town, self.turn)
        if not candidates:
            raise GrammarError(
                path,
                f"town {town.name!r} has no straight-vs-{self.turn} junction "
                f"conflicts; use a town with at least one 3-way junction",
            )
        ego_in, ego_out, npc_in, npc_out = candidates[int(rng.integers(len(candidates)))]
        approach = resolve_float(self.ego_approach_m, rng, f"{path}.ego_approach_m")
        exit_m = resolve_float(self.ego_exit_m, rng, f"{path}.ego_exit_m")
        npc_approach = resolve_float(self.npc_approach_m, rng, f"{path}.npc_approach_m")
        npc_speed = resolve_float(self.npc_speed, rng, f"{path}.npc_speed")
        trigger = resolve_float(self.trigger_distance, rng, f"{path}.trigger_distance")
        duration = resolve_float(self.duration_s, rng, f"{path}.duration_s")
        speed_scale = resolve_float(self.speed_scale, rng, f"{path}.speed_scale")
        lateral = resolve_float(self.lateral_m, rng, f"{path}.lateral_m")

        start_station = max(2.0, ego_in.length - approach)
        exit_station = min(max(exit_m, 4.0), max(ego_out.length - 2.0, 4.0))
        start_wp = ego_in.waypoint_at(start_station)
        goal = ego_out.waypoint_at(exit_station).position
        connector = town.connection_curve(ego_in, ego_out)
        route_len = (ego_in.length - start_station) + connector.length + exit_station
        time_limit = route_len / NOMINAL_SPEED * time_factor + 15.0
        mission = Mission(
            start=Transform(start_wp.position, start_wp.yaw),
            goal=goal,
            time_limit_s=time_limit,
            name=f"conflict-j{ego_in.end_intersection}",
        )
        try:
            behavior = BehaviorSpec(
                name=self.behavior,
                trigger_distance=trigger,
                duration_s=duration,
                turn=self.turn,
                speed_scale=speed_scale,
                lateral_m=lateral,
            )
            npc = NPCSpec(
                road_id=npc_in.ref.road_id,
                direction=npc_in.ref.direction,
                station=max(2.0, npc_in.length - npc_approach),
                target_speed=npc_speed,
                behavior=behavior,
            )
        except ValueError as exc:
            raise GrammarError(path, str(exc)) from None
        return mission, (npc,)

    def to_dict(self) -> dict:
        """JSON form, re-emitting nodes exactly as parsed."""
        return {
            "ego_approach_m": node_to_json(self.ego_approach_m),
            "ego_exit_m": node_to_json(self.ego_exit_m),
            "npc_approach_m": node_to_json(self.npc_approach_m),
            "npc_speed": node_to_json(self.npc_speed),
            "behavior": str(self.behavior),
            "turn": str(self.turn),
            "trigger_distance": node_to_json(self.trigger_distance),
            "duration_s": node_to_json(self.duration_s),
            "speed_scale": node_to_json(self.speed_scale),
            "lateral_m": node_to_json(self.lateral_m),
        }

    @classmethod
    def from_dict(cls, data, path: str = "conflict") -> "ConflictGrammar":
        """Parse and validate a conflict grammar entry."""
        if not isinstance(data, dict):
            raise GrammarError(path, f"expected an object, got {type(data).__name__}")
        unknown = set(data) - set(cls._FIELDS)
        if unknown:
            raise GrammarError(
                path, f"unknown keys {sorted(unknown)} (allowed: {sorted(cls._FIELDS)})"
            )
        behavior = data.get("behavior", "run_junction")
        if behavior not in BEHAVIOR_NAMES:
            raise GrammarError(
                f"{path}.behavior",
                f"unknown behavior {behavior!r} (expected one of {', '.join(BEHAVIOR_NAMES)})",
            )
        turn = data.get("turn", "LEFT")
        if turn not in ("LEFT", "RIGHT", "STRAIGHT"):
            raise GrammarError(
                f"{path}.turn", f"expected LEFT, RIGHT or STRAIGHT, got {turn!r}"
            )
        kwargs = {"behavior": behavior, "turn": turn}
        for name in cls._FIELDS:
            if name in ("behavior", "turn") or name not in data:
                continue
            kwargs[name] = parse_node(data[name], f"{path}.{name}")
        return cls(**kwargs)


# ----------------------------------------------------------------------
# The grammar itself
# ----------------------------------------------------------------------
@dataclass
class ScenarioGrammar:
    """A declarative scenario distribution: the ``grammar`` suite form.

    ``expand()`` deterministically materialises ``n`` concrete
    scenarios: the grammar ``seed`` roots a
    :class:`numpy.random.SeedSequence` tree with one spawned child per
    scenario, and every sampled parameter (town geometry, weather,
    traffic, mission or junction conflict, episode seed) draws from that
    scenario's own generator — same spec + seed, same suite, in any
    process.
    """

    n: int = 4
    seed: int = 0
    name: str = "gen"
    town: TownGrammar = field(default_factory=TownGrammar)
    weather: object = "ClearNoon"
    n_npc_vehicles: object = 0
    n_pedestrians: object = 0
    min_distance: object = 100.0
    max_distance: object = 400.0
    time_factor: object = 1.8
    conflict: ConflictGrammar | None = None

    _FIELDS = (
        "n",
        "seed",
        "name",
        "town",
        "weather",
        "n_npc_vehicles",
        "n_pedestrians",
        "min_distance",
        "max_distance",
        "time_factor",
        "conflict",
    )

    def expand(self, path: str = "grammar") -> list[Scenario]:
        """Materialise the concrete scenario suite (deterministic)."""
        from ..agent.planner import PlanningError, RoutePlanner  # deferred: heavy
        from ..sim.builders import process_scene_cache  # deferred: import cycle

        cache = process_scene_cache()
        planners: dict[str, RoutePlanner] = {}
        children = np.random.SeedSequence(self.seed).spawn(self.n)
        scenarios: list[Scenario] = []
        for i, child in enumerate(children):
            rng = np.random.default_rng(child)
            town_config = self.town.sample(rng, path=f"{path}.town")
            try:
                town = cache.town(town_config)
            except ValueError as exc:
                raise GrammarError(f"{path}.town", str(exc)) from None
            weather = resolve_str(self.weather, rng, f"{path}.weather")
            if weather not in PRESETS:
                raise GrammarError(
                    f"{path}.weather",
                    f"unknown weather preset {weather!r} "
                    f"(known: {', '.join(sorted(PRESETS))})",
                )
            n_vehicles = resolve_int(self.n_npc_vehicles, rng, f"{path}.n_npc_vehicles")
            n_pedestrians = resolve_int(self.n_pedestrians, rng, f"{path}.n_pedestrians")
            if n_vehicles < 0 or n_pedestrians < 0:
                raise GrammarError(path, "traffic counts must be non-negative")
            episode_seed = int(rng.integers(2**62))
            if self.conflict is not None:
                time_factor = resolve_float(self.time_factor, rng, f"{path}.time_factor")
                mission, npcs = self.conflict.sample(
                    town, rng, time_factor, path=f"{path}.conflict"
                )
            else:
                key = town.name
                if key not in planners:
                    planners[key] = RoutePlanner(town)
                planner = planners[key]

                def route_length(start, goal):
                    try:
                        return planner.plan(start.position, goal, start_yaw=start.yaw).length
                    except PlanningError:
                        return None

                min_d = resolve_float(self.min_distance, rng, f"{path}.min_distance")
                max_d = resolve_float(self.max_distance, rng, f"{path}.max_distance")
                time_factor = resolve_float(self.time_factor, rng, f"{path}.time_factor")
                if min_d >= max_d:
                    raise GrammarError(
                        f"{path}.min_distance", "must be below max_distance"
                    )
                try:
                    mission = generate_missions(
                        town,
                        1,
                        rng,
                        min_distance=min_d,
                        max_distance=max_d,
                        time_factor=time_factor,
                        route_length_fn=route_length,
                    )[0]
                except RuntimeError as exc:
                    raise GrammarError(f"{path}.min_distance", str(exc)) from None
                npcs = ()
            scenarios.append(
                Scenario(
                    mission=mission,
                    town_config=town_config,
                    weather=weather,
                    n_npc_vehicles=n_vehicles,
                    n_pedestrians=n_pedestrians,
                    seed=episode_seed,
                    name=f"{self.name}-{i}",
                    npcs=npcs,
                )
            )
        return scenarios

    def to_dict(self) -> dict:
        """JSON form — stable under ``from_dict(to_dict())``."""
        return {
            "n": int(self.n),
            "seed": int(self.seed),
            "name": str(self.name),
            "town": self.town.to_dict(),
            "weather": node_to_json(self.weather),
            "n_npc_vehicles": node_to_json(self.n_npc_vehicles),
            "n_pedestrians": node_to_json(self.n_pedestrians),
            "min_distance": node_to_json(self.min_distance),
            "max_distance": node_to_json(self.max_distance),
            "time_factor": node_to_json(self.time_factor),
            "conflict": self.conflict.to_dict() if self.conflict is not None else None,
        }

    @classmethod
    def from_dict(cls, data, path: str = "grammar") -> "ScenarioGrammar":
        """Parse and validate a grammar suite entry."""
        if not isinstance(data, dict):
            raise GrammarError(path, f"expected an object, got {type(data).__name__}")
        unknown = set(data) - set(cls._FIELDS)
        if unknown:
            raise GrammarError(
                path, f"unknown keys {sorted(unknown)} (allowed: {sorted(cls._FIELDS)})"
            )
        n = data.get("n", 4)
        if not isinstance(n, int) or isinstance(n, bool) or n < 1:
            raise GrammarError(f"{path}.n", f"expected a positive integer, got {n!r}")
        seed = data.get("seed", 0)
        if not isinstance(seed, int) or isinstance(seed, bool) or seed < 0:
            raise GrammarError(
                f"{path}.seed", f"expected a non-negative integer, got {seed!r}"
            )
        name = data.get("name", "gen")
        if not isinstance(name, str) or not name:
            raise GrammarError(f"{path}.name", "expected a non-empty string")
        town_data = data.get("town")
        town = (
            TownGrammar.from_dict(town_data, f"{path}.town")
            if town_data is not None
            else TownGrammar()
        )
        conflict_data = data.get("conflict")
        conflict = (
            ConflictGrammar.from_dict(conflict_data, f"{path}.conflict")
            if conflict_data is not None
            else None
        )
        kwargs = {"n": n, "seed": seed, "name": name, "town": town, "conflict": conflict}
        for key in (
            "weather",
            "n_npc_vehicles",
            "n_pedestrians",
            "min_distance",
            "max_distance",
            "time_factor",
        ):
            if key in data:
                kwargs[key] = parse_node(data[key], f"{path}.{key}")
        return cls(**kwargs)
