"""Episode outcome taxonomy and fault-tolerance policy.

The paper's methodology is that resilience claims need *observed
containment* under injected faults — and the same discipline applies to
the campaign harness itself.  Before this module, an episode either
returned a :class:`~repro.core.campaign.RunRecord` or blew up the whole
run: one raising episode killed a million-episode campaign, one hung
episode hung it forever.  This module makes episode failure a first-class
*outcome* instead of a control-flow accident:

* :class:`EpisodeOutcome` — the taxonomy.  ``ok`` is a normal record;
  ``failed`` (raised), ``timed_out`` (exceeded the wall-clock budget) and
  ``quarantined`` (given up after the retry budget; the campaign
  continues without it) describe everything else;
* :class:`EpisodeFailure` — the structured record of a non-``ok``
  episode: exception class, traceback digest, attempt count, wall time.
  It carries the same identity fields as a ``RunRecord``
  (``injector``/``scenario``/``seed``/``config_fingerprint``) so it is
  checkpointed *beside* normal records, streamed by
  :func:`~repro.core.sink.iter_records`, counted by
  :class:`~repro.core.metrics.MetricsAccumulator` (never folded into
  MSR/VPK) and deduplicated on resume exactly like a record;
* :class:`FaultTolerancePolicy` — how hard the executors try before
  quarantining: ``max_attempts`` with exponential backoff (deterministic
  seeded jitter, so two coordinators racing the same grid back off
  identically), a per-episode wall-clock ``timeout_s``, and a
  campaign-level ``failure_budget``.  The defaults reproduce the
  historical behaviour exactly: one attempt, no timeout, zero budget —
  the first failure aborts the campaign (after completed work is
  drained and checkpointed).

Retries reuse the episode's own seed and fault objects, so a successful
retry is byte-identical to a first-try success — the determinism
invariant every executor already upholds extends through the retry path.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass, field, fields
from typing import Optional

__all__ = [
    "EpisodeOutcome",
    "EpisodeFailure",
    "EpisodeFailureError",
    "FaultTolerancePolicy",
    "reap_process",
]


class EpisodeOutcome:
    """The episode outcome taxonomy (string constants, JSON-stable)."""

    OK = "ok"
    FAILED = "failed"
    TIMED_OUT = "timed_out"
    QUARANTINED = "quarantined"

    #: Every value that may appear in a checkpoint row's ``outcome`` key.
    #: ``ok`` episodes are stored as plain records (no ``outcome`` key),
    #: so its presence is what distinguishes a failure row.
    FAILURE_VALUES = (FAILED, TIMED_OUT, QUARANTINED)
    ALL = (OK,) + FAILURE_VALUES


#: EpisodeFailure fields that serialise into checkpoint rows, in emit
#: order.  ``exception`` and ``traceback_text`` stay in-memory only: the
#: row carries the digest, the parked queue error report carries the full
#: text.
_SERIALIZED_FIELDS = (
    "scenario",
    "injector",
    "seed",
    "config_fingerprint",
    "outcome",
    "error_type",
    "error",
    "traceback_digest",
    "attempts",
    "wall_time_s",
)


@dataclass
class EpisodeFailure:
    """Structured record of a non-``ok`` episode.

    Shares the checkpoint identity fields with
    :class:`~repro.core.campaign.RunRecord`
    (:func:`~repro.core.runner.record_identity` accepts either), so a
    quarantined episode counts as *done* on resume — the campaign never
    re-burns compute on a poison task — while metrics surface it as an
    explicit failure count, never as a fake mission result.
    """

    scenario: str
    injector: str
    seed: int
    config_fingerprint: str = ""
    #: One of :data:`EpisodeOutcome.FAILURE_VALUES`.  Executors flip
    #: ``failed``/``timed_out`` to ``quarantined`` when the campaign
    #: gives the episode up and continues; the original cause stays
    #: visible through ``error_type``/``error``.
    outcome: str = EpisodeOutcome.FAILED
    #: Exception class name (``"EpisodeTimeout"`` for wall-clock kills).
    error_type: str = ""
    #: ``repr()`` of the terminal exception.
    error: str = ""
    #: Short SHA-1 of the full traceback text — enough to group identical
    #: failures across thousands of episodes without shipping the text
    #: into every row.
    traceback_digest: str = ""
    #: How many attempts were made before giving up.
    attempts: int = 1
    #: Wall-clock seconds spent executing (summed across attempts,
    #: excluding backoff sleeps).
    wall_time_s: float = 0.0
    #: The terminal exception object when it survived pickling — used to
    #: re-raise the *original* error on a budget-exceeded abort.  Never
    #: serialised into checkpoint rows.
    exception: Optional[BaseException] = field(default=None, repr=False, compare=False)
    #: Full traceback text (parked queue error reports, abort messages).
    #: Never serialised into checkpoint rows.
    traceback_text: str = field(default="", repr=False, compare=False)

    def to_dict(self) -> dict:
        """The checkpoint row.  The ``outcome`` key is the discriminator:
        :class:`~repro.core.campaign.RunRecord` rows never have one."""
        return {name: getattr(self, name) for name in _SERIALIZED_FIELDS}

    @classmethod
    def from_dict(cls, row: dict) -> "EpisodeFailure":
        """Rebuild from a checkpoint row (unknown keys ignored, so rows
        written by a newer repro still parse as failures here)."""
        known = {f.name for f in fields(cls)}
        data = {k: v for k, v in row.items() if k in known}
        failure = cls(**data)
        if failure.outcome not in EpisodeOutcome.FAILURE_VALUES:
            raise TypeError(f"not an episode-failure outcome: {failure.outcome!r}")
        return failure

    @classmethod
    def from_exception(
        cls,
        task,
        exc: BaseException,
        attempts: int,
        wall_time_s: float,
        traceback_text: str = "",
        outcome: str = EpisodeOutcome.FAILED,
    ) -> "EpisodeFailure":
        """Build a failure for ``task`` from a raised exception."""
        digest = (
            hashlib.sha1(traceback_text.encode()).hexdigest()[:12]
            if traceback_text
            else ""
        )
        return cls(
            scenario=task.scenario.name,
            injector=task.injector,
            seed=task.seed,
            config_fingerprint=task.fingerprint,
            outcome=outcome,
            error_type=type(exc).__name__,
            error=repr(exc),
            traceback_digest=digest,
            attempts=attempts,
            wall_time_s=wall_time_s,
            exception=exc,
            traceback_text=traceback_text,
        )

    def raise_error(self) -> "NoReturn":  # noqa: F821 - typing-only name
        """Abort the campaign with this failure's original exception.

        Used when the failure budget is exhausted: the original exception
        object re-raises when it survived transport (so existing
        ``pytest.raises(RuntimeError, match=...)`` semantics hold), and a
        readable :class:`EpisodeFailureError` carries the digest +
        traceback text otherwise (timeouts, unpicklable exceptions).
        """
        if self.exception is not None:
            raise self.exception
        raise EpisodeFailureError(self)


class EpisodeFailureError(RuntimeError):
    """An episode failure aborted the campaign (budget exceeded) and the
    original exception object was not transportable."""

    def __init__(self, failure: EpisodeFailure):
        self.failure = failure
        detail = f"\n{failure.traceback_text}" if failure.traceback_text else ""
        super().__init__(
            f"episode ({failure.injector}, {failure.scenario}, seed "
            f"{failure.seed}) {failure.outcome} after {failure.attempts} "
            f"attempt(s): {failure.error or failure.error_type}{detail}"
        )


@dataclass(frozen=True)
class FaultTolerancePolicy:
    """How executors respond to episode failures.

    The defaults are exactly the historical behaviour: one attempt, no
    timeout, a zero failure budget — the first failure aborts the
    campaign after completed work drains to the checkpoint.  Raising
    ``max_attempts`` retries transient failures (same seed, so a
    successful retry is byte-identical to a first-try success); setting
    ``failure_budget`` lets the campaign *quarantine* that many poison
    episodes and complete with partial results plus an explicit
    quarantine list; ``timeout_s`` bounds each attempt's wall time by
    running the episode in a disposable sandbox process that can be
    killed without taking the worker down.
    """

    #: Attempts per episode before the failure becomes terminal (>= 1).
    max_attempts: int = 1
    #: Per-attempt wall-clock timeout in seconds.  ``None`` (default)
    #: runs episodes inline; a value runs each attempt in a killable
    #: sandbox subprocess.
    timeout_s: float | None = None
    #: First retry delay; doubles per attempt (exponential backoff).
    backoff_s: float = 0.1
    #: Backoff ceiling.
    backoff_max_s: float = 30.0
    #: Jitter fraction: each delay is stretched by up to this fraction,
    #: drawn from a :class:`random.Random` seeded by (episode seed,
    #: attempt) — deterministic, but decorrelated across episodes.
    backoff_jitter: float = 0.1
    #: How many episodes may be quarantined before the campaign aborts.
    #: ``0`` (default) aborts on the first terminal failure (historical
    #: behaviour); ``None`` means unlimited — always complete with
    #: partial results.
    failure_budget: int | None = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1 (got {self.max_attempts})")
        if self.timeout_s is not None and not self.timeout_s > 0:
            raise ValueError(f"timeout_s must be > 0 (got {self.timeout_s})")
        if self.backoff_s < 0:
            raise ValueError(f"backoff_s must be >= 0 (got {self.backoff_s})")
        if self.backoff_max_s < 0:
            raise ValueError(f"backoff_max_s must be >= 0 (got {self.backoff_max_s})")
        if not 0.0 <= self.backoff_jitter <= 1.0:
            raise ValueError(
                f"backoff_jitter must be within [0, 1] (got {self.backoff_jitter})"
            )
        if self.failure_budget is not None and self.failure_budget < 0:
            raise ValueError(
                f"failure_budget must be >= 0 or None (got {self.failure_budget})"
            )

    def backoff_for(self, seed: int, attempt: int) -> float:
        """Delay before retry number ``attempt`` (the first retry is 1).

        Exponential with a deterministic seeded jitter: the same episode
        backs off identically on every machine and every re-run (no
        wall-clock or global-RNG dependence — resume stays replayable),
        while different episodes decorrelate so a thundering herd of
        retries against a shared broker spreads out.
        """
        base = min(self.backoff_s * (2.0 ** (attempt - 1)), self.backoff_max_s)
        if base <= 0.0 or self.backoff_jitter <= 0.0:
            return max(base, 0.0)
        jitter_rng = random.Random(f"backoff:{seed}:{attempt}")
        return base * (1.0 + self.backoff_jitter * jitter_rng.random())

    def to_dict(self) -> dict:
        """JSON-serialisable form (``spec.execution.fault_tolerance``)."""
        return {
            "max_attempts": int(self.max_attempts),
            "timeout_s": float(self.timeout_s) if self.timeout_s is not None else None,
            "backoff_s": float(self.backoff_s),
            "backoff_max_s": float(self.backoff_max_s),
            "backoff_jitter": float(self.backoff_jitter),
            "failure_budget": (
                int(self.failure_budget) if self.failure_budget is not None else None
            ),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FaultTolerancePolicy":
        """Rebuild from :meth:`to_dict` output (strict types; unknown
        keys raise so a typo'd policy never silently means defaults)."""
        if not isinstance(data, dict):
            raise TypeError(
                f"fault_tolerance must be an object, got {type(data).__name__}"
            )
        known = {
            "max_attempts",
            "timeout_s",
            "backoff_s",
            "backoff_max_s",
            "backoff_jitter",
            "failure_budget",
        }
        unknown = set(data) - known
        if unknown:
            raise ValueError(
                f"unknown fault_tolerance keys {sorted(unknown)} "
                f"(allowed: {sorted(known)})"
            )

        def integer(key, default):
            value = data.get(key, default)
            if value is not None and (
                not isinstance(value, int) or isinstance(value, bool)
            ):
                raise ValueError(f"{key} must be an integer, got {value!r}")
            return value

        def number(key, default):
            value = data.get(key, default)
            if value is not None and (
                not isinstance(value, (int, float)) or isinstance(value, bool)
            ):
                raise ValueError(f"{key} must be a number, got {value!r}")
            return float(value) if value is not None else None

        return cls(
            max_attempts=integer("max_attempts", 1),
            timeout_s=number("timeout_s", None),
            backoff_s=number("backoff_s", 0.1),
            backoff_max_s=number("backoff_max_s", 30.0),
            backoff_jitter=number("backoff_jitter", 0.1),
            failure_budget=integer("failure_budget", 0),
        )


def reap_process(proc, grace_s: float = 5.0, log=None) -> str:
    """Make sure a child process is dead: join → terminate → kill → join.

    The escalation ladder for sandbox children and queue drain workers:
    a cooperative exit is joined, a busy process gets SIGTERM, a process
    that ignores SIGTERM for ``grace_s`` gets SIGKILL.  Returns how the
    process went (``"exited"``/``"terminated"``/``"killed"``/``"leaked"``)
    and reports escalations through ``log`` (a callable taking one
    string) so operators can see which PID needed force.
    """
    if not proc.is_alive():
        proc.join()
        return "exited"
    proc.terminate()
    proc.join(timeout=grace_s)
    if not proc.is_alive():
        return "terminated"
    if log is not None:
        log(f"process pid={proc.pid} ignored terminate() for {grace_s:.0f}s; killing")
    proc.kill()
    proc.join(timeout=grace_s)
    if proc.is_alive():  # pragma: no cover - unkillable process (D-state)
        if log is not None:
            log(f"process pid={proc.pid} survived kill(); leaking it")
        return "leaked"
    return "killed"
