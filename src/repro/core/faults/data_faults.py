"""Data faults: corrupted sensor and world measurements.

These are the paper's *input fault injectors*.  The five camera models of
figs. 2-3 are here under their figure labels:

========================  =====================================
Figure label              Class
========================  =====================================
``Gaussian``              :class:`GaussianNoise`
``S&P``                   :class:`SaltAndPepper`
``SolidOcc``              :class:`SolidOcclusion`
``TranspOcc``             :class:`TransparentOcclusion`
``WaterDrop``             :class:`WaterDrop`
========================  =====================================

Occlusion positions and droplet layouts are drawn once per episode and then
persist (dirt and water stick to a lens); noise models redraw per frame.
The module also provides GPS, speedometer, LIDAR and weather (world
measurement) faults mentioned in §II's data-fault description, plus the
telemetry-corruption catalog compound campaigns pair with the camera
models: :class:`SchemaChangeFault` (producer-side unit/axis change),
:class:`StuckAtFault` (a reading frozen at a constant),
:class:`SpikeFault` (transient large excursions),
:class:`SensorDriftFault` (slowly accumulating bias) and
:class:`DuplicationFault` (stale replayed bundles).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ...sim.sensors import SensorFrame
from ...sim.weather import get_preset
from .base import SensorFault, Trigger, WorldFault, register_fault

__all__ = [
    "GaussianNoise",
    "SaltAndPepper",
    "SolidOcclusion",
    "TransparentOcclusion",
    "WaterDrop",
    "CameraFreeze",
    "GPSNoiseFault",
    "GPSFreezeFault",
    "SpeedometerScaleFault",
    "LidarDropoutFault",
    "LidarGhostFault",
    "WeatherShiftFault",
    "SchemaChangeFault",
    "StuckAtFault",
    "SpikeFault",
    "SensorDriftFault",
    "DuplicationFault",
    "INPUT_FAULT_REGISTRY",
    "make_input_fault",
]


@register_fault
class GaussianNoise(SensorFault):
    """Additive white Gaussian noise on the camera image."""

    name = "gaussian"

    def __init__(self, sigma: float = 0.08, trigger: Trigger | None = None):
        super().__init__(trigger)
        if sigma < 0:
            raise ValueError("sigma cannot be negative")
        self.sigma = sigma

    def transform(self, bundle: SensorFrame) -> SensorFrame:
        noise = self.rng.normal(0.0, self.sigma * 255.0, bundle.image.shape)
        bundle.image = np.clip(bundle.image.astype(np.float32) + noise, 0, 255).astype(np.uint8)
        return bundle

    def describe(self) -> dict:
        return {**super().describe(), "sigma": self.sigma}


@register_fault
class SaltAndPepper(SensorFault):
    """Salt-and-pepper impulse noise: random pixels forced to 0 or 255."""

    name = "s&p"

    def __init__(self, density: float = 0.06, trigger: Trigger | None = None):
        super().__init__(trigger)
        if not 0.0 <= density <= 1.0:
            raise ValueError("density must be within [0, 1]")
        self.density = density

    def transform(self, bundle: SensorFrame) -> SensorFrame:
        h, w = bundle.image.shape[:2]
        mask = self.rng.random((h, w))
        bundle.image[mask < self.density / 2.0] = 0
        bundle.image[mask > 1.0 - self.density / 2.0] = 255
        return bundle

    def describe(self) -> dict:
        return {**super().describe(), "density": self.density}


class _PersistentPatchFault(SensorFault):
    """Shared logic for occlusions: a patch placed once per episode."""

    def __init__(
        self, size_frac: float, trigger: Trigger | None = None, bias_center: bool = True
    ):
        super().__init__(trigger)
        if not 0.0 < size_frac <= 1.0:
            raise ValueError("size_frac must be in (0, 1]")
        self.size_frac = size_frac
        self.bias_center = bias_center
        self._patch: tuple[int, int, int, int] | None = None

    def reset(self) -> None:
        super().reset()
        self._patch = None

    def _patch_for(self, image: np.ndarray) -> tuple[int, int, int, int]:
        if self._patch is None:
            h, w = image.shape[:2]
            ph = max(2, int(h * self.size_frac))
            pw = max(2, int(w * self.size_frac))
            if self.bias_center:
                # Occlusions matter most where the road is: sample the
                # centre of the lower two-thirds of the frame.
                y0 = int(self.rng.integers(h // 3, max(h // 3 + 1, h - ph)))
                x0 = int(self.rng.integers(w // 6, max(w // 6 + 1, w - pw - w // 6)))
            else:
                y0 = int(self.rng.integers(0, max(1, h - ph)))
                x0 = int(self.rng.integers(0, max(1, w - pw)))
            self._patch = (y0, x0, ph, pw)
        return self._patch

    def describe(self) -> dict:
        return {**super().describe(), "size_frac": self.size_frac}


@register_fault
class SolidOcclusion(_PersistentPatchFault):
    """Opaque patch stuck on the lens (mud, tape, sticker)."""

    name = "solid-occ"

    def __init__(
        self,
        size_frac: float = 0.35,
        color: tuple[int, int, int] = (15, 12, 10),
        trigger: Trigger | None = None,
    ):
        super().__init__(size_frac, trigger)
        self.color = color

    def transform(self, bundle: SensorFrame) -> SensorFrame:
        y0, x0, ph, pw = self._patch_for(bundle.image)
        bundle.image[y0 : y0 + ph, x0 : x0 + pw] = self.color
        return bundle


@register_fault
class TransparentOcclusion(_PersistentPatchFault):
    """Semi-transparent film over part of the lens (grease, scratch haze)."""

    name = "transp-occ"

    def __init__(
        self,
        size_frac: float = 0.45,
        alpha: float = 0.6,
        tint: tuple[int, int, int] = (200, 200, 205),
        trigger: Trigger | None = None,
    ):
        super().__init__(size_frac, trigger)
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        self.alpha = alpha
        self.tint = tint

    def transform(self, bundle: SensorFrame) -> SensorFrame:
        y0, x0, ph, pw = self._patch_for(bundle.image)
        patch = bundle.image[y0 : y0 + ph, x0 : x0 + pw].astype(np.float32)
        tint = np.array(self.tint, dtype=np.float32)
        blended = patch * (1.0 - self.alpha) + tint * self.alpha
        bundle.image[y0 : y0 + ph, x0 : x0 + pw] = blended.astype(np.uint8)
        return bundle

    def describe(self) -> dict:
        return {**super().describe(), "alpha": self.alpha}


@register_fault
class WaterDrop(SensorFault):
    """Water droplets on the lens: local pixelation + brightening.

    Droplet positions are drawn once per episode.  Each droplet distorts a
    disk by collapsing it to coarse blocks (cheap refraction-blur) and
    lifting brightness slightly.
    """

    name = "water-drop"

    def __init__(
        self,
        n_drops: int = 6,
        radius_frac: float = 0.10,
        block: int = 4,
        trigger: Trigger | None = None,
    ):
        super().__init__(trigger)
        if n_drops < 1:
            raise ValueError("need at least one droplet")
        self.n_drops = n_drops
        self.radius_frac = radius_frac
        self.block = block
        self._drops: list[tuple[int, int, int]] | None = None

    def reset(self) -> None:
        super().reset()
        self._drops = None

    def _drops_for(self, image: np.ndarray) -> list[tuple[int, int, int]]:
        if self._drops is None:
            h, w = image.shape[:2]
            radius = max(2, int(min(h, w) * self.radius_frac))
            self._drops = [
                (
                    int(self.rng.integers(radius, h - radius)),
                    int(self.rng.integers(radius, w - radius)),
                    radius,
                )
                for _ in range(self.n_drops)
            ]
        return self._drops

    def transform(self, bundle: SensorFrame) -> SensorFrame:
        img = bundle.image
        for cy, cx, r in self._drops_for(img):
            y0, y1 = max(0, cy - r), min(img.shape[0], cy + r)
            x0, x1 = max(0, cx - r), min(img.shape[1], cx + r)
            patch = img[y0:y1, x0:x1].astype(np.float32)
            ph, pw = patch.shape[:2]
            b = self.block
            # Pixelate: average b x b blocks (crop to whole blocks).
            hh, ww = (ph // b) * b, (pw // b) * b
            if hh >= b and ww >= b:
                coarse = patch[:hh, :ww].reshape(hh // b, b, ww // b, b, 3).mean(axis=(1, 3))
                patch[:hh, :ww] = np.repeat(np.repeat(coarse, b, axis=0), b, axis=1)
            yy, xx = np.mgrid[y0:y1, x0:x1]
            disk = (yy - cy) ** 2 + (xx - cx) ** 2 <= r * r
            region = img[y0:y1, x0:x1].astype(np.float32)
            region[disk] = np.clip(patch[disk] * 1.08 + 14.0, 0, 255)
            img[y0:y1, x0:x1] = region.astype(np.uint8)
        return bundle

    def describe(self) -> dict:
        return {**super().describe(), "n_drops": self.n_drops, "radius_frac": self.radius_frac}


@register_fault
class CameraFreeze(SensorFault):
    """Stuck camera: the last pre-fault frame is replayed while active."""

    name = "camera-freeze"

    def __init__(self, trigger: Trigger | None = None):
        super().__init__(trigger)
        self._frozen: np.ndarray | None = None

    def reset(self) -> None:
        super().reset()
        self._frozen = None

    def apply(self, bundle: SensorFrame, frame: int) -> SensorFrame:
        if not self.trigger.fires(frame, self.rng):
            self._frozen = bundle.image
            return bundle
        self.log.record(frame)
        out = bundle.copy()
        if self._frozen is not None:
            out.image = self._frozen.copy()
        return out

    def transform(self, bundle: SensorFrame) -> SensorFrame:  # pragma: no cover
        raise AssertionError("CameraFreeze overrides apply directly")


@register_fault
class GPSNoiseFault(SensorFault):
    """Extra Gaussian error on the GPS fix (jamming / multipath)."""

    name = "gps-noise"

    def __init__(self, sigma_m: float = 6.0, trigger: Trigger | None = None):
        super().__init__(trigger)
        if sigma_m < 0:
            raise ValueError("sigma cannot be negative")
        self.sigma_m = sigma_m

    def transform(self, bundle: SensorFrame) -> SensorFrame:
        dx, dy = self.rng.normal(0.0, self.sigma_m, 2)
        bundle.gps = (bundle.gps[0] + float(dx), bundle.gps[1] + float(dy))
        return bundle

    def describe(self) -> dict:
        return {**super().describe(), "sigma_m": self.sigma_m}


@register_fault
class GPSFreezeFault(SensorFault):
    """GPS stuck at the last pre-fault fix."""

    name = "gps-freeze"

    def __init__(self, trigger: Trigger | None = None):
        super().__init__(trigger)
        self._fix: tuple[float, float] | None = None

    def reset(self) -> None:
        super().reset()
        self._fix = None

    def apply(self, bundle: SensorFrame, frame: int) -> SensorFrame:
        if not self.trigger.fires(frame, self.rng):
            self._fix = bundle.gps
            return bundle
        self.log.record(frame)
        out = bundle.copy()
        if self._fix is not None:
            out.gps = self._fix
        return out

    def transform(self, bundle: SensorFrame) -> SensorFrame:  # pragma: no cover
        raise AssertionError("GPSFreezeFault overrides apply directly")


@register_fault
class SpeedometerScaleFault(SensorFault):
    """Miscalibrated speed measurement (wheel-size / encoder fault)."""

    name = "speed-scale"

    def __init__(self, scale: float = 0.5, trigger: Trigger | None = None):
        super().__init__(trigger)
        if scale < 0:
            raise ValueError("scale cannot be negative")
        self.scale = scale

    def transform(self, bundle: SensorFrame) -> SensorFrame:
        bundle.speed = bundle.speed * self.scale
        return bundle

    def describe(self) -> dict:
        return {**super().describe(), "scale": self.scale}


@register_fault
class LidarDropoutFault(SensorFault):
    """Random LIDAR returns lost to max range (absorption / misalignment)."""

    name = "lidar-dropout"

    def __init__(self, drop_prob: float = 0.5, max_range: float = 40.0, trigger: Trigger | None = None):
        super().__init__(trigger)
        if not 0.0 <= drop_prob <= 1.0:
            raise ValueError("drop_prob must be within [0, 1]")
        self.drop_prob = drop_prob
        self.max_range = max_range

    def transform(self, bundle: SensorFrame) -> SensorFrame:
        if bundle.lidar is not None:
            lost = self.rng.random(bundle.lidar.shape) < self.drop_prob
            bundle.lidar[lost] = self.max_range
        return bundle

    def describe(self) -> dict:
        return {**super().describe(), "drop_prob": self.drop_prob}


@register_fault
class LidarGhostFault(SensorFault):
    """Phantom LIDAR returns: random rays report close obstacles.

    Models specular/multipath ghosts — the dual of
    :class:`LidarDropoutFault`.  Each activation replaces a fraction of
    rays with short ranges drawn from ``[min_ghost_m, max_ghost_m]``.
    """

    name = "lidar-ghost"

    def __init__(
        self,
        ghost_prob: float = 0.2,
        min_ghost_m: float = 1.0,
        max_ghost_m: float = 8.0,
        trigger: Trigger | None = None,
    ):
        super().__init__(trigger)
        if not 0.0 <= ghost_prob <= 1.0:
            raise ValueError("ghost_prob must be within [0, 1]")
        if not 0.0 < min_ghost_m < max_ghost_m:
            raise ValueError("ghost range must satisfy 0 < min < max")
        self.ghost_prob = ghost_prob
        self.min_ghost_m = min_ghost_m
        self.max_ghost_m = max_ghost_m

    def transform(self, bundle: SensorFrame) -> SensorFrame:
        if bundle.lidar is not None:
            ghosts = self.rng.random(bundle.lidar.shape) < self.ghost_prob
            n = int(ghosts.sum())
            if n:
                bundle.lidar[ghosts] = self.rng.uniform(
                    self.min_ghost_m, self.max_ghost_m, n
                )
        return bundle

    def describe(self) -> dict:
        return {**super().describe(), "ghost_prob": self.ghost_prob}


@register_fault
class SchemaChangeFault(SensorFault):
    """Producer-side schema change the consumer never learned about.

    Models a telemetry producer silently changing its wire format: GPS
    axes swapped (lat/lon order flip) and/or speed emitted in different
    units (the default ``speed_factor`` of 3.6 is km/h delivered where
    m/s is expected).  Values stay individually plausible — the failure
    is the *interpretation*, which is what makes schema faults hard to
    catch with range checks.
    """

    name = "schema-change"

    def __init__(
        self,
        swap_gps: bool = True,
        speed_factor: float = 3.6,
        trigger: Trigger | None = None,
    ):
        super().__init__(trigger)
        if speed_factor <= 0:
            raise ValueError("speed_factor must be positive")
        self.swap_gps = swap_gps
        self.speed_factor = speed_factor

    def transform(self, bundle: SensorFrame) -> SensorFrame:
        if self.swap_gps:
            bundle.gps = (bundle.gps[1], bundle.gps[0])
        bundle.speed = bundle.speed * self.speed_factor
        return bundle

    def describe(self) -> dict:
        return {
            **super().describe(),
            "swap_gps": self.swap_gps,
            "speed_factor": self.speed_factor,
        }


@register_fault
class StuckAtFault(SensorFault):
    """A scalar reading stuck at a constant (failed transducer/register).

    ``field`` picks the stuck reading: ``"speed"`` or ``"heading"``.
    Unlike the freeze faults (which hold the last *good* value), stuck-at
    pins the reading to an arbitrary constant — the classic stuck-at-0 /
    stuck-at-max hardware failure mode.
    """

    name = "stuck-at"

    _FIELDS = ("speed", "heading")

    def __init__(
        self,
        field: str = "speed",
        value: float = 0.0,
        trigger: Trigger | None = None,
    ):
        super().__init__(trigger)
        if field not in self._FIELDS:
            raise ValueError(
                f"field must be one of {self._FIELDS}, got {field!r}"
            )
        self.field = field
        self.value = value

    def transform(self, bundle: SensorFrame) -> SensorFrame:
        setattr(bundle, self.field, self.value)
        return bundle

    def describe(self) -> dict:
        return {**super().describe(), "field": self.field, "value": self.value}


@register_fault
class SpikeFault(SensorFault):
    """Transient large excursions on a reading (EMI, loose connector).

    Each activation adds a spike of random sign and magnitude up to
    ``magnitude`` to the chosen reading (``"speed"`` or ``"gps"``; a GPS
    spike displaces the fix in a random direction).  Defaults to an
    intermittent trigger — spikes are occasional by nature; pass an
    explicit trigger for a different duty cycle.
    """

    name = "spike"

    _FIELDS = ("speed", "gps")

    def __init__(
        self,
        field: str = "speed",
        magnitude: float = 25.0,
        trigger: Trigger | None = None,
    ):
        super().__init__(trigger or Trigger(probability=0.15))
        if field not in self._FIELDS:
            raise ValueError(
                f"field must be one of {self._FIELDS}, got {field!r}"
            )
        if magnitude <= 0:
            raise ValueError("magnitude must be positive")
        self.field = field
        self.magnitude = magnitude

    def transform(self, bundle: SensorFrame) -> SensorFrame:
        size = float(self.rng.uniform(0.25, 1.0)) * self.magnitude
        if self.field == "speed":
            sign = 1.0 if self.rng.random() < 0.5 else -1.0
            bundle.speed = max(0.0, bundle.speed + sign * size)
        else:
            angle = float(self.rng.uniform(0.0, 2.0 * np.pi))
            bundle.gps = (
                bundle.gps[0] + size * float(np.cos(angle)),
                bundle.gps[1] + size * float(np.sin(angle)),
            )
        return bundle

    def describe(self) -> dict:
        return {**super().describe(), "field": self.field, "magnitude": self.magnitude}


@register_fault
class SensorDriftFault(SensorFault):
    """Slowly accumulating GPS bias (uncompensated IMU/odometry drift).

    Every activation grows the bias by ``rate_m`` metres along a fixed
    ``heading_deg`` direction, so the reported position walks away from
    the truth frame by frame — the error is tiny at onset and unbounded
    over a long episode, which is exactly what makes drift faults
    latent.
    """

    name = "sensor-drift"

    def __init__(
        self,
        rate_m: float = 0.05,
        heading_deg: float = 45.0,
        trigger: Trigger | None = None,
    ):
        super().__init__(trigger)
        if rate_m <= 0:
            raise ValueError("rate_m must be positive")
        self.rate_m = rate_m
        self.heading_deg = heading_deg
        self._steps = 0

    def reset(self) -> None:
        super().reset()
        self._steps = 0

    def transform(self, bundle: SensorFrame) -> SensorFrame:
        self._steps += 1
        offset = self.rate_m * self._steps
        heading = np.deg2rad(self.heading_deg)
        bundle.gps = (
            bundle.gps[0] + offset * float(np.cos(heading)),
            bundle.gps[1] + offset * float(np.sin(heading)),
        )
        return bundle

    def describe(self) -> dict:
        return {
            **super().describe(),
            "rate_m": self.rate_m,
            "heading_deg": self.heading_deg,
        }


@register_fault
class DuplicationFault(SensorFault):
    """Duplicate/replayed telemetry: a stale bundle served as fresh.

    Models a producer (or flaky transport) re-delivering an old packet
    that the consumer fails to dedupe: on each activation the agent sees
    the bundle from ``lag`` frames ago — image, GPS, speed and all —
    instead of the current one.  Complements the packet-level timing
    faults: those starve the agent, this feeds it confidently wrong,
    *internally consistent* history.
    """

    name = "duplication"

    def __init__(self, lag: int = 3, trigger: Trigger | None = None):
        super().__init__(trigger or Trigger(probability=0.3))
        if lag < 1:
            raise ValueError("lag must be at least 1")
        self.lag = lag
        self._history: list[SensorFrame] = []

    def reset(self) -> None:
        super().reset()
        self._history = []

    def apply(self, bundle: SensorFrame, frame: int) -> SensorFrame:
        # History must advance every frame (fired or not), so the replay
        # source is the true bundle stream, not the corrupted one.
        self._history.append(bundle.copy())
        if len(self._history) > self.lag + 1:
            self._history.pop(0)
        if not self.trigger.fires(frame, self.rng) or len(self._history) <= self.lag:
            return bundle
        self.log.record(frame)
        return self._history[0].copy()

    def transform(self, bundle: SensorFrame) -> SensorFrame:  # pragma: no cover
        raise AssertionError("DuplicationFault overrides apply directly")

    def describe(self) -> dict:
        return {**super().describe(), "lag": self.lag}


@register_fault
class WeatherShiftFault(WorldFault):
    """Corrupted world measurement: the weather flips to another preset."""

    name = "weather-shift"

    def __init__(self, weather: str = "HardRainNoon", trigger: Trigger | None = None):
        # Fire exactly once by default: a weather flip is a state change.
        super().__init__(trigger or Trigger(start_frame=1, end_frame=1))
        self.weather = get_preset(weather)  # validate eagerly

    def mutate(self, world) -> None:
        world.set_weather(self.weather)

    def config_params(self) -> dict:
        # The constructor takes a preset *name* but stores the resolved
        # Weather object; map back for serialisation.
        return {"weather": self.weather.name}

    def describe(self) -> dict:
        return {**super().describe(), "weather": self.weather.name}


#: The fig. 2/3 injector lineup, keyed by the paper's x-axis labels.
INPUT_FAULT_REGISTRY: dict[str, type[SensorFault]] = {
    "gaussian": GaussianNoise,
    "s&p": SaltAndPepper,
    "solid-occ": SolidOcclusion,
    "transp-occ": TransparentOcclusion,
    "water-drop": WaterDrop,
}


def make_input_fault(name: str, **kwargs) -> SensorFault:
    """Instantiate a fig. 2/3 camera fault model by its paper label."""
    try:
        cls = INPUT_FAULT_REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(INPUT_FAULT_REGISTRY))
        raise KeyError(f"unknown input fault {name!r}; known: {known}") from None
    return cls(**kwargs)
