"""Hardware faults: bit-level corruption of values in flight.

The paper injects "single-bit, multiple-bit, and stuck-at faults in the
hardware components of the autonomous systems, such as processors, sensors,
software, and communication networks".  We model these at the value level —
the level at which a soft error in a register, bus or DMA buffer becomes
visible to software:

* :func:`flip_float32_bits` / :func:`set_float32_bit` — raw IEEE-754 bit
  manipulation on numpy buffers (shared with the ML weight faults);
* :class:`ControlBitFlip` / :class:`ControlStuckAt` — corrupt the control
  command between the IL-CNN and the server (the paper's own example);
* :class:`SensorBitFlip` — corrupt raw sensor payload memory;
* :class:`PacketBitFlip` — corrupt packets on a channel (network fault).

Corrupted floats may be huge, denormal or NaN; downstream code (physics
clamping, network preprocessing) is required to survive them — that
robustness is part of what a fault-injection campaign measures.
"""

from __future__ import annotations

import numpy as np

from ...sim.channel import Packet
from ...sim.physics import VehicleControl
from ...sim.sensors import SensorFrame
from .base import ControlFault, SensorFault, TimingFault, Trigger, register_fault

__all__ = [
    "flip_float32_bits",
    "set_float32_bit",
    "ControlBitFlip",
    "ControlStuckAt",
    "SensorBitFlip",
    "PacketBitFlip",
]


def flip_float32_bits(
    values: np.ndarray, flat_indices: np.ndarray, bits: np.ndarray
) -> None:
    """XOR-flip ``bits[i]`` of ``values.flat[flat_indices[i]]`` in place.

    ``values`` must be float32 and own its memory.  Bit 31 is the sign,
    30-23 the exponent, 22-0 the mantissa.
    """
    if values.dtype != np.float32:
        raise TypeError("bit flips operate on float32 buffers")
    flat = values.reshape(-1)
    view = flat.view(np.uint32)
    view[flat_indices] ^= (np.uint32(1) << bits.astype(np.uint32))


def set_float32_bit(values: np.ndarray, flat_index: int, bit: int, high: bool) -> None:
    """Force one bit to 0/1 (stuck-at) in place."""
    if values.dtype != np.float32:
        raise TypeError("stuck-at operates on float32 buffers")
    view = values.reshape(-1).view(np.uint32)
    mask = np.uint32(1) << np.uint32(bit)
    if high:
        view[flat_index] |= mask
    else:
        view[flat_index] &= ~mask


def _flip_scalar(value: float, bit: int) -> float:
    buf = np.array([value], dtype=np.float32)
    flip_float32_bits(buf, np.array([0]), np.array([bit]))
    return float(buf[0])


_CONTROL_FIELDS = ("steer", "throttle", "brake")


@register_fault
class ControlBitFlip(ControlFault):
    """Transient bit flip in one field of the control command.

    Field and bit are drawn per activation.  ``bit_range`` defaults to the
    high mantissa + exponent + sign bits, where flips actually change
    behaviour (low mantissa flips are numerically invisible).
    """

    name = "ctl-bitflip"

    def __init__(
        self,
        trigger: Trigger | None = None,
        bit_range: tuple[int, int] = (20, 32),
        fields: tuple[str, ...] = _CONTROL_FIELDS,
    ):
        super().__init__(trigger)
        if not fields:
            raise ValueError("need at least one target field")
        unknown = set(fields) - set(_CONTROL_FIELDS)
        if unknown:
            raise ValueError(f"unknown control fields: {sorted(unknown)}")
        if not 0 <= bit_range[0] < bit_range[1] <= 32:
            raise ValueError("bit_range must be within [0, 32)")
        self.bit_range = bit_range
        self.fields = fields

    def transform(self, control: VehicleControl) -> VehicleControl:
        field = self.fields[int(self.rng.integers(len(self.fields)))]
        bit = int(self.rng.integers(*self.bit_range))
        values = {f: getattr(control, f) for f in _CONTROL_FIELDS}
        values[field] = _flip_scalar(values[field], bit)
        return VehicleControl(
            steer=values["steer"],
            throttle=values["throttle"],
            brake=values["brake"],
            reverse=control.reverse,
            hand_brake=control.hand_brake,
        )

    def describe(self) -> dict:
        return {**super().describe(), "bit_range": list(self.bit_range), "fields": list(self.fields)}


@register_fault
class ControlStuckAt(ControlFault):
    """One control field stuck at a fixed value while the trigger is active.

    Models a failed actuator interface register (e.g. steering command
    latched at full lock).
    """

    name = "ctl-stuck"

    def __init__(
        self, field: str = "steer", value: float = 1.0, trigger: Trigger | None = None
    ):
        super().__init__(trigger)
        if field not in _CONTROL_FIELDS:
            raise ValueError(f"field must be one of {_CONTROL_FIELDS}")
        self.field = field
        self.value = value

    def transform(self, control: VehicleControl) -> VehicleControl:
        values = {f: getattr(control, f) for f in _CONTROL_FIELDS}
        values[self.field] = self.value
        return VehicleControl(
            steer=values["steer"],
            throttle=values["throttle"],
            brake=values["brake"],
            reverse=control.reverse,
            hand_brake=control.hand_brake,
        )

    def describe(self) -> dict:
        return {**super().describe(), "field": self.field, "value": self.value}


@register_fault
class SensorBitFlip(SensorFault):
    """Bit flips in raw sensor payload memory.

    Flips ``n_bits`` random bits per activation across the image buffer
    (byte-level) and, with probability ``gps_fraction``, one bit in a GPS
    coordinate — a DMA/memory corruption model rather than an optical one.
    """

    name = "sensor-bitflip"

    def __init__(
        self, n_bits: int = 64, gps_fraction: float = 0.1, trigger: Trigger | None = None
    ):
        super().__init__(trigger)
        if n_bits < 1:
            raise ValueError("n_bits must be positive")
        if not 0.0 <= gps_fraction <= 1.0:
            raise ValueError("gps_fraction must be within [0, 1]")
        self.n_bits = n_bits
        self.gps_fraction = gps_fraction

    def transform(self, bundle: SensorFrame) -> SensorFrame:
        flat = bundle.image.reshape(-1)
        idx = self.rng.integers(0, flat.size, self.n_bits)
        bits = self.rng.integers(0, 8, self.n_bits).astype(np.uint8)
        flat[idx] ^= (np.uint8(1) << bits)
        if self.rng.random() < self.gps_fraction:
            gps = np.array(bundle.gps, dtype=np.float32)
            flip_float32_bits(
                gps,
                np.array([int(self.rng.integers(2))]),
                np.array([int(self.rng.integers(20, 32))]),
            )
            bundle.gps = (float(gps[0]), float(gps[1]))
        return bundle

    def describe(self) -> dict:
        return {**super().describe(), "n_bits": self.n_bits, "gps_fraction": self.gps_fraction}


@register_fault
class PacketBitFlip(TimingFault):
    """Network-level corruption: bit flips in control packets in flight.

    Installed on a channel like the timing faults (it shares the transform
    seam) but corrupts payload *values* rather than delivery times.
    """

    name = "pkt-bitflip"
    channel = "control"

    def __init__(self, trigger: Trigger | None = None, bit_range: tuple[int, int] = (20, 32)):
        super().__init__(trigger)
        self.bit_range = bit_range

    def rewrite(self, packet: Packet, deliver_frame: int):
        control = packet.payload
        if not isinstance(control, VehicleControl):
            return [(packet, deliver_frame)]
        field = _CONTROL_FIELDS[int(self.rng.integers(len(_CONTROL_FIELDS)))]
        bit = int(self.rng.integers(*self.bit_range))
        values = {f: getattr(control, f) for f in _CONTROL_FIELDS}
        values[field] = _flip_scalar(values[field], bit)
        corrupted = VehicleControl(
            steer=values["steer"],
            throttle=values["throttle"],
            brake=values["brake"],
            reverse=control.reverse,
            hand_brake=control.hand_brake,
        )
        return [(Packet(packet.kind, packet.frame, corrupted), deliver_frame)]

    def describe(self) -> dict:
        return {**super().describe(), "bit_range": list(self.bit_range)}
