"""Fault-model foundations: triggers, activation logs, base classes.

AVFI separates *what* a fault does (the fault model), *where* it lands (the
localizer) and *when* it fires (the trigger).  This module defines the
shared machinery:

* :class:`Trigger` — frame window plus per-frame probability;
* :class:`ActivationLog` — which frames a fault actually fired on, feeding
  the Time-To-Violation metric;
* the four base classes mirroring fig. 1's hook points:
  :class:`SensorFault` (Input FI), :class:`ControlFault` (Output FI),
  :class:`ModelFault` (NN FI) and :class:`TimingFault` (Timing FI, a
  channel transform), plus :class:`WorldFault` for corrupted world
  measurements (weather/speed type faults);
* the universal fault registry: every concrete fault class registers
  itself under its stable ``name`` via :func:`register_fault`, and every
  fault round-trips through a JSON-serialisable config
  (:meth:`FaultModel.to_config` / :meth:`FaultModel.from_config`) —
  the machinery declarative campaign specs
  (:mod:`repro.core.spec`) are built on.

Every fault model owns a seeded RNG handed to it by the injection harness,
so campaigns replay bit-for-bit.
"""

from __future__ import annotations

import inspect
import json
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

import numpy as np

from ...sim.channel import ChannelTransform, Packet
from ...sim.physics import VehicleControl
from ...sim.sensors import SensorFrame

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ...agent.ilcnn import ILCNN
    from ...sim.world import World

__all__ = [
    "Trigger",
    "ActivationLog",
    "FaultModel",
    "SensorFault",
    "ControlFault",
    "ModelFault",
    "TimingFault",
    "WorldFault",
    "FAULT_REGISTRY",
    "register_fault",
    "make_fault",
    "fault_parameters",
    "REQUIRED",
]


#: Every registered fault class, keyed by its stable ``name`` attribute.
#: Populated by :func:`register_fault`; spans ALL hook points (data,
#: hardware, timing, ML, world) — unlike the historical
#: ``INPUT_FAULT_REGISTRY``, which only lists the fig. 2/3 camera faults.
FAULT_REGISTRY: dict[str, type["FaultModel"]] = {}

#: Sentinel for constructor parameters without a default
#: (see :func:`fault_parameters`).
REQUIRED = object()


def register_fault(cls: type["FaultModel"]) -> type["FaultModel"]:
    """Class decorator adding a fault model to :data:`FAULT_REGISTRY`.

    The class must define its *own* ``name`` (an inherited one would
    silently shadow the parent's registration), which becomes the config
    key :meth:`FaultModel.from_config` dispatches on.
    """
    name = cls.__dict__.get("name")
    if not isinstance(name, str) or not name:
        raise ValueError(
            f"{cls.__name__} needs its own class-level `name` string to register"
        )
    existing = FAULT_REGISTRY.get(name)
    if existing is not None and existing is not cls:
        raise ValueError(
            f"fault name {name!r} is already registered by {existing.__name__}"
        )
    FAULT_REGISTRY[name] = cls
    return cls


def make_fault(name: str, **kwargs) -> "FaultModel":
    """Instantiate any registered fault model by its stable name."""
    try:
        cls = FAULT_REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(FAULT_REGISTRY))
        raise KeyError(f"unknown fault {name!r}; registered faults: {known}") from None
    return cls(**kwargs)


def fault_parameters(cls: type["FaultModel"]) -> dict[str, object]:
    """A fault class's config parameters and defaults, by introspection.

    Maps constructor parameter names (``trigger`` excluded — it is
    serialised separately) to their defaults, or :data:`REQUIRED` for
    parameters without one.  This is both what ``avfi list-faults``
    prints and the contract :meth:`FaultModel.config_params` auto-derives
    serialisation from.
    """
    out: dict[str, object] = {}
    for pname, param in inspect.signature(cls.__init__).parameters.items():
        if pname in ("self", "trigger"):
            continue
        if param.kind in (param.VAR_POSITIONAL, param.VAR_KEYWORD):
            continue
        out[pname] = param.default if param.default is not param.empty else REQUIRED
    return out


def _json_default(obj):
    item = getattr(obj, "item", None)  # numpy scalars
    if callable(item):
        return item()
    raise TypeError(f"{type(obj).__name__} is not JSON-serialisable")


def _jsonify(value, context: str):
    """Normalise ``value`` to plain JSON types (tuples become lists, numpy
    scalars become Python numbers), so ``to_config`` output is stable
    under a JSON round-trip — the round-trip property tests rely on
    ``to_config → from_config → to_config`` being the identity."""
    try:
        return json.loads(json.dumps(value, default=_json_default))
    except TypeError as exc:
        raise TypeError(f"{context}: {exc}") from None


@dataclass(frozen=True)
class Trigger:
    """When a fault fires.

    Active on frames in ``[start_frame, end_frame]`` (``end_frame`` ``None``
    = forever), firing with ``probability`` per frame.  The default — always
    on — matches the paper's headline experiments, where a sensor fault
    model corrupts every camera frame of the episode.
    """

    start_frame: int = 0
    end_frame: Optional[int] = None
    probability: float = 1.0

    def __post_init__(self) -> None:
        if self.start_frame < 0:
            raise ValueError("start_frame cannot be negative")
        if self.end_frame is not None and self.end_frame < self.start_frame:
            raise ValueError("end_frame before start_frame")
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError("probability must be within [0, 1]")

    def in_window(self, frame: int) -> bool:
        """Whether ``frame`` lies inside the trigger window."""
        if frame < self.start_frame:
            return False
        return self.end_frame is None or frame <= self.end_frame

    def fires(self, frame: int, rng: np.random.Generator) -> bool:
        """Whether the fault fires at ``frame`` (draws from ``rng``)."""
        if not self.in_window(frame):
            return False
        if self.probability >= 1.0:
            return True
        return bool(rng.random() < self.probability)

    def to_dict(self) -> dict:
        """JSON-serialisable form (see :meth:`from_dict`).

        Numerics coerce to canonical JSON types (``probability=1`` and
        ``1.0`` compare equal but serialise differently), keeping spec
        hashes content-stable.
        """
        return {
            "start_frame": int(self.start_frame),
            "end_frame": int(self.end_frame) if self.end_frame is not None else None,
            "probability": float(self.probability),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Trigger":
        """Rebuild a trigger written by :meth:`to_dict`.

        Types are validated here, not just ranges: a hand-edited spec
        with ``"start_frame": "90"`` must fail at load time with a
        readable message, not mid-campaign inside :meth:`fires`.
        """
        if not isinstance(data, dict):
            raise TypeError(
                f"trigger config must be an object, got {type(data).__name__}"
            )
        unknown = set(data) - {"start_frame", "end_frame", "probability"}
        if unknown:
            raise ValueError(f"trigger config has unknown keys {sorted(unknown)}")
        start = data.get("start_frame", 0)
        end = data.get("end_frame")
        probability = data.get("probability", 1.0)
        if not isinstance(start, int) or isinstance(start, bool):
            raise ValueError(f"trigger start_frame must be an integer, got {start!r}")
        if end is not None and (not isinstance(end, int) or isinstance(end, bool)):
            raise ValueError(
                f"trigger end_frame must be an integer or null, got {end!r}"
            )
        if not isinstance(probability, (int, float)) or isinstance(probability, bool):
            raise ValueError(
                f"trigger probability must be a number, got {probability!r}"
            )
        return cls(start_frame=start, end_frame=end, probability=float(probability))


@dataclass
class ActivationLog:
    """Frames at which a fault actually fired."""

    frames: list[int] = field(default_factory=list)

    def record(self, frame: int) -> None:
        """Append one activation."""
        self.frames.append(frame)

    def first(self) -> Optional[int]:
        """Earliest activation, or ``None``."""
        return self.frames[0] if self.frames else None

    def latest_before(self, frame: int) -> Optional[int]:
        """Most recent activation at or before ``frame``."""
        candidates = [f for f in self.frames if f <= frame]
        return candidates[-1] if candidates else None

    def clear(self) -> None:
        """Reset between episodes."""
        self.frames.clear()


class FaultModel:
    """Common behaviour of every fault model."""

    #: Short stable identifier used in reports ("gaussian", "bitflip-ctl"...).
    name: str = "fault"
    #: Which hook point the fault attaches to ("input", "output", "model",
    #: "timing", "world") — set by the base classes below; drives the
    #: grouped ``avfi list-faults`` output.
    hook: str = "generic"

    def __init__(self, trigger: Trigger | None = None):
        self.trigger = trigger or Trigger()
        self.log = ActivationLog()
        self.rng: np.random.Generator = np.random.default_rng(0)

    def bind(self, rng: np.random.Generator) -> None:
        """Receive the harness-seeded RNG (called once per episode)."""
        self.rng = rng

    def reset(self) -> None:
        """Clear per-episode state (activation log, cached sites)."""
        self.log.clear()

    def describe(self) -> dict:
        """Report-friendly description."""
        return {"name": self.name, "class": type(self).__name__}

    def config_params(self) -> dict:
        """Constructor arguments that rebuild this fault (subclass hook).

        Auto-derived from the constructor signature: every parameter
        (``trigger`` aside) must be stored under the same attribute name
        — the convention all shipped faults follow.  A subclass whose
        stored state differs from its constructor arguments (e.g.
        :class:`~repro.core.faults.data_faults.WeatherShiftFault`
        resolving a preset name into a ``Weather`` object) overrides
        this to map back.  Per-episode state (activation logs, drawn
        occlusion patches, bit-flip sites) is never a constructor
        parameter, so it never leaks into the config.
        """
        params = {}
        for pname in fault_parameters(type(self)):
            if not hasattr(self, pname):
                raise TypeError(
                    f"{type(self).__name__} stores no attribute for constructor "
                    f"parameter {pname!r}; override config_params()"
                )
            params[pname] = getattr(self, pname)
        return params

    def to_config(self) -> dict:
        """JSON-serialisable config that rebuilds this fault exactly.

        The round-trip contract every registered fault satisfies:
        ``FaultModel.from_config(f.to_config()).to_config() ==
        f.to_config()`` — including the trigger, and independent of any
        per-episode state the instance has accumulated.
        """
        return {
            "fault": self.name,
            "params": _jsonify(
                self.config_params(), f"{type(self).__name__}.to_config()"
            ),
            "trigger": self.trigger.to_dict(),
        }

    @staticmethod
    def from_config(config: dict) -> "FaultModel":
        """Rebuild any registered fault from :meth:`to_config` output."""
        if not isinstance(config, dict):
            raise TypeError(
                f"fault config must be an object, got {type(config).__name__}"
            )
        if "fault" not in config:
            raise ValueError(
                "fault config needs a 'fault' key naming a registered fault"
            )
        name = config["fault"]
        try:
            cls = FAULT_REGISTRY[name]
        except KeyError:
            known = ", ".join(sorted(FAULT_REGISTRY))
            raise KeyError(
                f"unknown fault {name!r}; registered faults: {known}"
            ) from None
        unknown = set(config) - {"fault", "params", "trigger"}
        if unknown:
            raise ValueError(
                f"fault config for {name!r} has unknown keys {sorted(unknown)}"
            )
        params = config.get("params")
        if params is None:
            params = {}
        if not isinstance(params, dict):
            # `[]`/`""`/`false` must not silently mean "all defaults".
            raise TypeError(
                f"fault config for {name!r}: 'params' must be an object, "
                f"got {type(params).__name__}"
            )
        trigger = (
            Trigger.from_dict(config["trigger"])
            if config.get("trigger") is not None
            else None
        )
        try:
            return cls(**params, trigger=trigger)
        except TypeError as exc:
            known = ", ".join(
                f"{p}" for p in fault_parameters(cls)
            ) or "(no parameters)"
            raise ValueError(
                f"cannot build fault {name!r}: {exc}; accepted params: {known}"
            ) from None


class SensorFault(FaultModel):
    """Input FI: corrupts the sensor bundle before the agent sees it."""

    hook = "input"

    def apply(self, bundle: SensorFrame, frame: int) -> SensorFrame:
        """Return the (possibly corrupted) bundle for this frame."""
        if not self.trigger.fires(frame, self.rng):
            return bundle
        self.log.record(frame)
        return self.transform(bundle.copy())

    def transform(self, bundle: SensorFrame) -> SensorFrame:
        """Corrupt ``bundle`` in place and return it (subclass hook)."""
        raise NotImplementedError


class ControlFault(FaultModel):
    """Output FI: corrupts the control command after the agent produced it."""

    hook = "output"

    def apply(self, control: VehicleControl, frame: int) -> VehicleControl:
        """Return the (possibly corrupted) control for this frame."""
        if not self.trigger.fires(frame, self.rng):
            return control
        self.log.record(frame)
        return self.transform(control)

    def transform(self, control: VehicleControl) -> VehicleControl:
        """Corrupt ``control`` and return the new command (subclass hook)."""
        raise NotImplementedError


class ModelFault(FaultModel):
    """NN FI: perturbs network weights or activations.

    ``install`` corrupts the model (keeping whatever backup is needed);
    ``remove`` must restore it exactly — campaign code shares one model
    instance across episodes.
    """

    hook = "model"

    def install(self, model: "ILCNN", frame: int = 0) -> None:
        """Apply the fault to ``model`` (records one activation)."""
        raise NotImplementedError

    def remove(self, model: "ILCNN") -> None:
        """Undo :meth:`install` exactly."""
        raise NotImplementedError


class TimingFault(ChannelTransform, FaultModel):
    """Timing FI: rewrites packet delivery on a named channel."""

    hook = "timing"
    #: Which channel to attach to: "control" (ADA→actuation) or "sensor".
    channel: str = "control"

    def __init__(self, trigger: Trigger | None = None):
        ChannelTransform.__init__(self)
        FaultModel.__init__(self, trigger)

    def on_send(self, packet: Packet, deliver_frame: int):
        if not self.trigger.fires(packet.frame, self.rng):
            return [(packet, deliver_frame)]
        self.log.record(packet.frame)
        return self.rewrite(packet, deliver_frame)

    def rewrite(self, packet: Packet, deliver_frame: int):
        """Fault-specific delivery rewrite (subclass hook)."""
        raise NotImplementedError

    def reset(self) -> None:  # resolves the diamond: both bases define reset
        FaultModel.reset(self)


class WorldFault(FaultModel):
    """Corrupts world measurements (weather type, global state).

    The harness calls :meth:`step` once per frame with the live world.
    """

    hook = "world"

    def step(self, world: "World", frame: int) -> None:
        """Fire if triggered (records activation) and mutate the world."""
        if not self.trigger.fires(frame, self.rng):
            return
        self.log.record(frame)
        self.mutate(world)

    def mutate(self, world: "World") -> None:
        """World mutation (subclass hook)."""
        raise NotImplementedError
