"""Fault-model foundations: triggers, activation logs, base classes.

AVFI separates *what* a fault does (the fault model), *where* it lands (the
localizer) and *when* it fires (the trigger).  This module defines the
shared machinery:

* :class:`Trigger` — frame window plus per-frame probability;
* :class:`ActivationLog` — which frames a fault actually fired on, feeding
  the Time-To-Violation metric;
* the four base classes mirroring fig. 1's hook points:
  :class:`SensorFault` (Input FI), :class:`ControlFault` (Output FI),
  :class:`ModelFault` (NN FI) and :class:`TimingFault` (Timing FI, a
  channel transform), plus :class:`WorldFault` for corrupted world
  measurements (weather/speed type faults).

Every fault model owns a seeded RNG handed to it by the injection harness,
so campaigns replay bit-for-bit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

import numpy as np

from ...sim.channel import ChannelTransform, Packet
from ...sim.physics import VehicleControl
from ...sim.sensors import SensorFrame

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ...agent.ilcnn import ILCNN
    from ...sim.world import World

__all__ = [
    "Trigger",
    "ActivationLog",
    "FaultModel",
    "SensorFault",
    "ControlFault",
    "ModelFault",
    "TimingFault",
    "WorldFault",
]


@dataclass(frozen=True)
class Trigger:
    """When a fault fires.

    Active on frames in ``[start_frame, end_frame]`` (``end_frame`` ``None``
    = forever), firing with ``probability`` per frame.  The default — always
    on — matches the paper's headline experiments, where a sensor fault
    model corrupts every camera frame of the episode.
    """

    start_frame: int = 0
    end_frame: Optional[int] = None
    probability: float = 1.0

    def __post_init__(self) -> None:
        if self.start_frame < 0:
            raise ValueError("start_frame cannot be negative")
        if self.end_frame is not None and self.end_frame < self.start_frame:
            raise ValueError("end_frame before start_frame")
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError("probability must be within [0, 1]")

    def in_window(self, frame: int) -> bool:
        """Whether ``frame`` lies inside the trigger window."""
        if frame < self.start_frame:
            return False
        return self.end_frame is None or frame <= self.end_frame

    def fires(self, frame: int, rng: np.random.Generator) -> bool:
        """Whether the fault fires at ``frame`` (draws from ``rng``)."""
        if not self.in_window(frame):
            return False
        if self.probability >= 1.0:
            return True
        return bool(rng.random() < self.probability)


@dataclass
class ActivationLog:
    """Frames at which a fault actually fired."""

    frames: list[int] = field(default_factory=list)

    def record(self, frame: int) -> None:
        """Append one activation."""
        self.frames.append(frame)

    def first(self) -> Optional[int]:
        """Earliest activation, or ``None``."""
        return self.frames[0] if self.frames else None

    def latest_before(self, frame: int) -> Optional[int]:
        """Most recent activation at or before ``frame``."""
        candidates = [f for f in self.frames if f <= frame]
        return candidates[-1] if candidates else None

    def clear(self) -> None:
        """Reset between episodes."""
        self.frames.clear()


class FaultModel:
    """Common behaviour of every fault model."""

    #: Short stable identifier used in reports ("gaussian", "bitflip-ctl"...).
    name: str = "fault"

    def __init__(self, trigger: Trigger | None = None):
        self.trigger = trigger or Trigger()
        self.log = ActivationLog()
        self.rng: np.random.Generator = np.random.default_rng(0)

    def bind(self, rng: np.random.Generator) -> None:
        """Receive the harness-seeded RNG (called once per episode)."""
        self.rng = rng

    def reset(self) -> None:
        """Clear per-episode state (activation log, cached sites)."""
        self.log.clear()

    def describe(self) -> dict:
        """Report-friendly description."""
        return {"name": self.name, "class": type(self).__name__}


class SensorFault(FaultModel):
    """Input FI: corrupts the sensor bundle before the agent sees it."""

    def apply(self, bundle: SensorFrame, frame: int) -> SensorFrame:
        """Return the (possibly corrupted) bundle for this frame."""
        if not self.trigger.fires(frame, self.rng):
            return bundle
        self.log.record(frame)
        return self.transform(bundle.copy())

    def transform(self, bundle: SensorFrame) -> SensorFrame:
        """Corrupt ``bundle`` in place and return it (subclass hook)."""
        raise NotImplementedError


class ControlFault(FaultModel):
    """Output FI: corrupts the control command after the agent produced it."""

    def apply(self, control: VehicleControl, frame: int) -> VehicleControl:
        """Return the (possibly corrupted) control for this frame."""
        if not self.trigger.fires(frame, self.rng):
            return control
        self.log.record(frame)
        return self.transform(control)

    def transform(self, control: VehicleControl) -> VehicleControl:
        """Corrupt ``control`` and return the new command (subclass hook)."""
        raise NotImplementedError


class ModelFault(FaultModel):
    """NN FI: perturbs network weights or activations.

    ``install`` corrupts the model (keeping whatever backup is needed);
    ``remove`` must restore it exactly — campaign code shares one model
    instance across episodes.
    """

    def install(self, model: "ILCNN", frame: int = 0) -> None:
        """Apply the fault to ``model`` (records one activation)."""
        raise NotImplementedError

    def remove(self, model: "ILCNN") -> None:
        """Undo :meth:`install` exactly."""
        raise NotImplementedError


class TimingFault(ChannelTransform, FaultModel):
    """Timing FI: rewrites packet delivery on a named channel."""

    #: Which channel to attach to: "control" (ADA→actuation) or "sensor".
    channel: str = "control"

    def __init__(self, trigger: Trigger | None = None):
        ChannelTransform.__init__(self)
        FaultModel.__init__(self, trigger)

    def on_send(self, packet: Packet, deliver_frame: int):
        if not self.trigger.fires(packet.frame, self.rng):
            return [(packet, deliver_frame)]
        self.log.record(packet.frame)
        return self.rewrite(packet, deliver_frame)

    def rewrite(self, packet: Packet, deliver_frame: int):
        """Fault-specific delivery rewrite (subclass hook)."""
        raise NotImplementedError

    def reset(self) -> None:  # resolves the diamond: both bases define reset
        FaultModel.reset(self)


class WorldFault(FaultModel):
    """Corrupts world measurements (weather type, global state).

    The harness calls :meth:`step` once per frame with the live world.
    """

    def step(self, world: "World", frame: int) -> None:
        """Fire if triggered (records activation) and mutate the world."""
        if not self.trigger.fires(frame, self.rng):
            return
        self.log.record(frame)
        self.mutate(world)

    def mutate(self, world: "World") -> None:
        """World mutation (subclass hook)."""
        raise NotImplementedError
