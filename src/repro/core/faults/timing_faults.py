"""Timing faults: delay, loss and reordering on the component channels.

§II: "AVFI injects timing faults into the communication paths of the
network, resulting in (a) delays in flow of data from one component of the
AV system to another, (b) loss of data, or (c) out-of-order delivery of the
data packets.  For example, AVFI pauses the output of IL-CNN for k frames
and either replays or drops the outputs."

:class:`OutputDelay` is the fig. 4 injector.  With ``mode="replay"`` every
control packet is delivered ``k`` frames late; because the server keeps
applying its last received command, the vehicle acts on decisions that are
exactly ``k`` frames stale (at 15 FPS, k=30 is the paper's 2 s headline).
With ``mode="drop"`` the packets in the pause window are discarded
entirely, so the last pre-pause command is held for the whole window.
"""

from __future__ import annotations

import numpy as np

from ...sim.channel import Packet
from .base import TimingFault, Trigger, register_fault

__all__ = ["OutputDelay", "SensorDelay", "PacketLoss", "PacketReorder"]


@register_fault
class OutputDelay(TimingFault):
    """Delay (or drop) ADA output packets by ``delay_frames``."""

    name = "output-delay"
    channel = "control"

    def __init__(
        self,
        delay_frames: int,
        mode: str = "replay",
        trigger: Trigger | None = None,
    ):
        super().__init__(trigger)
        if delay_frames < 0:
            raise ValueError("delay cannot be negative")
        if mode not in ("replay", "drop"):
            raise ValueError("mode must be 'replay' or 'drop'")
        self.delay_frames = delay_frames
        self.mode = mode

    def rewrite(self, packet: Packet, deliver_frame: int):
        if self.delay_frames == 0:
            return [(packet, deliver_frame)]
        if self.mode == "drop":
            return None
        return [(packet, deliver_frame + self.delay_frames)]

    def describe(self) -> dict:
        return {
            **super().describe(),
            "delay_frames": self.delay_frames,
            "mode": self.mode,
        }


@register_fault
class SensorDelay(TimingFault):
    """Delay sensor bundles on their way to the agent."""

    name = "sensor-delay"
    channel = "sensor"

    def __init__(self, delay_frames: int, trigger: Trigger | None = None):
        super().__init__(trigger)
        if delay_frames < 0:
            raise ValueError("delay cannot be negative")
        self.delay_frames = delay_frames

    def rewrite(self, packet: Packet, deliver_frame: int):
        return [(packet, deliver_frame + self.delay_frames)]

    def describe(self) -> dict:
        return {**super().describe(), "delay_frames": self.delay_frames}


@register_fault
class PacketLoss(TimingFault):
    """Independent per-packet loss.

    The drop decision rides on the trigger's ``probability`` field — a
    ``PacketLoss(Trigger(probability=0.3))`` loses 30 % of packets in the
    window.  Packets that survive are delivered unchanged.
    """

    name = "packet-loss"
    channel = "control"

    def __init__(self, trigger: Trigger | None = None, channel: str = "control"):
        super().__init__(trigger or Trigger(probability=0.3))
        if channel not in ("control", "sensor"):
            raise ValueError("channel must be 'control' or 'sensor'")
        self.channel = channel

    def rewrite(self, packet: Packet, deliver_frame: int):
        return None  # the trigger already gated the drop decision

    def describe(self) -> dict:
        return {**super().describe(), "loss_prob": self.trigger.probability, "channel": self.channel}


@register_fault
class PacketReorder(TimingFault):
    """Out-of-order delivery: triggered packets arrive late by a jitter.

    Each affected packet is pushed ``1..max_extra_frames`` frames into the
    future, letting later packets overtake it.
    """

    name = "packet-reorder"
    channel = "control"

    def __init__(
        self,
        max_extra_frames: int = 4,
        trigger: Trigger | None = None,
        channel: str = "control",
    ):
        super().__init__(trigger or Trigger(probability=0.5))
        if max_extra_frames < 1:
            raise ValueError("max_extra_frames must be at least 1")
        if channel not in ("control", "sensor"):
            raise ValueError("channel must be 'control' or 'sensor'")
        self.max_extra_frames = max_extra_frames
        self.channel = channel

    def rewrite(self, packet: Packet, deliver_frame: int):
        extra = int(self.rng.integers(1, self.max_extra_frames + 1))
        return [(packet, deliver_frame + extra)]

    def describe(self) -> dict:
        return {**super().describe(), "max_extra_frames": self.max_extra_frames, "channel": self.channel}
