"""Machine-learning faults: corrupted network parameters and activations.

§II: "AVFI injects faults into the neural network by adding noise into the
parameters of the machine learning model (e.g., weights of the neural
network), which is modeled on real-world hardware failures."

Three models:

* :class:`WeightNoise` — Gaussian perturbation of a fraction of weights
  (training-error / aging model);
* :class:`WeightBitFlip` — IEEE-754 bit flips in randomly chosen weights
  (soft errors in weight memory, the model of Li et al. SC'17);
* :class:`ActivationFault` — stuck/saturated/noisy neurons at a chosen
  layer via forward hooks (datapath soft errors at inference time).

All are :class:`~repro.core.faults.base.ModelFault`\\ s: ``install`` takes
a backup, ``remove`` restores it exactly, so one model instance can be
shared across campaign episodes.
"""

from __future__ import annotations

import numpy as np

from .base import ModelFault, Trigger, register_fault
from .hardware_faults import flip_float32_bits

__all__ = ["WeightNoise", "WeightBitFlip", "WeightStuckAt", "ActivationFault"]


@register_fault
class WeightNoise(ModelFault):
    """Add Gaussian noise to a random fraction of the model's weights.

    ``sigma_rel`` scales with each parameter tensor's own std so the same
    setting perturbs conv and dense layers comparably.
    """

    name = "weight-noise"

    def __init__(
        self,
        sigma_rel: float = 0.2,
        fraction: float = 1.0,
        trigger: Trigger | None = None,
    ):
        super().__init__(trigger)
        if sigma_rel < 0:
            raise ValueError("sigma_rel cannot be negative")
        if not 0.0 < fraction <= 1.0:
            raise ValueError("fraction must be in (0, 1]")
        self.sigma_rel = sigma_rel
        self.fraction = fraction
        self._backup: dict[str, np.ndarray] | None = None

    def install(self, model, frame: int = 0) -> None:
        if self._backup is not None:
            raise RuntimeError("fault already installed")
        self._backup = {}
        for name, param in model.named_parameters().items():
            self._backup[name] = param.data.copy()
            scale = float(param.data.std())
            if scale == 0.0:
                scale = 1e-3  # fresh bias vectors are all-zero; still perturb
            noise = self.rng.normal(0.0, self.sigma_rel * scale, param.data.shape)
            if self.fraction < 1.0:
                mask = self.rng.random(param.data.shape) < self.fraction
                noise = noise * mask
            param.data += noise.astype(np.float32)
        self.log.record(frame)

    def remove(self, model) -> None:
        if self._backup is None:
            return
        for name, param in model.named_parameters().items():
            param.data[...] = self._backup[name]
        self._backup = None

    def reset(self) -> None:
        super().reset()
        self._backup = None

    def describe(self) -> dict:
        return {**super().describe(), "sigma_rel": self.sigma_rel, "fraction": self.fraction}


@register_fault
class WeightBitFlip(ModelFault):
    """Flip ``n_flips`` random bits across the model's weight memory.

    Sites are drawn weight-uniformly over all parameters.  ``bit_range``
    defaults to exponent + sign bits, the flips that actually move
    behaviour (Li et al., SC'17 observe the same dominance).
    """

    name = "weight-bitflip"

    def __init__(
        self,
        n_flips: int = 4,
        bit_range: tuple[int, int] = (23, 32),
        trigger: Trigger | None = None,
    ):
        super().__init__(trigger)
        if n_flips < 1:
            raise ValueError("n_flips must be positive")
        if not 0 <= bit_range[0] < bit_range[1] <= 32:
            raise ValueError("bit_range must be within [0, 32)")
        self.n_flips = n_flips
        self.bit_range = bit_range
        self._backup: dict[str, np.ndarray] | None = None
        self.sites: list[tuple[str, int, int]] = []  # (param, flat index, bit)

    def install(self, model, frame: int = 0) -> None:
        if self._backup is not None:
            raise RuntimeError("fault already installed")
        named = model.named_parameters()
        names = list(named)
        sizes = np.array([named[n].size for n in names], dtype=np.float64)
        probs = sizes / sizes.sum()
        self._backup = {}
        self.sites = []
        for _ in range(self.n_flips):
            pname = names[int(self.rng.choice(len(names), p=probs))]
            param = named[pname]
            if pname not in self._backup:
                self._backup[pname] = param.data.copy()
            flat_idx = int(self.rng.integers(param.size))
            bit = int(self.rng.integers(*self.bit_range))
            flip_float32_bits(param.data, np.array([flat_idx]), np.array([bit]))
            self.sites.append((pname, flat_idx, bit))
        self.log.record(frame)

    def remove(self, model) -> None:
        if self._backup is None:
            return
        named = model.named_parameters()
        for pname, backup in self._backup.items():
            named[pname].data[...] = backup
        self._backup = None

    def reset(self) -> None:
        super().reset()
        self._backup = None
        self.sites = []

    def describe(self) -> dict:
        return {
            **super().describe(),
            "n_flips": self.n_flips,
            "bit_range": list(self.bit_range),
            "sites": [list(s) for s in self.sites],
        }


@register_fault
class WeightStuckAt(ModelFault):
    """Stuck-at faults in weight memory: bits forced high or low.

    Unlike :class:`WeightBitFlip` (transient soft error), a stuck-at cell
    always reads the faulty value — the paper's "stuck-at faults in the
    hardware components" applied to the model's weight store.  ``n_cells``
    weight words each get one bit forced to ``stuck_high``.
    """

    name = "weight-stuckat"

    def __init__(
        self,
        n_cells: int = 8,
        bit_range: tuple[int, int] = (23, 32),
        stuck_high: bool = True,
        trigger: Trigger | None = None,
    ):
        super().__init__(trigger)
        if n_cells < 1:
            raise ValueError("n_cells must be positive")
        if not 0 <= bit_range[0] < bit_range[1] <= 32:
            raise ValueError("bit_range must be within [0, 32)")
        self.n_cells = n_cells
        self.bit_range = bit_range
        self.stuck_high = stuck_high
        self._backup: dict[str, np.ndarray] | None = None
        self.sites: list[tuple[str, int, int]] = []

    def install(self, model, frame: int = 0) -> None:
        from .hardware_faults import set_float32_bit

        if self._backup is not None:
            raise RuntimeError("fault already installed")
        named = model.named_parameters()
        names = list(named)
        sizes = np.array([named[n].size for n in names], dtype=np.float64)
        probs = sizes / sizes.sum()
        self._backup = {}
        self.sites = []
        for _ in range(self.n_cells):
            pname = names[int(self.rng.choice(len(names), p=probs))]
            param = named[pname]
            if pname not in self._backup:
                self._backup[pname] = param.data.copy()
            flat_idx = int(self.rng.integers(param.size))
            bit = int(self.rng.integers(*self.bit_range))
            set_float32_bit(param.data, flat_idx, bit, self.stuck_high)
            self.sites.append((pname, flat_idx, bit))
        self.log.record(frame)

    def remove(self, model) -> None:
        if self._backup is None:
            return
        named = model.named_parameters()
        for pname, backup in self._backup.items():
            named[pname].data[...] = backup
        self._backup = None

    def reset(self) -> None:
        super().reset()
        self._backup = None
        self.sites = []

    def describe(self) -> dict:
        return {
            **super().describe(),
            "n_cells": self.n_cells,
            "stuck_high": self.stuck_high,
            "sites": [list(s) for s in self.sites],
        }


@register_fault
class ActivationFault(ModelFault):
    """Stuck or noisy neurons at one layer, injected via forward hooks.

    ``block`` names a top-level block of the IL-CNN ("trunk", "join",
    "branch0"...); ``layer_index`` indexes into that block's module list
    (``None`` picks a random parameterised layer).  ``n_units`` output
    units (features of a dense layer, channels of a conv layer) are forced
    per forward pass according to ``mode``:

    * ``"zero"``  — stuck-at-zero neurons,
    * ``"saturate"`` — stuck at ``saturate_value`` (latched-high datapath),
    * ``"noise"`` — replaced by Gaussian noise of the output's own scale.
    """

    name = "activation"

    def __init__(
        self,
        block: str = "trunk",
        layer_index: int | None = None,
        n_units: int = 4,
        mode: str = "saturate",
        saturate_value: float = 8.0,
        trigger: Trigger | None = None,
    ):
        super().__init__(trigger)
        if mode not in ("zero", "saturate", "noise"):
            raise ValueError("mode must be zero|saturate|noise")
        if n_units < 1:
            raise ValueError("n_units must be positive")
        self.block = block
        self.layer_index = layer_index
        self.n_units = n_units
        self.mode = mode
        self.saturate_value = saturate_value
        self.fire_count = 0
        self._installed: tuple[object, object] | None = None  # (module, hook)
        self._unit_indices: np.ndarray | None = None

    def _pick_module(self, model):
        blocks = model.submodules()
        if self.block not in blocks:
            raise KeyError(f"model has no block {self.block!r}; has {sorted(blocks)}")
        block = blocks[self.block]
        if self.layer_index is not None:
            return block.modules[self.layer_index]
        candidates = [m for m in block.modules if m.parameters()]
        if not candidates:
            raise ValueError(f"block {self.block!r} has no parameterised layers")
        return candidates[int(self.rng.integers(len(candidates)))]

    def install(self, model, frame: int = 0) -> None:
        if self._installed is not None:
            raise RuntimeError("fault already installed")
        module = self._pick_module(model)
        self.fire_count = 0
        self._unit_indices = None

        def hook(mod, out):
            if self._unit_indices is None:
                n_out = out.shape[1]
                k = min(self.n_units, n_out)
                self._unit_indices = self.rng.choice(n_out, size=k, replace=False)
            self.fire_count += 1
            out = out.copy()
            idx = self._unit_indices
            if self.mode == "zero":
                out[:, idx] = 0.0
            elif self.mode == "saturate":
                out[:, idx] = self.saturate_value
            else:
                scale = float(np.abs(out).mean()) + 1e-6
                out[:, idx] = self.rng.normal(0.0, scale, out[:, idx].shape)
            return out

        module.forward_hooks.append(hook)
        self._installed = (module, hook)
        self.log.record(frame)

    def remove(self, model) -> None:
        if self._installed is None:
            return
        module, hook = self._installed
        module.forward_hooks.remove(hook)
        self._installed = None

    def reset(self) -> None:
        super().reset()
        self._installed = None
        self._unit_indices = None
        self.fire_count = 0

    def describe(self) -> dict:
        return {
            **super().describe(),
            "block": self.block,
            "mode": self.mode,
            "n_units": self.n_units,
        }
