"""Run tracing: JSONL episode logs and replay verification.

Campaigns are reproducible from seeds, but debugging a fault's effect
needs the actual trajectory.  :class:`TraceWriter` records one episode as
JSON-lines — a header, one ``state`` row per frame, plus ``violation`` and
``injection`` events — and :class:`TraceReader` loads it back.

:func:`compare_traces` checks two traces for divergence, the test used to
demonstrate that equal seeds replay bit-identically (and that fault
injection is the *only* source of divergence between a golden and a
faulted run).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import IO, Optional

__all__ = ["TraceWriter", "TraceReader", "compare_traces", "TraceDivergence"]


class TraceWriter:
    """Writes one episode's trace as JSON lines."""

    def __init__(self, path: str | Path, header: dict | None = None):
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fh: Optional[IO[str]] = self.path.open("w")
        self._write({"kind": "header", **(header or {})})
        self.n_rows = 1

    def _write(self, row: dict) -> None:
        if self._fh is None:
            raise RuntimeError("trace already closed")
        self._fh.write(json.dumps(row, separators=(",", ":")) + "\n")

    def state(self, frame: int, x: float, y: float, yaw: float, speed: float, **extra) -> None:
        """Record the ego state at one frame."""
        self._write(
            {
                "kind": "state",
                "frame": frame,
                "x": round(x, 4),
                "y": round(y, 4),
                "yaw": round(yaw, 5),
                "speed": round(speed, 4),
                **extra,
            }
        )
        self.n_rows += 1

    def violation(self, frame: int, vtype: str, **extra) -> None:
        """Record a violation event."""
        self._write({"kind": "violation", "frame": frame, "type": vtype, **extra})
        self.n_rows += 1

    def injection(self, frame: int, fault: str, **extra) -> None:
        """Record a fault activation."""
        self._write({"kind": "injection", "frame": frame, "fault": fault, **extra})
        self.n_rows += 1

    def close(self, footer: dict | None = None) -> None:
        """Finish the trace (optionally appending a footer row)."""
        if self._fh is None:
            return
        if footer:
            self._write({"kind": "footer", **footer})
        self._fh.close()
        self._fh = None

    def __enter__(self) -> "TraceWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class TraceReader:
    """Loads a JSONL trace written by :class:`TraceWriter`."""

    def __init__(self, path: str | Path):
        self.path = Path(path)
        self.header: dict = {}
        self.states: list[dict] = []
        self.violations: list[dict] = []
        self.injections: list[dict] = []
        self.footer: dict = {}
        for line in self.path.read_text().splitlines():
            row = json.loads(line)
            kind = row.pop("kind", "state")
            if kind == "header":
                self.header = row
            elif kind == "state":
                self.states.append(row)
            elif kind == "violation":
                self.violations.append(row)
            elif kind == "injection":
                self.injections.append(row)
            elif kind == "footer":
                self.footer = row

    def trajectory(self) -> list[tuple[float, float]]:
        """The (x, y) path of the episode."""
        return [(s["x"], s["y"]) for s in self.states]


@dataclass
class TraceDivergence:
    """Where two traces first disagree."""

    frame: int
    field: str
    value_a: float
    value_b: float


def compare_traces(
    a: TraceReader, b: TraceReader, tolerance: float = 1e-6
) -> Optional[TraceDivergence]:
    """First state divergence between two traces, or ``None`` if identical.

    Compares frame-aligned states up to the shorter trace's length; a
    length mismatch with identical common prefix reports divergence at the
    first missing frame.
    """
    for sa, sb in zip(a.states, b.states):
        if sa["frame"] != sb["frame"]:
            return TraceDivergence(min(sa["frame"], sb["frame"]), "frame", sa["frame"], sb["frame"])
        for key in ("x", "y", "yaw", "speed"):
            if abs(sa[key] - sb[key]) > tolerance:
                return TraceDivergence(sa["frame"], key, sa[key], sb[key])
    if len(a.states) != len(b.states):
        n = min(len(a.states), len(b.states))
        return TraceDivergence(n, "length", len(a.states), len(b.states))
    return None
