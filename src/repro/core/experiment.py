"""Higher-level experiment orchestration: sweeps and resumable studies.

A :class:`Campaign` runs one set of named injectors; a *study* is what a
paper section needs — parameter sweeps over a fault model, factor grids,
resumable execution and exportable summaries.  This module provides that
layer:

* :func:`sweep` — one fault class swept over a parameter
  (``OutputDelay`` over ``delay_frames`` is exactly fig. 4);
* :class:`Study` — a named collection of injector configurations executed
  with a paired scenario design, checkpointing records to disk after
  every episode so an interrupted overnight run resumes where it stopped;
* :func:`summary_frame` — flat list-of-dict export of the per-injector
  metrics (ready for csv/json serialisation).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Sequence

from ..sim.builders import SimulationBuilder
from ..sim.scenario import Scenario
from .campaign import RunRecord
from .faults.base import FaultModel
from .metrics import ResilienceMetrics, metrics_by_injector
from .outcomes import FaultTolerancePolicy
from .runner import ParallelCampaignRunner, load_checkpoint_rows

__all__ = ["sweep", "Study", "summary_frame"]


def sweep(
    fault_factory: Callable[[float], FaultModel],
    values: Sequence[float],
    name_format: str = "{value}",
    include_baseline: bool = True,
) -> dict[str, list[FaultModel]]:
    """Build an injector dict sweeping one fault parameter.

    ``fault_factory`` maps each value to a fresh fault model.  Example::

        injectors = sweep(lambda k: OutputDelay(int(k)), [5, 10, 20, 30],
                          name_format="delay-{value:g}")

    Two values formatting to the same injector name (a constant
    ``name_format``, rounded floats like ``0.30001`` vs ``0.3`` under
    ``{value:.1f}``) would silently overwrite one sweep point with
    another; that collision raises a ``ValueError`` instead.
    """
    injectors: dict[str, list[FaultModel]] = {}
    if include_baseline:
        injectors["none"] = []
    for value in values:
        name = name_format.format(value=value)
        if name in injectors:
            raise ValueError(
                f"sweep name collision: value {value!r} formats to {name!r}, "
                f"which is already taken (name_format={name_format!r}); use a "
                f"format that distinguishes every swept value"
            )
        injectors[name] = [fault_factory(value)]
    return injectors


@dataclass
class Study:
    """A resumable fault-injection study.

    Episodes are identified by ``(injector, scenario, seed)`` plus a
    configuration fingerprint (see
    :func:`~repro.core.campaign.episode_fingerprint`); records are
    appended to ``checkpoint_path`` (JSON lines) as they complete, and
    :meth:`run` skips identities already present — re-running a partially
    completed study only executes the remainder, while a checkpoint from
    a *different* suite never matches and re-runs.
    """

    scenarios: Sequence[Scenario]
    agent_factory: Callable
    injectors: dict[str, Sequence[FaultModel]]
    checkpoint_path: Path | str | None = None
    builder: SimulationBuilder = field(default_factory=SimulationBuilder)
    base_seed: int = 0
    verbose: bool = False
    #: Retry/timeout/quarantine policy forwarded to the runner
    #: (:class:`~repro.core.outcomes.FaultTolerancePolicy`); ``None``
    #: keeps the defaults (abort on first failure).
    fault_tolerance: FaultTolerancePolicy | None = None
    #: The CampaignSpec this study was built from (:meth:`from_spec`);
    #: forwarded to queue brokers as their archived ``spec.json``.
    spec: object | None = None

    @classmethod
    def from_spec(
        cls,
        spec,
        *,
        checkpoint_path: Path | str | None = None,
        verbose: bool = False,
    ) -> "Study":
        """Build a resumable study from a
        :class:`~repro.core.spec.CampaignSpec`.

        ``checkpoint_path`` overrides the spec's
        ``execution.checkpoint``; fault models are deep-copied out of
        the spec (see :meth:`~repro.core.campaign.Campaign.from_spec`).
        The spec's remaining execution options (workers, backend,
        queue_dir, lease) become :meth:`run`'s defaults.
        """
        import copy

        execution = spec.execution
        if execution.backend == "queue" and execution.queue_dir is None:
            raise ValueError(
                "spec asks for the queue backend but no queue_dir is set "
                "(spec.execution.queue_dir, or pass queue_dir= to run())"
            )
        return cls(
            spec.scenarios.build(),
            spec.agent.build(),
            {
                name: [copy.deepcopy(fault) for fault in faults]
                for name, faults in spec.expanded_injectors().items()
            },
            checkpoint_path=(
                checkpoint_path if checkpoint_path is not None else execution.checkpoint
            ),
            builder=spec.build_builder(),
            base_seed=execution.base_seed,
            verbose=verbose,
            fault_tolerance=execution.fault_tolerance,
            spec=spec,
        )

    def __post_init__(self) -> None:
        if not self.scenarios:
            raise ValueError("study needs at least one scenario")
        if not self.injectors:
            raise ValueError("study needs at least one injector")
        if self.checkpoint_path is not None:
            self.checkpoint_path = Path(self.checkpoint_path)
        self.records, self.failures = load_checkpoint_rows(self.checkpoint_path)
        if self.records or self.failures:
            # Keep only rows that belong to this study's episode grid;
            # rows from another suite (or pre-fingerprint rows) would
            # otherwise pollute metrics() and duplicate after re-runs.
            runner = self._runner()
            self.records = runner.grid_records()
            self.failures = runner.grid_failures()

    def _runner(
        self,
        workers: int | None = None,
        executor=None,
        queue_dir=None,
        lease_s=None,
    ) -> ParallelCampaignRunner:
        return ParallelCampaignRunner(
            self.scenarios,
            self.agent_factory,
            self.injectors,
            builder=self.builder,
            base_seed=self.base_seed,
            workers=workers,
            executor=executor,
            queue_dir=queue_dir,
            lease_s=lease_s,
            checkpoint_path=self.checkpoint_path,
            # self.records/failures already hold the checkpoint contents
            # (loaded once in __post_init__) plus anything run since;
            # handing them over avoids re-parsing the JSONL on every
            # pending()/run() — and keeps quarantined episodes counted
            # as done rather than re-running them each resume.
            resume_records=self.records,
            resume_failures=self.failures,
            policy=self.fault_tolerance,
            spec=self.spec.to_dict() if self.spec is not None else None,
            verbose=self.verbose,
            label="study",
        )

    def pending(self) -> list[tuple[str, Scenario, int]]:
        """The (injector, scenario, seed) triples still to execute."""
        return [(t.injector, t.scenario, t.seed) for t in self._runner().pending()]

    def run(
        self,
        workers: int | None = None,
        executor=None,
        queue_dir=None,
        lease_s=None,
    ) -> list[RunRecord]:
        """Execute every pending episode; returns the study's records.

        One record per completed grid episode (resumed + fresh), in grid
        order; checkpoint rows from a different suite are ignored rather
        than double-counted.  ``workers`` > 1 distributes pending episodes
        over a process pool (see
        :class:`~repro.core.runner.ParallelCampaignRunner`); records still
        stream to the checkpoint as each episode completes, so an
        interrupted parallel study resumes exactly like a serial one.

        A ``queue_dir`` (optionally with ``executor="queue"``) shards the
        pending episodes across machines through the distributed work
        queue; when the study has its own ``checkpoint_path``, records
        are mirrored into it as the coordinator folds them back, so study
        resume semantics are unchanged.

        For a spec-built study (:meth:`from_spec`), arguments left
        ``None`` default to the spec's execution options — a spec
        declaring ``workers: 8`` or the queue backend runs that way
        without repeating it here.
        """
        if self.spec is not None:
            execution = self.spec.execution
            workers = workers if workers is not None else execution.workers
            queue_dir = queue_dir if queue_dir is not None else execution.queue_dir
            lease_s = lease_s if lease_s is not None else execution.lease_s
            if executor is None:
                # A queue dir always selects the queue backend (mirrors
                # Campaign.from_spec's override semantics).
                executor = "queue" if queue_dir is not None else execution.backend
        runner = self._runner(workers, executor, queue_dir=queue_dir, lease_s=lease_s)
        try:
            runner.run()
        finally:
            # Keep whatever completed even when an episode (or the pool)
            # raised, so a retry only executes the remainder.
            self.records = runner.grid_records()
            self.failures = runner.grid_failures()
        return list(self.records)

    def metrics(self) -> dict[str, ResilienceMetrics]:
        """Per-injector metrics over all completed records (quarantined
        episodes surface as per-injector failure counts, never as data)."""
        return metrics_by_injector(list(self.records) + list(self.failures))


def summary_frame(records: Sequence[RunRecord]) -> list[dict]:
    """Flat per-injector summary rows (json/csv-ready).

    One dict per injector with the paper's metrics plus run counts; the
    row ordering follows first appearance in ``records``.
    """
    rows = []
    for name, m in metrics_by_injector(records).items():
        rows.append(
            {
                "injector": name,
                "runs": m.n_runs,
                "msr_percent": round(m.msr, 2),
                "vpk": round(m.vpk, 3),
                "apk": round(m.apk, 3),
                "ttv_median_s": round(m.ttv_median_s, 3) if m.ttv_s else None,
                "total_km": round(m.total_km, 3),
                "total_violations": m.total_violations,
                "total_accidents": m.total_accidents,
            }
        )
    return rows
