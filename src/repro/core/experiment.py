"""Higher-level experiment orchestration: sweeps and resumable studies.

A :class:`Campaign` runs one set of named injectors; a *study* is what a
paper section needs — parameter sweeps over a fault model, factor grids,
resumable execution and exportable summaries.  This module provides that
layer:

* :func:`sweep` — one fault class swept over a parameter
  (``OutputDelay`` over ``delay_frames`` is exactly fig. 4);
* :class:`Study` — a named collection of injector configurations executed
  with a paired scenario design, checkpointing records to disk after
  every episode so an interrupted overnight run resumes where it stopped;
* :func:`summary_frame` — flat list-of-dict export of the per-injector
  metrics (ready for csv/json serialisation).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Sequence

from ..sim.builders import SimulationBuilder
from ..sim.scenario import Scenario
from .campaign import RunRecord, run_episode
from .faults.base import FaultModel
from .metrics import ResilienceMetrics, metrics_by_injector

__all__ = ["sweep", "Study", "summary_frame"]


def sweep(
    fault_factory: Callable[[float], FaultModel],
    values: Sequence[float],
    name_format: str = "{value}",
    include_baseline: bool = True,
) -> dict[str, list[FaultModel]]:
    """Build an injector dict sweeping one fault parameter.

    ``fault_factory`` maps each value to a fresh fault model.  Example::

        injectors = sweep(lambda k: OutputDelay(int(k)), [5, 10, 20, 30],
                          name_format="delay-{value:g}")
    """
    injectors: dict[str, list[FaultModel]] = {}
    if include_baseline:
        injectors["none"] = []
    for value in values:
        injectors[name_format.format(value=value)] = [fault_factory(value)]
    return injectors


@dataclass
class Study:
    """A resumable fault-injection study.

    Episodes are identified by ``(injector, scenario, seed)``; records are
    appended to ``checkpoint_path`` (JSON lines) as they complete, and
    :meth:`run` skips identities already present — re-running a partially
    completed study only executes the remainder.
    """

    scenarios: Sequence[Scenario]
    agent_factory: Callable
    injectors: dict[str, Sequence[FaultModel]]
    checkpoint_path: Path | str | None = None
    builder: SimulationBuilder = field(default_factory=SimulationBuilder)
    base_seed: int = 0
    verbose: bool = False

    def __post_init__(self) -> None:
        if not self.scenarios:
            raise ValueError("study needs at least one scenario")
        if not self.injectors:
            raise ValueError("study needs at least one injector")
        self.records: list[RunRecord] = []
        if self.checkpoint_path is not None:
            self.checkpoint_path = Path(self.checkpoint_path)
            if self.checkpoint_path.exists():
                for line in self.checkpoint_path.read_text().splitlines():
                    self.records.append(RunRecord(**json.loads(line)))

    def _identity(self, injector: str, scenario: Scenario, seed: int) -> tuple:
        return (injector, scenario.name, seed)

    def _completed(self) -> set[tuple]:
        return {(r.injector, r.scenario, r.seed) for r in self.records}

    def pending(self) -> list[tuple[str, Scenario, int]]:
        """The (injector, scenario, seed) triples still to execute."""
        done = self._completed()
        out = []
        for inj_idx, name in enumerate(self.injectors):
            for scn_idx, scenario in enumerate(self.scenarios):
                seed = self.base_seed * 1_000_003 + inj_idx * 10_007 + scn_idx
                if self._identity(name, scenario, seed) not in done:
                    out.append((name, scenario, seed))
        return out

    def _append_checkpoint(self, record: RunRecord) -> None:
        if self.checkpoint_path is None:
            return
        self.checkpoint_path.parent.mkdir(parents=True, exist_ok=True)
        with self.checkpoint_path.open("a") as fh:
            fh.write(json.dumps(record.to_dict()) + "\n")

    def run(self) -> list[RunRecord]:
        """Execute every pending episode; returns all records (old + new)."""
        for name, scenario, seed in self.pending():
            record = run_episode(
                self.builder,
                scenario,
                self.agent_factory,
                faults=self.injectors[name],
                injector_name=name,
                harness_seed=seed,
            )
            self.records.append(record)
            self._append_checkpoint(record)
            if self.verbose:
                status = "ok " if record.success else "FAIL"
                print(f"[study] {name:>14} {scenario.name:>10} {status}")
        return list(self.records)

    def metrics(self) -> dict[str, ResilienceMetrics]:
        """Per-injector metrics over all completed records."""
        return metrics_by_injector(self.records)


def summary_frame(records: Sequence[RunRecord]) -> list[dict]:
    """Flat per-injector summary rows (json/csv-ready).

    One dict per injector with the paper's metrics plus run counts; the
    row ordering follows first appearance in ``records``.
    """
    rows = []
    for name, m in metrics_by_injector(records).items():
        rows.append(
            {
                "injector": name,
                "runs": m.n_runs,
                "msr_percent": round(m.msr, 2),
                "vpk": round(m.vpk, 3),
                "apk": round(m.apk, 3),
                "ttv_median_s": round(m.ttv_median_s, 3) if m.ttv_s else None,
                "total_km": round(m.total_km, 3),
                "total_violations": m.total_violations,
                "total_accidents": m.total_accidents,
            }
        )
    return rows
