"""Chaos-testing the campaign harness with its own fault-injection discipline.

The paper's method — inject faults, observe containment — applied to the
execution stack itself.  The AV harness claims campaign results are
byte-identical across serial, process-pool and distributed-queue
backends; that claim is only trustworthy if it survives the failures a
real fleet produces.  This module supplies the faults:

* :class:`ChaosBroker` — a seeded misbehaviour wrapper over a
  :class:`~repro.core.queue.FilesystemBroker`-compatible broker:
  delivery delays, duplicate deliveries, claim races (claimed tasks
  snatched back), lease storms (heartbeats silently dropped, so live
  leases expire mid-episode) and drop-and-requeue on release.  All of it
  is noise the at-least-once queue contract plus the exactly-once
  results fold must absorb: a chaos campaign must produce byte-identical
  records to a serial run.
* :class:`NetworkChaos` — the transport-level counterpart for the TCP
  broker (:class:`~repro.core.netqueue.TcpBroker`): seeded connection
  drops before and after a request lands, torn half-frames, injected
  delays (responses land reordered relative to other workers' traffic)
  and post-response disconnects (reconnect storms).  Injected faults
  travel the client's *real* transport-error paths, so surviving them
  proves the reconnect/retry/at-least-once machinery, not a mock.
* Episode fixtures — :class:`CrashFault` (raises), :class:`HangFault`
  (sleeps past any reasonable wall-clock budget) and :class:`FlakyFault`
  (fails the first N attempts, then succeeds) — implemented as
  :class:`~repro.core.faults.base.WorldFault` subclasses so a *dedicated
  injector row* makes specific grid episodes poison while every other
  row stays untouched.  They are deliberately **not** in the fault
  registry: they model failures of the harness, not of the vehicle, and
  must never appear in a campaign spec.

Everything is seeded (``random.Random``), so a chaotic run is exactly
reproducible.
"""

from __future__ import annotations

import os
import pickle
import random
import time
from pathlib import Path

from .faults.base import Trigger, WorldFault
from .queue import Claim

__all__ = [
    "ChaosBroker",
    "NetworkChaos",
    "apply_chaos",
    "InjectedCrash",
    "TransientEpisodeError",
    "CrashFault",
    "HangFault",
    "FlakyFault",
]


class NetworkChaos:
    """Seeded transport misbehaviour for :class:`~repro.core.netqueue.TcpBroker`.

    The client consults :meth:`plan` once per request *attempt* and acts
    on the verdicts inside its own send/receive path, so every injected
    fault surfaces exactly like the real thing — a closed socket, a torn
    frame — and is healed by the same reconnect-and-retry loop real
    faults exercise.  Dials (each a probability in ``[0, 1]``):

    ``delay_p``/``delay_s``
        Sleep before sending — this worker's request lands *after*
        traffic other workers issued later (reordering, slow links).
    ``drop_before_p``
        Drop the connection before the request is sent: pure retry, the
        server never saw it.
    ``drop_after_p``
        Send the full request, then drop before reading the response:
        the server *did* execute it, and the retry re-executes — the
        at-least-once duplicate case (double claims, duplicate appended
        rows) the results fold must absorb.
    ``partial_frame_p``
        Send half a frame and hang up: the server must discard the torn
        request without executing anything.
    ``reconnect_p``
        Close the connection after a successful exchange, forcing the
        next request onto a fresh connection (reconnect storm).

    Picklable (one ``random.Random`` stream), so local drain workers can
    rebuild it from a kwargs dict across ``fork`` exactly like
    :class:`ChaosBroker` — see :func:`apply_chaos`.
    """

    def __init__(
        self,
        seed: int = 0,
        delay_p: float = 0.0,
        delay_s: float = 0.02,
        drop_before_p: float = 0.0,
        drop_after_p: float = 0.0,
        partial_frame_p: float = 0.0,
        reconnect_p: float = 0.0,
    ):
        for name, p in (
            ("delay_p", delay_p),
            ("drop_before_p", drop_before_p),
            ("drop_after_p", drop_after_p),
            ("partial_frame_p", partial_frame_p),
            ("reconnect_p", reconnect_p),
        ):
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{name} must be within [0, 1] (got {p})")
        self.seed = int(seed)
        self.delay_p = float(delay_p)
        self.delay_s = float(delay_s)
        self.drop_before_p = float(drop_before_p)
        self.drop_after_p = float(drop_after_p)
        self.partial_frame_p = float(partial_frame_p)
        self.reconnect_p = float(reconnect_p)
        self.rng = random.Random(seed)

    def plan(self) -> dict:
        """One attempt's misfortunes.  At most one *failure* fires per
        attempt (drop-before beats partial-frame beats drop-after) so a
        single dial's probability reads directly as that failure's rate;
        delay and post-success reconnect are independent."""
        plan = {
            "delay_s": self.delay_s if self.rng.random() < self.delay_p else 0.0,
            "drop_before": False,
            "partial_frame": False,
            "drop_after": False,
            "reconnect": self.rng.random() < self.reconnect_p,
        }
        if self.rng.random() < self.drop_before_p:
            plan["drop_before"] = True
        elif self.rng.random() < self.partial_frame_p:
            plan["partial_frame"] = True
        elif self.rng.random() < self.drop_after_p:
            plan["drop_after"] = True
        return plan


def apply_chaos(broker, chaos: dict):
    """Route a picklable chaos-kwargs dict to the wrapper that fits the
    broker: transport chaos (:class:`NetworkChaos`) for a
    :class:`~repro.core.netqueue.TcpBroker`, delivery chaos
    (:class:`ChaosBroker`) for anything filesystem-compatible.  This is
    what :func:`~repro.core.queue.run_worker` applies to the broker each
    (possibly ``fork``-spawned) worker builds for itself."""
    from .netqueue import TcpBroker  # deferred: netqueue imports queue

    if isinstance(broker, TcpBroker):
        broker.chaos = NetworkChaos(**chaos)
        return broker
    return ChaosBroker(broker, **chaos)


class ChaosBroker:
    """Wrap a broker in seeded misbehaviour.

    Only the delivery-path methods (``claim``/``heartbeat``/``release``)
    misbehave; everything else delegates verbatim, so the wrapped broker
    still satisfies the full :class:`~repro.core.queue.Broker` protocol.
    Every dial is a probability in ``[0, 1]`` drawn from one
    ``random.Random(seed)`` stream:

    ``delay_p``/``delay_s``
        Sleep up to ``delay_s`` before a claim or release (slow NFS,
        paused VM).
    ``duplicate_claim_p``
        After a successful claim, republish a copy of the task — a
        second worker will run the same episode concurrently
        (at-least-once delivery; the results fold dedupes).
    ``drop_claim_p``
        Claim a task, then immediately requeue it and report "queue
        empty" — a lost race with a phantom competitor.
    ``drop_heartbeat_p``
        Silently drop lease refreshes, so a *live* worker's lease
        expires mid-episode and the task storms back into the queue.
    ``drop_release_p``
        On finish, requeue the task instead of retiring it — the record
        is already appended, so the re-run must dedupe at the results
        layer.

    Requeue/duplicate chaos reaches into the filesystem layout
    (``tasks_dir``/``claimed_dir``), so the inner broker must be
    :class:`~repro.core.queue.FilesystemBroker`-compatible.  Picklable —
    local drain workers rebuild it from a kwargs dict across ``fork``.
    """

    def __init__(
        self,
        inner,
        seed: int = 0,
        delay_p: float = 0.0,
        delay_s: float = 0.05,
        duplicate_claim_p: float = 0.0,
        drop_claim_p: float = 0.0,
        drop_heartbeat_p: float = 0.0,
        drop_release_p: float = 0.0,
    ):
        for name, p in (
            ("delay_p", delay_p),
            ("duplicate_claim_p", duplicate_claim_p),
            ("drop_claim_p", drop_claim_p),
            ("drop_heartbeat_p", drop_heartbeat_p),
            ("drop_release_p", drop_release_p),
        ):
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{name} must be within [0, 1] (got {p})")
        self.inner = inner
        self.seed = int(seed)
        self.delay_p = float(delay_p)
        self.delay_s = float(delay_s)
        self.duplicate_claim_p = float(duplicate_claim_p)
        self.drop_claim_p = float(drop_claim_p)
        self.drop_heartbeat_p = float(drop_heartbeat_p)
        self.drop_release_p = float(drop_release_p)
        self.rng = random.Random(seed)

    def __getattr__(self, name):
        # Called only when normal lookup fails; guard against recursion
        # while ``self.__dict__`` is still empty during unpickling.
        inner = self.__dict__.get("inner")
        if inner is None:
            raise AttributeError(name)
        return getattr(inner, name)

    # -- chaos primitives ----------------------------------------------

    def _maybe_delay(self) -> None:
        if self.delay_p and self.rng.random() < self.delay_p:
            time.sleep(self.rng.random() * self.delay_s)

    def _requeue(self, claim: Claim) -> None:
        """Force a claimed task back to pending (the expiry path, minus
        the waiting)."""
        self.inner._lease_path(claim.name).unlink(missing_ok=True)
        try:
            os.rename(
                self.inner.claimed_dir / claim.name,
                self.inner.tasks_dir / claim.name,
            )
        except FileNotFoundError:
            pass  # someone else already moved it; chaos achieved either way

    # -- misbehaving Broker surface ------------------------------------

    def claim(self, worker_id: str, lease_s: float | None = None) -> Claim | None:
        self._maybe_delay()
        claim = self.inner.claim(worker_id, lease_s)
        if claim is None:
            return None
        if self.drop_claim_p and self.rng.random() < self.drop_claim_p:
            self._requeue(claim)
            return None
        if self.duplicate_claim_p and self.rng.random() < self.duplicate_claim_p:
            # Republish a copy while keeping our claim: two workers end
            # up executing the same (deterministic) episode.
            duplicate = self.inner.tasks_dir / claim.name
            if not duplicate.exists():
                from .queue import _write_atomic

                _write_atomic(duplicate, pickle.dumps(claim.task))
        return claim

    def heartbeat(self, claim: Claim) -> None:
        if self.drop_heartbeat_p and self.rng.random() < self.drop_heartbeat_p:
            return  # the lease quietly ages toward an expiry storm
        self.inner.heartbeat(claim)

    def release(self, claim: Claim) -> bool:
        self._maybe_delay()
        if self.drop_release_p and self.rng.random() < self.drop_release_p:
            self._requeue(claim)
            return False
        return self.inner.release(claim)


# ----------------------------------------------------------------------
# Poison-episode fixtures
# ----------------------------------------------------------------------


class InjectedCrash(RuntimeError):
    """Raised by :class:`CrashFault` — an episode that always dies."""


class TransientEpisodeError(RuntimeError):
    """Raised by :class:`FlakyFault` while its failure allowance lasts."""


class CrashFault(WorldFault):
    """An always-crashing episode: raises on its first triggered frame.

    Attach it on a dedicated injector row to make that row's episodes
    poison — the campaign must quarantine exactly them and finish the
    rest untouched.
    """

    name = "chaos-crash"

    def __init__(self, message: str = "injected episode crash", trigger: Trigger | None = None):
        super().__init__(trigger)
        self.message = str(message)

    def mutate(self, world) -> None:
        raise InjectedCrash(self.message)


class HangFault(WorldFault):
    """An always-hanging episode: sleeps far past any sane wall-clock
    budget on its first triggered frame.

    The hang is *bounded* (``hang_s``, default 5 minutes) so an episode
    that escapes its watchdog leaks a finite sleep, not a forever-child —
    but any reasonable ``timeout_s`` fires long before.
    """

    name = "chaos-hang"

    def __init__(self, hang_s: float = 300.0, trigger: Trigger | None = None):
        super().__init__(trigger)
        self.hang_s = float(hang_s)

    def mutate(self, world) -> None:
        time.sleep(self.hang_s)


class FlakyFault(WorldFault):
    """Fails the episode's first ``fail_times`` *attempts*, then succeeds.

    Attempt counting must survive process boundaries (retries may run in
    sandbox forks or different pool workers), so the counter is a file
    under ``state_dir``: one byte appended per attempt (``O_APPEND`` is
    atomic), count = file size.  To build the first-try-success
    counterpart for byte-identity checks, pre-seed the counter with
    ``exhaust()`` — the fault object (and thus the episode fingerprint
    and the world it mutates: nothing) is identical either way.
    """

    name = "chaos-flaky"

    def __init__(
        self,
        state_dir: str,
        fail_times: int = 2,
        trigger: Trigger | None = None,
    ):
        super().__init__(trigger)
        self.state_dir = str(state_dir)
        self.fail_times = int(fail_times)
        self._counted = False

    @property
    def counter_path(self) -> Path:
        return Path(self.state_dir) / f"{self.name}.attempts"

    def reset(self) -> None:
        super().reset()
        self._counted = False

    def exhaust(self) -> None:
        """Pre-spend the failure allowance (first-try-success counterpart)."""
        Path(self.state_dir).mkdir(parents=True, exist_ok=True)
        for _ in range(self.fail_times):
            self._bump()

    def _bump(self) -> int:
        path = self.counter_path
        path.parent.mkdir(parents=True, exist_ok=True)
        fd = os.open(path, os.O_WRONLY | os.O_APPEND | os.O_CREAT, 0o644)
        try:
            os.write(fd, b".")
        finally:
            os.close(fd)
        return os.stat(path).st_size

    def mutate(self, world) -> None:
        if self._counted:
            return
        self._counted = True
        attempt = self._bump()
        if attempt <= self.fail_times:
            raise TransientEpisodeError(
                f"injected transient failure (attempt {attempt} of "
                f"{self.fail_times} doomed)"
            )
