"""Campaign-as-a-service: an HTTP control plane over the queue broker.

:class:`CampaignService` turns a machine into a standing fault-injection
service.  It owns one :class:`~repro.core.netqueue.BrokerServer` (the
task queue workers attach to with ``avfi worker --queue-dir
tcp://host:port``) and one small HTTP API in front of it:

========================== ==========================================
``POST /campaigns``        submit a :class:`~repro.core.spec.CampaignSpec`
                           as JSON (optionally wrapped in an envelope
                           with ``workers`` / ``fault_tolerance`` /
                           ``lease_s`` / ``episodes_per_slot``
                           overrides); a malformed spec is a ``400``
                           whose body carries the path-anchored
                           :class:`~repro.core.spec.SpecError` message
``GET  /campaigns``        all submissions, newest last
``GET  /campaigns/<id>``   one submission's state + outcome counts
``GET  /campaigns/<id>/episodes``
                           per-episode status in grid order, each one
                           of the :class:`~repro.core.outcomes.EpisodeOutcome`
                           taxonomy plus ``running``/``pending``
``GET  /campaigns/<id>/results``
                           the settled grid as JSONL, byte-identical
                           to the checkpoint a serial ``avfi run``
                           would write for the same spec
``GET/PUT/HEAD /artifacts/<sha>``
                           the broker's content-addressed artifact
                           store (NN weights ship once per worker)
``POST /shutdown``         stop serving after the current campaign
========================== ==========================================

Submissions run **serially** on one shared broker root: each run
re-publishes the broker's context (the documented re-publish semantics
of :meth:`~repro.core.queue.FilesystemBroker.publish`), so long-lived
workers — attached once over TCP — serve submission after submission
without restarting.  The shared ``results.jsonl`` doubles as a service-
wide result cache: resubmitting a spec whose episodes already ran folds
the existing rows back instantly (the grid fold matches rows by episode
fingerprint, so foreign rows are invisible).

NN agent specs are transparently warm-started: before publishing, the
agent factory is swapped for an
:class:`~repro.core.artifacts.ArtifactNNAgentFactory` whose weights live
in the broker's artifact store — the campaign context pickle shrinks
from megabytes to kilobytes and each worker fetches the weights once.

Security: the control plane and the broker are **unauthenticated TCP**,
same trust model as the shared queue directory they replace — bind them
to localhost or a trusted network only, never the open internet.
"""

from __future__ import annotations

import json
import queue as queue_module
import threading
import time
import traceback
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path

from .outcomes import EpisodeOutcome, FaultTolerancePolicy
from .spec import CampaignSpec, SpecError

__all__ = ["CampaignService", "Submission"]

#: Envelope keys ``POST /campaigns`` understands around a bare spec.
_ENVELOPE_KEYS = {"spec", "workers", "lease_s", "fault_tolerance", "episodes_per_slot"}

#: Hard ceiling on one HTTP request body.  Artifact PUTs carry NN
#: weights (megabytes), so the cap is generous — but an arbitrary
#: Content-Length must not become an arbitrary server-side allocation,
#: even on the trusted network the service is documented for.
MAX_BODY_BYTES = 256 * 1024 * 1024


class _BodyTooLarge(Exception):
    """Request body exceeds :data:`MAX_BODY_BYTES` — rendered as 413."""

    def __init__(self, length: int):
        super().__init__(
            f"request body of {length} bytes exceeds the {MAX_BODY_BYTES} limit"
        )


class Submission:
    """One submitted campaign and everything the API reports about it.

    ``state`` walks ``queued -> running -> done | failed``; ``settled``
    is set on either terminal state (pollers wait on the HTTP API, tests
    wait on the event).
    """

    def __init__(self, sub_id: str, spec: CampaignSpec, overrides: dict):
        self.id = sub_id
        self.spec = spec
        #: Execution overrides from the submission envelope (``workers``,
        #: ``lease_s``, ``fault_tolerance``, ``episodes_per_slot``).
        self.overrides = overrides
        self.state = "queued"
        self.error = ""
        self.traceback_text = ""
        self.created_at = time.time()
        self.runner = None
        self.result = None
        self.settled = threading.Event()

    def is_settled(self) -> bool:
        return self.state in ("done", "failed")


def _parse_submission_payload(payload) -> tuple[CampaignSpec, dict]:
    """``(spec, overrides)`` from a request body — either a bare spec
    (recognised by its ``schema_version``) or an envelope.  Raises
    :class:`SpecError` with a path into the JSON on anything malformed,
    exactly like loading a spec file would."""
    if not isinstance(payload, dict):
        raise SpecError("request", f"expected an object, got {type(payload).__name__}")
    if "spec" not in payload:
        return CampaignSpec.from_dict(payload), {}
    unknown = set(payload) - _ENVELOPE_KEYS
    if unknown:
        raise SpecError(
            "request", f"unknown envelope key(s): {', '.join(sorted(unknown))}"
        )
    spec = CampaignSpec.from_dict(payload["spec"])
    overrides: dict = {}
    workers = payload.get("workers")
    if workers is not None:
        if not isinstance(workers, int) or workers < 0:
            raise SpecError("request.workers", f"expected an integer >= 0, got {workers!r}")
        overrides["workers"] = workers
    lease_s = payload.get("lease_s")
    if lease_s is not None:
        if not isinstance(lease_s, (int, float)) or lease_s <= 0:
            raise SpecError("request.lease_s", f"expected a positive number, got {lease_s!r}")
        overrides["lease_s"] = float(lease_s)
    episodes_per_slot = payload.get("episodes_per_slot")
    if episodes_per_slot is not None:
        if not isinstance(episodes_per_slot, int) or episodes_per_slot < 1:
            raise SpecError(
                "request.episodes_per_slot",
                f"expected an integer >= 1, got {episodes_per_slot!r}",
            )
        overrides["episodes_per_slot"] = episodes_per_slot
    tolerance = payload.get("fault_tolerance")
    if tolerance is not None:
        try:
            overrides["fault_tolerance"] = FaultTolerancePolicy.from_dict(tolerance)
        except (ValueError, TypeError) as exc:
            raise SpecError("request.fault_tolerance", str(exc)) from None
    return spec, overrides


class CampaignService:
    """The standing service: broker + HTTP control plane + run loop.

    ``state_dir`` is authoritative and durable — the broker root (with
    its checkpoint and artifact store) lives at ``state_dir/queue`` and
    survives restarts just like a plain queue directory would.

    ``default_workers`` local drain workers are forked per campaign when
    a submission doesn't say otherwise; ``0`` (the default) means the
    service only coordinates and real work waits for workers attached
    over TCP (``avfi worker --queue-dir <service.broker_address>``).
    """

    def __init__(
        self,
        state_dir: str | Path,
        host: str = "127.0.0.1",
        port: int = 0,
        broker_port: int = 0,
        lease_s: float = 60.0,
        default_workers: int = 0,
        stall_timeout: float | None = None,
        poll_s: float = 0.2,
    ):
        from .netqueue import BrokerServer  # deferred: heavy import chain

        self.state_dir = Path(state_dir)
        self.state_dir.mkdir(parents=True, exist_ok=True)
        self.lease_s = float(lease_s)
        self.default_workers = int(default_workers)
        self.stall_timeout = stall_timeout
        self.poll_s = float(poll_s)
        self.broker_server = BrokerServer(
            self.state_dir / "queue", host=host, port=broker_port, lease_s=lease_s
        )
        self._submissions: dict[str, Submission] = {}
        self._order: list[str] = []
        self._lock = threading.Lock()
        self._queue: queue_module.Queue = queue_module.Queue()
        self._run_thread: threading.Thread | None = None
        self._stopping = threading.Event()
        self._http = _ControlPlaneServer((host, port), _ControlPlaneHandler)
        self._http.service = self
        self._http_thread: threading.Thread | None = None

    # -- lifecycle -----------------------------------------------------

    @property
    def url(self) -> str:
        host, port = self._http.server_address[:2]
        return f"http://{host}:{port}"

    @property
    def broker_address(self) -> str:
        """The broker URL workers attach to (``tcp://host:port``)."""
        return self.broker_server.address

    def start(self) -> "CampaignService":
        self.broker_server.start()
        self._run_thread = threading.Thread(
            target=self._run_loop, name="campaign-service-runner", daemon=True
        )
        self._run_thread.start()
        self._http_thread = threading.Thread(
            target=self._http.serve_forever,
            kwargs={"poll_interval": 0.1},
            name="campaign-service-http",
            daemon=True,
        )
        self._http_thread.start()
        return self

    def stop(self) -> None:
        """Stop accepting work and shut everything down.

        Waits for the submission currently running to finish — the run
        loop cannot safely abandon a campaign mid-flight (workers hold
        leases on its tasks); set a ``stall_timeout`` if unattended
        campaigns must not wait forever for workers.
        """
        with self._lock:
            self._stopping.set()
            self._queue.put(None)
        if self._run_thread is not None:
            self._run_thread.join()
            self._run_thread = None
        # Settle anything still queued (nothing will run it now) so a
        # `--wait` poller sees a terminal state instead of hanging.
        while True:
            try:
                sub_id = self._queue.get_nowait()
            except queue_module.Empty:
                break
            sub = self.get(sub_id) if sub_id is not None else None
            if sub is not None and not sub.is_settled():
                sub.state = "failed"
                sub.error = "service shut down before this campaign ran"
                sub.settled.set()
        self._http.shutdown()
        self._http.server_close()
        if self._http_thread is not None:
            self._http_thread.join(timeout=5.0)
            self._http_thread = None
        self.broker_server.stop()

    def wait(self) -> None:
        """Block until a ``POST /shutdown`` (or :meth:`stop`) arrives."""
        self._stopping.wait()

    def request_shutdown(self) -> None:
        """Asynchronous shutdown trigger (the ``POST /shutdown`` path):
        unblocks :meth:`wait` so the owning thread can run :meth:`stop`."""
        self._stopping.set()

    # -- submissions ---------------------------------------------------

    def submit(self, payload) -> Submission:
        """Validate and enqueue a submission (raises :class:`SpecError`)."""
        spec, overrides = _parse_submission_payload(payload)
        with self._lock:
            # Checked and enqueued under the same lock :meth:`stop` takes
            # to set the flag and post its sentinel — a racing submission
            # either lands *before* the sentinel (and runs) or sees the
            # flag (and is refused); it can never slip in after the run
            # loop has been told to exit and sit "queued" forever.
            if self._stopping.is_set():
                raise RuntimeError("service is shutting down")
            sub = Submission(f"c{len(self._order) + 1:04d}", spec, overrides)
            self._submissions[sub.id] = sub
            self._order.append(sub.id)
            self._queue.put(sub.id)
        return sub

    def get(self, sub_id: str) -> Submission | None:
        with self._lock:
            return self._submissions.get(sub_id)

    def submissions(self) -> list[Submission]:
        with self._lock:
            return [self._submissions[sid] for sid in self._order]

    # -- the run loop --------------------------------------------------

    def _run_loop(self) -> None:
        while True:
            sub_id = self._queue.get()
            if sub_id is None:
                return
            sub = self.get(sub_id)
            if sub is None:  # pragma: no cover - defensive
                continue
            try:
                self._run_submission(sub)
                sub.state = "done"
            except Exception as exc:
                sub.state = "failed"
                sub.error = f"{type(exc).__name__}: {exc}"
                sub.traceback_text = traceback.format_exc()
            finally:
                sub.settled.set()

    def _run_submission(self, sub: Submission) -> None:
        from .artifacts import internalize_nn_factory
        from .campaign import Campaign

        overrides = sub.overrides
        campaign = Campaign.from_spec(
            sub.spec,
            workers=overrides.get("workers", self.default_workers),
            queue_dir=str(self.broker_server.broker.root),
            lease_s=overrides.get("lease_s", self.lease_s),
            fault_tolerance=overrides.get("fault_tolerance"),
            episodes_per_slot=overrides.get("episodes_per_slot"),
        )
        # Ship NN weights through the artifact store, addressed so
        # workers fetch over the same TCP broker they drain.
        campaign.agent_factory = internalize_nn_factory(
            campaign.agent_factory, self.broker_server.broker, self.broker_address
        )
        runner = campaign.runner()
        executor = runner.executor
        # The service's liveness knobs beat the spec's: an unattended
        # submission must respect *this* deployment's stall policy.
        if hasattr(executor, "stall_timeout"):
            executor.stall_timeout = self.stall_timeout
        if hasattr(executor, "poll_s"):
            executor.poll_s = self.poll_s
        sub.runner = runner
        sub.state = "running"
        sub.result = runner.run()

    # -- reporting -----------------------------------------------------

    def _running_indexes(self) -> set[int]:
        """Grid indexes currently claimed by a worker (the 5-digit
        prefix of :meth:`~repro.core.queue.FilesystemBroker._task_filename`)."""
        out = set()
        for name in self.broker_server.broker.claimed_names():
            prefix = name.split("_", 1)[0]
            try:
                out.add(int(prefix))
            except ValueError:
                continue
        return out

    @staticmethod
    def _grid_snapshot(runner):
        """(records-by-identity, failures-by-identity), tolerant of the
        run loop appending concurrently — the fold dicts only ever grow,
        so retry the rare mid-iteration mutation instead of locking the
        hot path."""
        from .runner import record_identity

        for _ in range(8):
            try:
                records = {record_identity(r): r for r in runner.grid_records()}
                failures = {record_identity(f): f for f in runner.grid_failures()}
                return records, failures
            except RuntimeError:  # dict changed size mid-iteration
                continue
        return {}, {}  # pragma: no cover - 8 consecutive races

    def episode_rows(self, sub: Submission) -> list[dict]:
        """Per-episode status in grid order.

        ``outcome`` is :class:`~repro.core.outcomes.EpisodeOutcome` for
        settled episodes (records report ``ok`` plus the mission
        ``success`` flag — an unsuccessful mission is still a completed
        episode), ``running`` for episodes under a live claim,
        ``pending`` otherwise.
        """
        runner = sub.runner
        if runner is None:
            return []
        records, failures = self._grid_snapshot(runner)
        running = self._running_indexes() if not sub.is_settled() else set()
        rows = []
        for task in runner.tasks():
            row = {
                "index": task.index,
                "injector": task.injector,
                "scenario": task.scenario.name,
                "seed": task.seed,
            }
            record = records.get(task.identity())
            failure = failures.get(task.identity())
            if record is not None:
                row["outcome"] = EpisodeOutcome.OK
                row["success"] = bool(record.success)
            elif failure is not None:
                row["outcome"] = failure.outcome
                row["error_type"] = failure.error_type
            elif task.index in running:
                row["outcome"] = "running"
            else:
                row["outcome"] = "pending"
            rows.append(row)
        return rows

    def summary(self, sub: Submission) -> dict:
        counts: dict[str, int] = {}
        total = None
        if sub.runner is not None:
            total = sub.runner.total_runs()
            for row in self.episode_rows(sub):
                counts[row["outcome"]] = counts.get(row["outcome"], 0) + 1
        out = {
            "id": sub.id,
            "name": sub.spec.name,
            "state": sub.state,
            "total": total,
            "counts": counts,
        }
        if sub.error:
            out["error"] = sub.error
        return out

    def results_jsonl(self, sub: Submission) -> bytes:
        """The settled grid as JSONL bytes, one row per episode in grid
        order — records and quarantine rows interleaved exactly where
        their episode sits, which is byte-for-byte the checkpoint a
        serial run of the same spec would write
        (:func:`~repro.core.runner.append_jsonl_line` renders rows with
        the same ``json.dumps``)."""
        runner = sub.runner
        if runner is None:
            return b""
        records, failures = self._grid_snapshot(runner)
        lines = []
        for task in runner.tasks():
            row = records.get(task.identity()) or failures.get(task.identity())
            if row is not None:
                lines.append(json.dumps(row.to_dict()) + "\n")
        return "".join(lines).encode("utf-8")


class _ControlPlaneServer(ThreadingHTTPServer):
    allow_reuse_address = True
    daemon_threads = True
    service: CampaignService


class _ControlPlaneHandler(BaseHTTPRequestHandler):
    """Routes the tiny REST surface; every response carries an explicit
    ``Content-Length`` so HTTP/1.1 keep-alive clients (urllib pollers)
    never hang on an unterminated body."""

    protocol_version = "HTTP/1.1"
    server: _ControlPlaneServer

    # -- plumbing ------------------------------------------------------

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        pass  # quiet by default; the service narrates through its owner

    def _send(self, code: int, body: bytes, content_type: str) -> None:
        self.send_response(code)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        if self.command != "HEAD":
            self.wfile.write(body)

    def _send_json(self, code: int, payload) -> None:
        body = (json.dumps(payload, indent=2) + "\n").encode("utf-8")
        self._send(code, body, "application/json")

    def _read_body(self) -> bytes:
        try:
            length = int(self.headers.get("Content-Length") or 0)
        except ValueError:
            length = 0
        if length <= 0:
            return b""
        if length > MAX_BODY_BYTES:
            raise _BodyTooLarge(length)
        # Bounded chunks: one read call must not be asked for the whole
        # (client-claimed) length at once.
        chunks, remaining = [], length
        while remaining:
            chunk = self.rfile.read(min(remaining, 1 << 20))
            if not chunk:
                break
            chunks.append(chunk)
            remaining -= len(chunk)
        return b"".join(chunks)

    def _reject_too_large(self, exc: _BodyTooLarge) -> None:
        # The unread body still sits on the socket; don't let keep-alive
        # reinterpret it as the next request.
        self.close_connection = True
        self._send_json(413, {"error": str(exc)})

    def _submission_or_404(self, sub_id: str):
        sub = self.server.service.get(sub_id)
        if sub is None:
            self._send_json(404, {"error": f"no such campaign: {sub_id}"})
        return sub

    # -- verbs ---------------------------------------------------------

    def do_GET(self) -> None:
        service = self.server.service
        parts = [p for p in self.path.split("?")[0].split("/") if p]
        if not parts:
            self._send_json(
                200,
                {
                    "service": "avfi-campaigns",
                    "broker": service.broker_address,
                    "campaigns": [service.summary(s) for s in service.submissions()],
                },
            )
        elif parts[0] == "campaigns" and len(parts) == 1:
            self._send_json(
                200, {"campaigns": [service.summary(s) for s in service.submissions()]}
            )
        elif parts[0] == "campaigns" and len(parts) == 2:
            sub = self._submission_or_404(parts[1])
            if sub is not None:
                self._send_json(200, service.summary(sub))
        elif parts[0] == "campaigns" and len(parts) == 3 and parts[2] == "episodes":
            sub = self._submission_or_404(parts[1])
            if sub is not None:
                self._send_json(
                    200,
                    {
                        "id": sub.id,
                        "state": sub.state,
                        "episodes": service.episode_rows(sub),
                    },
                )
        elif parts[0] == "campaigns" and len(parts) == 3 and parts[2] == "results":
            sub = self._submission_or_404(parts[1])
            if sub is not None:
                if sub.state == "failed":
                    self._send_json(409, {"error": sub.error or "campaign failed"})
                else:
                    self._send(200, service.results_jsonl(sub), "application/x-ndjson")
        elif parts[0] == "artifacts" and len(parts) == 2:
            try:
                blob = service.broker_server.broker.artifact_get(parts[1])
            except ValueError as exc:
                self._send_json(400, {"error": str(exc)})
                return
            if blob is None:
                self._send_json(404, {"error": f"no such artifact: {parts[1]}"})
            else:
                self._send(200, blob, "application/octet-stream")
        else:
            self._send_json(404, {"error": f"no such endpoint: {self.path}"})

    do_HEAD = do_GET

    def do_POST(self) -> None:
        service = self.server.service
        parts = [p for p in self.path.split("?")[0].split("/") if p]
        if parts == ["campaigns"]:
            try:
                payload = json.loads(self._read_body() or b"null")
            except _BodyTooLarge as exc:
                self._reject_too_large(exc)
                return
            except json.JSONDecodeError as exc:
                self._send_json(400, {"error": f"request body is not JSON: {exc}"})
                return
            try:
                sub = service.submit(payload)
            except SpecError as exc:
                self._send_json(400, {"error": str(exc), "path": exc.path})
                return
            except RuntimeError as exc:
                self._send_json(503, {"error": str(exc)})
                return
            self._send_json(201, service.summary(sub))
        elif parts == ["shutdown"]:
            self._send_json(200, {"ok": True})
            service.request_shutdown()
        else:
            self._send_json(404, {"error": f"no such endpoint: {self.path}"})

    def do_PUT(self) -> None:
        service = self.server.service
        parts = [p for p in self.path.split("?")[0].split("/") if p]
        if parts and parts[0] == "artifacts" and len(parts) == 2:
            try:
                sha = service.broker_server.broker.artifact_put(
                    parts[1], self._read_body()
                )
            except _BodyTooLarge as exc:
                self._reject_too_large(exc)
                return
            except ValueError as exc:
                self._send_json(400, {"error": str(exc)})
                return
            self._send_json(200, {"sha": sha})
        else:
            self._send_json(404, {"error": f"no such endpoint: {self.path}"})
